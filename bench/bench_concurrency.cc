// Experiment R4: concurrent serving. Two questions:
//
//  1. Throughput scaling — queries/second of a shared Database as reader
//     threads grow (the copy-on-write catalog means the only shared write
//     on the query path is the admission bookkeeping), with and without a
//     concurrent writer swapping documents underneath.
//  2. Overload behaviour — with a tight admission config (few slots, short
//     queue deadline), offered load beyond capacity is shed with
//     kResourceExhausted instead of queueing without bound; the counters
//     report the split.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_util.h"
#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"

namespace xmlq::bench {
namespace {

constexpr int kScale = 20;  // permille of XMark scale 1.0

api::Database& SharedDb() {
  static api::Database* db = [] {
    auto* d = new api::Database;
    datagen::AuctionOptions options;
    options.scale = kScale / 1000.0;
    options.seed = 7;
    Status status =
        d->RegisterDocument("auction.xml",
                            datagen::GenerateAuctionSite(options));
    if (!status.ok()) std::abort();
    return d;
  }();
  return *db;
}

constexpr const char* kWorkload[] = {
    "//person/name",
    "//person[address]/name",
    "//item[payment = 'Cash']/location",
    "//open_auction[bidder]/current",
};

/// Queries/second with N threads hammering one Database (no admission
/// bound — measures raw shared-path contention: catalog pin + scheduler
/// bookkeeping + breaker check).
void BM_ConcurrentThroughput(benchmark::State& state) {
  api::Database& db = SharedDb();
  if (state.thread_index() == 0) db.SetAdmission({});
  size_t i = 0;
  for (auto _ : state) {
    auto result =
        db.QueryPath(kWorkload[i++ % std::size(kWorkload)]);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->value.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentThroughput)->ThreadRange(1, 8)->UseRealTime();

/// Same workload, but a writer keeps replacing the document while readers
/// query — the copy-on-write swap cost and its effect on reader throughput.
void BM_ThroughputUnderWriter(benchmark::State& state) {
  api::Database& db = SharedDb();
  static std::atomic<bool> stop{false};
  static std::thread* writer = nullptr;
  if (state.thread_index() == 0) {
    db.SetAdmission({});
    stop.store(false);
    writer = new std::thread([&db] {
      uint64_t flip = 0;
      while (!stop.load(std::memory_order_acquire)) {
        datagen::AuctionOptions options;
        options.scale = kScale / 1000.0;
        options.seed = (flip++ % 2 == 0) ? 99 : 7;
        Status status =
            db.RegisterDocument("auction.xml",
                                datagen::GenerateAuctionSite(options));
        if (!status.ok()) std::abort();
      }
    });
  }
  size_t i = 0;
  for (auto _ : state) {
    auto result =
        db.QueryPath(kWorkload[i++ % std::size(kWorkload)]);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->value.size());
  }
  if (state.thread_index() == 0) {
    stop.store(true, std::memory_order_release);
    writer->join();
    delete writer;
    writer = nullptr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThroughputUnderWriter)->ThreadRange(2, 8)->UseRealTime();

/// Overload: 8 threads against 2 slots, a 2-deep queue and a 200µs queue
/// deadline. Reports the terminal-outcome split (completed / rejected /
/// shed) as counters; the serving property under test is that overload
/// resolves into fast kResourceExhausted answers, not an unbounded queue.
void BM_OverloadShedding(benchmark::State& state) {
  api::Database& db = SharedDb();
  if (state.thread_index() == 0) {
    db.SetAdmission({.max_concurrent = 2, .max_queue = 2,
                     .queue_deadline_micros = 200});
  }
  size_t ok = 0, exhausted = 0;
  size_t i = 0;
  for (auto _ : state) {
    auto result =
        db.QueryPath(kWorkload[i++ % std::size(kWorkload)]);
    if (result.ok()) {
      ++ok;
    } else if (result.status().code() == StatusCode::kResourceExhausted) {
      ++exhausted;
    } else {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.ok());
  }
  state.counters["completed"] =
      benchmark::Counter(static_cast<double>(ok));
  state.counters["exhausted"] =
      benchmark::Counter(static_cast<double>(exhausted));
  if (state.thread_index() == 0) db.SetAdmission({});
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverloadShedding)->Threads(8)->UseRealTime();

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
