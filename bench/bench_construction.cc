// Experiment F1 (paper Fig. 1): the bibliography FLWOR + constructor query
// end-to-end — SchemaTree extraction, Env evaluation and γ construction —
// across result sizes, plus the γ-only cost (construction over precomputed
// bindings) to separate matching from building.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/exec/executor.h"
#include "xmlq/xquery/parser.h"
#include "xmlq/xquery/schema_extract.h"
#include "xmlq/xquery/translate.h"

namespace xmlq::bench {
namespace {

constexpr const char* kFigure1Query =
    "<results>{"
    " for $b in doc(\"bib.xml\")/bib/book"
    " let $t := $b/title"
    " let $a := $b/author"
    " return <result>{$t}{$a}</result>"
    "}</results>";

exec::EvalContext MakeContext(int books) {
  exec::EvalContext context;
  context.documents[""] = BibDoc(books).view;
  context.documents["bib.xml"] = BibDoc(books).view;
  return context;
}

void BM_Figure1EndToEnd(benchmark::State& state) {
  const int books = static_cast<int>(state.range(0));
  const exec::EvalContext context = MakeContext(books);
  xquery::TranslateOptions options;
  options.default_document = "bib.xml";
  auto plan = xquery::CompileQuery(kFigure1Query, options);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  exec::Executor executor(&context);
  size_t constructed_nodes = 0;
  for (auto _ : state) {
    auto result = executor.Evaluate(**plan);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    constructed_nodes = result->constructed.back()->NodeCount();
    benchmark::DoNotOptimize(constructed_nodes);
  }
  state.counters["constructed_nodes"] =
      static_cast<double>(constructed_nodes);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * books));
}
BENCHMARK(BM_Figure1EndToEnd)
    ->Name("F1/figure1_query")
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

void BM_CompileAndExtractSchema(benchmark::State& state) {
  for (auto _ : state) {
    auto ast = xquery::ParseQuery(kFigure1Query);
    if (!ast.ok()) {
      state.SkipWithError(ast.status().ToString().c_str());
      return;
    }
    auto schema = xquery::ExtractSchemaTree(**ast);
    if (!schema.ok()) {
      state.SkipWithError(schema.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(schema->tree.NodeCount());
  }
}
BENCHMARK(BM_CompileAndExtractSchema)
    ->Name("F1/parse_and_schema_extract")
    ->Unit(benchmark::kMicrosecond);

/// γ in isolation: the same construction driven by a pre-bound variable, so
/// the timed body is (almost) pure output building.
void BM_GammaOnly(benchmark::State& state) {
  const int books = static_cast<int>(state.range(0));
  const exec::EvalContext context = MakeContext(books);
  xquery::TranslateOptions options;
  options.default_document = "bib.xml";
  auto plan =
      xquery::CompileQuery("<copy>{$titles}</copy>", options);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  exec::Executor executor(&context);
  // Pre-compute the bindings once.
  auto titles_plan = xquery::CompileQuery("//title", options);
  exec::QueryResult scratch;
  auto titles = executor.EvaluateWithVars(**titles_plan, {}, &scratch);
  if (!titles.ok()) {
    state.SkipWithError(titles.status().ToString().c_str());
    return;
  }
  std::map<std::string, algebra::Sequence> vars;
  vars["titles"] = *titles;
  for (auto _ : state) {
    exec::QueryResult out;
    auto result = executor.EvaluateWithVars(**plan, vars, &out);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out.constructed.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * books));
}
BENCHMARK(BM_GammaOnly)->Name("F1/gamma_only")->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
