// Experiment F2 (paper Definition 3 / Fig. 2): FLWOR evaluation through the
// materialized layered Env vs direct pipelined recursion, across nesting
// depths and fan-outs. Both strategies evaluate the same tuples; the bench
// quantifies the materialization overhead (and where batching pays off).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/exec/executor.h"
#include "xmlq/xquery/translate.h"

namespace xmlq::bench {
namespace {

exec::EvalContext MakeContext(int permille, exec::FlworMode mode) {
  exec::EvalContext context;
  context.documents[""] = AuctionDoc(permille).view;
  context.documents["auction.xml"] = AuctionDoc(permille).view;
  context.flwor_mode = mode;
  return context;
}

struct FlworCase {
  const char* name;
  const char* query;
};

constexpr FlworCase kCases[] = {
    {"two_vars",
     "for $a in //open_auction for $b in $a/bidder return $b/increase"},
    {"let_heavy",
     "for $a in //open_auction let $bs := $a/bidder let $n := count($bs) "
     "where $n > 0 return $n"},
    {"three_deep",
     "for $i in //item for $m in $i/mailbox/mail for $f in $m/from "
     "return $f"},
    {"where_filter",
     "for $p in //person where $p/profile/education = 'Graduate School' "
     "return $p/name"},
    {"ordered",
     "for $c in //closed_auction order by $c/price descending "
     "return $c/price"},
};

void BM_Flwor(benchmark::State& state, const char* query,
              exec::FlworMode mode, int permille) {
  const exec::EvalContext context = MakeContext(permille, mode);
  xquery::TranslateOptions options;
  options.default_document = "auction.xml";
  auto plan = xquery::CompileQuery(query, options);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  exec::Executor executor(&context);
  size_t results = 0;
  for (auto _ : state) {
    auto result = executor.Evaluate(**plan);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->value.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["tuples"] = static_cast<double>(results);
}

bool RegisterAll() {
  for (const FlworCase& c : kCases) {
    for (const auto& [mode, mode_name] :
         {std::pair{exec::FlworMode::kEnv, "env"},
          std::pair{exec::FlworMode::kPipelined, "pipelined"}}) {
      const std::string name =
          std::string("F2/") + c.name + "/" + mode_name;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [query = c.query, mode = mode](benchmark::State& state) {
            BM_Flwor(state, query, mode, 50);
          });
    }
  }
  // Fan-out sweep: the two_vars case across document scales.
  for (const int permille : {10, 50, 200}) {
    for (const auto& [mode, mode_name] :
         {std::pair{exec::FlworMode::kEnv, "env"},
          std::pair{exec::FlworMode::kPipelined, "pipelined"}}) {
      const std::string name = std::string("F2/scale_sweep/") + mode_name +
                               "/" + std::to_string(permille);
      benchmark::RegisterBenchmark(
          name.c_str(), [mode = mode, permille](benchmark::State& state) {
            BM_Flwor(state, kCases[0].query, mode, permille);
          });
    }
  }
  return true;
}

const bool registered = RegisterAll();

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
