// Experiment E4 (structural join order selection, [5]/[11]): the same twig
// evaluated by binary structural joins under different edge orders. The
// reproduction target: intermediate pair counts (and time) vary by orders
// of magnitude with the order, and the cost-model-chosen order tracks the
// best order.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/opt/optimizer.h"
#include "xmlq/opt/synopsis.h"

namespace xmlq::bench {
namespace {

// person (huge) / profile (medium) / education (small): order matters.
constexpr const char* kQuery = "//person[profile/education]/name";

const opt::Synopsis& AuctionSynopsis(int permille) {
  static std::map<int, std::unique_ptr<opt::Synopsis>> cache;
  auto& slot = cache[permille];
  if (slot == nullptr) {
    slot = std::make_unique<opt::Synopsis>(*AuctionDoc(permille).dom);
  }
  return *slot;
}

void RunOrder(benchmark::State& state,
              const std::vector<algebra::VertexId>& order, int permille) {
  const LoadedDoc& doc = AuctionDoc(permille);
  const algebra::PatternGraph pattern = Pattern(kQuery);
  size_t pairs = 0;
  size_t results = 0;
  for (auto _ : state) {
    exec::JoinPlanStats stats;
    auto result = exec::BinaryJoinPlanMatch(doc.view, pattern, order, &stats);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    pairs = stats.pairs_produced;
    results = result->size();
    benchmark::DoNotOptimize(result->data());
  }
  state.counters["intermediate_pairs"] = static_cast<double>(pairs);
  state.counters["results"] = static_cast<double>(results);
}

void BM_DocumentOrder(benchmark::State& state) {
  // Edge targets in ascending id order = top-down document order.
  RunOrder(state, {}, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_DocumentOrder)->Name("E4/order_top_down")->Arg(50)->Arg(200);

void BM_BottomUpOrder(benchmark::State& state) {
  const algebra::PatternGraph pattern = Pattern(kQuery);
  std::vector<algebra::VertexId> order;
  for (algebra::VertexId v = 1; v < pattern.VertexCount(); ++v) {
    order.push_back(v);
  }
  std::reverse(order.begin(), order.end());
  RunOrder(state, order, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_BottomUpOrder)->Name("E4/order_bottom_up")->Arg(50)->Arg(200);

void BM_OptimizerOrder(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const algebra::PatternGraph pattern = Pattern(kQuery);
  const std::vector<algebra::VertexId> order = opt::ChooseJoinOrder(
      AuctionSynopsis(permille), AuctionDoc(permille).dom->pool(), pattern);
  RunOrder(state, order, permille);
}
BENCHMARK(BM_OptimizerOrder)->Name("E4/order_optimizer")->Arg(50)->Arg(200);

/// Exhaustive order sweep at small scale: reports the best/worst pair
/// counts so the spread is visible in one row.
void BM_OrderSpread(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const LoadedDoc& doc = AuctionDoc(permille);
  const algebra::PatternGraph pattern = Pattern(kQuery);
  std::vector<algebra::VertexId> order;
  for (algebra::VertexId v = 1; v < pattern.VertexCount(); ++v) {
    order.push_back(v);
  }
  std::sort(order.begin(), order.end());
  size_t best = SIZE_MAX;
  size_t worst = 0;
  for (auto _ : state) {
    std::vector<algebra::VertexId> perm = order;
    best = SIZE_MAX;
    worst = 0;
    do {
      exec::JoinPlanStats stats;
      auto result =
          exec::BinaryJoinPlanMatch(doc.view, pattern, perm, &stats);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      best = std::min(best, stats.pairs_produced);
      worst = std::max(worst, stats.pairs_produced);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  state.counters["best_pairs"] = static_cast<double>(best);
  state.counters["worst_pairs"] = static_cast<double>(worst);
}
BENCHMARK(BM_OrderSpread)->Name("E4/order_spread_exhaustive")->Arg(50);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
