// Experiment R1: overhead of resource governance. The guard's hot path is a
// counter add + compare per "step" (node scanned / pair merged / tuple
// bound), with the real checks (deadline clock read, cancel-flag load)
// amortized behind a 4096-step polling stride. The acceptance bar for this
// repo is <3% slowdown on the NoK matching path with an armed-but-huge
// budget versus an ungoverned run.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/base/limits.h"
#include "xmlq/exec/executor.h"
#include "xmlq/xpath/compiler.h"

namespace xmlq::bench {
namespace {

constexpr int kScale = 50;

// Armed guard whose budgets are far beyond what any benchmark run uses, so
// every poll passes: measures pure bookkeeping cost, not early exits.
QueryLimits HugeLimits() {
  QueryLimits limits;
  limits.deadline_micros = 3600ull * 1000 * 1000;
  limits.max_steps = 1ull << 50;
  limits.max_memory_bytes = 1ull << 44;
  return limits;
}

void RunGoverned(benchmark::State& state, const char* path,
                 exec::PatternStrategy strategy, bool armed) {
  exec::EvalContext context;
  context.documents[""] = AuctionDoc(kScale).view;
  context.documents["auction.xml"] = AuctionDoc(kScale).view;
  context.strategy = strategy;
  const QueryLimits limits = HugeLimits();
  ResourceGuard guard(limits);
  if (armed) context.guard = &guard;
  auto plan = xpath::CompilePath(path, "auction.xml");
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  exec::Executor executor(&context);
  size_t results = 0;
  for (auto _ : state) {
    auto result = executor.Evaluate(**plan);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->value.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

// The NoK matching path (the paper's main matcher) — the overhead target.
void BM_NokUngoverned(benchmark::State& state) {
  RunGoverned(state, "//person[address][phone]/name",
              exec::PatternStrategy::kNok, /*armed=*/false);
}
BENCHMARK(BM_NokUngoverned)->Name("R1/nok_twig_ungoverned");

void BM_NokGoverned(benchmark::State& state) {
  RunGoverned(state, "//person[address][phone]/name",
              exec::PatternStrategy::kNok, /*armed=*/true);
}
BENCHMARK(BM_NokGoverned)->Name("R1/nok_twig_governed");

// A long path keeps more streams in flight (more tick sites per node).
void BM_PathUngoverned(benchmark::State& state) {
  RunGoverned(state, "/site/people/person/profile/interest",
              exec::PatternStrategy::kNok, /*armed=*/false);
}
BENCHMARK(BM_PathUngoverned)->Name("R1/nok_path_ungoverned");

void BM_PathGoverned(benchmark::State& state) {
  RunGoverned(state, "/site/people/person/profile/interest",
              exec::PatternStrategy::kNok, /*armed=*/true);
}
BENCHMARK(BM_PathGoverned)->Name("R1/nok_path_governed");

// TwigStack for comparison: per-iteration ticks on the merge loop.
void BM_TwigStackUngoverned(benchmark::State& state) {
  RunGoverned(state, "//person[address][phone]/name",
              exec::PatternStrategy::kTwigStack, /*armed=*/false);
}
BENCHMARK(BM_TwigStackUngoverned)->Name("R1/twigstack_ungoverned");

void BM_TwigStackGoverned(benchmark::State& state) {
  RunGoverned(state, "//person[address][phone]/name",
              exec::PatternStrategy::kTwigStack, /*armed=*/true);
}
BENCHMARK(BM_TwigStackGoverned)->Name("R1/twigstack_governed");

// Raw cost of the guard hot path itself, for the record: armed (counter +
// compare, poll every 4096) vs unarmed (compare against UINT64_MAX).
void BM_TickArmed(benchmark::State& state) {
  const QueryLimits limits = HugeLimits();
  ResourceGuard guard(limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.Tick());
  }
}
BENCHMARK(BM_TickArmed)->Name("R1/tick_armed");

void BM_TickUnarmed(benchmark::State& state) {
  ResourceGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.Tick());
  }
}
BENCHMARK(BM_TickUnarmed)->Name("R1/tick_unarmed");

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
