// Experiment R6: the wire tier. Two questions:
//
//  1. Serving cost — queries/second and latency percentiles through the
//     full network path (client socket -> frame encode/CRC -> epoll loop ->
//     worker pool -> Database -> response frame), versus the in-process
//     R4 numbers: what does the wire add?
//  2. Overload behaviour at the wire — with a tight admission config and
//     3x more closed-loop clients than capacity, the p99 of *admitted*
//     queries must stay bounded (overload degrades into fast retryable
//     overload frames carrying retry-after hints, never into a growing
//     in-server queue).
//
// Closed-loop clients: each thread connects once and issues its next
// request only after the previous one resolved, so offered load tracks
// capacity times the client multiple.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/net/client.h"
#include "xmlq/net/server.h"

namespace xmlq::bench {
namespace {

constexpr int kBooks = 200;
constexpr const char* kQuery = "//book/title";

struct LoadReport {
  std::vector<uint64_t> latency_micros;  // responded requests only
  uint64_t responses = 0;
  uint64_t overloads = 0;  // still shed after every retry
  uint64_t conn_errors = 0;
  uint64_t retries = 0;  // extra attempts after an overload response
  uint64_t backoff_micros = 0;
  double seconds = 0;
};

/// Runs `clients` closed-loop client threads for `requests_per_client`
/// requests each against the server on `port`, honoring retry-after hints.
LoadReport RunLoad(uint16_t port, int clients, int requests_per_client) {
  LoadReport report;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937_64 rng(static_cast<uint64_t>(c) * 7919 + 1);
      net::RetryPolicy policy;
      policy.max_attempts = 8;
      LoadReport local;
      auto client = net::Client::Connect("127.0.0.1", port);
      for (int i = 0; i < requests_per_client && client.ok(); ++i) {
        const auto start = std::chrono::steady_clock::now();
        const net::CallResult call =
            client->QueryWithRetry(kQuery, policy, &rng);
        const uint64_t elapsed = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        local.backoff_micros += call.backoff_micros;
        local.retries += call.attempts - 1;
        switch (call.outcome) {
          case net::CallOutcome::kResponse:
            ++local.responses;
            // Admitted-query latency: the call minus the time voluntarily
            // slept between attempts honoring retry-after.
            local.latency_micros.push_back(elapsed - call.backoff_micros);
            break;
          case net::CallOutcome::kOverload:
            ++local.overloads;
            break;
          case net::CallOutcome::kConnectionError:
            ++local.conn_errors;
            client = net::Client::Connect("127.0.0.1", port);
            break;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      report.responses += local.responses;
      report.overloads += local.overloads;
      report.conn_errors += local.conn_errors;
      report.retries += local.retries;
      report.backoff_micros += local.backoff_micros;
      report.latency_micros.insert(report.latency_micros.end(),
                                   local.latency_micros.begin(),
                                   local.latency_micros.end());
    });
  }
  for (std::thread& t : threads) t.join();
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void Report(benchmark::State& state, LoadReport report) {
  std::sort(report.latency_micros.begin(), report.latency_micros.end());
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(report.responses) / report.seconds);
  state.counters["p50_us"] =
      static_cast<double>(Percentile(report.latency_micros, 0.50));
  state.counters["p95_us"] =
      static_cast<double>(Percentile(report.latency_micros, 0.95));
  state.counters["p99_us"] =
      static_cast<double>(Percentile(report.latency_micros, 0.99));
  state.counters["overloads"] = static_cast<double>(report.overloads);
  state.counters["retries"] = static_cast<double>(report.retries);
  state.counters["conn_errors"] = static_cast<double>(report.conn_errors);
  const double total =
      static_cast<double>(report.responses + report.overloads);
  state.counters["overload_share"] =
      total == 0 ? 0 : static_cast<double>(report.overloads) / total;
}

/// R6/wire_1x: ample admission capacity, `clients` closed-loop clients —
/// the steady-state wire serving cost.
void BM_WireServing(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  api::Database db;
  datagen::BibOptions options;
  options.num_books = kBooks;
  if (!db.RegisterDocument("bib.xml",
                           datagen::GenerateBibliography(options))
           .ok()) {
    state.SkipWithError("register failed");
    return;
  }
  net::ServerConfig config;
  config.workers = 4;
  net::Server server(&db, config);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  LoadReport merged;
  for (auto _ : state) {
    LoadReport round = RunLoad(server.port(), clients,
                               /*requests_per_client=*/400);
    merged.responses += round.responses;
    merged.overloads += round.overloads;
    merged.conn_errors += round.conn_errors;
    merged.retries += round.retries;
    merged.seconds += round.seconds;
    merged.latency_micros.insert(merged.latency_micros.end(),
                                 round.latency_micros.begin(),
                                 round.latency_micros.end());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(round.responses));
  }
  Report(state, std::move(merged));
  if (!server.Shutdown().ok()) state.SkipWithError("drain failed");
}
BENCHMARK(BM_WireServing)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

/// R6/wire_3x: admission capped at 2 concurrent with no queue (reject
/// fast, hint retry-after), 12 closed-loop clients (~3x the admitted
/// concurrency across an 8-worker pool). The interesting counters are
/// p99_us (admitted work must stay fast), retries (overloads absorbed by
/// backoff) and overload_share (requests still shed after 8 attempts).
void BM_WireOverload3x(benchmark::State& state) {
  api::Database db;
  datagen::BibOptions options;
  options.num_books = kBooks;
  if (!db.RegisterDocument("bib.xml",
                           datagen::GenerateBibliography(options))
           .ok()) {
    state.SkipWithError("register failed");
    return;
  }
  db.SetAdmission({.max_concurrent = 2, .max_queue = 0,
                   .queue_deadline_micros = 500});
  net::ServerConfig config;
  config.workers = 8;
  net::Server server(&db, config);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  LoadReport merged;
  for (auto _ : state) {
    LoadReport round = RunLoad(server.port(), /*clients=*/12,
                               /*requests_per_client=*/150);
    merged.responses += round.responses;
    merged.overloads += round.overloads;
    merged.conn_errors += round.conn_errors;
    merged.retries += round.retries;
    merged.seconds += round.seconds;
    merged.latency_micros.insert(merged.latency_micros.end(),
                                 round.latency_micros.begin(),
                                 round.latency_micros.end());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(round.responses));
  }
  Report(state, std::move(merged));
  if (!server.Shutdown().ok()) state.SkipWithError("drain failed");
}
BENCHMARK(BM_WireOverload3x)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

}  // namespace
}  // namespace xmlq::bench

BENCHMARK_MAIN();
