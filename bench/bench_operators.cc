// Experiment T1 (paper Table 1): micro-benchmarks of the seven algebra
// operators — σs, ⋈s, πs (structure-based), σv, ⋈v (value-based), τ, γ
// (hybrid) — each driven through the logical-plan interpreter on the
// auction workload.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/exec/executor.h"
#include "xmlq/xquery/translate.h"

namespace xmlq::bench {
namespace {

constexpr int kScale = 50;

exec::EvalContext MakeContext() {
  exec::EvalContext context;
  context.documents[""] = AuctionDoc(kScale).view;
  context.documents["auction.xml"] = AuctionDoc(kScale).view;
  return context;
}

void RunPlan(benchmark::State& state, const algebra::LogicalExpr& plan) {
  const exec::EvalContext context = MakeContext();
  exec::Executor executor(&context);
  size_t results = 0;
  for (auto _ : state) {
    auto result = executor.Evaluate(plan);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->value.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

// σs — selection on tag names over the full element population.
void BM_SelectTag(benchmark::State& state) {
  auto plan = algebra::MakeSelectTag(
      algebra::MakeNavigate(algebra::MakeDocScan("auction.xml"),
                            algebra::Axis::kDescendant, "*", false),
      "item");
  RunPlan(state, *plan);
}
BENCHMARK(BM_SelectTag)->Name("T1/select_tag_sigma_s");

// πs — one navigation step (child axis) from a large context list.
void BM_Navigate(benchmark::State& state) {
  auto plan = algebra::MakeNavigate(
      algebra::MakeNavigate(algebra::MakeDocScan("auction.xml"),
                            algebra::Axis::kDescendant, "item", false),
      algebra::Axis::kChild, "name", false);
  RunPlan(state, *plan);
}
BENCHMARK(BM_Navigate)->Name("T1/navigate_pi_s");

// ⋈s — structural join of two tag streams.
void BM_StructuralJoin(benchmark::State& state) {
  auto plan = algebra::MakeStructuralJoin(
      algebra::MakeNavigate(algebra::MakeDocScan("auction.xml"),
                            algebra::Axis::kDescendant, "item", false),
      algebra::MakeNavigate(algebra::MakeDocScan("auction.xml"),
                            algebra::Axis::kDescendant, "text", false),
      algebra::Axis::kDescendant, /*return_ancestor=*/false);
  RunPlan(state, *plan);
}
BENCHMARK(BM_StructuralJoin)->Name("T1/structural_join_sigma_join_s");

// σv — value selection over element string-values.
void BM_SelectValue(benchmark::State& state) {
  auto plan = algebra::MakeSelectValue(
      algebra::MakeNavigate(algebra::MakeDocScan("auction.xml"),
                            algebra::Axis::kDescendant, "price", false),
      algebra::ValuePredicate{algebra::CompareOp::kGt, "200", true});
  RunPlan(state, *plan);
}
BENCHMARK(BM_SelectValue)->Name("T1/select_value_sigma_v");

// ⋈v — value join: items whose location equals some person's city.
void BM_ValueJoin(benchmark::State& state) {
  auto join = std::make_unique<algebra::LogicalExpr>(
      algebra::LogicalOp::kValueJoin);
  join->predicate.op = algebra::CompareOp::kEq;
  join->children.push_back(
      algebra::MakeNavigate(algebra::MakeDocScan("auction.xml"),
                            algebra::Axis::kDescendant, "location", false));
  join->children.push_back(
      algebra::MakeNavigate(algebra::MakeDocScan("auction.xml"),
                            algebra::Axis::kDescendant, "city", false));
  RunPlan(state, *join);
}
BENCHMARK(BM_ValueJoin)->Name("T1/value_join_sigma_join_v");

// τ — tree pattern matching (the hybrid NoK engine).
void BM_TreePattern(benchmark::State& state) {
  auto chain = xpath::CompilePath("//person[address][phone]/name",
                                  "auction.xml");
  if (!chain.ok()) {
    state.SkipWithError(chain.status().ToString().c_str());
    return;
  }
  RunPlan(state, **chain);
}
BENCHMARK(BM_TreePattern)->Name("T1/tree_pattern_tau");

// γ — construction: build a result document per person.
void BM_Construct(benchmark::State& state) {
  xquery::TranslateOptions options;
  options.default_document = "auction.xml";
  auto plan = xquery::CompileQuery(
      "<out>{for $p in //person return <p>{$p/name}</p>}</out>", options);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  RunPlan(state, **plan);
}
BENCHMARK(BM_Construct)->Name("T1/construct_gamma");

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
