// Experiment R8: morsel-driven intra-query parallelism (DESIGN.md §12).
// Scaling curves over parallelism 1/2/4/8 for the three stream engines on a
// twig-heavy XMark workload, the adversarial one-element-morsel split (the
// overhead ceiling), and the parallel deep scrub over a multi-megabyte
// store. The serial rows double as the no-regression baseline: parallelism
// 1 takes the untouched serial path, so R8/p1 must track the engine's
// pre-parallelism numbers. Note CI hosts are often 1-core: speedup there is
// ~1.0x by construction, so EXPERIMENTS.md records curves from a ≥4-core
// machine — every row carries a `hw_threads` counter so a JSON result file
// is self-describing about whether its speedups are trustworthy
// (hw_threads >= 4) or bounded by the host (hw_threads < requested lanes).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <thread>

#include "bench_util.h"
#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"

namespace xmlq::bench {
namespace {

constexpr int kScale = 300;  // XMark permille: large enough to split well

api::Database* SharedDb() {
  static api::Database* db = [] {
    auto* d = new api::Database;
    datagen::AuctionOptions options;
    options.scale = kScale / 1000.0;
    if (!d->RegisterDocument("auction.xml",
                             datagen::GenerateAuctionSite(options))
             .ok()) {
      std::abort();
    }
    return d;
  }();
  return db;
}

void RunParallel(benchmark::State& state, const char* path,
                 exec::PatternStrategy strategy, size_t morsel_elements) {
  api::Database* db = SharedDb();
  api::QueryOptions options;
  options.auto_optimize = false;
  options.strategy = strategy;
  options.parallelism = static_cast<uint32_t>(state.range(0));
  options.morsel_elements = morsel_elements;
  size_t results = 0;
  for (auto _ : state) {
    auto result = db->QueryPath(path, {}, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->value.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

// The headline twig workload: two existence predicates + output leaf.
void BM_TwigStackTwig(benchmark::State& state) {
  RunParallel(state, "//person[address][phone]/name",
              exec::PatternStrategy::kTwigStack, /*morsel_elements=*/0);
}
BENCHMARK(BM_TwigStackTwig)
    ->Name("R8/twigstack_twig")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_NokTwig(benchmark::State& state) {
  RunParallel(state, "//person[address][phone]/name",
              exec::PatternStrategy::kNok, /*morsel_elements=*/0);
}
BENCHMARK(BM_NokTwig)
    ->Name("R8/nok_twig")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Linear chain for PathStack.
void BM_PathStackChain(benchmark::State& state) {
  RunParallel(state, "/site/people/person/profile/interest",
              exec::PatternStrategy::kPathStack, /*morsel_elements=*/0);
}
BENCHMARK(BM_PathStackChain)
    ->Name("R8/pathstack_chain")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Edge-at-a-time structural joins; morsels fan out per edge.
void BM_BinaryJoinTwig(benchmark::State& state) {
  RunParallel(state, "//open_auction[bidder]/current",
              exec::PatternStrategy::kBinaryJoin, /*morsel_elements=*/0);
}
BENCHMARK(BM_BinaryJoinTwig)
    ->Name("R8/binaryjoin_twig")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The overhead ceiling: one region-stream element per morsel maximizes
// scheduling + preseed cost relative to useful work. Slowdown vs the auto
// split bounds what a pathological splitter decision can cost.
void BM_TwigStackAdversarial(benchmark::State& state) {
  RunParallel(state, "//person[address][phone]/name",
              exec::PatternStrategy::kTwigStack, /*morsel_elements=*/1);
}
BENCHMARK(BM_TwigStackAdversarial)
    ->Name("R8/twigstack_adversarial_morsel1")
    ->Arg(1)->Arg(4);

// Parallel deep scrub: whole-file chunked CRC + full structural verify of
// a multi-megabyte snapshot, the storage-side consumer of the morsel pool.
void BM_DeepScrub(benchmark::State& state) {
  const std::string dir = "bench_parallel_store";
  std::filesystem::remove_all(dir);
  api::Database db;
  {
    datagen::AuctionOptions options;
    options.scale = kScale / 1000.0;
    if (!db.RegisterDocument("auction.xml",
                             datagen::GenerateAuctionSite(options))
             .ok() ||
        !db.Attach(dir, storage::SnapshotOpenMode::kMap).ok() ||
        !db.Persist("auction.xml").ok()) {
      state.SkipWithError("store setup failed");
      std::filesystem::remove_all(dir);
      return;
    }
  }
  api::ScrubOptions scrub;
  scrub.deep = true;
  scrub.parallelism = static_cast<uint32_t>(state.range(0));
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto report = db.Scrub(scrub);
    if (!report.ok() || report->corrupt != 0) {
      state.SkipWithError("scrub failed");
      break;
    }
    bytes = report->bytes_read;
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_DeepScrub)
    ->Name("R8/deep_scrub")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
