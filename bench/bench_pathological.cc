// Experiment E5 (paper §3.2 / [4]): the pipelined navigational strategy is
// worst-case exponential in query size on `//a//a//...` chains over
// recursive documents, while set-at-a-time evaluation (the πs operator
// with duplicate elimination, or the single-scan τ matchers) stays
// polynomial. This bench reproduces Gottlob et al.'s blowup with a
// no-dedup pipelined evaluator and shows every engine in the library
// sidestepping it.

#include <benchmark/benchmark.h>

#include <functional>

#include "bench_util.h"
#include "xmlq/datagen/random_tree.h"
#include "xmlq/exec/hybrid.h"
#include "xmlq/exec/naive_nav.h"
#include "xmlq/exec/twig_stack.h"

namespace xmlq::bench {
namespace {

/// A document with heavy `a` self-nesting: a binary tree of <a> of the
/// given height (every node matches every step of //a//a//...).
const LoadedDoc& RecursiveDoc() {
  static std::unique_ptr<LoadedDoc> doc = [] {
    auto d = std::make_unique<xml::Document>();
    // Build a complete binary tree of <a> nodes, height 9 (~1023 nodes).
    std::function<void(xml::NodeId, int)> grow = [&](xml::NodeId parent,
                                                     int depth) {
      if (depth == 0) return;
      const xml::NodeId left = d->AddElement(parent, "a");
      grow(left, depth - 1);
      const xml::NodeId right = d->AddElement(parent, "a");
      grow(right, depth - 1);
    };
    const xml::NodeId root = d->AddElement(d->root(), "a");
    grow(root, 9);
    return std::make_unique<LoadedDoc>(std::move(d));
  }();
  return *doc;
}

std::string ChainQuery(int steps) {
  std::string q;
  for (int i = 0; i < steps; ++i) q += "//a";
  return q;
}

/// The exponential baseline: per-context re-evaluation with NO duplicate
/// elimination between steps (the strategy [4] analyzes). Context lists
/// grow multiplicatively with each `//` step.
size_t PipelinedNoDedup(const xml::Document& doc, int steps) {
  algebra::PatternVertex step;
  step.label = "a";
  step.incoming_axis = algebra::Axis::kDescendant;
  std::vector<xml::NodeId> contexts = {doc.root()};
  for (int i = 0; i < steps; ++i) {
    std::vector<xml::NodeId> next;
    for (const xml::NodeId ctx : contexts) {
      for (const xml::NodeId n : exec::AxisStep(doc, ctx, step)) {
        next.push_back(n);  // duplicates intentionally kept
      }
    }
    contexts = std::move(next);
  }
  return contexts.size();
}

void BM_PipelinedNoDedup(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  const LoadedDoc& doc = RecursiveDoc();
  size_t contexts = 0;
  for (auto _ : state) {
    contexts = PipelinedNoDedup(*doc.dom, steps);
    benchmark::DoNotOptimize(contexts);
  }
  state.counters["context_list_size"] = static_cast<double>(contexts);
}
BENCHMARK(BM_PipelinedNoDedup)
    ->Name("E5/pipelined_no_dedup")
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveWithDedup(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  const LoadedDoc& doc = RecursiveDoc();
  const algebra::PatternGraph pattern = Pattern(ChainQuery(steps));
  for (auto _ : state) {
    auto result = exec::NaiveMatchPattern(*doc.dom, pattern);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_NaiveWithDedup)
    ->Name("E5/navigate_with_dedup")
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_HybridNok(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  const LoadedDoc& doc = RecursiveDoc();
  const algebra::PatternGraph pattern = Pattern(ChainQuery(steps));
  for (auto _ : state) {
    auto result = exec::HybridMatch(doc.view, pattern);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_HybridNok)
    ->Name("E5/hybrid_nok")
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_TwigStackChain(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  const LoadedDoc& doc = RecursiveDoc();
  const algebra::PatternGraph pattern = Pattern(ChainQuery(steps));
  for (auto _ : state) {
    auto result = exec::TwigStackMatch(doc.view, pattern);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_TwigStackChain)
    ->Name("E5/twigstack")
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
