// Experiment R7: prepared queries and the plan cache. The claim under test:
// on repeat-heavy workloads the cache removes the per-query planning tax
// (parse + normalize + rewrite + cost-based strategy pick) from every query
// after the first — the acceptance bar is >=5x lower planning overhead on
// repeats versus compiling fresh each time. The pairs here run the same
// query streams through one Database with the cache on vs off:
//
//   R7/repeat_*      — one query shape repeated (pure hit path)
//   R7/zipf_mix      — the loadgen --repeat-mix shape: Zipf-distributed
//                      literal variants sharing one bind-slot template
//   R7/prepared      — the explicit PreparedQuery::Execute API
//   R7/cold_misses   — distinct shapes every iteration (all misses): the
//                      cache's overhead when it never pays off
//
// Execution cost is included in every number (the executor is identical on
// both sides), so the planning win shows as the delta between the *_cached
// and *_uncached rows on the same workload.

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xmlq/api/database.h"
#include "xmlq/cache/normalize.h"
#include "xmlq/cache/plan_cache.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/opt/optimizer.h"
#include "xmlq/xpath/compiler.h"

namespace xmlq::bench {
namespace {

/// One shared database per document scale (memoized like AuctionDoc): each
/// benchmark pair reconfigures the plan cache, which drops cached state, so
/// runs stay independent.
api::Database& AuctionDb(int permille) {
  static std::map<int, std::unique_ptr<api::Database>> cache;
  auto& slot = cache[permille];
  if (slot == nullptr) {
    slot = std::make_unique<api::Database>();
    datagen::AuctionOptions options;
    options.scale = permille / 1000.0;
    if (!slot->RegisterDocument("auction.xml",
                                datagen::GenerateAuctionSite(options))
             .ok()) {
      std::abort();
    }
  }
  return *slot;
}

constexpr int kScale = 20;

void ResetCache(api::Database& db) {
  db.SetPlanCache(cache::CacheConfig{});  // fresh cache, default config
}

void RunRepeated(benchmark::State& state, const char* path, bool cached) {
  api::Database& db = AuctionDb(kScale);
  ResetCache(db);
  api::QueryOptions options;
  options.use_plan_cache = cached;
  size_t results = 0;
  for (auto _ : state) {
    auto result = db.QueryPath(path, {}, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->value.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["hits"] = static_cast<double>(db.plan_cache_stats().hits);
}

// Plan acquisition in isolation, no execution and no serving-layer fixed
// costs: what a fresh plan pays (parse + compile + rewrite + cost-based
// strategy pick over the synopsis) vs what a hit pays (light normalize +
// sharded lookup + clone/bind; the cached entry already carries its
// strategy). The headline >=5x planning-overhead claim reads directly off
// this pair; the end-to-end pairs below then show how much of it survives
// once execution and admission are added back.
constexpr const char* kMicroQuery = "//book[@year = '1994']/author/last";

/// ChooseStrategy on every pattern node of a compiled plan — the part of
/// Database::PickStrategy a cache hit skips.
double StrategyCost(const opt::Synopsis& synopsis, const xml::NamePool& pool,
                    const algebra::LogicalExpr& node) {
  double cost = 0;
  if (node.pattern != nullptr) {
    cost += opt::ChooseStrategy(synopsis, pool, *node.pattern).cost;
  }
  for (const auto& child : node.children) {
    cost += StrategyCost(synopsis, pool, *child);
  }
  return cost;
}

void BM_PlanAcquireFresh(benchmark::State& state) {
  const LoadedDoc& doc = BibDoc(4);
  const opt::Synopsis synopsis(*doc.dom);
  for (auto _ : state) {
    auto plan = xpath::CompilePath(kMicroQuery, "bib.xml");
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(
        StrategyCost(synopsis, doc.dom->pool(), **plan));
  }
}
BENCHMARK(BM_PlanAcquireFresh)->Name("R7/plan_acquire_fresh");

void BM_PlanAcquireHit(benchmark::State& state) {
  // Populate a cache with the query's sentinel template, the way a miss in
  // Database::CachedExecute would.
  cache::PlanCache plan_cache;
  const cache::NormalizedQuery primed = cache::NormalizeQuery(kMicroQuery);
  auto tmpl = xpath::CompilePath(primed.compile_text, "bib.xml");
  if (!tmpl.ok()) {
    state.SkipWithError(tmpl.status().ToString().c_str());
    return;
  }
  auto entry = std::make_shared<cache::CachedPlan>();
  entry->key = primed.fingerprint;
  entry->slots = primed.slots;
  entry->parameterized = primed.parameterized;
  entry->plan = std::move(*tmpl);
  entry->bytes = cache::PlanFootprint(*entry->plan);
  plan_cache.Insert(entry);
  for (auto _ : state) {
    // Light mode, as Database::Query does: the hit path never renders the
    // sentinel text.
    const cache::NormalizedQuery normalized =
        cache::NormalizeQuery(kMicroQuery, /*render_compile_text=*/false);
    auto hit = plan_cache.Lookup(normalized.fingerprint, /*generation=*/0);
    if (hit == nullptr) {
      state.SkipWithError("unexpected miss");
      return;
    }
    auto bound = cache::BindPlan(*hit->plan, hit->slots, normalized.values);
    benchmark::DoNotOptimize(bound.get());
  }
}
BENCHMARK(BM_PlanAcquireHit)->Name("R7/plan_acquire_hit");

// The same comparison end to end through Database::QueryPath: a 4-book
// bibliography makes execution ~nothing, so the remaining gap is plan
// acquisition plus the per-query serving fixed costs both sides share.
void RunTinyDoc(benchmark::State& state, bool cached) {
  static api::Database* db = [] {
    auto* d = new api::Database;
    datagen::BibOptions options;
    options.num_books = 4;
    if (!d->RegisterDocument("bib.xml", datagen::GenerateBibliography(options))
             .ok()) {
      std::abort();
    }
    return d;
  }();
  ResetCache(*db);
  api::QueryOptions options;
  options.use_plan_cache = cached;
  for (auto _ : state) {
    auto result =
        db->QueryPath("//book[@year = '1994']/author/last", {}, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->value.size());
  }
  state.counters["hits"] = static_cast<double>(db->plan_cache_stats().hits);
}

void BM_PlanOverheadUncached(benchmark::State& state) {
  RunTinyDoc(state, /*cached=*/false);
}
BENCHMARK(BM_PlanOverheadUncached)->Name("R7/planning_uncached");

void BM_PlanOverheadCached(benchmark::State& state) {
  RunTinyDoc(state, /*cached=*/true);
}
BENCHMARK(BM_PlanOverheadCached)->Name("R7/planning_cached");

// A selective twig: execution is cheap, so planning dominates the uncached
// side and the hit path's savings are visible end to end.
void BM_RepeatTwigUncached(benchmark::State& state) {
  RunRepeated(state, "//person[@id = 'person3']/name", /*cached=*/false);
}
BENCHMARK(BM_RepeatTwigUncached)->Name("R7/repeat_twig_uncached");

void BM_RepeatTwigCached(benchmark::State& state) {
  RunRepeated(state, "//person[@id = 'person3']/name", /*cached=*/true);
}
BENCHMARK(BM_RepeatTwigCached)->Name("R7/repeat_twig_cached");

// A scan-heavy query: execution dominates, bounding the win the cache can
// show when planning is not the bottleneck (honest lower bound).
void BM_RepeatScanUncached(benchmark::State& state) {
  RunRepeated(state, "//person[address][phone]/name", /*cached=*/false);
}
BENCHMARK(BM_RepeatScanUncached)->Name("R7/repeat_scan_uncached");

void BM_RepeatScanCached(benchmark::State& state) {
  RunRepeated(state, "//person[address][phone]/name", /*cached=*/true);
}
BENCHMARK(BM_RepeatScanCached)->Name("R7/repeat_scan_cached");

// The serving-tier workload shape (xmlq_loadgen --repeat-mix): Zipf-picked
// literal variants of one query shape. Uncached, every variant re-plans;
// cached, all of them bind into a single template after the first miss.
void RunZipfMix(benchmark::State& state, bool cached) {
  api::Database& db = AuctionDb(kScale);
  ResetCache(db);
  api::QueryOptions options;
  options.use_plan_cache = cached;
  std::vector<std::string> mix;
  for (int v = 0; v < 16; ++v) {
    mix.push_back("//person[@id = 'person" + std::to_string(v) + "']/name");
  }
  std::vector<double> weights(mix.size());
  for (size_t q = 0; q < mix.size(); ++q) {
    weights[q] = 1.0 / static_cast<double>(q + 1);
  }
  std::mt19937_64 rng(42);
  std::discrete_distribution<size_t> pick(weights.begin(), weights.end());
  for (auto _ : state) {
    auto result = db.QueryPath(mix[pick(rng)], {}, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->value.size());
  }
  const cache::CacheStats stats = db.plan_cache_stats();
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}

void BM_ZipfMixUncached(benchmark::State& state) {
  RunZipfMix(state, /*cached=*/false);
}
BENCHMARK(BM_ZipfMixUncached)->Name("R7/zipf_mix_uncached");

void BM_ZipfMixCached(benchmark::State& state) {
  RunZipfMix(state, /*cached=*/true);
}
BENCHMARK(BM_ZipfMixCached)->Name("R7/zipf_mix_cached");

// The explicit prepared-statement API, re-binding a new literal each call —
// the cheapest possible repeat path (no normalization of the query text per
// execution either).
void BM_PreparedExecute(benchmark::State& state) {
  api::Database& db = AuctionDb(kScale);
  ResetCache(db);
  auto prepared = db.Prepare("//person[@id = 'person3']/name");
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  int v = 0;
  for (auto _ : state) {
    auto result = prepared->Execute({"person" + std::to_string(v++ % 16)});
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->value.size());
  }
}
BENCHMARK(BM_PreparedExecute)->Name("R7/prepared_execute");

// Worst case for the cache: no query ever repeats, every lookup misses and
// inserts. The delta against uncached runs of the same stream is the
// normalize+lookup+insert tax on workloads the cache cannot help.
void RunColdMisses(benchmark::State& state, bool cached) {
  api::Database& db = AuctionDb(kScale);
  ResetCache(db);
  api::QueryOptions options;
  options.use_plan_cache = cached;
  int v = 0;
  for (auto _ : state) {
    // Distinct *fingerprints* each iteration (the trailing tag name is
    // unique, and tag names are not lifted), so bind-slot sharing cannot
    // collapse them into one template.
    const std::string query =
        "//person[address]/name/n" + std::to_string(v++);
    auto result = db.QueryPath(query, {}, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->value.size());
  }
  state.counters["misses"] =
      static_cast<double>(db.plan_cache_stats().misses);
}

void BM_ColdUncached(benchmark::State& state) {
  RunColdMisses(state, /*cached=*/false);
}
BENCHMARK(BM_ColdUncached)->Name("R7/cold_misses_uncached");

void BM_ColdCached(benchmark::State& state) {
  RunColdMisses(state, /*cached=*/true);
}
BENCHMARK(BM_ColdCached)->Name("R7/cold_misses_cached");

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
