// Experiment R3: overhead of operator-level observability. Stats collection
// is opt-in (EvalContext::profile / OpStats* sinks); when disabled the
// executor's profiling wrapper is a single null check and the engines pay
// only dead local-counter increments. The acceptance bar is <3% slowdown on
// the bench_operators workloads with collection off versus the pre-
// instrumentation baseline; the on/off pairs here measure the same delta
// directly, plus the full cost of enabled collection for the record.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/exec/executor.h"
#include "xmlq/exec/op_stats.h"
#include "xmlq/xpath/compiler.h"

namespace xmlq::bench {
namespace {

constexpr int kScale = 50;

void RunProfiled(benchmark::State& state, const char* path,
                 exec::PatternStrategy strategy, bool collect) {
  exec::EvalContext context;
  context.documents[""] = AuctionDoc(kScale).view;
  context.documents["auction.xml"] = AuctionDoc(kScale).view;
  context.strategy = strategy;
  auto plan = xpath::CompilePath(path, "auction.xml");
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  exec::Executor executor(&context);
  size_t results = 0;
  for (auto _ : state) {
    std::unique_ptr<exec::PlanProfile> profile;
    if (collect) {
      profile = exec::PlanProfile::Create(**plan);
      context.profile = profile.get();
    }
    auto result = executor.Evaluate(**plan);
    context.profile = nullptr;
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->value.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

// The τ hot path under each engine, stats off vs on.
void BM_NokOff(benchmark::State& state) {
  RunProfiled(state, "//person[address][phone]/name",
              exec::PatternStrategy::kNok, /*collect=*/false);
}
BENCHMARK(BM_NokOff)->Name("R3/nok_twig_stats_off");

void BM_NokOn(benchmark::State& state) {
  RunProfiled(state, "//person[address][phone]/name",
              exec::PatternStrategy::kNok, /*collect=*/true);
}
BENCHMARK(BM_NokOn)->Name("R3/nok_twig_stats_on");

void BM_TwigStackOff(benchmark::State& state) {
  RunProfiled(state, "//person[address][phone]/name",
              exec::PatternStrategy::kTwigStack, /*collect=*/false);
}
BENCHMARK(BM_TwigStackOff)->Name("R3/twigstack_stats_off");

void BM_TwigStackOn(benchmark::State& state) {
  RunProfiled(state, "//person[address][phone]/name",
              exec::PatternStrategy::kTwigStack, /*collect=*/true);
}
BENCHMARK(BM_TwigStackOn)->Name("R3/twigstack_stats_on");

// A navigation-heavy path: many per-node counter sites in naive/DOM code.
void BM_NaiveOff(benchmark::State& state) {
  RunProfiled(state, "/site/people/person/profile/interest",
              exec::PatternStrategy::kNaive, /*collect=*/false);
}
BENCHMARK(BM_NaiveOff)->Name("R3/naive_path_stats_off");

void BM_NaiveOn(benchmark::State& state) {
  RunProfiled(state, "/site/people/person/profile/interest",
              exec::PatternStrategy::kNaive, /*collect=*/true);
}
BENCHMARK(BM_NaiveOn)->Name("R3/naive_path_stats_on");

// End-to-end EXPLAIN ANALYZE through the api layer (annotation + execution
// + rendering), manually timed on the steady clock.
void BM_ExplainAnalyze(benchmark::State& state) {
  static api::Database* db = [] {
    auto* d = new api::Database;
    datagen::AuctionOptions gen;
    gen.scale = kScale / 1000.0;
    if (!d->RegisterDocument("auction.xml",
                             datagen::GenerateAuctionSite(gen))
             .ok()) {
      std::abort();
    }
    return d;
  }();
  for (auto _ : state) {
    const uint64_t begin = SteadyNowNanos();
    auto text = db->ExplainAnalyze("//person[address][phone]/name");
    const uint64_t end = SteadyNowNanos();
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(static_cast<double>(end - begin) * 1e-9);
    benchmark::DoNotOptimize(text->size());
  }
}
BENCHMARK(BM_ExplainAnalyze)
    ->Name("R3/explain_analyze_end_to_end")
    ->UseManualTime();

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
