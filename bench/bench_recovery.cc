// Experiment R5: the price of crash safety. Persist pays two fsync barriers
// (snapshot file + parent dir, then the manifest append) so that a crash at
// any instruction boundary recovers to exactly the old or the new catalog;
// Attach pays a whole-file CRC-32C pass over every snapshot before serving
// it; Scrub re-reads the store at a bounded rate. These benchmarks put
// numbers on each of those, plus the pure journal-replay cost, so the
// durability tax is visible next to the R2 open-time wins it protects.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_util.h"
#include "xmlq/api/database.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/storage/manifest.h"
#include "xmlq/storage/snapshot.h"

namespace xmlq::bench {
namespace {

std::unique_ptr<xml::Document> Bib(int books, uint64_t seed) {
  datagen::BibOptions options;
  options.num_books = static_cast<size_t>(books);
  options.seed = seed;
  return datagen::GenerateBibliography(options);
}

void Die(const Status& status) {
  std::fprintf(stderr, "bench_recovery setup failed: %s\n",
               status.ToString().c_str());
  std::abort();
}

/// A store directory with `docs` persisted bibliography documents, built
/// once per size and reused by the attach/scrub benchmarks.
const std::string& SeededStore(int docs, int books) {
  static std::map<std::pair<int, int>, std::string> cache;
  auto& slot = cache[{docs, books}];
  if (slot.empty()) {
    slot = "bench_recovery_store_" + std::to_string(docs) + "_" +
           std::to_string(books);
    std::filesystem::remove_all(slot);
    api::Database db;
    auto attached = db.Attach(slot, storage::SnapshotOpenMode::kCopy);
    if (!attached.ok()) Die(attached.status());
    for (int i = 0; i < docs; ++i) {
      const std::string name = "doc" + std::to_string(i) + ".xml";
      Status status = db.RegisterDocument(name, Bib(books, 42 + i));
      if (status.ok()) status = db.Persist(name);
      if (!status.ok()) Die(status);
    }
  }
  return slot;
}

uint64_t StoreBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

/// Durable save latency: WriteFileAtomic (write + fsync file + fsync dir)
/// plus the fsync'd manifest append. Each iteration replaces the previous
/// generation, which is the steady-state path of a long-lived store.
void BM_PersistDurable(benchmark::State& state) {
  const int books = static_cast<int>(state.range(0));
  const std::string dir = "bench_recovery_persist";
  std::filesystem::remove_all(dir);
  api::Database db;
  auto attached = db.Attach(dir, storage::SnapshotOpenMode::kCopy);
  if (!attached.ok()) Die(attached.status());
  Status status = db.RegisterDocument("doc.xml", Bib(books, 42));
  if (!status.ok()) Die(status);
  uint64_t bytes = 0;
  for (auto _ : state) {
    status = db.Persist("doc.xml");
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    bytes = StoreBytes(dir);
  }
  state.counters["store_bytes"] = static_cast<double>(bytes);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PersistDurable)
    ->Name("R5/persist_durable")
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

/// Cold recovery: journal replay + whole-file CRC verification of every
/// snapshot + open. This is the startup cost a crash-safe store pays even
/// after a clean shutdown (the journal cannot be trusted to be clean).
void BM_AttachRecovery(benchmark::State& state) {
  const int docs = static_cast<int>(state.range(0));
  const std::string& dir = SeededStore(docs, /*books=*/500);
  uint64_t loaded = 0;
  for (auto _ : state) {
    api::Database db;
    auto report = db.Attach(dir, storage::SnapshotOpenMode::kMap);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    loaded = report->loaded.size();
    benchmark::DoNotOptimize(loaded);
  }
  state.counters["docs"] = static_cast<double>(loaded);
  state.counters["store_bytes"] = static_cast<double>(StoreBytes(dir));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(StoreBytes(dir)));
}
BENCHMARK(BM_AttachRecovery)
    ->Name("R5/attach_recovery")
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

/// Pure journal replay, isolated from snapshot verification: Manifest::Open
/// over a journal of register/remove churn. Shows the manifest stays cheap
/// even after long histories (replay is linear in journal bytes, and the
/// live store compacts nothing away).
void BM_ManifestReplay(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  static std::map<int, std::string> cache;
  std::string& dir = cache[records];
  if (dir.empty()) {
    dir = "bench_recovery_journal_" + std::to_string(records);
    std::filesystem::remove_all(dir);
    auto manifest = storage::Manifest::Open(dir);
    if (!manifest.ok()) Die(manifest.status());
    for (int i = 0; i < records; ++i) {
      storage::ManifestRecord record;
      record.op = (i % 8 == 7) ? storage::ManifestOp::kRemove
                               : storage::ManifestOp::kRegister;
      record.generation = manifest->NextGeneration();
      record.name = "doc" + std::to_string(i % 16) + ".xml";
      if (record.op == storage::ManifestOp::kRegister) {
        record.file = record.name + "-g" + std::to_string(record.generation) +
                      ".xqpack";
        record.snapshot_size = 1 << 20;
        record.snapshot_crc = 0xDEADBEEF;
      }
      Status status = manifest->Append(record);
      if (!status.ok()) Die(status);
    }
  }
  uint64_t applied = 0;
  for (auto _ : state) {
    auto manifest = storage::Manifest::Open(dir);
    if (!manifest.ok()) {
      state.SkipWithError(manifest.status().ToString().c_str());
      return;
    }
    applied = manifest->replay().records;
    benchmark::DoNotOptimize(manifest->entries().size());
  }
  state.counters["records"] = static_cast<double>(applied);
}
BENCHMARK(BM_ManifestReplay)
    ->Name("R5/manifest_replay")
    ->Arg(100)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Scrub pass over a healthy store. Shallow re-reads every snapshot and
/// checks the manifest's whole-file CRC (the independent authority that
/// catches corruption hiding behind recomputed in-file checksums); deep
/// additionally re-validates every section and the semantic invariants.
void ScrubBenchmark(benchmark::State& state, bool deep) {
  const int docs = static_cast<int>(state.range(0));
  const std::string& dir = SeededStore(docs, /*books=*/500);
  api::Database db;
  auto attached = db.Attach(dir, storage::SnapshotOpenMode::kCopy);
  if (!attached.ok()) Die(attached.status());
  api::ScrubOptions options;
  options.deep = deep;
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto report = db.Scrub(options);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    if (report->corrupt != 0) {
      state.SkipWithError("healthy store reported corruption");
      return;
    }
    bytes = report->bytes_read;
  }
  state.counters["scrubbed_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}

void BM_ScrubShallow(benchmark::State& state) {
  ScrubBenchmark(state, /*deep=*/false);
}
BENCHMARK(BM_ScrubShallow)
    ->Name("R5/scrub_shallow")
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_ScrubDeep(benchmark::State& state) {
  ScrubBenchmark(state, /*deep=*/true);
}
BENCHMARK(BM_ScrubDeep)
    ->Name("R5/scrub_deep")
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
