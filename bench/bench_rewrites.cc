// Experiment E6 (ablation over §3/§6's logical optimization): the same
// query executed (a) from the raw navigation-chain plan, (b) after
// navigation folding into τ, and (c) after folding + σv pushdown, plus the
// cost-based strategy choice. The reproduction target: each rewrite strictly
// helps, and folding is the enabling step for the NoK matcher.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/algebra/rewrite.h"
#include "xmlq/exec/executor.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xpath/parser.h"

namespace xmlq::bench {
namespace {

constexpr int kScale = 50;

exec::EvalContext MakeContext(exec::PatternStrategy strategy) {
  exec::EvalContext context;
  context.documents[""] = AuctionDoc(kScale).view;
  context.documents["auction.xml"] = AuctionDoc(kScale).view;
  context.strategy = strategy;
  return context;
}

/// Builds the naive logical plan for a simple path + trailing value
/// selection: DocScan -> Navigate* -> SelectValue (no rewrites applied).
algebra::LogicalExprPtr RawPlan() {
  auto ast = xpath::ParsePath("//open_auction/bidder/increase");
  auto chain = xpath::CompileToNavigationChain(*ast, "auction.xml");
  if (!chain.ok()) std::abort();
  return algebra::MakeSelectValue(
      std::move(*chain),
      algebra::ValuePredicate{algebra::CompareOp::kGt, "20", true});
}

void RunPlan(benchmark::State& state, const algebra::LogicalExpr& plan,
             exec::PatternStrategy strategy) {
  const exec::EvalContext context = MakeContext(strategy);
  exec::Executor executor(&context);
  size_t results = 0;
  for (auto _ : state) {
    auto result = executor.Evaluate(plan);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->value.size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

void BM_NoRewrites(benchmark::State& state) {
  const algebra::LogicalExprPtr plan = RawPlan();
  RunPlan(state, *plan, exec::PatternStrategy::kNok);
}
BENCHMARK(BM_NoRewrites)->Name("E6/no_rewrites_navigate_chain");

void BM_FoldOnly(benchmark::State& state) {
  algebra::LogicalExprPtr plan = RawPlan();
  algebra::FuseSelectTagIntoNavigate(&plan);
  algebra::FoldNavigationChains(&plan);
  algebra::RemoveRedundantDocOrderDedup(&plan);
  // SelectValue still applied post-hoc (not pushed into the pattern).
  RunPlan(state, *plan, exec::PatternStrategy::kNok);
}
BENCHMARK(BM_FoldOnly)->Name("E6/fold_into_pattern");

void BM_FoldAndPushdown(benchmark::State& state) {
  algebra::LogicalExprPtr plan = RawPlan();
  algebra::ApplyAllRewrites(&plan);
  RunPlan(state, *plan, exec::PatternStrategy::kNok);
}
BENCHMARK(BM_FoldAndPushdown)->Name("E6/fold_plus_pushdown");

void BM_FullyOptimizedTwig(benchmark::State& state) {
  algebra::LogicalExprPtr plan = RawPlan();
  algebra::ApplyAllRewrites(&plan);
  RunPlan(state, *plan, exec::PatternStrategy::kTwigStack);
}
BENCHMARK(BM_FullyOptimizedTwig)->Name("E6/fold_plus_pushdown_twigstack");

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
