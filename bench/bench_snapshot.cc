// Experiment R2: snapshot cold-open vs rebuilding from XML. The xqpack
// claim: opening a saved document (checksummed read + validation + pointing
// the succinct structures at the bytes) is far cheaper than parse + index
// build, and the mmap path additionally owns almost no heap. The timed body
// of the open benchmarks includes full validation — every section CRC plus
// the semantic checks — so the speedup is not bought by trusting the file.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "xmlq/storage/snapshot.h"
#include "xmlq/storage/tag_dictionary.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"

namespace xmlq::bench {
namespace {

/// Snapshot of the auction document at `permille`, written once under the
/// build tree (the benchmark working directory).
const std::string& SnapshotPath(int permille) {
  static std::map<int, std::string> cache;
  auto& slot = cache[permille];
  if (slot.empty()) {
    slot = "bench_snapshot_" + std::to_string(permille) + ".xqpack";
    const LoadedDoc& doc = AuctionDoc(permille);
    storage::TagDictionary tags(*doc.dom);
    auto info = storage::WriteSnapshot(slot, *doc.dom, *doc.succinct,
                                       *doc.regions, *doc.values, tags);
    if (!info.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   info.status().ToString().c_str());
      std::abort();
    }
  }
  return slot;
}

size_t OwnedHeapBytes(const storage::OpenedSnapshot& snapshot) {
  return snapshot.dom->MemoryUsage() + snapshot.succinct->HeapBytes() +
         snapshot.regions->HeapBytes() + snapshot.values->HeapBytes() +
         snapshot.tags->HeapBytes();
}

/// Baseline: what Database::LoadDocument does — parse the XML text and build
/// every physical view.
void BM_ParseAndBuild(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const std::string text = xml::Serialize(*AuctionDoc(permille).dom);
  size_t nodes = 0;
  for (auto _ : state) {
    auto doc = xml::ParseDocument(text);
    if (!doc.ok()) {
      state.SkipWithError(doc.status().ToString().c_str());
      return;
    }
    storage::SuccinctDocument succinct =
        storage::SuccinctDocument::Build(*doc);
    storage::RegionIndex regions(*doc);
    storage::ValueIndex values(*doc);
    storage::TagDictionary tags(*doc);
    nodes = doc->NodeCount();
    benchmark::DoNotOptimize(succinct.NodeCount());
    benchmark::DoNotOptimize(regions.elements().size());
    benchmark::DoNotOptimize(values.size());
    benchmark::DoNotOptimize(tags.DistinctElementNames());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["xml_bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_ParseAndBuild)->Name("R2/parse_and_build")->Arg(50)->Arg(200);

void OpenBenchmark(benchmark::State& state, storage::SnapshotOpenMode mode) {
  const int permille = static_cast<int>(state.range(0));
  const std::string& path = SnapshotPath(permille);
  size_t nodes = 0;
  size_t owned = 0;
  size_t file_bytes = 0;
  for (auto _ : state) {
    auto snapshot = storage::OpenSnapshot(path, mode);
    if (!snapshot.ok()) {
      state.SkipWithError(snapshot.status().ToString().c_str());
      return;
    }
    nodes = snapshot->dom->NodeCount();
    owned = OwnedHeapBytes(*snapshot);
    file_bytes = snapshot->backing->file_size();
    benchmark::DoNotOptimize(snapshot->succinct->NodeCount());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["file_bytes"] = static_cast<double>(file_bytes);
  state.counters["owned_heap_bytes"] = static_cast<double>(owned);
}

void BM_ColdOpenMap(benchmark::State& state) {
  OpenBenchmark(state, storage::SnapshotOpenMode::kMap);
}
BENCHMARK(BM_ColdOpenMap)->Name("R2/cold_open_mmap")->Arg(50)->Arg(200);

void BM_ColdOpenCopy(benchmark::State& state) {
  OpenBenchmark(state, storage::SnapshotOpenMode::kCopy);
}
BENCHMARK(BM_ColdOpenCopy)->Name("R2/cold_open_copy")->Arg(50)->Arg(200);

/// First query after open, so the end-to-end "time to first result" story
/// includes touching the mapped pages.
void BM_OpenAndFirstQuery(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const std::string& path = SnapshotPath(permille);
  for (auto _ : state) {
    auto snapshot =
        storage::OpenSnapshot(path, storage::SnapshotOpenMode::kMap);
    if (!snapshot.ok()) {
      state.SkipWithError(snapshot.status().ToString().c_str());
      return;
    }
    size_t hits = 0;
    const auto& elements = snapshot->regions->elements();
    for (const auto& region : elements) hits += region.level == 2;
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_OpenAndFirstQuery)
    ->Name("R2/open_mmap_and_scan")
    ->Arg(50)
    ->Arg(200);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
