// Experiment E2 (paper §4.2): storage footprint and build cost of the
// succinct scheme vs the DOM arena vs the interval-encoded (extended-
// relational) representation. Reported counters: bytes per node for each
// representation; the timed body is the build. The paper's claim: the
// succinct structure (parentheses + label streams) is a small fraction of
// a pointer-based tree.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"

namespace xmlq::bench {
namespace {

void BM_BuildDomParse(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const std::string text = xml::Serialize(*AuctionDoc(permille).dom);
  size_t nodes = 0;
  for (auto _ : state) {
    auto doc = xml::ParseDocument(text);
    if (!doc.ok()) {
      state.SkipWithError(doc.status().ToString().c_str());
      return;
    }
    nodes = doc->NodeCount();
    benchmark::DoNotOptimize(doc->NodeCount());
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["dom_bytes_per_node"] =
      static_cast<double>(AuctionDoc(permille).dom->MemoryUsage()) /
      static_cast<double>(nodes);
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_BuildDomParse)->Name("E2/build_dom_parse")->Arg(50)->Arg(200);

void BM_BuildSuccinct(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const LoadedDoc& doc = AuctionDoc(permille);
  for (auto _ : state) {
    storage::SuccinctDocument succinct =
        storage::SuccinctDocument::Build(*doc.dom);
    benchmark::DoNotOptimize(succinct.NodeCount());
  }
  const double nodes = static_cast<double>(doc.dom->NodeCount());
  state.counters["nodes"] = nodes;
  state.counters["succinct_structure_bytes_per_node"] =
      static_cast<double>(doc.succinct->StructureBytes()) / nodes;
  state.counters["succinct_content_bytes_per_node"] =
      static_cast<double>(doc.succinct->ContentBytes()) / nodes;
  state.counters["dom_bytes_per_node"] =
      static_cast<double>(doc.dom->MemoryUsage()) / nodes;
}
BENCHMARK(BM_BuildSuccinct)->Name("E2/build_succinct")->Arg(50)->Arg(200);

void BM_BuildRegionIndex(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const LoadedDoc& doc = AuctionDoc(permille);
  for (auto _ : state) {
    storage::RegionIndex index(*doc.dom);
    benchmark::DoNotOptimize(index.elements().size());
  }
  const double nodes = static_cast<double>(doc.dom->NodeCount());
  state.counters["region_bytes_per_node"] =
      static_cast<double>(doc.regions->MemoryUsage()) / nodes;
}
BENCHMARK(BM_BuildRegionIndex)
    ->Name("E2/build_region_index")
    ->Arg(50)
    ->Arg(200);

void BM_BuildValueIndex(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const LoadedDoc& doc = AuctionDoc(permille);
  for (auto _ : state) {
    storage::ValueIndex index(*doc.dom);
    benchmark::DoNotOptimize(index.size());
  }
  const double nodes = static_cast<double>(doc.dom->NodeCount());
  state.counters["value_index_bytes_per_node"] =
      static_cast<double>(doc.values->MemoryUsage()) / nodes;
}
BENCHMARK(BM_BuildValueIndex)->Name("E2/build_value_index")->Arg(50);

/// Footprint summary across scales (timing is irrelevant; one iteration
/// prints the counters the table needs).
void BM_FootprintSummary(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const LoadedDoc& doc = AuctionDoc(permille);
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc.dom->NodeCount());
  }
  const double nodes = static_cast<double>(doc.dom->NodeCount());
  state.counters["nodes"] = nodes;
  state.counters["dom_bytes_per_node"] =
      static_cast<double>(doc.dom->MemoryUsage()) / nodes;
  state.counters["succinct_total_bytes_per_node"] =
      static_cast<double>(doc.succinct->MemoryUsage()) / nodes;
  state.counters["succinct_structure_bytes_per_node"] =
      static_cast<double>(doc.succinct->StructureBytes()) / nodes;
  state.counters["region_bytes_per_node"] =
      static_cast<double>(doc.regions->MemoryUsage()) / nodes;
}
BENCHMARK(BM_FootprintSummary)
    ->Name("E2/footprint")
    ->Arg(10)
    ->Arg(50)
    ->Arg(200);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
