// Experiment E3 (paper §4.2: "pre-order of the tree nodes coincides with
// the streaming XML element arrival order. So the path query evaluation
// algorithm can also be used in the streaming context"): throughput of the
// single-scan NoK matcher as a function of document size, against the raw
// parse rate (the streaming lower bound) and a parse+DOM+navigate pipeline.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/exec/naive_nav.h"
#include "xmlq/exec/nok_matcher.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"
#include "xmlq/xpath/nok_partition.h"

namespace xmlq::bench {
namespace {

constexpr const char* kStreamQuery = "//item[payment = 'Cash']/location";

/// Baseline: tokenize the stream without building anything.
void BM_ParseOnly(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const std::string text = xml::Serialize(*AuctionDoc(permille).dom);
  for (auto _ : state) {
    xml::StreamParser parser(text);
    size_t events = 0;
    while (true) {
      auto ev = parser.Next();
      if (!ev.ok()) {
        state.SkipWithError(ev.status().ToString().c_str());
        return;
      }
      ++events;
      if (ev->kind == xml::ParseEvent::Kind::kEndDocument) break;
    }
    benchmark::DoNotOptimize(events);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseOnly)
    ->Name("E3/parse_only")
    ->Arg(10)
    ->Arg(50)
    ->Arg(200);

/// The streaming evaluation: the NoK scan over the pre-order structure
/// (equivalent to matching on arrival order).
void BM_NokScan(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const LoadedDoc& doc = AuctionDoc(permille);
  const algebra::PatternGraph pattern = Pattern(kStreamQuery);
  const xpath::NokPartition partition = xpath::PartitionNok(pattern);
  // The query's only non-root part carries the whole match.
  const xpath::NokPart& part = partition.parts.back();
  const algebra::VertexId requested[] = {pattern.SoleOutput()};
  size_t results = 0;
  for (auto _ : state) {
    auto result = exec::MatchNokPart(*doc.succinct, pattern, part, requested);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->bindings[0].size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["nodes"] = static_cast<double>(doc.dom->NodeCount());
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * doc.dom->NodeCount()));
}
BENCHMARK(BM_NokScan)->Name("E3/nok_scan")->Arg(10)->Arg(50)->Arg(200);

/// End-to-end streaming pipeline: parse + succinct build + NoK scan
/// (what a one-pass filter over a wire format costs in this engine).
void BM_StreamPipeline(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const std::string text = xml::Serialize(*AuctionDoc(permille).dom);
  const algebra::PatternGraph pattern = Pattern(kStreamQuery);
  const xpath::NokPartition partition = xpath::PartitionNok(pattern);
  const xpath::NokPart& part = partition.parts.back();
  const algebra::VertexId requested[] = {pattern.SoleOutput()};
  for (auto _ : state) {
    auto dom = xml::ParseDocument(text);
    if (!dom.ok()) {
      state.SkipWithError(dom.status().ToString().c_str());
      return;
    }
    storage::SuccinctDocument succinct =
        storage::SuccinctDocument::Build(*dom);
    auto result = exec::MatchNokPart(succinct, pattern, part, requested);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->bindings[0].size());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_StreamPipeline)
    ->Name("E3/parse_build_scan")
    ->Arg(10)
    ->Arg(50);

/// DOM alternative: parse + naive navigation (no succinct structures).
void BM_DomPipeline(benchmark::State& state) {
  const int permille = static_cast<int>(state.range(0));
  const std::string text = xml::Serialize(*AuctionDoc(permille).dom);
  const algebra::PatternGraph pattern = Pattern(kStreamQuery);
  for (auto _ : state) {
    auto dom = xml::ParseDocument(text);
    if (!dom.ok()) {
      state.SkipWithError(dom.status().ToString().c_str());
      return;
    }
    auto result = exec::NaiveMatchPattern(*dom, pattern);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->size());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_DomPipeline)->Name("E3/parse_dom_navigate")->Arg(10)->Arg(50);

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
