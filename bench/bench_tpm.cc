// Experiment E1 (paper §4.2 headline, deferred to [6]): tree-pattern
// matching throughput — the NoK navigational/hybrid matcher vs the
// join-based engines (TwigStack, PathStack, binary structural joins) vs
// naive DOM navigation, over eight query templates and a document-size
// sweep. The reproduction target is the *ordering* (NoK ≥ holistic joins ≥
// binary joins ≥ naive) and the widening gap with document size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xmlq/exec/hybrid.h"
#include "xmlq/exec/naive_nav.h"
#include "xmlq/exec/nok_matcher.h"
#include "xmlq/exec/path_stack.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/exec/twig_stack.h"
#include "xmlq/xpath/nok_partition.h"

namespace xmlq::bench {
namespace {

struct QueryTemplate {
  const char* name;
  const char* path;
};

// Q1-Q4: linear paths; Q5-Q8: twigs with branches / value predicates.
constexpr QueryTemplate kQueries[] = {
    {"Q1_short_child", "/site/regions/africa/item"},
    {"Q2_long_child", "/site/open_auctions/open_auction/bidder/increase"},
    {"Q3_descendant", "//item/name"},
    {"Q4_deep_descendant", "//mailbox//text"},
    {"Q5_branch", "//person[address][phone]/name"},
    {"Q6_value_pred", "//item[payment = 'Cash']/location"},
    {"Q7_attr_pred", "//person[@id = 'person7']"},
    {"Q8_mixed_twig", "//open_auction[bidder/increase > 20]/current"},
};

enum class Engine { kNok, kTwigStack, kPathStack, kBinaryJoin, kNaive };

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kNok:
      return "nok";
    case Engine::kTwigStack:
      return "twigstack";
    case Engine::kPathStack:
      return "pathstack";
    case Engine::kBinaryJoin:
      return "binaryjoin";
    case Engine::kNaive:
      return "naive";
  }
  return "?";
}

void RunEngine(benchmark::State& state, const LoadedDoc& doc,
               const algebra::PatternGraph& pattern, Engine engine) {
  size_t results = 0;
  for (auto _ : state) {
    Result<exec::NodeList> matches = [&]() -> Result<exec::NodeList> {
      switch (engine) {
        case Engine::kNok:
          return exec::HybridMatch(doc.view, pattern);
        case Engine::kTwigStack:
          return exec::TwigStackMatch(doc.view, pattern);
        case Engine::kPathStack:
          return exec::PathStackMatch(doc.view, pattern);
        case Engine::kBinaryJoin:
          return exec::BinaryJoinPlanMatch(doc.view, pattern);
        case Engine::kNaive:
          return exec::NaiveMatchPattern(*doc.dom, pattern);
      }
      return Status::Internal("bad engine");
    }();
    if (!matches.ok()) {
      state.SkipWithError(matches.status().ToString().c_str());
      return;
    }
    results = matches->size();
    benchmark::DoNotOptimize(matches->data());
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["nodes"] = static_cast<double>(doc.dom->NodeCount());
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * doc.dom->NodeCount()));
}

void BM_Tpm(benchmark::State& state, const char* path, Engine engine,
            int permille) {
  const LoadedDoc& doc = AuctionDoc(permille);
  algebra::PatternGraph pattern = Pattern(path);
  bool linear = true;
  for (algebra::VertexId v = 0; v < pattern.VertexCount(); ++v) {
    if (pattern.vertex(v).children.size() > 1) linear = false;
  }
  if (engine == Engine::kPathStack && !linear) {
    state.SkipWithError("pathstack: twig query");
    return;
  }
  RunEngine(state, doc, pattern, engine);
}

bool IsLinear(const char* path) {
  const algebra::PatternGraph pattern = Pattern(path);
  for (algebra::VertexId v = 0; v < pattern.VertexCount(); ++v) {
    if (pattern.vertex(v).children.size() > 1) return false;
  }
  return true;
}

// Ablation of the NoK matcher's scan mode (a DESIGN.md design choice): the
// localized candidate-anchored scan (jump to tag-stream candidates, scan
// only their subtrees) vs one whole-document pass with free head anchoring.
void BM_NokScanMode(benchmark::State& state, bool localized, int permille) {
  const LoadedDoc& doc = AuctionDoc(permille);
  const algebra::PatternGraph pattern =
      Pattern("//person[address][phone]/name");
  const xpath::NokPartition partition = xpath::PartitionNok(pattern);
  const xpath::NokPart& part = partition.parts.back();
  const algebra::VertexId requested[] = {pattern.SoleOutput()};
  std::vector<uint32_t> candidates;
  if (localized) {
    const auto stream = doc.regions->ElementStream(
        doc.dom->pool().Find(pattern.vertex(part.head).label));
    for (const storage::Region& r : stream) candidates.push_back(r.start);
  }
  size_t results = 0;
  for (auto _ : state) {
    auto result = exec::MatchNokPart(*doc.succinct, pattern, part, requested,
                                     localized ? &candidates : nullptr);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    results = result->bindings[0].size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

bool RegisterAll() {
  for (const int permille : {50, 200}) {
    for (const bool localized : {true, false}) {
      const std::string name =
          std::string("E1/ablation_nok_scan/") +
          (localized ? "candidate_anchored/" : "whole_document/") +
          std::to_string(permille);
      benchmark::RegisterBenchmark(
          name.c_str(), [localized, permille](benchmark::State& state) {
            BM_NokScanMode(state, localized, permille);
          });
    }
  }
  // Per-query engine comparison at scale 0.05 (~13k nodes).
  for (const QueryTemplate& q : kQueries) {
    for (const Engine engine :
         {Engine::kNok, Engine::kTwigStack, Engine::kPathStack,
          Engine::kBinaryJoin, Engine::kNaive}) {
      if (engine == Engine::kPathStack && !IsLinear(q.path)) continue;
      const std::string name =
          std::string("E1/") + q.name + "/" + EngineName(engine);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [path = q.path, engine](benchmark::State& state) {
            BM_Tpm(state, path, engine, 50);
          });
    }
  }
  // Scale sweep on a representative twig (Q5) for the crossover figure.
  for (const int permille : {10, 25, 50, 100, 200}) {
    for (const Engine engine :
         {Engine::kNok, Engine::kTwigStack, Engine::kBinaryJoin,
          Engine::kNaive}) {
      const std::string name = std::string("E1/scale_sweep_Q5/") +
                               EngineName(engine) + "/" +
                               std::to_string(permille);
      benchmark::RegisterBenchmark(
          name.c_str(), [engine, permille](benchmark::State& state) {
            BM_Tpm(state, "//person[address][phone]/name", engine, permille);
          });
    }
  }
  return true;
}

const bool registered = RegisterAll();

}  // namespace
}  // namespace xmlq::bench

XMLQ_BENCH_MAIN();
