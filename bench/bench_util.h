#ifndef XMLQ_BENCH_BENCH_UTIL_H_
#define XMLQ_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/exec/node_stream.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/document.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xpath/parser.h"

namespace xmlq::bench {

/// A document with every physical view, cached per (kind, size) so repeated
/// benchmark registrations share one build.
struct LoadedDoc {
  std::unique_ptr<xml::Document> dom;
  std::unique_ptr<storage::SuccinctDocument> succinct;
  std::unique_ptr<storage::RegionIndex> regions;
  std::unique_ptr<storage::ValueIndex> values;
  exec::IndexedDocument view;

  explicit LoadedDoc(std::unique_ptr<xml::Document> d) : dom(std::move(d)) {
    succinct = std::make_unique<storage::SuccinctDocument>(
        storage::SuccinctDocument::Build(*dom));
    regions = std::make_unique<storage::RegionIndex>(*dom);
    values = std::make_unique<storage::ValueIndex>(*dom);
    view = exec::IndexedDocument{dom.get(), succinct.get(), regions.get(),
                                 values.get()};
  }
};

/// Auction document at `permille` of XMark scale 1.0 (memoized).
inline const LoadedDoc& AuctionDoc(int permille) {
  static std::map<int, std::unique_ptr<LoadedDoc>> cache;
  auto& slot = cache[permille];
  if (slot == nullptr) {
    datagen::AuctionOptions options;
    options.scale = permille / 1000.0;
    slot = std::make_unique<LoadedDoc>(datagen::GenerateAuctionSite(options));
  }
  return *slot;
}

/// Bibliography document with `books` entries (memoized).
inline const LoadedDoc& BibDoc(int books) {
  static std::map<int, std::unique_ptr<LoadedDoc>> cache;
  auto& slot = cache[books];
  if (slot == nullptr) {
    datagen::BibOptions options;
    options.num_books = static_cast<size_t>(books);
    slot = std::make_unique<LoadedDoc>(datagen::GenerateBibliography(options));
  }
  return *slot;
}

/// Compiles an XPath string to a pattern graph (aborts on error: benchmark
/// inputs are fixed).
inline algebra::PatternGraph Pattern(std::string_view path) {
  auto ast = xpath::ParsePath(path);
  if (!ast.ok()) {
    std::fprintf(stderr, "bad bench query %.*s: %s\n",
                 static_cast<int>(path.size()), path.data(),
                 ast.status().ToString().c_str());
    std::abort();
  }
  auto graph = xpath::CompileToPattern(*ast);
  if (!graph.ok()) std::abort();
  return std::move(*graph);
}

/// The one sanctioned clock for hand-rolled timing in bench code:
/// std::chrono::steady_clock (monotonic). system_clock jumps under NTP and
/// high_resolution_clock may alias it, which makes BENCH_*.json trajectories
/// incomparable across runs — never use either here. Google Benchmark's own
/// loop timing is already monotonic; this helper is for manual-time sections
/// (state.SetIterationTime) and paired A/B measurements.
inline uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Reporter that keeps the human console table and additionally emits one
/// machine-readable JSON row per benchmark result (NDJSON), so bench output
/// can be diffed/tracked without parsing the console layout. Rows go to the
/// file named by $XMLQ_BENCH_JSON when set, to stdout otherwise (console
/// table lines never start with '{', so rows remain trivially extractable):
///
///   {"name":"T1/navigate_pi_s","iterations":5958,"real_ns":118400.2,
///    "cpu_ns":118322.9,"counters":{"results":2011}}
class JsonRowReporter : public benchmark::BenchmarkReporter {
 public:
  JsonRowReporter() {
    const char* path = std::getenv("XMLQ_BENCH_JSON");
    if (path != nullptr && *path != '\0') rows_ = std::fopen(path, "w");
  }
  ~JsonRowReporter() override {
    if (rows_ != nullptr) std::fclose(rows_);
  }

  bool ReportContext(const Context& context) override {
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    FILE* out = rows_ != nullptr ? rows_ : stdout;
    for (const Run& run : runs) EmitRow(out, run);
    std::fflush(out);
  }

  void Finalize() override { console_.Finalize(); }

 private:
  static std::string EscapeJson(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  static void EmitRow(FILE* out, const Run& run) {
    std::string row = "{\"name\":\"" + EscapeJson(run.benchmark_name()) + "\"";
    if (run.error_occurred) {
      row += ",\"error\":\"" + EscapeJson(run.error_message) + "\"}";
      std::fprintf(out, "%s\n", row.c_str());
      return;
    }
    if (run.run_type == Run::RT_Aggregate) {
      row += ",\"aggregate\":\"" + EscapeJson(run.aggregate_name) + "\"";
    }
    row += ",\"iterations\":" + std::to_string(run.iterations);
    // GetAdjusted*Time() is per-iteration, expressed in the run's time
    // unit; normalize every row to nanoseconds.
    const double to_ns = 1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"real_ns\":%.1f",
                  run.GetAdjustedRealTime() * to_ns);
    row += buf;
    std::snprintf(buf, sizeof(buf), ",\"cpu_ns\":%.1f",
                  run.GetAdjustedCPUTime() * to_ns);
    row += buf;
    if (!run.report_label.empty()) {
      row += ",\"label\":\"" + EscapeJson(run.report_label) + "\"";
    }
    if (!run.counters.empty()) {
      row += ",\"counters\":{";
      bool first = true;
      for (const auto& [name, counter] : run.counters) {
        if (!first) row += ",";
        first = false;
        std::snprintf(buf, sizeof(buf), "\"%s\":%g",
                      EscapeJson(name).c_str(),
                      static_cast<double>(counter.value));
        row += buf;
      }
      row += "}";
    }
    row += "}";
    std::fprintf(out, "%s\n", row.c_str());
  }

  benchmark::ConsoleReporter console_;
  FILE* rows_ = nullptr;
};

}  // namespace xmlq::bench

/// Drop-in replacement for BENCHMARK_MAIN() that routes results through
/// JsonRowReporter. Every bench binary in this repo uses it.
#define XMLQ_BENCH_MAIN()                                             \
  int main(int argc, char** argv) {                                   \
    benchmark::Initialize(&argc, argv);                               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    xmlq::bench::JsonRowReporter reporter;                            \
    benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    benchmark::Shutdown();                                            \
    return 0;                                                         \
  }                                                                   \
  int main(int, char**)

#endif  // XMLQ_BENCH_BENCH_UTIL_H_
