#ifndef XMLQ_BENCH_BENCH_UTIL_H_
#define XMLQ_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>

#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/exec/node_stream.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/document.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xpath/parser.h"

namespace xmlq::bench {

/// A document with every physical view, cached per (kind, size) so repeated
/// benchmark registrations share one build.
struct LoadedDoc {
  std::unique_ptr<xml::Document> dom;
  std::unique_ptr<storage::SuccinctDocument> succinct;
  std::unique_ptr<storage::RegionIndex> regions;
  std::unique_ptr<storage::ValueIndex> values;
  exec::IndexedDocument view;

  explicit LoadedDoc(std::unique_ptr<xml::Document> d) : dom(std::move(d)) {
    succinct = std::make_unique<storage::SuccinctDocument>(
        storage::SuccinctDocument::Build(*dom));
    regions = std::make_unique<storage::RegionIndex>(*dom);
    values = std::make_unique<storage::ValueIndex>(*dom);
    view = exec::IndexedDocument{dom.get(), succinct.get(), regions.get(),
                                 values.get()};
  }
};

/// Auction document at `permille` of XMark scale 1.0 (memoized).
inline const LoadedDoc& AuctionDoc(int permille) {
  static std::map<int, std::unique_ptr<LoadedDoc>> cache;
  auto& slot = cache[permille];
  if (slot == nullptr) {
    datagen::AuctionOptions options;
    options.scale = permille / 1000.0;
    slot = std::make_unique<LoadedDoc>(datagen::GenerateAuctionSite(options));
  }
  return *slot;
}

/// Bibliography document with `books` entries (memoized).
inline const LoadedDoc& BibDoc(int books) {
  static std::map<int, std::unique_ptr<LoadedDoc>> cache;
  auto& slot = cache[books];
  if (slot == nullptr) {
    datagen::BibOptions options;
    options.num_books = static_cast<size_t>(books);
    slot = std::make_unique<LoadedDoc>(datagen::GenerateBibliography(options));
  }
  return *slot;
}

/// Compiles an XPath string to a pattern graph (aborts on error: benchmark
/// inputs are fixed).
inline algebra::PatternGraph Pattern(std::string_view path) {
  auto ast = xpath::ParsePath(path);
  if (!ast.ok()) {
    std::fprintf(stderr, "bad bench query %.*s: %s\n",
                 static_cast<int>(path.size()), path.data(),
                 ast.status().ToString().c_str());
    std::abort();
  }
  auto graph = xpath::CompileToPattern(*ast);
  if (!graph.ok()) std::abort();
  return std::move(*graph);
}

}  // namespace xmlq::bench

#endif  // XMLQ_BENCH_BENCH_UTIL_H_
