file(REMOVE_RECURSE
  "CMakeFiles/bench_joinorder.dir/bench_joinorder.cc.o"
  "CMakeFiles/bench_joinorder.dir/bench_joinorder.cc.o.d"
  "bench_joinorder"
  "bench_joinorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_joinorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
