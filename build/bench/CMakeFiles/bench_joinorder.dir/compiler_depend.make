# Empty compiler generated dependencies file for bench_joinorder.
# This may be replaced when dependencies are built.
