file(REMOVE_RECURSE
  "CMakeFiles/bench_pathological.dir/bench_pathological.cc.o"
  "CMakeFiles/bench_pathological.dir/bench_pathological.cc.o.d"
  "bench_pathological"
  "bench_pathological.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathological.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
