file(REMOVE_RECURSE
  "CMakeFiles/bench_tpm.dir/bench_tpm.cc.o"
  "CMakeFiles/bench_tpm.dir/bench_tpm.cc.o.d"
  "bench_tpm"
  "bench_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
