# Empty compiler generated dependencies file for bench_tpm.
# This may be replaced when dependencies are built.
