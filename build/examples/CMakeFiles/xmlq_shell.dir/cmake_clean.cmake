file(REMOVE_RECURSE
  "CMakeFiles/xmlq_shell.dir/xmlq_shell.cpp.o"
  "CMakeFiles/xmlq_shell.dir/xmlq_shell.cpp.o.d"
  "xmlq_shell"
  "xmlq_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
