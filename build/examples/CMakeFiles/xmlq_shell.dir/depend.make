# Empty dependencies file for xmlq_shell.
# This may be replaced when dependencies are built.
