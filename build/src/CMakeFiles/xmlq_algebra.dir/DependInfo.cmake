
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlq/algebra/env.cc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/env.cc.o" "gcc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/env.cc.o.d"
  "/root/repo/src/xmlq/algebra/logical_plan.cc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/logical_plan.cc.o" "gcc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/logical_plan.cc.o.d"
  "/root/repo/src/xmlq/algebra/pattern_graph.cc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/pattern_graph.cc.o" "gcc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/pattern_graph.cc.o.d"
  "/root/repo/src/xmlq/algebra/rewrite.cc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/rewrite.cc.o" "gcc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/rewrite.cc.o.d"
  "/root/repo/src/xmlq/algebra/schema_tree.cc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/schema_tree.cc.o" "gcc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/schema_tree.cc.o.d"
  "/root/repo/src/xmlq/algebra/value.cc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/value.cc.o" "gcc" "src/CMakeFiles/xmlq_algebra.dir/xmlq/algebra/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xmlq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
