file(REMOVE_RECURSE
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/env.cc.o"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/env.cc.o.d"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/logical_plan.cc.o"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/logical_plan.cc.o.d"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/pattern_graph.cc.o"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/pattern_graph.cc.o.d"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/rewrite.cc.o"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/rewrite.cc.o.d"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/schema_tree.cc.o"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/schema_tree.cc.o.d"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/value.cc.o"
  "CMakeFiles/xmlq_algebra.dir/xmlq/algebra/value.cc.o.d"
  "libxmlq_algebra.a"
  "libxmlq_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
