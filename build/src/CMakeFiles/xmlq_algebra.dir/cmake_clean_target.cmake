file(REMOVE_RECURSE
  "libxmlq_algebra.a"
)
