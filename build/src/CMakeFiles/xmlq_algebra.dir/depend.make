# Empty dependencies file for xmlq_algebra.
# This may be replaced when dependencies are built.
