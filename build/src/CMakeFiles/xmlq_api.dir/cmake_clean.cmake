file(REMOVE_RECURSE
  "CMakeFiles/xmlq_api.dir/xmlq/api/database.cc.o"
  "CMakeFiles/xmlq_api.dir/xmlq/api/database.cc.o.d"
  "libxmlq_api.a"
  "libxmlq_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
