file(REMOVE_RECURSE
  "libxmlq_api.a"
)
