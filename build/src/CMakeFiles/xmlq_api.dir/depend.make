# Empty dependencies file for xmlq_api.
# This may be replaced when dependencies are built.
