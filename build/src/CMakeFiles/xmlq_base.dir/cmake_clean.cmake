file(REMOVE_RECURSE
  "CMakeFiles/xmlq_base.dir/xmlq/base/status.cc.o"
  "CMakeFiles/xmlq_base.dir/xmlq/base/status.cc.o.d"
  "CMakeFiles/xmlq_base.dir/xmlq/base/strings.cc.o"
  "CMakeFiles/xmlq_base.dir/xmlq/base/strings.cc.o.d"
  "libxmlq_base.a"
  "libxmlq_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
