file(REMOVE_RECURSE
  "libxmlq_base.a"
)
