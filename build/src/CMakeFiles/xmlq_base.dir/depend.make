# Empty dependencies file for xmlq_base.
# This may be replaced when dependencies are built.
