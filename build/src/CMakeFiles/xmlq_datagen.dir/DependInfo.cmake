
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlq/datagen/auction_gen.cc" "src/CMakeFiles/xmlq_datagen.dir/xmlq/datagen/auction_gen.cc.o" "gcc" "src/CMakeFiles/xmlq_datagen.dir/xmlq/datagen/auction_gen.cc.o.d"
  "/root/repo/src/xmlq/datagen/bib_gen.cc" "src/CMakeFiles/xmlq_datagen.dir/xmlq/datagen/bib_gen.cc.o" "gcc" "src/CMakeFiles/xmlq_datagen.dir/xmlq/datagen/bib_gen.cc.o.d"
  "/root/repo/src/xmlq/datagen/random_tree.cc" "src/CMakeFiles/xmlq_datagen.dir/xmlq/datagen/random_tree.cc.o" "gcc" "src/CMakeFiles/xmlq_datagen.dir/xmlq/datagen/random_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xmlq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
