file(REMOVE_RECURSE
  "CMakeFiles/xmlq_datagen.dir/xmlq/datagen/auction_gen.cc.o"
  "CMakeFiles/xmlq_datagen.dir/xmlq/datagen/auction_gen.cc.o.d"
  "CMakeFiles/xmlq_datagen.dir/xmlq/datagen/bib_gen.cc.o"
  "CMakeFiles/xmlq_datagen.dir/xmlq/datagen/bib_gen.cc.o.d"
  "CMakeFiles/xmlq_datagen.dir/xmlq/datagen/random_tree.cc.o"
  "CMakeFiles/xmlq_datagen.dir/xmlq/datagen/random_tree.cc.o.d"
  "libxmlq_datagen.a"
  "libxmlq_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
