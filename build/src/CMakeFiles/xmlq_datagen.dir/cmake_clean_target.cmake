file(REMOVE_RECURSE
  "libxmlq_datagen.a"
)
