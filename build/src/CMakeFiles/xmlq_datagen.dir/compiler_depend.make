# Empty compiler generated dependencies file for xmlq_datagen.
# This may be replaced when dependencies are built.
