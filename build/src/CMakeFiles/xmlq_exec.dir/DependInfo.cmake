
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlq/exec/construct.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/construct.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/construct.cc.o.d"
  "/root/repo/src/xmlq/exec/env_eval.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/env_eval.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/env_eval.cc.o.d"
  "/root/repo/src/xmlq/exec/executor.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/executor.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/executor.cc.o.d"
  "/root/repo/src/xmlq/exec/expr_eval.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/expr_eval.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/expr_eval.cc.o.d"
  "/root/repo/src/xmlq/exec/hybrid.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/hybrid.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/hybrid.cc.o.d"
  "/root/repo/src/xmlq/exec/naive_nav.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/naive_nav.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/naive_nav.cc.o.d"
  "/root/repo/src/xmlq/exec/node_stream.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/node_stream.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/node_stream.cc.o.d"
  "/root/repo/src/xmlq/exec/nok_matcher.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/nok_matcher.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/nok_matcher.cc.o.d"
  "/root/repo/src/xmlq/exec/path_stack.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/path_stack.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/path_stack.cc.o.d"
  "/root/repo/src/xmlq/exec/structural_join.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/structural_join.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/structural_join.cc.o.d"
  "/root/repo/src/xmlq/exec/twig_stack.cc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/twig_stack.cc.o" "gcc" "src/CMakeFiles/xmlq_exec.dir/xmlq/exec/twig_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xmlq_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
