file(REMOVE_RECURSE
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/construct.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/construct.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/env_eval.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/env_eval.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/executor.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/executor.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/expr_eval.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/expr_eval.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/hybrid.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/hybrid.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/naive_nav.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/naive_nav.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/node_stream.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/node_stream.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/nok_matcher.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/nok_matcher.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/path_stack.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/path_stack.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/structural_join.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/structural_join.cc.o.d"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/twig_stack.cc.o"
  "CMakeFiles/xmlq_exec.dir/xmlq/exec/twig_stack.cc.o.d"
  "libxmlq_exec.a"
  "libxmlq_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
