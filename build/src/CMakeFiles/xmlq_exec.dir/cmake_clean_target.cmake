file(REMOVE_RECURSE
  "libxmlq_exec.a"
)
