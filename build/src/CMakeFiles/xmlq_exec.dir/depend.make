# Empty dependencies file for xmlq_exec.
# This may be replaced when dependencies are built.
