file(REMOVE_RECURSE
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/cardinality.cc.o"
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/cardinality.cc.o.d"
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/cost_model.cc.o"
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/cost_model.cc.o.d"
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/optimizer.cc.o"
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/optimizer.cc.o.d"
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/synopsis.cc.o"
  "CMakeFiles/xmlq_opt.dir/xmlq/opt/synopsis.cc.o.d"
  "libxmlq_opt.a"
  "libxmlq_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
