file(REMOVE_RECURSE
  "libxmlq_opt.a"
)
