# Empty compiler generated dependencies file for xmlq_opt.
# This may be replaced when dependencies are built.
