
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlq/storage/bitvector.cc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/bitvector.cc.o" "gcc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/bitvector.cc.o.d"
  "/root/repo/src/xmlq/storage/bp.cc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/bp.cc.o" "gcc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/bp.cc.o.d"
  "/root/repo/src/xmlq/storage/content_store.cc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/content_store.cc.o" "gcc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/content_store.cc.o.d"
  "/root/repo/src/xmlq/storage/region_index.cc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/region_index.cc.o" "gcc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/region_index.cc.o.d"
  "/root/repo/src/xmlq/storage/succinct_doc.cc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/succinct_doc.cc.o" "gcc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/succinct_doc.cc.o.d"
  "/root/repo/src/xmlq/storage/tag_dictionary.cc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/tag_dictionary.cc.o" "gcc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/tag_dictionary.cc.o.d"
  "/root/repo/src/xmlq/storage/value_index.cc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/value_index.cc.o" "gcc" "src/CMakeFiles/xmlq_storage.dir/xmlq/storage/value_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xmlq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
