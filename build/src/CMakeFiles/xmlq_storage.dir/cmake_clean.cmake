file(REMOVE_RECURSE
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/bitvector.cc.o"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/bitvector.cc.o.d"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/bp.cc.o"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/bp.cc.o.d"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/content_store.cc.o"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/content_store.cc.o.d"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/region_index.cc.o"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/region_index.cc.o.d"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/succinct_doc.cc.o"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/succinct_doc.cc.o.d"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/tag_dictionary.cc.o"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/tag_dictionary.cc.o.d"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/value_index.cc.o"
  "CMakeFiles/xmlq_storage.dir/xmlq/storage/value_index.cc.o.d"
  "libxmlq_storage.a"
  "libxmlq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
