file(REMOVE_RECURSE
  "libxmlq_storage.a"
)
