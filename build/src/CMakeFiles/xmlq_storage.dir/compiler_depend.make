# Empty compiler generated dependencies file for xmlq_storage.
# This may be replaced when dependencies are built.
