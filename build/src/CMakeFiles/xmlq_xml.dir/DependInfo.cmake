
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlq/xml/document.cc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/document.cc.o" "gcc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/document.cc.o.d"
  "/root/repo/src/xmlq/xml/name_pool.cc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/name_pool.cc.o" "gcc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/name_pool.cc.o.d"
  "/root/repo/src/xmlq/xml/parser.cc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/parser.cc.o" "gcc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/parser.cc.o.d"
  "/root/repo/src/xmlq/xml/serializer.cc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xmlq_xml.dir/xmlq/xml/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xmlq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
