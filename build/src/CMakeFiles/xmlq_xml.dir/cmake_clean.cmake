file(REMOVE_RECURSE
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/document.cc.o"
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/document.cc.o.d"
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/name_pool.cc.o"
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/name_pool.cc.o.d"
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/parser.cc.o"
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/parser.cc.o.d"
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/serializer.cc.o"
  "CMakeFiles/xmlq_xml.dir/xmlq/xml/serializer.cc.o.d"
  "libxmlq_xml.a"
  "libxmlq_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
