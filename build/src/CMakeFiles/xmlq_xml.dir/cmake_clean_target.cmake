file(REMOVE_RECURSE
  "libxmlq_xml.a"
)
