# Empty compiler generated dependencies file for xmlq_xml.
# This may be replaced when dependencies are built.
