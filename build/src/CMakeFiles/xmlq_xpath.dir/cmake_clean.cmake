file(REMOVE_RECURSE
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/compiler.cc.o"
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/compiler.cc.o.d"
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/lexer.cc.o"
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/lexer.cc.o.d"
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/nok_partition.cc.o"
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/nok_partition.cc.o.d"
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/parser.cc.o"
  "CMakeFiles/xmlq_xpath.dir/xmlq/xpath/parser.cc.o.d"
  "libxmlq_xpath.a"
  "libxmlq_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
