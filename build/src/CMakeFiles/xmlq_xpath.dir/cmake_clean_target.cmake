file(REMOVE_RECURSE
  "libxmlq_xpath.a"
)
