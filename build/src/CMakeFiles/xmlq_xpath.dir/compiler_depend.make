# Empty compiler generated dependencies file for xmlq_xpath.
# This may be replaced when dependencies are built.
