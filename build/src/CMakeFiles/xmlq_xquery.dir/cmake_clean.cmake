file(REMOVE_RECURSE
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/lexer.cc.o"
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/lexer.cc.o.d"
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/parser.cc.o"
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/parser.cc.o.d"
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/schema_extract.cc.o"
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/schema_extract.cc.o.d"
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/translate.cc.o"
  "CMakeFiles/xmlq_xquery.dir/xmlq/xquery/translate.cc.o.d"
  "libxmlq_xquery.a"
  "libxmlq_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlq_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
