file(REMOVE_RECURSE
  "libxmlq_xquery.a"
)
