# Empty dependencies file for xmlq_xquery.
# This may be replaced when dependencies are built.
