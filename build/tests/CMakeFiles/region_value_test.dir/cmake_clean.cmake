file(REMOVE_RECURSE
  "CMakeFiles/region_value_test.dir/region_value_test.cc.o"
  "CMakeFiles/region_value_test.dir/region_value_test.cc.o.d"
  "region_value_test"
  "region_value_test.pdb"
  "region_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
