# Empty compiler generated dependencies file for region_value_test.
# This may be replaced when dependencies are built.
