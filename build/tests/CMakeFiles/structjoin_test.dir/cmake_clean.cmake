file(REMOVE_RECURSE
  "CMakeFiles/structjoin_test.dir/structjoin_test.cc.o"
  "CMakeFiles/structjoin_test.dir/structjoin_test.cc.o.d"
  "structjoin_test"
  "structjoin_test.pdb"
  "structjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
