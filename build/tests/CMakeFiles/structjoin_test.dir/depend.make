# Empty dependencies file for structjoin_test.
# This may be replaced when dependencies are built.
