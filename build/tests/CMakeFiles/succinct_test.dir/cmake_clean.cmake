file(REMOVE_RECURSE
  "CMakeFiles/succinct_test.dir/succinct_test.cc.o"
  "CMakeFiles/succinct_test.dir/succinct_test.cc.o.d"
  "succinct_test"
  "succinct_test.pdb"
  "succinct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
