# Empty dependencies file for succinct_test.
# This may be replaced when dependencies are built.
