
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xquery_test.cc" "tests/CMakeFiles/xquery_test.dir/xquery_test.cc.o" "gcc" "tests/CMakeFiles/xquery_test.dir/xquery_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xmlq_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xmlq_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
