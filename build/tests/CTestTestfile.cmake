# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/bitvector_test[1]_include.cmake")
include("/root/repo/build/tests/bp_test[1]_include.cmake")
include("/root/repo/build/tests/succinct_test[1]_include.cmake")
include("/root/repo/build/tests/region_value_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/structjoin_test[1]_include.cmake")
include("/root/repo/build/tests/matchers_test[1]_include.cmake")
include("/root/repo/build/tests/xquery_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
