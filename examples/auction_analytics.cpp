// Analytics over the XMark-style auction workload: a small query suite run
// under every physical strategy with wall-clock timing, demonstrating the
// cost-based strategy choice on top of the shared logical algebra.
//
//   ./build/examples/auction_analytics [scale_permille]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"

namespace {

using Clock = std::chrono::steady_clock;

double MeasureMs(const std::function<void()>& fn, int repeats = 5) {
  double best = 1e100;
  for (int i = 0; i < repeats; ++i) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> elapsed =
        Clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int permille = argc > 1 ? std::atoi(argv[1]) : 100;

  xmlq::api::Database db;
  xmlq::datagen::AuctionOptions options;
  options.scale = permille / 1000.0;
  if (!db.RegisterDocument("auction.xml",
                           xmlq::datagen::GenerateAuctionSite(options))
           .ok()) {
    return 1;
  }
  auto storage = db.Report("auction.xml");
  std::printf("auction.xml @ scale %.3f: %zu nodes\n", options.scale,
              storage.ok() ? storage->node_count : 0);

  const char* paths[] = {
      "/site/regions/africa/item",
      "//person[address][phone]/name",
      "//open_auction[bidder/increase > 20]/current",
      "//item[payment = 'Cash']/location",
  };
  const xmlq::exec::PatternStrategy strategies[] = {
      xmlq::exec::PatternStrategy::kNok,
      xmlq::exec::PatternStrategy::kTwigStack,
      xmlq::exec::PatternStrategy::kBinaryJoin,
      xmlq::exec::PatternStrategy::kNaive,
  };

  for (const char* path : paths) {
    std::printf("\nquery: %s\n", path);
    size_t results = 0;
    for (const auto strategy : strategies) {
      xmlq::api::QueryOptions qopt;
      qopt.auto_optimize = false;
      qopt.strategy = strategy;
      bool failed = false;
      const double ms = MeasureMs([&] {
        auto r = db.QueryPath(path, {}, qopt);
        if (!r.ok()) {
          failed = true;
          return;
        }
        results = r->value.size();
      });
      if (failed) {
        std::printf("  %-11s unsupported\n",
                    std::string(PatternStrategyName(strategy)).c_str());
      } else {
        std::printf("  %-11s %8.3f ms  (%zu results)\n",
                    std::string(PatternStrategyName(strategy)).c_str(), ms,
                    results);
      }
    }
    // What does the cost model pick?
    auto plan = db.Explain(path);
    if (plan.ok()) {
      const size_t at = plan->find("selected ");
      if (at != std::string::npos) {
        const size_t end = plan->find(' ', at + 9);
        std::printf("  optimizer picks: %s\n",
                    plan->substr(at + 9, end - at - 9).c_str());
      }
    }
  }

  // A couple of full XQuery analytics.
  std::printf("\n== XQuery analytics ==\n");
  for (const char* query : {
           "avg(doc(\"auction.xml\")//closed_auction/price)",
           "count(for $p in doc(\"auction.xml\")//person "
           "where $p/profile/education = 'Graduate School' return $p)",
           "max(for $a in doc(\"auction.xml\")//open_auction "
           "return count($a/bidder))",
       }) {
    auto result = db.Query(query);
    std::printf("%s\n  = %s\n", query,
                result.ok() ? xmlq::api::Database::ToXml(*result).c_str()
                            : result.status().ToString().c_str());
  }
  return 0;
}
