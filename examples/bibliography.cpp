// The paper's running example (Fig. 1): the bibliography FLWOR query, its
// extracted SchemaTree (the output template with ϕ iteration arcs), the
// translated logical algebra plan, and the Env (Definition 3) evaluation.
//
//   ./build/examples/bibliography [num_books]

#include <cstdio>
#include <cstdlib>

#include "xmlq/api/database.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/xquery/parser.h"
#include "xmlq/xquery/schema_extract.h"

namespace {

constexpr const char* kFigure1Query = R"(
<results>{
  for $b in doc("bib.xml")/bib/book
  let $t := $b/title
  let $a := $b/author
  return <result>{$t}{$a}</result>
}</results>
)";

}  // namespace

int main(int argc, char** argv) {
  const size_t num_books = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  xmlq::api::Database db;
  xmlq::datagen::BibOptions options;
  options.num_books = num_books;
  if (!db.RegisterDocument("bib.xml",
                           xmlq::datagen::GenerateBibliography(options))
           .ok()) {
    return 1;
  }

  // 1. The output SchemaTree extracted from the query (paper Fig. 1b).
  auto ast = xmlq::xquery::ParseQuery(kFigure1Query);
  if (!ast.ok()) {
    std::fprintf(stderr, "%s\n", ast.status().ToString().c_str());
    return 1;
  }
  auto schema = xmlq::xquery::ExtractSchemaTree(**ast);
  if (!schema.ok()) return 1;
  std::printf("== extracted SchemaTree (Fig. 1b) ==\n%s\n",
              schema->tree.ToString().c_str());
  std::printf("slot expressions:\n");
  for (size_t i = 0; i < schema->slot_descriptions.size(); ++i) {
    std::printf("  e%zu = %s\n", i, schema->slot_descriptions[i].c_str());
  }

  // 2. The logical algebra plan after rewrites.
  auto plan = db.Explain(kFigure1Query);
  if (plan.ok()) {
    std::printf("\n== logical plan ==\n%s\n", plan->c_str());
  }

  // 3. Execute (Env-mode FLWOR evaluation + γ construction).
  auto result = db.Query(kFigure1Query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("== result (%zu books) ==\n%s\n", num_books,
              xmlq::api::Database::ToXml(*result, /*indent=*/true).c_str());
  return 0;
}
