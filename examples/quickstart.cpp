// Quickstart: load an XML document, run XPath and XQuery, inspect plans.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "xmlq/api/database.h"

namespace {

constexpr std::string_view kBib = R"(
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
</bib>
)";

void Check(const xmlq::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  xmlq::api::Database db;
  Check(db.LoadDocument("bib.xml", kBib));

  // -- XPath -----------------------------------------------------------
  auto titles = db.QueryPath("//book[price < 50]/title");
  Check(titles.status().ok() ? xmlq::Status::Ok() : titles.status());
  std::printf("== cheap books ==\n%s\n\n",
              xmlq::api::Database::ToXml(*titles).c_str());

  // -- XQuery (FLWOR + construction) ------------------------------------
  auto report = db.Query(R"(
    <report>{
      for $b in doc("bib.xml")/bib/book
      let $t := $b/title
      where $b/price > 50
      return <expensive year="{$b/@year}">{$t}</expensive>
    }</report>
  )");
  Check(report.status().ok() ? xmlq::Status::Ok() : report.status());
  std::printf("== report ==\n%s\n\n",
              xmlq::api::Database::ToXml(*report, /*indent=*/true).c_str());

  // -- Plans: logical algebra + physical strategy choice ----------------
  auto plan = db.Explain("//book[author/last = 'Stevens']/title");
  Check(plan.status().ok() ? xmlq::Status::Ok() : plan.status());
  std::printf("== plan ==\n%s\n", plan->c_str());

  // -- Storage footprint -------------------------------------------------
  auto storage = db.Report("bib.xml");
  Check(storage.status().ok() ? xmlq::Status::Ok() : storage.status());
  std::printf("== storage ==\nnodes: %zu\ndom: %zu B\nsuccinct: %zu B "
              "(structure %zu B + content %zu B)\n",
              storage->node_count, storage->dom_bytes,
              storage->succinct_structure_bytes +
                  storage->succinct_content_bytes,
              storage->succinct_structure_bytes,
              storage->succinct_content_bytes);
  return 0;
}
