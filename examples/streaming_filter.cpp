// Streaming evaluation (paper §4.2): "pre-order of the tree nodes coincides
// with the streaming XML element arrival order", so NoK patterns evaluate
// in one forward pass. This example filters an XML stream event-by-event —
// no DOM is ever materialized — selecting `item` elements with a Cash
// payment and printing their locations, then cross-checks the result
// against the indexed engine.
//
//   ./build/examples/streaming_filter [scale_permille]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"

namespace {

/// A hand-rolled single-pass matcher for the NoK pattern
/// item[payment = "Cash"]/location over parser events — the shape of a
/// production streaming filter built on this library's event layer.
class CashItemFilter {
 public:
  /// Feeds one event; collects matching locations.
  void OnStart(std::string_view name) {
    stack_.push_back(State{});
    State& state = stack_.back();
    state.is_item = name == "item";
    const size_t depth = stack_.size();
    if (depth >= 2) {
      State& parent = stack_[depth - 2];
      if (parent.is_item && name == "payment") state.capture_payment = true;
      if (parent.is_item && name == "location") state.capture_location = true;
    }
    text_.clear();
  }

  void OnText(std::string_view text) { text_.append(text); }

  void OnEnd() {
    State state = stack_.back();
    stack_.pop_back();
    if (state.capture_payment && !stack_.empty()) {
      stack_.back().payment_cash = text_ == "Cash";
    }
    if (state.capture_location && !stack_.empty()) {
      stack_.back().location = text_;
      stack_.back().has_location = true;
    }
    if (state.is_item && state.payment_cash && state.has_location) {
      matches_.push_back(state.location);
    }
    text_.clear();
  }

  const std::vector<std::string>& matches() const { return matches_; }

 private:
  struct State {
    bool is_item = false;
    bool capture_payment = false;
    bool capture_location = false;
    bool payment_cash = false;
    bool has_location = false;
    std::string location;
  };
  std::vector<State> stack_;
  std::string text_;
  std::vector<std::string> matches_;
};

}  // namespace

int main(int argc, char** argv) {
  const int permille = argc > 1 ? std::atoi(argv[1]) : 50;
  xmlq::datagen::AuctionOptions options;
  options.scale = permille / 1000.0;
  auto doc = xmlq::datagen::GenerateAuctionSite(options);
  const std::string stream = xmlq::xml::Serialize(*doc);
  std::printf("stream: %zu bytes\n", stream.size());

  // One forward pass over the byte stream.
  xmlq::xml::StreamParser parser(stream);
  CashItemFilter filter;
  size_t events = 0;
  while (true) {
    auto ev = parser.Next();
    if (!ev.ok()) {
      std::fprintf(stderr, "%s\n", ev.status().ToString().c_str());
      return 1;
    }
    ++events;
    using K = xmlq::xml::ParseEvent::Kind;
    if (ev->kind == K::kStartElement) {
      filter.OnStart(ev->name);
    } else if (ev->kind == K::kText) {
      filter.OnText(ev->text);
    } else if (ev->kind == K::kEndElement) {
      filter.OnEnd();
    } else if (ev->kind == K::kEndDocument) {
      break;
    }
  }
  std::printf("processed %zu events; %zu cash items\n", events,
              filter.matches().size());
  for (size_t i = 0; i < std::min<size_t>(5, filter.matches().size()); ++i) {
    std::printf("  location: %s\n", filter.matches()[i].c_str());
  }

  // Cross-check against the indexed engine.
  xmlq::api::Database db;
  if (!db.RegisterDocument("auction.xml", std::move(doc)).ok()) return 1;
  auto indexed = db.QueryPath("//item[payment = 'Cash']/location");
  if (!indexed.ok()) return 1;
  std::printf("indexed engine agrees: %s (%zu results)\n",
              indexed->value.size() == filter.matches().size() ? "yes" : "NO",
              indexed->value.size());
  return indexed->value.size() == filter.matches().size() ? 0 : 1;
}
