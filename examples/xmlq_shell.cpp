// Interactive shell: load or generate documents, run XPath/XQuery, inspect
// plans and storage — the adoption surface for trying the engine out.
//
//   ./build/examples/xmlq_shell
//   xmlq> .gen auction 50
//   xmlq> //person[address][phone]/name
//   xmlq> .explain //item[payment = 'Cash']/location
//   xmlq> .strategy twigstack
//   xmlq> for $p in //person return $p/name

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"
#include "xmlq/repl/replication.h"

namespace {

/// One `.bg` query running on its own thread. The shell polls `done` from
/// `.jobs`; the query id (for `.cancel`) is published by the database as
/// soon as it is assigned, before admission.
struct BackgroundJob {
  std::string query;
  std::thread thread;
  std::atomic<uint64_t> query_id{0};
  std::atomic<bool> done{false};
  std::string outcome;  // valid once done
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  .load <name> <file>     parse an XML file and register it\n"
      "  .gen auction <permille> generate an XMark-style document\n"
      "  .gen bib <books>        generate a bibliography document\n"
      "  .docs                   list loaded documents (* = default)\n"
      "  .explain <query>        show the logical plan + strategy choice\n"
      "  .explain analyze <query> run the query and show the profiled plan\n"
      "                          (est vs actual rows, counters, wall time)\n"
      "  .strategy <s>           force nok|twigstack|pathstack|binaryjoin|\n"
      "                          naive, or 'auto' for the cost model\n"
      "  .limits steps <n> | deadline <ms> | memory <bytes> | off\n"
      "                          bound every following query\n"
      "  .set parallelism <n>    intra-query worker lanes for every\n"
      "                          following query (and .scrub): 1 = serial,\n"
      "                          0 = all hardware threads\n"
      "  .set morsel <n>         target region-stream elements per morsel\n"
      "                          (0 = auto; 1 = adversarial one-node morsels)\n"
      "  .report [name]          storage footprint of a document\n"
      "  .save <name> <file>     write a document as an xqpack snapshot\n"
      "  .open <name> <file> [mmap|copy]\n"
      "                          open an xqpack snapshot (default mmap)\n"
      "  .attach <dir> [mmap|copy]\n"
      "                          attach a durable store: recover the\n"
      "                          manifest journal + verified snapshots\n"
      "  .persist [name]         durably save a document into the store\n"
      "  .remove <name>          remove a document (and its snapshot)\n"
      "  .scrub [deep]           verify every stored snapshot now;\n"
      "                          corrupt ones are quarantined\n"
      "  .scrubber <interval_ms> [deep] | .scrubber off\n"
      "                          run the integrity scrubber periodically\n"
      "  .serve <max_concurrent> [max_queue] [deadline_ms]\n"
      "                          bound concurrent queries; excess queries\n"
      "                          queue and are shed after the deadline\n"
      "  .bg <query>             run a query on a background thread\n"
      "  .jobs                   list background queries and their state\n"
      "  .cancel <id>            cooperatively cancel a running query\n"
      "  .stats admission        admission counters + circuit-breaker state\n"
      "  .stats cache            plan-cache counters (hits/misses/replans)\n"
      "  .follow <host> <port> <dir>\n"
      "                          become a read-only follower: replicate the\n"
      "                          primary at host:port into store dir and\n"
      "                          serve from it (stale reads keep working\n"
      "                          when the primary dies)\n"
      "  .follow off             stop replicating (keeps serving, stays\n"
      "                          read-only)\n"
      "  .promote                coordinated failover: stop replicating,\n"
      "                          bump+persist the fencing epoch and lift\n"
      "                          follower mode — this shell becomes the\n"
      "                          writable primary\n"
      "  .stats repl             replication stream health and counters\n"
      "  .help / .quit\n"
      "anything else is evaluated as XQuery (or XPath for '/...').\n");
}

}  // namespace

int main() {
  xmlq::api::Database db;
  std::vector<std::string> doc_names;
  std::vector<std::unique_ptr<BackgroundJob>> jobs;
  std::unique_ptr<xmlq::repl::ReplicationClient> repl;
  xmlq::api::QueryOptions options;
  std::printf("xmlq shell — .help for commands\n");

  std::string line;
  while (std::printf("xmlq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word.empty()) continue;

    if (word == ".quit" || word == ".exit") break;
    if (word == ".help") {
      PrintHelp();
      continue;
    }
    if (word == ".load") {
      std::string name, file;
      in >> name >> file;
      std::ifstream stream(file);
      if (!stream) {
        std::printf("cannot open %s\n", file.c_str());
        continue;
      }
      std::stringstream buffer;
      buffer << stream.rdbuf();
      const xmlq::Status status = db.LoadDocument(name, buffer.str());
      if (status.ok()) {
        doc_names.push_back(name);
        std::printf("loaded %s\n", name.c_str());
      } else {
        std::printf("%s\n", status.ToString().c_str());
      }
      continue;
    }
    if (word == ".gen") {
      std::string kind;
      int size = 0;
      in >> kind >> size;
      xmlq::Status status = xmlq::Status::InvalidArgument("unknown kind");
      std::string name;
      if (kind == "auction") {
        xmlq::datagen::AuctionOptions gen;
        gen.scale = (size > 0 ? size : 50) / 1000.0;
        name = "auction.xml";
        status = db.RegisterDocument(name,
                                     xmlq::datagen::GenerateAuctionSite(gen));
      } else if (kind == "bib") {
        xmlq::datagen::BibOptions gen;
        gen.num_books = size > 0 ? static_cast<size_t>(size) : 100;
        name = "bib.xml";
        status = db.RegisterDocument(
            name, xmlq::datagen::GenerateBibliography(gen));
      }
      if (status.ok()) {
        doc_names.push_back(name);
        auto report = db.Report(name);
        std::printf("generated %s (%zu nodes)\n", name.c_str(),
                    report.ok() ? report->node_count : 0);
      } else {
        std::printf("%s\n", status.ToString().c_str());
      }
      continue;
    }
    if (word == ".docs") {
      for (const std::string& name : doc_names) {
        std::printf("  %s%s\n", name.c_str(),
                    name == db.default_document() ? " *" : "");
      }
      continue;
    }
    if (word == ".strategy") {
      std::string s;
      in >> s;
      options.auto_optimize = s == "auto";
      if (s == "nok") options.strategy = xmlq::exec::PatternStrategy::kNok;
      else if (s == "twigstack")
        options.strategy = xmlq::exec::PatternStrategy::kTwigStack;
      else if (s == "pathstack")
        options.strategy = xmlq::exec::PatternStrategy::kPathStack;
      else if (s == "binaryjoin")
        options.strategy = xmlq::exec::PatternStrategy::kBinaryJoin;
      else if (s == "naive")
        options.strategy = xmlq::exec::PatternStrategy::kNaive;
      else if (s != "auto") {
        std::printf("unknown strategy %s\n", s.c_str());
        continue;
      }
      std::printf("strategy: %s\n", s.c_str());
      continue;
    }
    if (word == ".limits") {
      std::string knob;
      uint64_t value = 0;
      in >> knob >> value;
      if (knob == "off") {
        options.limits = xmlq::QueryLimits{};
        std::printf("limits: off\n");
      } else if (knob == "steps" && value > 0) {
        options.limits.max_steps = value;
        std::printf("limits: max_steps=%llu\n",
                    static_cast<unsigned long long>(value));
      } else if (knob == "deadline" && value > 0) {
        options.limits.deadline_micros = value * 1000;
        std::printf("limits: deadline=%llums\n",
                    static_cast<unsigned long long>(value));
      } else if (knob == "memory" && value > 0) {
        options.limits.max_memory_bytes = value;
        std::printf("limits: max_memory_bytes=%llu\n",
                    static_cast<unsigned long long>(value));
      } else {
        std::printf("usage: .limits steps <n> | deadline <ms> | "
                    "memory <bytes> | off\n");
      }
      continue;
    }
    if (word == ".set") {
      std::string knob;
      uint64_t value = 0;
      in >> knob >> value;
      if (knob == "parallelism") {
        options.parallelism = static_cast<uint32_t>(value);
        std::printf("parallelism: %u%s\n", options.parallelism,
                    options.parallelism == 0 ? " (all hardware threads)"
                    : options.parallelism == 1 ? " (serial)"
                                               : "");
      } else if (knob == "morsel") {
        options.morsel_elements = static_cast<size_t>(value);
        std::printf("morsel target: %zu%s\n", options.morsel_elements,
                    options.morsel_elements == 0 ? " (auto)" : "");
      } else {
        std::printf("usage: .set parallelism <n> | morsel <n>\n");
      }
      continue;
    }
    if (word == ".report") {
      std::string name;
      in >> name;
      auto report = db.Report(name);
      if (!report.ok()) {
        std::printf("%s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("nodes %zu | dom %zu B | succinct %zu B (structure %zu) | "
                  "regions %zu B | values %zu B | tags %zu B\n",
                  report->node_count, report->dom_bytes,
                  report->succinct_structure_bytes +
                      report->succinct_content_bytes,
                  report->succinct_structure_bytes,
                  report->region_index_bytes, report->value_index_bytes,
                  report->tag_dictionary_bytes);
      std::printf("owned heap: succinct %zu B | regions %zu B | "
                  "values %zu B | tags %zu B\n",
                  report->succinct_heap_bytes, report->region_index_heap_bytes,
                  report->value_index_heap_bytes,
                  report->tag_dictionary_heap_bytes);
      if (report->from_snapshot) {
        std::printf("snapshot: %s, file %zu B\n",
                    report->mapped ? "mmap (zero-copy)" : "copied",
                    report->snapshot_file_bytes);
      }
      continue;
    }
    if (word == ".save") {
      std::string name, file;
      in >> name >> file;
      if (file.empty()) {
        std::printf("usage: .save <name> <file>\n");
        continue;
      }
      auto info = db.Save(name, file);
      if (!info.ok()) {
        std::printf("%s\n", info.status().ToString().c_str());
        continue;
      }
      std::printf("wrote %s (%zu bytes, %zu sections)\n", file.c_str(),
                  info->file_size, info->sections.size());
      continue;
    }
    if (word == ".open") {
      std::string name, file, mode_word;
      in >> name >> file >> mode_word;
      if (file.empty()) {
        std::printf("usage: .open <name> <file> [mmap|copy]\n");
        continue;
      }
      const auto mode = mode_word == "copy"
                            ? xmlq::storage::SnapshotOpenMode::kCopy
                            : xmlq::storage::SnapshotOpenMode::kMap;
      const xmlq::Status status = db.Open(name, file, mode);
      if (!status.ok()) {
        std::printf("%s\n", status.ToString().c_str());
        continue;
      }
      doc_names.push_back(name);
      auto report = db.Report(name);
      std::printf("opened %s (%zu nodes, %s)\n", name.c_str(),
                  report.ok() ? report->node_count : 0,
                  mode == xmlq::storage::SnapshotOpenMode::kMap
                      ? "mmap zero-copy"
                      : "copied");
      continue;
    }
    if (word == ".attach") {
      std::string dir, mode_word;
      in >> dir >> mode_word;
      if (dir.empty()) {
        std::printf("usage: .attach <dir> [mmap|copy]\n");
        continue;
      }
      const auto mode = mode_word == "copy"
                            ? xmlq::storage::SnapshotOpenMode::kCopy
                            : xmlq::storage::SnapshotOpenMode::kMap;
      auto report = db.Attach(dir, mode, options.parallelism);
      if (!report.ok()) {
        std::printf("%s\n", report.status().ToString().c_str());
        continue;
      }
      // Recovered documents are queryable but unknown to the local name
      // list; refresh it from the report.
      for (const std::string& doc : report->loaded) {
        doc_names.push_back(doc.substr(0, doc.find(" (")));
      }
      std::printf("%s", report->ToString().c_str());
      continue;
    }
    if (word == ".persist") {
      std::string name;
      in >> name;
      const xmlq::Status status = db.Persist(name);
      std::printf("%s\n", status.ok() ? "persisted"
                                      : status.ToString().c_str());
      continue;
    }
    if (word == ".remove") {
      std::string name;
      in >> name;
      const xmlq::Status status = db.Remove(name);
      if (status.ok()) {
        std::erase(doc_names, name);
        std::printf("removed %s\n", name.c_str());
      } else {
        std::printf("%s\n", status.ToString().c_str());
      }
      continue;
    }
    if (word == ".scrub") {
      std::string deep_word;
      in >> deep_word;
      xmlq::api::ScrubOptions scrub;
      scrub.deep = deep_word == "deep";
      scrub.parallelism = options.parallelism;
      auto report = db.Scrub(scrub);
      std::printf("%s", report.ok()
                            ? report->ToString().c_str()
                            : (report.status().ToString() + "\n").c_str());
      continue;
    }
    if (word == ".scrubber") {
      std::string arg, deep_word;
      in >> arg >> deep_word;
      if (arg == "off") {
        db.StopScrubber();
        std::printf("scrubber: off (%llu cycles, %llu skipped)\n",
                    static_cast<unsigned long long>(db.scrub_cycles()),
                    static_cast<unsigned long long>(
                        db.scrub_cycles_skipped()));
        continue;
      }
      const uint64_t interval_ms = std::strtoull(arg.c_str(), nullptr, 10);
      if (interval_ms == 0) {
        std::printf("usage: .scrubber <interval_ms> [deep] | .scrubber off\n");
        continue;
      }
      xmlq::api::ScrubOptions scrub;
      scrub.deep = deep_word == "deep";
      const xmlq::Status status = db.StartScrubber(interval_ms, scrub);
      std::printf("%s\n", status.ok() ? "scrubber: on"
                                      : status.ToString().c_str());
      continue;
    }
    if (word == ".explain") {
      std::string query = line.substr(line.find(".explain") + 8);
      // `.explain analyze <q>` executes the query and renders the profile.
      const size_t start = query.find_first_not_of(" \t");
      if (start != std::string::npos &&
          query.compare(start, 8, "analyze ") == 0) {
        query = query.substr(start + 8);
        auto profile = db.ExplainAnalyze(query, options);
        std::printf("%s\n", profile.ok()
                                ? profile->c_str()
                                : profile.status().ToString().c_str());
        continue;
      }
      auto plan = db.Explain(query, options);
      std::printf("%s\n", plan.ok() ? plan->c_str()
                                    : plan.status().ToString().c_str());
      continue;
    }
    if (word == ".serve") {
      uint64_t max_concurrent = 0, max_queue = 0, deadline_ms = 0;
      in >> max_concurrent >> max_queue >> deadline_ms;
      xmlq::exec::AdmissionConfig config;
      config.max_concurrent = static_cast<uint32_t>(max_concurrent);
      config.max_queue = static_cast<uint32_t>(max_queue);
      config.queue_deadline_micros = deadline_ms * 1000;
      db.SetAdmission(config);
      if (max_concurrent == 0) {
        std::printf("serving: unbounded (admission off)\n");
      } else {
        std::printf("serving: %u concurrent, queue %u, deadline %llums\n",
                    config.max_concurrent, config.max_queue,
                    static_cast<unsigned long long>(deadline_ms));
      }
      continue;
    }
    if (word == ".bg") {
      const size_t pos = line.find(".bg");
      std::string query = line.substr(pos + 3);
      const size_t start = query.find_first_not_of(" \t");
      if (start == std::string::npos) {
        std::printf("usage: .bg <query>\n");
        continue;
      }
      query = query.substr(start);
      auto job = std::make_unique<BackgroundJob>();
      job->query = query;
      BackgroundJob* j = job.get();
      // The per-job options copy decouples the thread from later .strategy /
      // .limits edits at the prompt.
      const xmlq::api::QueryOptions job_options = options;
      job->thread = std::thread([&db, j, job_options] {
        xmlq::api::QueryOptions thread_options = job_options;
        thread_options.query_id_out = &j->query_id;
        auto result = db.Query(j->query, thread_options);
        j->outcome = result.ok()
                         ? std::to_string(result->value.size()) + " items" +
                               (result->degraded ? " (degraded)" : "")
                         : result.status().ToString();
        j->done.store(true, std::memory_order_release);
      });
      // Wait for the id so the prompt can immediately offer `.cancel <id>`.
      while (j->query_id.load(std::memory_order_acquire) == 0 &&
             !j->done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::printf("job started: query_id=%llu\n",
                  static_cast<unsigned long long>(j->query_id.load()));
      jobs.push_back(std::move(job));
      continue;
    }
    if (word == ".jobs") {
      for (const auto& job : jobs) {
        std::printf("  #%llu %s — %s\n",
                    static_cast<unsigned long long>(job->query_id.load()),
                    job->query.c_str(),
                    job->done.load(std::memory_order_acquire)
                        ? job->outcome.c_str()
                        : "running");
      }
      if (jobs.empty()) std::printf("  (none)\n");
      continue;
    }
    if (word == ".cancel") {
      uint64_t id = 0;
      in >> id;
      if (id == 0) {
        std::printf("usage: .cancel <query_id>\n");
        continue;
      }
      std::printf(db.Cancel(id) ? "cancel signalled for %llu\n"
                                : "no active query %llu\n",
                  static_cast<unsigned long long>(id));
      continue;
    }
    if (word == ".follow") {
      std::string host;
      in >> host;
      if (host == "off") {
        if (repl == nullptr) {
          std::printf("not following\n");
          continue;
        }
        repl->Stop();
        repl.reset();
        std::printf("stopped following (still read-only, still serving)\n");
        continue;
      }
      int port = 0;
      std::string dir;
      in >> port >> dir;
      if (host.empty() || port <= 0 || port > 65535 || dir.empty()) {
        std::printf("usage: .follow <host> <port> <dir> | .follow off\n");
        continue;
      }
      if (repl != nullptr) {
        std::printf("already following; .follow off first\n");
        continue;
      }
      xmlq::repl::ReplicationConfig repl_config;
      repl_config.host = host;
      repl_config.port = static_cast<uint16_t>(port);
      repl_config.store_dir = dir;
      repl = std::make_unique<xmlq::repl::ReplicationClient>(&db,
                                                             repl_config);
      const xmlq::Status status = repl->Start();
      if (!status.ok()) {
        std::printf("%s\n", status.ToString().c_str());
        repl.reset();
        continue;
      }
      std::printf("following %s:%d into %s (read-only)\n", host.c_str(),
                  port, dir.c_str());
      continue;
    }
    if (word == ".promote") {
      // Replication stops first so no shipment from the old primary can
      // apply concurrently with (or after) the epoch bump.
      if (repl != nullptr) {
        repl->Stop();
        repl.reset();
      }
      auto epoch = db.Promote();
      if (!epoch.ok()) {
        std::printf("%s\n", epoch.status().ToString().c_str());
        continue;
      }
      std::printf("promoted; epoch=%llu (writes accepted here now)\n",
                  static_cast<unsigned long long>(*epoch));
      continue;
    }
    if (word == ".stats") {
      std::string what;
      in >> what;
      if (what == "cache") {
        std::printf("%s\n", db.plan_cache_stats().ToString().c_str());
        continue;
      }
      if (what == "repl") {
        if (repl == nullptr) {
          std::printf("not following (.follow <host> <port> <dir>)\n");
        } else {
          std::printf("%s", repl->stats().ToString().c_str());
        }
        continue;
      }
      if (what != "admission") {
        std::printf("usage: .stats admission|cache|repl\n");
        continue;
      }
      const xmlq::exec::AdmissionStats s = db.admission_stats();
      std::printf(
          "submitted %llu | admitted %llu | completed %llu | running %u | "
          "queued %u\nrejected %llu | shed %llu | cancelled-in-queue %llu | "
          "peak running %u | peak queued %u | retry-after %lluus\n%s",
          static_cast<unsigned long long>(s.submitted),
          static_cast<unsigned long long>(s.admitted),
          static_cast<unsigned long long>(s.completed), s.running, s.queued,
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.shed),
          static_cast<unsigned long long>(s.cancelled_while_queued),
          s.peak_running, s.peak_queued,
          static_cast<unsigned long long>(s.retry_after_micros),
          db.BreakerReport().c_str());
      continue;
    }
    if (word[0] == '.') {
      std::printf("unknown command %s (.help)\n", word.c_str());
      continue;
    }

    auto result = db.Query(line, options);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n(%zu items)\n",
                xmlq::api::Database::ToXml(*result, /*indent=*/true).c_str(),
                result->value.size());
    if (result->degraded) {
      std::printf("degraded: %s\n", result->degradation.c_str());
    }
  }
  // Cancel and join any still-running background queries before teardown.
  for (const auto& job : jobs) {
    if (!job->done.load(std::memory_order_acquire)) {
      db.Cancel(job->query_id.load(std::memory_order_acquire));
    }
  }
  for (const auto& job : jobs) {
    if (job->thread.joinable()) job->thread.join();
  }
  return 0;
}
