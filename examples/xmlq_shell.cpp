// Interactive shell: load or generate documents, run XPath/XQuery, inspect
// plans and storage — the adoption surface for trying the engine out.
//
//   ./build/examples/xmlq_shell
//   xmlq> .gen auction 50
//   xmlq> //person[address][phone]/name
//   xmlq> .explain //item[payment = 'Cash']/location
//   xmlq> .strategy twigstack
//   xmlq> for $p in //person return $p/name

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "xmlq/api/database.h"
#include "xmlq/datagen/auction_gen.h"
#include "xmlq/datagen/bib_gen.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  .load <name> <file>     parse an XML file and register it\n"
      "  .gen auction <permille> generate an XMark-style document\n"
      "  .gen bib <books>        generate a bibliography document\n"
      "  .docs                   list loaded documents (* = default)\n"
      "  .explain <query>        show the logical plan + strategy choice\n"
      "  .explain analyze <query> run the query and show the profiled plan\n"
      "                          (est vs actual rows, counters, wall time)\n"
      "  .strategy <s>           force nok|twigstack|pathstack|binaryjoin|\n"
      "                          naive, or 'auto' for the cost model\n"
      "  .limits steps <n> | deadline <ms> | memory <bytes> | off\n"
      "                          bound every following query\n"
      "  .report [name]          storage footprint of a document\n"
      "  .save <name> <file>     write a document as an xqpack snapshot\n"
      "  .open <name> <file> [mmap|copy]\n"
      "                          open an xqpack snapshot (default mmap)\n"
      "  .help / .quit\n"
      "anything else is evaluated as XQuery (or XPath for '/...').\n");
}

}  // namespace

int main() {
  xmlq::api::Database db;
  std::vector<std::string> doc_names;
  xmlq::api::QueryOptions options;
  std::printf("xmlq shell — .help for commands\n");

  std::string line;
  while (std::printf("xmlq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word.empty()) continue;

    if (word == ".quit" || word == ".exit") break;
    if (word == ".help") {
      PrintHelp();
      continue;
    }
    if (word == ".load") {
      std::string name, file;
      in >> name >> file;
      std::ifstream stream(file);
      if (!stream) {
        std::printf("cannot open %s\n", file.c_str());
        continue;
      }
      std::stringstream buffer;
      buffer << stream.rdbuf();
      const xmlq::Status status = db.LoadDocument(name, buffer.str());
      if (status.ok()) {
        doc_names.push_back(name);
        std::printf("loaded %s\n", name.c_str());
      } else {
        std::printf("%s\n", status.ToString().c_str());
      }
      continue;
    }
    if (word == ".gen") {
      std::string kind;
      int size = 0;
      in >> kind >> size;
      xmlq::Status status = xmlq::Status::InvalidArgument("unknown kind");
      std::string name;
      if (kind == "auction") {
        xmlq::datagen::AuctionOptions gen;
        gen.scale = (size > 0 ? size : 50) / 1000.0;
        name = "auction.xml";
        status = db.RegisterDocument(name,
                                     xmlq::datagen::GenerateAuctionSite(gen));
      } else if (kind == "bib") {
        xmlq::datagen::BibOptions gen;
        gen.num_books = size > 0 ? static_cast<size_t>(size) : 100;
        name = "bib.xml";
        status = db.RegisterDocument(
            name, xmlq::datagen::GenerateBibliography(gen));
      }
      if (status.ok()) {
        doc_names.push_back(name);
        auto report = db.Report(name);
        std::printf("generated %s (%zu nodes)\n", name.c_str(),
                    report.ok() ? report->node_count : 0);
      } else {
        std::printf("%s\n", status.ToString().c_str());
      }
      continue;
    }
    if (word == ".docs") {
      for (const std::string& name : doc_names) {
        std::printf("  %s%s\n", name.c_str(),
                    name == db.default_document() ? " *" : "");
      }
      continue;
    }
    if (word == ".strategy") {
      std::string s;
      in >> s;
      options.auto_optimize = s == "auto";
      if (s == "nok") options.strategy = xmlq::exec::PatternStrategy::kNok;
      else if (s == "twigstack")
        options.strategy = xmlq::exec::PatternStrategy::kTwigStack;
      else if (s == "pathstack")
        options.strategy = xmlq::exec::PatternStrategy::kPathStack;
      else if (s == "binaryjoin")
        options.strategy = xmlq::exec::PatternStrategy::kBinaryJoin;
      else if (s == "naive")
        options.strategy = xmlq::exec::PatternStrategy::kNaive;
      else if (s != "auto") {
        std::printf("unknown strategy %s\n", s.c_str());
        continue;
      }
      std::printf("strategy: %s\n", s.c_str());
      continue;
    }
    if (word == ".limits") {
      std::string knob;
      uint64_t value = 0;
      in >> knob >> value;
      if (knob == "off") {
        options.limits = xmlq::QueryLimits{};
        std::printf("limits: off\n");
      } else if (knob == "steps" && value > 0) {
        options.limits.max_steps = value;
        std::printf("limits: max_steps=%llu\n",
                    static_cast<unsigned long long>(value));
      } else if (knob == "deadline" && value > 0) {
        options.limits.deadline_micros = value * 1000;
        std::printf("limits: deadline=%llums\n",
                    static_cast<unsigned long long>(value));
      } else if (knob == "memory" && value > 0) {
        options.limits.max_memory_bytes = value;
        std::printf("limits: max_memory_bytes=%llu\n",
                    static_cast<unsigned long long>(value));
      } else {
        std::printf("usage: .limits steps <n> | deadline <ms> | "
                    "memory <bytes> | off\n");
      }
      continue;
    }
    if (word == ".report") {
      std::string name;
      in >> name;
      auto report = db.Report(name);
      if (!report.ok()) {
        std::printf("%s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("nodes %zu | dom %zu B | succinct %zu B (structure %zu) | "
                  "regions %zu B | values %zu B | tags %zu B\n",
                  report->node_count, report->dom_bytes,
                  report->succinct_structure_bytes +
                      report->succinct_content_bytes,
                  report->succinct_structure_bytes,
                  report->region_index_bytes, report->value_index_bytes,
                  report->tag_dictionary_bytes);
      std::printf("owned heap: succinct %zu B | regions %zu B | "
                  "values %zu B | tags %zu B\n",
                  report->succinct_heap_bytes, report->region_index_heap_bytes,
                  report->value_index_heap_bytes,
                  report->tag_dictionary_heap_bytes);
      if (report->from_snapshot) {
        std::printf("snapshot: %s, file %zu B\n",
                    report->mapped ? "mmap (zero-copy)" : "copied",
                    report->snapshot_file_bytes);
      }
      continue;
    }
    if (word == ".save") {
      std::string name, file;
      in >> name >> file;
      if (file.empty()) {
        std::printf("usage: .save <name> <file>\n");
        continue;
      }
      auto info = db.Save(name, file);
      if (!info.ok()) {
        std::printf("%s\n", info.status().ToString().c_str());
        continue;
      }
      std::printf("wrote %s (%zu bytes, %zu sections)\n", file.c_str(),
                  info->file_size, info->sections.size());
      continue;
    }
    if (word == ".open") {
      std::string name, file, mode_word;
      in >> name >> file >> mode_word;
      if (file.empty()) {
        std::printf("usage: .open <name> <file> [mmap|copy]\n");
        continue;
      }
      const auto mode = mode_word == "copy"
                            ? xmlq::storage::SnapshotOpenMode::kCopy
                            : xmlq::storage::SnapshotOpenMode::kMap;
      const xmlq::Status status = db.Open(name, file, mode);
      if (!status.ok()) {
        std::printf("%s\n", status.ToString().c_str());
        continue;
      }
      doc_names.push_back(name);
      auto report = db.Report(name);
      std::printf("opened %s (%zu nodes, %s)\n", name.c_str(),
                  report.ok() ? report->node_count : 0,
                  mode == xmlq::storage::SnapshotOpenMode::kMap
                      ? "mmap zero-copy"
                      : "copied");
      continue;
    }
    if (word == ".explain") {
      std::string query = line.substr(line.find(".explain") + 8);
      // `.explain analyze <q>` executes the query and renders the profile.
      const size_t start = query.find_first_not_of(" \t");
      if (start != std::string::npos &&
          query.compare(start, 8, "analyze ") == 0) {
        query = query.substr(start + 8);
        auto profile = db.ExplainAnalyze(query, options);
        std::printf("%s\n", profile.ok()
                                ? profile->c_str()
                                : profile.status().ToString().c_str());
        continue;
      }
      auto plan = db.Explain(query, options);
      std::printf("%s\n", plan.ok() ? plan->c_str()
                                    : plan.status().ToString().c_str());
      continue;
    }
    if (word[0] == '.') {
      std::printf("unknown command %s (.help)\n", word.c_str());
      continue;
    }

    auto result = db.Query(line, options);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n(%zu items)\n",
                xmlq::api::Database::ToXml(*result, /*indent=*/true).c_str(),
                result->value.size());
  }
  return 0;
}
