#!/usr/bin/env bash
# CI pipeline, staged so the fast tier-1 gate fails first:
#
#   1. tier-1 gate    — plain build + `ctest -L tier1` (the seed suite;
#                       must always stay green, and stays fast because the
#                       heavier suites are labeled out of it)
#   2. differential   — `ctest -L differential`: the cross-engine oracle,
#                       the OpStats complexity regressions (profile_test)
#                       and the cardinality-accuracy suite
#   3. sanitizers     — AddressSanitizer and UBSan builds (separate trees
#                       via tests/run_sanitized.sh) running the full
#                       labeled suite, differential + profile included
#   4. tsan stress    — ThreadSanitizer build running the `stress`-labeled
#                       concurrent-serving suite (admission, cancellation,
#                       catalog swaps, breaker)
#   5. asan recovery  — AddressSanitizer re-run of the `recovery`-labeled
#                       crash-safety suite (fork/kill-point matrix, manifest
#                       replay/fuzz, scrubber): the recovery paths touch
#                       freshly truncated/quarantined files and forked
#                       children, exactly where memory bugs hide
#   6. net tier       — ThreadSanitizer run of the `net`-labeled wire suite
#                       (epoll loop + worker pool + chaos matrix is exactly
#                       where races hide), then scripts/serve_smoke.sh: the
#                       shipped xmlq_serve + xmlq_loadgen binaries against a
#                       real socket, ending in a SIGTERM graceful drain
#   7. plan cache     — the `cache`-labeled suite (normalization oracle,
#                       bind-slot round-trips, invalidation, adaptive
#                       re-plans, concurrent hit/miss/invalidate stress)
#                       under AddressSanitizer and ThreadSanitizer: cloned
#                       plans + shared cache entries are where lifetime and
#                       race bugs would live
#   8. parallel       — the `par`-labeled morsel-parallel suite (splitter
#                       properties, pool exactly-once, parallel-vs-serial
#                       stress with swaps and mid-morsel cancels) under
#                       ThreadSanitizer and AddressSanitizer: work-stealing
#                       lanes over shared read-only snapshots are the
#                       newest race/lifetime surface
#   9. replication    — the `repl`-labeled follower-serving suite (ship +
#                       apply chaos matrix, crash kill-points incl. the
#                       promote/epoch boundaries, staleness gate, census
#                       reconciliation, split-brain fencing at every frame
#                       type, quarantine self-heal) under ThreadSanitizer
#                       and AddressSanitizer — the replication thread, the
#                       epoll pump and the apply path share the catalog —
#                       then scripts/failover_smoke.sh: a real primary
#                       SIGKILLed mid-stream while its follower keeps
#                       serving byte-identical answers and reconverges,
#                       followed by the coordinated-failover legs (promote
#                       over the wire, auto-demote, fenced split brain)
#
# Everything — build trees and test temp files (snapshot_test writes its
# *.xqpack scratch files into the ctest working directory) — stays under
# the build trees, so a failed run never litters the source tree.
#
#   scripts/ci.sh              # all three stages
#   scripts/ci.sh --fast       # tier-1 + differential only
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build"
JOBS="$(nproc)"

echo "== tier-1: configure + build =="
cmake -B "${BUILD_DIR}" -S "${ROOT}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: ctest (-L tier1) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L tier1

echo "== differential + profile suites (-L differential) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
  -L differential

if [[ "${1:-}" == "--fast" ]]; then
  echo "ci: tier-1 + differential green (sanitizers skipped)"
  exit 0
fi

# Full suite under each sanitizer: the fuzz + fault-injection tests get the
# memory checking they exist for, and the differential oracle + profile
# counters run instrumented too (asserting the instrumentation itself is
# clean under ASan/UBSan).
for sanitizer in address undefined; do
  echo "== sanitizer suite: ${sanitizer} =="
  "${ROOT}/tests/run_sanitized.sh" "${sanitizer}" -j "${JOBS}"
done

# The concurrency suite under ThreadSanitizer: data races in the serving
# layer (COW catalog, scheduler, breaker, fault injector) fail here even
# when the uninstrumented run got lucky with its interleavings.
echo "== tsan stress suite =="
"${ROOT}/tests/run_sanitized.sh" thread -j "${JOBS}" -L stress

# The crash matrix once more under ASan (the plain-build run already
# happened inside the tier-1 gate): every kill point forks a child that
# dies mid-write, and recovery then replays torn journals and quarantines
# corrupt snapshots — pointer arithmetic over hostile bytes that deserves
# instrumentation. Serial (-j 1): the fork-heavy matrix is timing-sensitive
# under ASan's slowdown.
echo "== asan recovery suite =="
"${ROOT}/tests/run_sanitized.sh" address -j 1 -L recovery

# The serving tier under ThreadSanitizer: the epoll loop, worker pool and
# completion queues are the newest cross-thread surface, and the chaos
# matrix drives them through every fault site concurrently. Serial (-j 1):
# the suite binds real sockets and is timing-sensitive under TSan slowdown.
echo "== tsan net suite =="
"${ROOT}/tests/run_sanitized.sh" thread -j 1 -L net

# End-to-end smoke of the shipped binaries over a real socket, ending in a
# SIGTERM graceful drain (uses the plain tier-1 build tree). The loadgen
# runs its --repeat-mix workload, so the server plan cache serves bind-slot
# hits under live concurrent load.
echo "== serve smoke (xmlq_serve + xmlq_loadgen) =="
"${ROOT}/scripts/serve_smoke.sh" "${BUILD_DIR}" 10

# The plan-cache suite under both ASan and TSan: executions run clones of
# shared cached templates while other threads evict, invalidate and re-plan
# the entries — the exact use-after-free / data-race surface of this
# subsystem.
echo "== asan cache suite =="
"${ROOT}/tests/run_sanitized.sh" address -j "${JOBS}" -L cache
echo "== tsan cache suite =="
"${ROOT}/tests/run_sanitized.sh" thread -j "${JOBS}" -L cache

# The morsel-parallel suite under both TSan and ASan: lanes race over
# shared region streams, per-morsel sinks and the work-stealing claim
# counter while cancels land mid-morsel — exactly the interleavings the
# uninstrumented tier-1 run can get lucky on.
echo "== tsan parallel suite =="
"${ROOT}/tests/run_sanitized.sh" thread -j "${JOBS}" -L par
echo "== asan parallel suite =="
"${ROOT}/tests/run_sanitized.sh" address -j "${JOBS}" -L par

# The replication suite under both TSan and ASan: the follower's stream
# thread applies snapshots into a catalog other threads query, the server's
# loop thread pumps shipments while workers answer queries, and the crash
# matrix forks children that die mid-apply and mid-promote — both race and
# lifetime surface. The suite also carries the coordinated-failover cells
# (epoch fencing at every frame type, promote-over-wire split brain,
# quarantine self-heal). Serial (-j 1): binds real sockets and forks,
# timing-sensitive under sanitizer slowdown.
echo "== tsan repl suite =="
"${ROOT}/tests/run_sanitized.sh" thread -j 1 -L repl
echo "== asan repl suite =="
"${ROOT}/tests/run_sanitized.sh" address -j 1 -L repl

# Live failover smoke of the shipped binaries: primary + follower over real
# sockets, kill -9 mid-stream, byte-identical serving through the outage,
# autonomous reconvergence when the primary returns — then coordinated
# failover: promote the follower over the wire, auto-demote the rejoining
# old primary, and fence a deliberate split brain on both sides.
echo "== failover smoke (primary kill -9 + follower reconvergence) =="
"${ROOT}/scripts/failover_smoke.sh" "${BUILD_DIR}"

echo "ci: tier-1 + differential + sanitizers + tsan stress + asan recovery + net + cache + parallel + repl green"
