#!/usr/bin/env bash
# Tier-1 gate: plain build + full test suite, then the sanitizer suite
# (AddressSanitizer and UBSan via tests/run_sanitized.sh). Everything —
# build trees and test temp files (snapshot_test writes its *.xqpack
# scratch files into the ctest working directory) — stays under the build
# trees, so a failed run never litters the source tree.
#
#   scripts/ci.sh              # build + ctest + asan + ubsan
#   scripts/ci.sh --fast       # build + ctest only
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build"
JOBS="$(nproc)"

echo "== tier-1: configure + build =="
cmake -B "${BUILD_DIR}" -S "${ROOT}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--fast" ]]; then
  echo "ci: tier-1 green (sanitizers skipped)"
  exit 0
fi

for sanitizer in address undefined; do
  echo "== sanitizer suite: ${sanitizer} =="
  "${ROOT}/tests/run_sanitized.sh" "${sanitizer}" -j "${JOBS}"
done

echo "ci: tier-1 + sanitizers green"
