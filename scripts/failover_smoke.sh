#!/usr/bin/env bash
# Live failover smoke test for replication & follower serving (DESIGN.md
# §13): boots a persisting primary and a following replica as real
# processes, proves the follower answers byte-identically, SIGKILLs the
# primary mid-stream and requires the follower to keep answering the same
# bytes while its staleness telemetry grows, then restarts the primary on
# the same port with *new* data and requires the follower to reconverge on
# its own — no operator intervention, no restart of the follower.
#
# Then the coordinated-failover legs (DESIGN.md §14): kill -9 the primary
# again and *promote* the follower over the wire (xmlq_loadgen --promote →
# the kPromote frame) — it bumps+persists its epoch and keeps serving the
# same bytes as the new primary. The old primary restarts pointed at it
# (--follow), auto-demotes by adopting the higher epoch, and reconverges
# byte-identically. Finally a deliberate split brain: the demoted node is
# promoted too (higher epoch) and re-pointed at the original new primary —
# both sides must fence the subscription (repl_fenced_subscribes on the
# server, repl_fenced_rejections on the client) and neither catalog may be
# rewound.
#
#   scripts/failover_smoke.sh [build-dir]
#
# Unlike tests/repl_test.cc (in-process server + client), this exercises
# the shipped binaries end to end: --follow/--persist flag parsing, the
# replication thread riding a real socket, kill -9 instead of a graceful
# shutdown, and the follower's stats surfaced through its own serving port.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"

SERVE="${BUILD_DIR}/tools/xmlq_serve"
LOADGEN="${BUILD_DIR}/tools/xmlq_loadgen"
for bin in "${SERVE}" "${LOADGEN}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "failover_smoke: missing ${bin} (build with -DXMLQ_BUILD_TOOLS=ON)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d "${BUILD_DIR}/failover_smoke.XXXXXX")"
PRIMARY_STORE="${WORK_DIR}/primary_store"
FOLLOWER_STORE="${WORK_DIR}/follower_store"
PRIMARY_LOG="${WORK_DIR}/primary.log"
FOLLOWER_LOG="${WORK_DIR}/follower.log"
PRIMARY_PID=""
FOLLOWER_PID=""
QUERY='//book/title'

cleanup() {
  for pid in "${PRIMARY_PID}" "${FOLLOWER_PID}"; do
    if [[ -n "${pid}" ]] && kill -0 "${pid}" 2>/dev/null; then
      kill -KILL "${pid}" 2>/dev/null || true
    fi
  done
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

fail() {
  echo "failover_smoke: $1" >&2
  echo "--- primary log ---" >&2; cat "${PRIMARY_LOG}" >&2 || true
  echo "--- follower log ---" >&2; cat "${FOLLOWER_LOG}" >&2 || true
  exit 1
}

# wait_port <port-file> <pid> <who>: the port-file handshake.
wait_port() {
  local port_file="$1" pid="$2" who="$3"
  for _ in $(seq 1 100); do
    [[ -s "${port_file}" ]] && return 0
    kill -0 "${pid}" 2>/dev/null || fail "${who} died before binding"
    sleep 0.1
  done
  fail "${who} never wrote its port file"
}

# serve_stat <port> <key>: one key=value line out of a server's kStats body
# (repl_* client counters, the epoch= line, promotes, ...). Prints nothing —
# and, under set -e, deliberately still succeeds — while the port is down.
serve_stat() {
  { "${LOADGEN}" --port "$1" --stats 2>/dev/null || true; } |
    sed -n "s/^$2=//p"
}

# follower_stat <key>: one repl_* counter out of the follower's kStats body.
follower_stat() {
  serve_stat "${FOLLOWER_PORT}" "$1"
}

# --- phase 1: primary up, persisting a 200-book bibliography ---------------
"${SERVE}" --port 0 --port-file "${WORK_DIR}/pport" \
  --store "${PRIMARY_STORE}" --gen-bib 200 --persist \
  >"${PRIMARY_LOG}" 2>&1 &
PRIMARY_PID=$!
wait_port "${WORK_DIR}/pport" "${PRIMARY_PID}" "primary"
PRIMARY_PORT="$(cat "${WORK_DIR}/pport")"
grep -q "persisted bib.xml" "${PRIMARY_LOG}" || sleep 0.3
echo "failover_smoke: primary pid=${PRIMARY_PID} port=${PRIMARY_PORT}"

"${LOADGEN}" --port "${PRIMARY_PORT}" --once "${QUERY}" \
  >"${WORK_DIR}/primary_v1.out" || fail "primary refused the probe query"
[[ -s "${WORK_DIR}/primary_v1.out" ]] || fail "primary answered empty"

# --- phase 2: follower catches up and answers byte-identically -------------
"${SERVE}" --port 0 --port-file "${WORK_DIR}/fport" \
  --store "${FOLLOWER_STORE}" --follow "127.0.0.1:${PRIMARY_PORT}" \
  >"${FOLLOWER_LOG}" 2>&1 &
FOLLOWER_PID=$!
wait_port "${WORK_DIR}/fport" "${FOLLOWER_PID}" "follower"
FOLLOWER_PORT="$(cat "${WORK_DIR}/fport")"
echo "failover_smoke: follower pid=${FOLLOWER_PID} port=${FOLLOWER_PORT}"

for _ in $(seq 1 100); do
  if "${LOADGEN}" --port "${FOLLOWER_PORT}" --once "${QUERY}" \
      >"${WORK_DIR}/follower_v1.out" 2>/dev/null &&
     cmp -s "${WORK_DIR}/primary_v1.out" "${WORK_DIR}/follower_v1.out"; then
    break
  fi
  sleep 0.1
done
cmp -s "${WORK_DIR}/primary_v1.out" "${WORK_DIR}/follower_v1.out" ||
  fail "follower never converged on the primary's answer"
echo "failover_smoke: follower converged ($(wc -c <"${WORK_DIR}/follower_v1.out") bytes, byte-identical)"

# Read traffic against the follower while the stream is live.
"${LOADGEN}" --port "${FOLLOWER_PORT}" --clients 2 --duration-s 2 ||
  fail "loadgen against the live follower failed"

# --- phase 3: kill -9 the primary mid-stream -------------------------------
kill -KILL "${PRIMARY_PID}"
wait "${PRIMARY_PID}" 2>/dev/null || true
echo "failover_smoke: primary killed (SIGKILL)"

for _ in $(seq 1 100); do
  [[ "$(follower_stat repl_connected)" == "0" ]] && break
  sleep 0.1
done
[[ "$(follower_stat repl_connected)" == "0" ]] ||
  fail "follower stats never noticed the dead primary"

# Degrade, never drop: identical bytes, and staleness grows while down.
"${LOADGEN}" --port "${FOLLOWER_PORT}" --once "${QUERY}" \
  >"${WORK_DIR}/follower_orphan.out" ||
  fail "follower stopped answering after primary death"
cmp -s "${WORK_DIR}/primary_v1.out" "${WORK_DIR}/follower_orphan.out" ||
  fail "follower's answer changed after primary death"
AGE_1="$(follower_stat repl_heartbeat_age_micros)"
sleep 0.5
AGE_2="$(follower_stat repl_heartbeat_age_micros)"
[[ -n "${AGE_1}" && -n "${AGE_2}" && "${AGE_2}" -gt "${AGE_1}" ]] ||
  fail "heartbeat age not growing while primary is down (${AGE_1} -> ${AGE_2})"
echo "failover_smoke: follower kept serving, staleness growing (${AGE_1} -> ${AGE_2} micros)"

# Loadgen keeps getting real answers from the orphaned follower.
"${LOADGEN}" --port "${FOLLOWER_PORT}" --clients 2 --duration-s 2 ||
  fail "loadgen against the orphaned follower failed"

# --- phase 4: primary returns with new data; follower reconverges ----------
"${SERVE}" --port "${PRIMARY_PORT}" \
  --store "${PRIMARY_STORE}" --gen-bib 300 --persist \
  >"${PRIMARY_LOG}" 2>&1 &
PRIMARY_PID=$!
for _ in $(seq 1 100); do
  if "${LOADGEN}" --port "${PRIMARY_PORT}" --once "${QUERY}" \
      >"${WORK_DIR}/primary_v2.out" 2>/dev/null &&
     [[ -s "${WORK_DIR}/primary_v2.out" ]]; then
    break
  fi
  kill -0 "${PRIMARY_PID}" 2>/dev/null || fail "restarted primary died"
  sleep 0.1
done
cmp -s "${WORK_DIR}/primary_v1.out" "${WORK_DIR}/primary_v2.out" &&
  fail "restarted primary is serving the old catalog (expected 300 books)"
echo "failover_smoke: primary restarted pid=${PRIMARY_PID} port=${PRIMARY_PORT} with new data"

for _ in $(seq 1 150); do
  if "${LOADGEN}" --port "${FOLLOWER_PORT}" --once "${QUERY}" \
      >"${WORK_DIR}/follower_v2.out" 2>/dev/null &&
     cmp -s "${WORK_DIR}/primary_v2.out" "${WORK_DIR}/follower_v2.out"; then
    break
  fi
  sleep 0.1
done
cmp -s "${WORK_DIR}/primary_v2.out" "${WORK_DIR}/follower_v2.out" ||
  fail "follower never reconverged after the primary returned"
[[ "$(follower_stat repl_connected)" == "1" ]] ||
  fail "follower reconverged but stats say disconnected"
RECONNECTS="$(follower_stat repl_reconnects)"
[[ -n "${RECONNECTS}" && "${RECONNECTS}" -ge 1 ]] ||
  fail "follower stats show no reconnect (repl_reconnects=${RECONNECTS})"
echo "failover_smoke: follower reconverged byte-identically after ${RECONNECTS} reconnect(s)"

# --- phase 5: kill -9 again, promote the follower over the wire ------------
kill -KILL "${PRIMARY_PID}"
wait "${PRIMARY_PID}" 2>/dev/null || true
PRIMARY_PID=""
echo "failover_smoke: primary killed again (SIGKILL)"

"${LOADGEN}" --port "${FOLLOWER_PORT}" --promote \
  >"${WORK_DIR}/promote.out" || fail "kPromote frame refused"
grep -q "epoch=1" "${WORK_DIR}/promote.out" ||
  fail "promote ack did not carry epoch=1 ($(cat "${WORK_DIR}/promote.out"))"
[[ "$(follower_stat epoch)" == "1" ]] ||
  fail "promoted follower's stats epoch is not 1 ($(follower_stat epoch))"
PROMOTES="$(follower_stat promotes)"
[[ -n "${PROMOTES}" && "${PROMOTES}" -ge 1 ]] ||
  fail "promotes counter did not move (promotes=${PROMOTES})"

# The new primary serves on: same bytes, now under its own epoch.
"${LOADGEN}" --port "${FOLLOWER_PORT}" --once "${QUERY}" \
  >"${WORK_DIR}/promoted.out" || fail "promoted follower stopped answering"
cmp -s "${WORK_DIR}/primary_v2.out" "${WORK_DIR}/promoted.out" ||
  fail "promotion changed the promoted follower's answer"
echo "failover_smoke: follower promoted (epoch=1), serving identical bytes"

# --- phase 6: old primary rejoins, auto-demotes, reconverges ---------------
"${SERVE}" --port "${PRIMARY_PORT}" \
  --store "${PRIMARY_STORE}" --follow "127.0.0.1:${FOLLOWER_PORT}" \
  >"${PRIMARY_LOG}" 2>&1 &
PRIMARY_PID=$!
for _ in $(seq 1 100); do
  [[ "$(serve_stat "${PRIMARY_PORT}" epoch)" == "1" &&
     "$(serve_stat "${PRIMARY_PORT}" repl_connected)" == "1" ]] && break
  kill -0 "${PRIMARY_PID}" 2>/dev/null || fail "rejoining old primary died"
  sleep 0.1
done
[[ "$(serve_stat "${PRIMARY_PORT}" epoch)" == "1" ]] ||
  fail "old primary never adopted the promoted epoch"
"${LOADGEN}" --port "${PRIMARY_PORT}" --once "${QUERY}" \
  >"${WORK_DIR}/demoted.out" || fail "demoted old primary refused the probe"
cmp -s "${WORK_DIR}/primary_v2.out" "${WORK_DIR}/demoted.out" ||
  fail "demoted old primary did not reconverge byte-identically"
echo "failover_smoke: old primary auto-demoted (epoch=1) and reconverged"

# --- phase 7: deliberate split brain is fenced on both sides ---------------
"${LOADGEN}" --port "${PRIMARY_PORT}" --promote \
  >"${WORK_DIR}/promote2.out" || fail "second promote refused"
grep -q "epoch=2" "${WORK_DIR}/promote2.out" ||
  fail "second promote did not reach epoch=2 ($(cat "${WORK_DIR}/promote2.out"))"
kill -TERM "${PRIMARY_PID}" 2>/dev/null || true
wait "${PRIMARY_PID}" 2>/dev/null || true

# Rejoin with the *higher* epoch: the epoch-1 primary must refuse to ship
# (it would rewind a promoted store), and the epoch-2 side must count the
# fence instead of applying anything.
"${SERVE}" --port "${PRIMARY_PORT}" \
  --store "${PRIMARY_STORE}" --follow "127.0.0.1:${FOLLOWER_PORT}" \
  >"${PRIMARY_LOG}" 2>&1 &
PRIMARY_PID=$!
for _ in $(seq 1 100); do
  FENCED="$(serve_stat "${PRIMARY_PORT}" repl_fenced_rejections)"
  [[ -n "${FENCED}" && "${FENCED}" -ge 1 ]] && break
  kill -0 "${PRIMARY_PID}" 2>/dev/null || fail "fenced node died"
  sleep 0.1
done
FENCED="$(serve_stat "${PRIMARY_PORT}" repl_fenced_rejections)"
[[ -n "${FENCED}" && "${FENCED}" -ge 1 ]] ||
  fail "higher-epoch subscriber was never fenced (repl_fenced_rejections=${FENCED})"
FENCED_SUBS="$(follower_stat repl_fenced_subscribes)"
[[ -n "${FENCED_SUBS}" && "${FENCED_SUBS}" -ge 1 ]] ||
  fail "epoch-1 primary shipped to a higher-epoch subscriber (repl_fenced_subscribes=${FENCED_SUBS})"

# Neither catalog was rewound by the refused stream.
"${LOADGEN}" --port "${PRIMARY_PORT}" --once "${QUERY}" \
  >"${WORK_DIR}/fenced.out" || fail "fenced node stopped answering"
cmp -s "${WORK_DIR}/primary_v2.out" "${WORK_DIR}/fenced.out" ||
  fail "fenced node's catalog changed"
"${LOADGEN}" --port "${FOLLOWER_PORT}" --once "${QUERY}" \
  >"${WORK_DIR}/survivor.out" || fail "epoch-1 primary stopped answering"
cmp -s "${WORK_DIR}/primary_v2.out" "${WORK_DIR}/survivor.out" ||
  fail "epoch-1 primary's catalog changed"
echo "failover_smoke: split brain fenced on both sides" \
  "(client=${FENCED} server=${FENCED_SUBS}), no catalog rewound"

kill -TERM "${FOLLOWER_PID}" 2>/dev/null || true
wait "${FOLLOWER_PID}" 2>/dev/null || true
kill -TERM "${PRIMARY_PID}" 2>/dev/null || true
wait "${PRIMARY_PID}" 2>/dev/null || true
echo "failover_smoke: OK"
