#!/usr/bin/env bash
# Live-socket smoke test for the serving tier: boots xmlq_serve on an
# ephemeral port, points xmlq_loadgen at it for a few seconds, then sends
# SIGTERM and requires a *graceful* drain — loadgen must have gotten real
# responses (exit 0) and the server must exit 0 within the drain window.
#
#   scripts/serve_smoke.sh [build-dir] [duration-s] [clients]
#
# Unlike tests/net_test.cc (in-process server), this exercises the shipped
# binaries end to end: flag parsing, the SIGTERM handler, port-file
# handshake, and a real multi-process socket path.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
DURATION_S="${2:-5}"
CLIENTS="${3:-4}"

SERVE="${BUILD_DIR}/tools/xmlq_serve"
LOADGEN="${BUILD_DIR}/tools/xmlq_loadgen"
for bin in "${SERVE}" "${LOADGEN}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "serve_smoke: missing ${bin} (build with -DXMLQ_BUILD_TOOLS=ON)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d "${BUILD_DIR}/serve_smoke.XXXXXX")"
PORT_FILE="${WORK_DIR}/port"
SERVER_LOG="${WORK_DIR}/server.log"
SERVER_PID=""

cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

"${SERVE}" --port 0 --port-file "${PORT_FILE}" --gen-bib 200 \
  >"${SERVER_LOG}" 2>&1 &
SERVER_PID=$!

# Wait for the port-file handshake (the server writes it once bound).
for _ in $(seq 1 100); do
  [[ -s "${PORT_FILE}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "serve_smoke: server died before binding:" >&2
    cat "${SERVER_LOG}" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "${PORT_FILE}" ]] || { echo "serve_smoke: no port file" >&2; exit 1; }
PORT="$(cat "${PORT_FILE}")"

echo "serve_smoke: server pid=${SERVER_PID} port=${PORT}"
# --repeat-mix: Zipf-repeated query variants, so the run also exercises the
# server-side plan cache (hits + bind-slot substitution) under live load.
"${LOADGEN}" --port "${PORT}" --clients "${CLIENTS}" \
  --duration-s "${DURATION_S}" --repeat-mix 12

# Graceful drain: SIGTERM, then the server must exit 0 on its own.
kill -TERM "${SERVER_PID}"
SERVER_RC=0
wait "${SERVER_PID}" || SERVER_RC=$?
if [[ "${SERVER_RC}" -ne 0 ]]; then
  echo "serve_smoke: server exited ${SERVER_RC} after SIGTERM:" >&2
  cat "${SERVER_LOG}" >&2
  exit 1
fi
grep -q "drained" "${SERVER_LOG}" || {
  echo "serve_smoke: server log missing drain marker:" >&2
  cat "${SERVER_LOG}" >&2
  exit 1
}
echo "serve_smoke: graceful drain OK"
