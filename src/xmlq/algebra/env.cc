#include "xmlq/algebra/env.h"

#include <cassert>

namespace xmlq::algebra {

int Env::AddLayer(std::string var, LayerKind kind) {
  layers_.push_back(Layer{std::move(var), kind});
  nodes_.emplace_back();
  return static_cast<int>(layers_.size()) - 1;
}

uint32_t Env::AddBinding(int layer, uint32_t parent, Sequence value) {
  assert(layer >= 0 && static_cast<size_t>(layer) < layers_.size());
  assert(layer == 0 ? parent == kNoParent
                    : parent < nodes_[layer - 1].size());
  nodes_[layer].push_back(Binding{parent, std::move(value)});
  return static_cast<uint32_t>(nodes_[layer].size()) - 1;
}

void Env::ForEachTuple(const std::function<void(const Tuple&)>& fn) const {
  if (layers_.empty()) return;
  const int last = static_cast<int>(layers_.size()) - 1;
  Tuple tuple(layers_.size(), nullptr);
  for (const Binding& leaf : nodes_[last]) {
    // Walk the parent chain to materialize the path.
    const Binding* cur = &leaf;
    bool alive = true;
    for (int l = last; l >= 0; --l) {
      tuple[l] = &cur->value;
      if (layers_[l].kind == LayerKind::kWhere) {
        alive = !cur->value.empty() && cur->value[0].BooleanValue();
        if (!alive) break;
      }
      if (l > 0) cur = &nodes_[l - 1][cur->parent];
    }
    if (alive) fn(tuple);
  }
}

size_t Env::TupleCount() const {
  size_t n = 0;
  ForEachTuple([&n](const Tuple&) { ++n; });
  return n;
}

std::string Env::ToString() const {
  std::string out;
  for (size_t l = 0; l < layers_.size(); ++l) {
    switch (layers_[l].kind) {
      case LayerKind::kFor:
        out += "for $" + layers_[l].var;
        break;
      case LayerKind::kLet:
        out += "let $" + layers_[l].var;
        break;
      case LayerKind::kWhere:
        out += "where";
        break;
    }
    out += ": " + std::to_string(nodes_[l].size()) + " binding(s)\n";
  }
  return out;
}

}  // namespace xmlq::algebra
