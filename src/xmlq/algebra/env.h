#ifndef XMLQ_ALGEBRA_ENV_H_
#define XMLQ_ALGEBRA_ENV_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xmlq/algebra/value.h"

namespace xmlq::algebra {

/// Sort `Env` (paper Definition 3): a layered, balanced tree of variable
/// bindings built while evaluating a FLWOR expression. Each layer is either
/// a variable introduced by a for/let clause or a boolean formula from the
/// where clause. A root-to-leaf path is one *total variable binding*; the
/// return expression is evaluated once per path (paper Example 1 / Fig. 2).
class Env {
 public:
  enum class LayerKind : uint8_t {
    kFor,    // one binding node per item (one-to-many)
    kLet,    // a single binding node carrying the whole sequence (one-to-one)
    kWhere,  // a boolean formula node per parent (one-to-one)
  };

  struct Layer {
    std::string var;  // empty for kWhere layers
    LayerKind kind = LayerKind::kFor;
  };

  static constexpr uint32_t kNoParent = UINT32_MAX;

  struct Binding {
    uint32_t parent = kNoParent;  // index into the previous layer
    Sequence value;               // kWhere: single boolean item
  };

  /// Appends a layer; layers must be added left-to-right (outermost clause
  /// first). Returns the layer index.
  int AddLayer(std::string var, LayerKind kind);

  /// Adds a binding node at `layer` under `parent` (a binding index in layer
  /// - 1; kNoParent only for layer 0). Returns its index within the layer.
  uint32_t AddBinding(int layer, uint32_t parent, Sequence value);

  size_t LayerCount() const { return layers_.size(); }
  const Layer& layer(int i) const { return layers_[i]; }
  const std::vector<Binding>& bindings(int i) const { return nodes_[i]; }

  /// A materialized total binding: one Sequence pointer per layer (where
  /// layers carry their boolean as a single item).
  using Tuple = std::vector<const Sequence*>;

  /// Invokes `fn` once per total variable binding whose where-layers are all
  /// true, in document/left-to-right order.
  void ForEachTuple(const std::function<void(const Tuple&)>& fn) const;

  /// Number of surviving total bindings.
  size_t TupleCount() const;

  /// Fig. 2-style rendering: one line per layer with its binding count.
  std::string ToString() const;

 private:
  std::vector<Layer> layers_;
  std::vector<std::vector<Binding>> nodes_;  // per layer
};

}  // namespace xmlq::algebra

#endif  // XMLQ_ALGEBRA_ENV_H_
