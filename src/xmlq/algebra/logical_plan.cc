#include "xmlq/algebra/logical_plan.h"

namespace xmlq::algebra {

std::string_view LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kDocScan:
      return "DocScan";
    case LogicalOp::kLiteral:
      return "Literal";
    case LogicalOp::kVarRef:
      return "VarRef";
    case LogicalOp::kSelectTag:
      return "SelectTag";
    case LogicalOp::kStructuralJoin:
      return "StructuralJoin";
    case LogicalOp::kNavigate:
      return "Navigate";
    case LogicalOp::kSelectValue:
      return "SelectValue";
    case LogicalOp::kValueJoin:
      return "ValueJoin";
    case LogicalOp::kTreePattern:
      return "TreePattern";
    case LogicalOp::kConstruct:
      return "Construct";
    case LogicalOp::kPatternFilter:
      return "PatternFilter";
    case LogicalOp::kFlwor:
      return "Flwor";
    case LogicalOp::kSequence:
      return "Sequence";
    case LogicalOp::kBinary:
      return "Binary";
    case LogicalOp::kFunction:
      return "Function";
    case LogicalOp::kDocOrderDedup:
      return "DocOrderDedup";
  }
  return "Unknown";
}

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kMod:
      return "mod";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

std::unique_ptr<LogicalExpr> LogicalExpr::Clone() const {
  auto copy = std::make_unique<LogicalExpr>(op);
  copy->str = str;
  copy->axis = axis;
  copy->is_attribute = is_attribute;
  copy->return_ancestor = return_ancestor;
  copy->predicate = predicate;
  copy->binary = binary;
  copy->clauses = clauses;
  copy->literal = literal;
  if (pattern != nullptr) {
    copy->pattern = std::make_unique<PatternGraph>(*pattern);
  }
  if (schema != nullptr) {
    copy->schema = std::make_unique<SchemaTree>(*schema);
  }
  copy->children.reserve(children.size());
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

namespace {

void Render(const LogicalExpr& expr, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(LogicalOpName(expr.op));
  switch (expr.op) {
    case LogicalOp::kDocScan:
    case LogicalOp::kVarRef:
    case LogicalOp::kFunction:
      out->append("(" + expr.str + ")");
      break;
    case LogicalOp::kSelectTag:
      out->append("(tag=" + expr.str + ")");
      break;
    case LogicalOp::kNavigate:
      out->append("(");
      out->append(AxisName(expr.axis));
      out->append("::" + (expr.str.empty() ? "*" : expr.str) + ")");
      break;
    case LogicalOp::kStructuralJoin:
      out->append("(");
      out->append(AxisName(expr.axis));
      out->append(expr.return_ancestor ? ", return=ancestor)"
                                       : ", return=descendant)");
      break;
    case LogicalOp::kSelectValue:
      out->append("(" + expr.predicate.ToString() + ")");
      break;
    case LogicalOp::kBinary:
      out->append("(");
      out->append(BinaryOpName(expr.binary));
      out->append(")");
      break;
    case LogicalOp::kLiteral:
      out->append("(" + expr.literal.ToString() + ")");
      break;
    case LogicalOp::kFlwor: {
      out->append("(");
      bool first = true;
      for (const FlworClause& c : expr.clauses) {
        if (!first) out->append(", ");
        first = false;
        switch (c.kind) {
          case FlworClause::Kind::kFor:
            out->append("for $" + c.var);
            break;
          case FlworClause::Kind::kLet:
            out->append("let $" + c.var);
            break;
          case FlworClause::Kind::kWhere:
            out->append("where");
            break;
          case FlworClause::Kind::kOrderBy:
            out->append(c.descending ? "order-by desc" : "order-by");
            break;
        }
      }
      out->append(")");
      break;
    }
    default:
      break;
  }
  out->push_back('\n');
  if ((expr.op == LogicalOp::kTreePattern ||
       expr.op == LogicalOp::kPatternFilter) &&
      expr.pattern != nullptr) {
    // Inline the pattern graph, further indented.
    std::string pattern = expr.pattern->ToString();
    size_t start = 0;
    while (start < pattern.size()) {
      size_t end = pattern.find('\n', start);
      if (end == std::string::npos) end = pattern.size();
      out->append(static_cast<size_t>(depth + 1) * 2, ' ');
      out->append(pattern, start, end - start);
      out->push_back('\n');
      start = end + 1;
    }
  }
  for (const auto& c : expr.children) Render(*c, depth + 1, out);
}

}  // namespace

std::string LogicalExpr::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

LogicalExprPtr MakeDocScan(std::string doc_name) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kDocScan);
  e->str = std::move(doc_name);
  return e;
}

LogicalExprPtr MakeLiteral(Item item) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kLiteral);
  e->literal = std::move(item);
  return e;
}

LogicalExprPtr MakeVarRef(std::string var) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kVarRef);
  e->str = std::move(var);
  return e;
}

LogicalExprPtr MakeNavigate(LogicalExprPtr input, Axis axis,
                            std::string name_test, bool is_attribute) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kNavigate);
  e->axis = axis;
  e->str = std::move(name_test);
  e->is_attribute = is_attribute;
  e->children.push_back(std::move(input));
  return e;
}

LogicalExprPtr MakeSelectTag(LogicalExprPtr input, std::string tag) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kSelectTag);
  e->str = std::move(tag);
  e->children.push_back(std::move(input));
  return e;
}

LogicalExprPtr MakeSelectValue(LogicalExprPtr input, ValuePredicate pred) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kSelectValue);
  e->predicate = std::move(pred);
  e->children.push_back(std::move(input));
  return e;
}

LogicalExprPtr MakeTreePattern(LogicalExprPtr input, PatternGraph pattern) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kTreePattern);
  e->pattern = std::make_unique<PatternGraph>(std::move(pattern));
  e->children.push_back(std::move(input));
  return e;
}

LogicalExprPtr MakePatternFilter(LogicalExprPtr input, PatternGraph filter) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kPatternFilter);
  e->pattern = std::make_unique<PatternGraph>(std::move(filter));
  e->children.push_back(std::move(input));
  return e;
}

LogicalExprPtr MakeStructuralJoin(LogicalExprPtr left, LogicalExprPtr right,
                                  Axis axis, bool return_ancestor) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kStructuralJoin);
  e->axis = axis;
  e->return_ancestor = return_ancestor;
  e->children.push_back(std::move(left));
  e->children.push_back(std::move(right));
  return e;
}

LogicalExprPtr MakeBinary(BinaryOp op, LogicalExprPtr lhs,
                          LogicalExprPtr rhs) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kBinary);
  e->binary = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

LogicalExprPtr MakeFunction(std::string name,
                            std::vector<LogicalExprPtr> args) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kFunction);
  e->str = std::move(name);
  e->children = std::move(args);
  return e;
}

LogicalExprPtr MakeDocOrderDedup(LogicalExprPtr input) {
  auto e = std::make_unique<LogicalExpr>(LogicalOp::kDocOrderDedup);
  e->children.push_back(std::move(input));
  return e;
}

}  // namespace xmlq::algebra
