#ifndef XMLQ_ALGEBRA_LOGICAL_PLAN_H_
#define XMLQ_ALGEBRA_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/algebra/schema_tree.h"
#include "xmlq/algebra/value.h"

namespace xmlq::algebra {

/// Logical operators. The structure/value/hybrid block is exactly Table 1 of
/// the paper; the remainder is the FLWOR and expression scaffolding needed
/// to translate the supported XQuery subset.
enum class LogicalOp : uint8_t {
  // Sources.
  kDocScan,     // named document -> Tree (as a 1-item List of its doc node)
  kLiteral,     // constant item
  kVarRef,      // FLWOR variable reference

  // Table 1 — structure-based.
  kSelectTag,       // σs : List -> List, keep elements with a given tag
  kStructuralJoin,  // ⋈s : List × List -> List, join on a structural axis
  kNavigate,        // πs : List -> List/NestedList, one axis step

  // Table 1 — value-based.
  kSelectValue,  // σv : List -> List, keep items whose value satisfies ⊙ l
  kValueJoin,    // ⋈v : List × List -> List, join on value comparison

  // Table 1 — hybrid.
  kTreePattern,    // τ : Tree × PatternGraph -> NestedList
  kConstruct,      // γ : NestedList × SchemaTree -> Tree
  kPatternFilter,  // keep nodes where a self-anchored twig embeds

  // FLWOR / expression scaffolding.
  kFlwor,         // clauses + return expression
  kSequence,      // concatenation of children
  kBinary,        // arithmetic / comparison / logic over two children
  kFunction,      // built-in function call
  kDocOrderDedup, // sort by document order + duplicate elimination
};

std::string_view LogicalOpName(LogicalOp op);

/// Binary operators for kBinary.
enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

std::string_view BinaryOpName(BinaryOp op);

/// One clause of a FLWOR expression. `expr_child` indexes into the kFlwor
/// node's children; the return expression is always the last child.
struct FlworClause {
  enum class Kind : uint8_t { kFor, kLet, kWhere, kOrderBy };
  Kind kind = Kind::kFor;
  std::string var;  // empty for where / order by
  size_t expr_child = 0;
  bool descending = false;  // order by modifier
};

/// A node of the logical algebra expression tree. Owned exclusively by its
/// parent; rewrites mutate plans in place.
struct LogicalExpr {
  explicit LogicalExpr(LogicalOp op) : op(op) {}

  LogicalOp op;
  std::vector<std::unique_ptr<LogicalExpr>> children;

  // Payloads (validity depends on `op`).
  std::string str;       // doc name / tag / variable / function name
  Axis axis = Axis::kChild;       // kNavigate, kStructuralJoin
  bool is_attribute = false;      // kNavigate attribute test
  bool return_ancestor = false;   // kStructuralJoin: emit left side instead
  ValuePredicate predicate;       // kSelectValue
  BinaryOp binary = BinaryOp::kEq;          // kBinary
  std::unique_ptr<PatternGraph> pattern;    // kTreePattern
  std::unique_ptr<SchemaTree> schema;       // kConstruct
  std::vector<FlworClause> clauses;         // kFlwor
  Item literal;                             // kLiteral

  /// Deep copy.
  std::unique_ptr<LogicalExpr> Clone() const;

  /// Indented multi-line plan rendering.
  std::string ToString() const;
};

using LogicalExprPtr = std::unique_ptr<LogicalExpr>;

// Convenience factories (used by the parsers/translators and tests).
LogicalExprPtr MakeDocScan(std::string doc_name);
LogicalExprPtr MakeLiteral(Item item);
LogicalExprPtr MakeVarRef(std::string var);
LogicalExprPtr MakeNavigate(LogicalExprPtr input, Axis axis,
                            std::string name_test, bool is_attribute);
LogicalExprPtr MakeSelectTag(LogicalExprPtr input, std::string tag);
LogicalExprPtr MakeSelectValue(LogicalExprPtr input, ValuePredicate pred);
LogicalExprPtr MakeTreePattern(LogicalExprPtr input, PatternGraph pattern);
/// Filter: keeps input nodes at which `filter` embeds. The filter graph's
/// root vertex stands for the context node itself (its label is ignored;
/// its value predicates and child branches are checked at the node).
LogicalExprPtr MakePatternFilter(LogicalExprPtr input, PatternGraph filter);
LogicalExprPtr MakeStructuralJoin(LogicalExprPtr left, LogicalExprPtr right,
                                  Axis axis, bool return_ancestor);
LogicalExprPtr MakeBinary(BinaryOp op, LogicalExprPtr lhs, LogicalExprPtr rhs);
LogicalExprPtr MakeFunction(std::string name,
                            std::vector<LogicalExprPtr> args);
LogicalExprPtr MakeDocOrderDedup(LogicalExprPtr input);

}  // namespace xmlq::algebra

#endif  // XMLQ_ALGEBRA_LOGICAL_PLAN_H_
