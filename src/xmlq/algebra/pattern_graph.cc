#include "xmlq/algebra/pattern_graph.h"

#include <cassert>

#include "xmlq/base/strings.h"

namespace xmlq::algebra {

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kSelf:
      return "self";
  }
  return "unknown";
}

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool ValuePredicate::Eval(std::string_view value) const {
  if (numeric) {
    const auto lhs = ParseDouble(value);
    const auto rhs = ParseDouble(literal);
    if (!lhs.has_value() || !rhs.has_value()) {
      // Non-numeric node value never satisfies a numeric comparison,
      // matching XPath general-comparison semantics with number coercion.
      return false;
    }
    switch (op) {
      case CompareOp::kEq:
        return *lhs == *rhs;
      case CompareOp::kNe:
        return *lhs != *rhs;
      case CompareOp::kLt:
        return *lhs < *rhs;
      case CompareOp::kLe:
        return *lhs <= *rhs;
      case CompareOp::kGt:
        return *lhs > *rhs;
      case CompareOp::kGe:
        return *lhs >= *rhs;
    }
    return false;
  }
  switch (op) {
    case CompareOp::kEq:
      return value == literal;
    case CompareOp::kNe:
      return value != literal;
    case CompareOp::kLt:
      return value < literal;
    case CompareOp::kLe:
      return value <= literal;
    case CompareOp::kGt:
      return value > literal;
    case CompareOp::kGe:
      return value >= literal;
  }
  return false;
}

std::string ValuePredicate::ToString() const {
  std::string out(CompareOpName(op));
  out += numeric ? " " + literal : " \"" + literal + "\"";
  return out;
}

PatternGraph::PatternGraph() {
  PatternVertex root;
  root.is_root = true;
  root.label = "";
  vertices_.push_back(std::move(root));
}

VertexId PatternGraph::AddVertex(VertexId parent, Axis axis,
                                 std::string label, bool is_attribute) {
  assert(parent < vertices_.size());
  PatternVertex v;
  v.label = std::move(label);
  v.is_attribute = is_attribute;
  v.parent = parent;
  v.incoming_axis = axis;
  const VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(std::move(v));
  vertices_[parent].children.push_back(id);
  return id;
}

void PatternGraph::AddPredicate(VertexId v, ValuePredicate predicate) {
  assert(v < vertices_.size());
  vertices_[v].predicates.push_back(std::move(predicate));
}

void PatternGraph::SetOutput(VertexId v) {
  assert(v < vertices_.size());
  vertices_[v].output = true;
}

std::vector<VertexId> PatternGraph::OutputVertices() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].output) out.push_back(v);
  }
  return out;
}

VertexId PatternGraph::SoleOutput() const {
  const std::vector<VertexId> outs = OutputVertices();
  return outs.size() == 1 ? outs[0] : kNoVertex;
}

Status PatternGraph::Validate() const {
  if (vertices_.empty() || !vertices_[0].is_root) {
    return Status::Internal("pattern graph has no root vertex");
  }
  size_t output_count = 0;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    const PatternVertex& vertex = vertices_[v];
    if (vertex.output) ++output_count;
    if (v == 0) {
      if (vertex.parent != kNoVertex) {
        return Status::Internal("root vertex must not have a parent");
      }
      continue;
    }
    if (vertex.parent == kNoVertex || vertex.parent >= vertices_.size()) {
      return Status::Internal("vertex " + std::to_string(v) +
                              " has an invalid parent");
    }
    if (vertex.parent >= v) {
      return Status::Internal("vertices must be topologically ordered");
    }
    bool linked = false;
    for (VertexId c : vertices_[vertex.parent].children) {
      if (c == v) linked = true;
    }
    if (!linked) {
      return Status::Internal("parent/child links are inconsistent");
    }
    if (vertex.label.empty()) {
      return Status::Internal("non-root vertex with empty label");
    }
    if (vertex.is_attribute && vertex.incoming_axis != Axis::kAttribute) {
      return Status::Internal("attribute vertex reached via non-@ axis");
    }
  }
  if (output_count == 0) {
    return Status::Internal("pattern graph has no output vertex");
  }
  return Status::Ok();
}

namespace {

void Render(const PatternGraph& graph, VertexId v, int depth,
            std::string* out) {
  const PatternVertex& vertex = graph.vertex(v);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (vertex.is_root) {
    out->append("root");
  } else {
    switch (vertex.incoming_axis) {
      case Axis::kChild:
        out->append("/");
        break;
      case Axis::kDescendant:
        out->append("//");
        break;
      case Axis::kAttribute:
        out->append("@");
        break;
      case Axis::kFollowingSibling:
        out->append("~");
        break;
      case Axis::kSelf:
        out->append(".");
        break;
    }
    out->append(vertex.label);
  }
  for (const ValuePredicate& p : vertex.predicates) {
    out->append(" [" + p.ToString() + "]");
  }
  if (vertex.output) out->append(" [output]");
  out->push_back('\n');
  for (VertexId c : vertex.children) Render(graph, c, depth + 1, out);
}

}  // namespace

std::string PatternGraph::ToString() const {
  std::string out;
  Render(*this, 0, 0, &out);
  return out;
}

}  // namespace xmlq::algebra
