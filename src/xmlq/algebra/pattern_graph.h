#ifndef XMLQ_ALGEBRA_PATTERN_GRAPH_H_
#define XMLQ_ALGEBRA_PATTERN_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/base/status.h"

namespace xmlq::algebra {

/// Structural relations R between pattern vertices (paper Definition 1).
/// kChild/kAttribute/kFollowingSibling are the *next-of-kin* (NoK) local
/// relations of §4.2; kDescendant is the non-local '//' relation that the
/// NoK partitioner cuts at; kSelf joins partition seams.
enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kAttribute,
  kFollowingSibling,
  kSelf,
};

std::string_view AxisName(Axis axis);

/// True for the local relations a single pre-order scan can verify.
inline bool IsNokAxis(Axis axis) {
  return axis == Axis::kChild || axis == Axis::kAttribute ||
         axis == Axis::kFollowingSibling;
}

/// Comparison operator of a vertex value constraint (the `⊙` of Def. 1).
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpName(CompareOp op);

/// One `⟨⊙, l⟩` constraint attached to a vertex: the matched node's
/// string-value must compare against the literal. If the literal parses as a
/// number, the comparison is numeric (XPath general-comparison style),
/// otherwise string equality/ordering.
struct ValuePredicate {
  CompareOp op = CompareOp::kEq;
  std::string literal;
  bool numeric = false;

  /// Evaluates the predicate against a node's string-value.
  bool Eval(std::string_view value) const;

  std::string ToString() const;
};

/// Vertex id inside a PatternGraph.
using VertexId = uint32_t;
inline constexpr VertexId kNoVertex = UINT32_MAX;

/// A vertex of the pattern graph: label over Σ ∪ {*}, optional value
/// constraints, and an output marker (the `O` set of Def. 1).
struct PatternVertex {
  std::string label;         // element/attribute name; "*" matches any
  bool is_attribute = false; // matches attribute nodes instead of elements
  bool is_root = false;      // matches the document node (the path's '/')
  bool output = false;
  std::vector<ValuePredicate> predicates;

  // Tree shape bookkeeping (general path expressions compile to twigs).
  VertexId parent = kNoVertex;
  Axis incoming_axis = Axis::kChild;  // axis on the arc from `parent`
  std::vector<VertexId> children;
};

/// Labeled, directed pattern graph P = (Σ, V, A, R, O) of Definition 1,
/// restricted to the tree-shaped ("twig") patterns that path expressions
/// produce. Vertex 0 is always the root vertex.
class PatternGraph {
 public:
  PatternGraph();

  /// Adds a vertex labeled `label` under `parent` via `axis`; returns its id.
  VertexId AddVertex(VertexId parent, Axis axis, std::string label,
                     bool is_attribute = false);

  /// Attaches a value constraint to `v`.
  void AddPredicate(VertexId v, ValuePredicate predicate);

  /// Marks `v` as an output vertex (member of O).
  void SetOutput(VertexId v);

  VertexId root() const { return 0; }
  size_t VertexCount() const { return vertices_.size(); }
  const PatternVertex& vertex(VertexId v) const { return vertices_[v]; }
  PatternVertex& mutable_vertex(VertexId v) { return vertices_[v]; }

  /// The output vertices in id order.
  std::vector<VertexId> OutputVertices() const;
  /// The single output vertex; kNoVertex when zero or several are marked.
  VertexId SoleOutput() const;

  /// Checks the twig invariants: vertex 0 is the only root, parent/child
  /// links are consistent, every non-root vertex is reachable from the root,
  /// and at least one vertex is an output.
  Status Validate() const;

  /// Multi-line rendering, one vertex per line with axis prefixes, e.g.
  ///   root
  ///     /bib
  ///       //book [output]
  ///         /title
  std::string ToString() const;

 private:
  std::vector<PatternVertex> vertices_;
};

}  // namespace xmlq::algebra

#endif  // XMLQ_ALGEBRA_PATTERN_GRAPH_H_
