#include "xmlq/algebra/rewrite.h"

#include <utility>

namespace xmlq::algebra {

namespace {

/// Applies `fn` (a local rewrite returning 0/1) bottom-up over the tree.
template <typename Fn>
int WalkRewrite(LogicalExprPtr* expr, Fn&& fn) {
  int count = 0;
  for (auto& child : (*expr)->children) {
    count += WalkRewrite(&child, fn);
  }
  count += fn(expr);
  return count;
}

bool IsFoldableNavigate(const LogicalExpr& e) {
  if (e.op != LogicalOp::kNavigate) return false;
  switch (e.axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kAttribute:
    case Axis::kFollowingSibling:
      return true;
    case Axis::kSelf:
      return false;
  }
  return false;
}

/// A TreePattern whose results are distinct nodes in document order: true
/// when it has a sole output vertex (multi-output patterns emit nested
/// combinations).
bool PatternIsOrderedDistinct(const LogicalExpr& e) {
  return e.op == LogicalOp::kTreePattern && e.pattern != nullptr &&
         e.pattern->SoleOutput() != kNoVertex;
}

int TryNormalizeDoc(LogicalExprPtr* expr) {
  LogicalExpr& e = **expr;
  if (e.op != LogicalOp::kFunction ||
      (e.str != "doc" && e.str != "document") || e.children.size() != 1) {
    return 0;
  }
  const LogicalExpr& arg = *e.children[0];
  if (arg.op != LogicalOp::kLiteral || !arg.literal.IsString()) return 0;
  *expr = MakeDocScan(arg.literal.str());
  return 1;
}

int TryFoldNavigate(LogicalExprPtr* expr) {
  LogicalExpr& nav = **expr;
  if (!IsFoldableNavigate(nav)) return 0;
  LogicalExpr& input = *nav.children[0];

  if (input.op == LogicalOp::kDocScan) {
    PatternGraph graph;
    const VertexId v = graph.AddVertex(graph.root(), nav.axis, nav.str,
                                       nav.is_attribute);
    graph.SetOutput(v);
    LogicalExprPtr replacement =
        MakeTreePattern(std::move(nav.children[0]), std::move(graph));
    *expr = std::move(replacement);
    return 1;
  }

  if (input.op == LogicalOp::kTreePattern && input.pattern != nullptr) {
    const VertexId out_vertex = input.pattern->SoleOutput();
    if (out_vertex == kNoVertex) return 0;
    // Attribute vertices have no element children to extend into.
    if (input.pattern->vertex(out_vertex).is_attribute) return 0;
    PatternGraph graph = *input.pattern;
    graph.mutable_vertex(out_vertex).output = false;
    const VertexId v =
        graph.AddVertex(out_vertex, nav.axis, nav.str, nav.is_attribute);
    graph.SetOutput(v);
    LogicalExprPtr replacement =
        MakeTreePattern(std::move(input.children[0]), std::move(graph));
    *expr = std::move(replacement);
    return 1;
  }
  return 0;
}

int TryPushSelectValue(LogicalExprPtr* expr) {
  LogicalExpr& sel = **expr;
  if (sel.op != LogicalOp::kSelectValue) return 0;
  LogicalExpr& input = *sel.children[0];
  if (input.op != LogicalOp::kTreePattern || input.pattern == nullptr) {
    return 0;
  }
  const VertexId out_vertex = input.pattern->SoleOutput();
  if (out_vertex == kNoVertex) return 0;
  input.pattern->AddPredicate(out_vertex, sel.predicate);
  *expr = std::move(sel.children[0]);
  return 1;
}

int TryRemoveDedup(LogicalExprPtr* expr) {
  LogicalExpr& dedup = **expr;
  if (dedup.op != LogicalOp::kDocOrderDedup) return 0;
  LogicalExpr& input = *dedup.children[0];
  const bool ordered_distinct = PatternIsOrderedDistinct(input) ||
                                input.op == LogicalOp::kDocScan ||
                                input.op == LogicalOp::kDocOrderDedup;
  if (!ordered_distinct) return 0;
  *expr = std::move(dedup.children[0]);
  return 1;
}

int TryFuseSelectTag(LogicalExprPtr* expr) {
  LogicalExpr& sel = **expr;
  if (sel.op != LogicalOp::kSelectTag) return 0;
  LogicalExpr& input = *sel.children[0];
  if (input.op != LogicalOp::kNavigate || input.is_attribute) return 0;
  if (!input.str.empty() && input.str != "*") return 0;
  input.str = sel.str;
  *expr = std::move(sel.children[0]);
  return 1;
}

/// Deep-copies the filter subtree rooted at `src_v` (of `src`) under
/// `dst_parent` in `dst`.
void CopyFilterBranch(const PatternGraph& src, VertexId src_v,
                      PatternGraph* dst, VertexId dst_parent) {
  const PatternVertex& vertex = src.vertex(src_v);
  const VertexId copy = dst->AddVertex(dst_parent, vertex.incoming_axis,
                                       vertex.label, vertex.is_attribute);
  for (const ValuePredicate& pred : vertex.predicates) {
    dst->AddPredicate(copy, pred);
  }
  for (const VertexId c : vertex.children) {
    CopyFilterBranch(src, c, dst, copy);
  }
}

int TryGraftFilter(LogicalExprPtr* expr) {
  LogicalExpr& filter = **expr;
  if (filter.op != LogicalOp::kPatternFilter || filter.pattern == nullptr) {
    return 0;
  }
  LogicalExpr& input = *filter.children[0];
  if (input.op != LogicalOp::kTreePattern || input.pattern == nullptr) {
    return 0;
  }
  const VertexId out_vertex = input.pattern->SoleOutput();
  if (out_vertex == kNoVertex) return 0;
  const PatternGraph& f = *filter.pattern;
  for (const ValuePredicate& pred : f.vertex(f.root()).predicates) {
    input.pattern->AddPredicate(out_vertex, pred);
  }
  for (const VertexId c : f.vertex(f.root()).children) {
    CopyFilterBranch(f, c, input.pattern.get(), out_vertex);
  }
  *expr = std::move(filter.children[0]);
  return 1;
}

}  // namespace

int GraftPatternFilters(LogicalExprPtr* expr) {
  return WalkRewrite(expr, TryGraftFilter);
}

int NormalizeDocCalls(LogicalExprPtr* expr) {
  return WalkRewrite(expr, TryNormalizeDoc);
}

int FoldNavigationChains(LogicalExprPtr* expr) {
  return WalkRewrite(expr, TryFoldNavigate);
}

int PushSelectValueIntoPattern(LogicalExprPtr* expr) {
  return WalkRewrite(expr, TryPushSelectValue);
}

int RemoveRedundantDocOrderDedup(LogicalExprPtr* expr) {
  return WalkRewrite(expr, TryRemoveDedup);
}

int FuseSelectTagIntoNavigate(LogicalExprPtr* expr) {
  return WalkRewrite(expr, TryFuseSelectTag);
}

int ApplyAllRewrites(LogicalExprPtr* expr) {
  int total = 0;
  while (true) {
    int round = 0;
    round += NormalizeDocCalls(expr);
    round += FuseSelectTagIntoNavigate(expr);
    round += FoldNavigationChains(expr);
    round += PushSelectValueIntoPattern(expr);
    round += GraftPatternFilters(expr);
    round += RemoveRedundantDocOrderDedup(expr);
    if (round == 0) break;
    total += round;
  }
  return total;
}

}  // namespace xmlq::algebra
