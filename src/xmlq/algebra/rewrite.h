#ifndef XMLQ_ALGEBRA_REWRITE_H_
#define XMLQ_ALGEBRA_REWRITE_H_

#include "xmlq/algebra/logical_plan.h"

namespace xmlq::algebra {

/// Logical rewrite rules (paper §3 / §6: "develop logical optimization
/// techniques ... defining rewrite rules"). Each rule returns the number of
/// sites it transformed; `ApplyAllRewrites` iterates the full set to a
/// fixpoint. All rules preserve the value of the expression.

/// R0 — source normalization: a doc("name") function call with a literal
/// argument is the same source as DocScan(name); normalizing first lets the
/// navigation-folding rule fire on doc()-rooted paths too.
int NormalizeDocCalls(LogicalExprPtr* expr);

/// R1 — navigation folding: a chain of πs (Navigate) steps over a DocScan or
/// an existing τ (TreePattern) collapses into a single TreePattern, turning
/// k pipelined steps (or k-1 structural joins) into one pattern match. This
/// is the rewrite that makes the NoK single-scan evaluation applicable.
int FoldNavigationChains(LogicalExprPtr* expr);

/// R2 — predicate pushdown: σv (SelectValue) directly above a TreePattern
/// with a sole output vertex becomes a value constraint on that vertex, so
/// the physical matcher filters during the scan instead of afterwards.
int PushSelectValueIntoPattern(LogicalExprPtr* expr);

/// R3 — sort/dedup elision: DocOrderDedup over an operator that already
/// produces distinct nodes in document order (TreePattern with a sole
/// output, DocScan, or another DocOrderDedup) is removed.
int RemoveRedundantDocOrderDedup(LogicalExprPtr* expr);

/// R4 — σs fusion: SelectTag over a wildcard Navigate step becomes a named
/// Navigate step.
int FuseSelectTagIntoNavigate(LogicalExprPtr* expr);

/// R5 — filter grafting: a PatternFilter directly above a TreePattern with
/// a sole output vertex merges into the pattern (the filter root's value
/// predicates and branches attach to the output vertex), so the physical
/// matcher checks them during the scan.
int GraftPatternFilters(LogicalExprPtr* expr);

/// Applies all rules to a fixpoint; returns total rule applications.
int ApplyAllRewrites(LogicalExprPtr* expr);

}  // namespace xmlq::algebra

#endif  // XMLQ_ALGEBRA_REWRITE_H_
