#include "xmlq/algebra/schema_tree.h"

namespace xmlq::algebra {

namespace {

size_t CountNodes(const SchemaNode& node) {
  size_t n = 1;
  for (const SchemaNode& c : node.children) n += CountNodes(c);
  return n;
}

void Render(const SchemaNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case SchemaNodeKind::kElement:
      out->append("<" + node.label);
      for (const SchemaAttr& a : node.attrs) {
        out->append(" " + a.name + "=");
        out->append(a.expr == kNoExpr ? "\"" + a.literal + "\""
                                      : "{e" + std::to_string(a.expr) + "}");
      }
      out->append(">");
      break;
    case SchemaNodeKind::kText:
      out->append("text \"" + node.literal + "\"");
      break;
    case SchemaNodeKind::kPlaceholder:
      out->append("{e" + std::to_string(node.expr) + "}");
      break;
    case SchemaNodeKind::kIf:
      out->append("if (e" + std::to_string(node.expr) + ")");
      break;
  }
  if (node.iterate != kNoExpr) {
    out->append(" phi=e" + std::to_string(node.iterate));
  }
  out->push_back('\n');
  for (const SchemaNode& c : node.children) Render(c, depth + 1, out);
}

}  // namespace

size_t SchemaTree::NodeCount() const { return CountNodes(root_); }

std::string SchemaTree::ToString() const {
  std::string out;
  Render(root_, 0, &out);
  return out;
}

}  // namespace xmlq::algebra
