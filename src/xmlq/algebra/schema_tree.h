#ifndef XMLQ_ALGEBRA_SCHEMA_TREE_H_
#define XMLQ_ALGEBRA_SCHEMA_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xmlq::algebra {

/// Slot referencing an expression owned by the enclosing query translation
/// (the `E` set of Definition 2); -1 means "no expression".
using ExprSlot = int32_t;
inline constexpr ExprSlot kNoExpr = -1;

/// Kinds of schema-tree nodes (paper Definition 2 / Fig. 1b).
enum class SchemaNodeKind : uint8_t {
  kElement,      // constructor-node labeled with an element name
  kText,         // literal character data
  kPlaceholder,  // `{ expr }` — replaced by the expression's value(s)
  kIf,           // if-node: children emitted only when the expr is true
};

/// A constructed attribute: `name="literal"` or `name="{expr}"`.
struct SchemaAttr {
  std::string name;
  std::string literal;
  ExprSlot expr = kNoExpr;
};

/// One node of the output schema tree.
struct SchemaNode {
  SchemaNodeKind kind = SchemaNodeKind::kElement;
  std::string label;    // element name (kElement)
  std::string literal;  // character data (kText)
  ExprSlot expr = kNoExpr;  // placeholder / if condition
  /// Arc label ϕ (Fig. 1b): when set, this subtree is instantiated once per
  /// binding tuple produced by the iteration expression (a FLWOR in the
  /// translation); kNoExpr means instantiate exactly once.
  ExprSlot iterate = kNoExpr;
  std::vector<SchemaAttr> attrs;
  std::vector<SchemaNode> children;
};

/// Labeled output-template tree O = (Σ, N, A, E) extracted from XQuery
/// constructor expressions (paper Definition 2). The construction operator
/// γ : NestedList × SchemaTree → Tree instantiates it over the intermediate
/// bindings to produce the result document.
class SchemaTree {
 public:
  SchemaTree() = default;
  explicit SchemaTree(SchemaNode root) : root_(std::move(root)) {}

  const SchemaNode& root() const { return root_; }
  SchemaNode& mutable_root() { return root_; }

  /// Total number of schema nodes.
  size_t NodeCount() const;

  /// Indented rendering; placeholders print as "{e<slot>}".
  std::string ToString() const;

 private:
  SchemaNode root_;
};

}  // namespace xmlq::algebra

#endif  // XMLQ_ALGEBRA_SCHEMA_TREE_H_
