#include "xmlq/algebra/value.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "xmlq/base/strings.h"

namespace xmlq::algebra {

std::string Item::StringValue() const {
  if (IsNode()) return node().doc->StringValue(node().id);
  if (IsString()) return str();
  if (IsNumber()) return FormatNumber(number());
  return boolean() ? "true" : "false";
}

double Item::NumberValue() const {
  if (IsNumber()) return number();
  if (IsBool()) return boolean() ? 1.0 : 0.0;
  const std::string s = StringValue();
  if (auto parsed = ParseDouble(s)) return *parsed;
  return std::numeric_limits<double>::quiet_NaN();
}

bool Item::BooleanValue() const {
  if (IsNode()) return true;
  if (IsBool()) return boolean();
  if (IsNumber()) return number() != 0.0 && !std::isnan(number());
  return !str().empty();
}

std::string Item::ToString() const {
  if (IsNode()) {
    std::string label(node().doc->NameStr(node().id));
    if (label.empty()) {
      label = std::string(xml::NodeKindName(node().doc->Kind(node().id)));
    }
    return label + "(" + std::to_string(node().id) + ")";
  }
  if (IsString()) return "\"" + str() + "\"";
  if (IsNumber()) return FormatNumber(number());
  return boolean() ? "true" : "false";
}

void SortDocOrderDedup(Sequence* seq) {
  // Stable partition: nodes first in document order (deduped), then the
  // remaining atomic items in their original order.
  std::vector<NodeRef> nodes;
  Sequence atoms;
  for (Item& item : *seq) {
    if (item.IsNode()) {
      nodes.push_back(item.node());
    } else {
      atoms.push_back(std::move(item));
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  seq->clear();
  seq->reserve(nodes.size() + atoms.size());
  for (const NodeRef& n : nodes) seq->push_back(Item(n));
  for (Item& a : atoms) seq->push_back(std::move(a));
}

namespace {

void FlattenInto(const NestedList& list, Sequence* out) {
  for (const NestedItem& entry : list) {
    out->push_back(entry.item);
    FlattenInto(entry.children, out);
  }
}

}  // namespace

Sequence Flatten(const NestedList& list) {
  Sequence out;
  FlattenInto(list, &out);
  return out;
}

size_t NestedSize(const NestedList& list) {
  size_t n = 0;
  for (const NestedItem& entry : list) {
    n += 1 + NestedSize(entry.children);
  }
  return n;
}

std::string ToString(const NestedList& list) {
  std::string out = "[";
  bool first = true;
  for (const NestedItem& entry : list) {
    if (!first) out += ", ";
    first = false;
    out += entry.item.ToString();
    if (!entry.children.empty()) {
      out += " ";
      out += ToString(entry.children);
    }
  }
  out += "]";
  return out;
}

}  // namespace xmlq::algebra
