#ifndef XMLQ_ALGEBRA_VALUE_H_
#define XMLQ_ALGEBRA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "xmlq/xml/document.h"

namespace xmlq::algebra {

/// Reference to a node of some document. Document order across a single
/// document is NodeId order (documents are pre-order numbered); across
/// documents, pointer identity breaks ties deterministically.
struct NodeRef {
  const xml::Document* doc = nullptr;
  xml::NodeId id = xml::kNullNode;

  friend bool operator==(const NodeRef& a, const NodeRef& b) = default;
  friend bool operator<(const NodeRef& a, const NodeRef& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.id < b.id;
  }
};

/// One item of the XQuery data model: a tree node or an atomic value.
/// (Sort `TreeNode` plus the primitive sorts of paper §3.2.)
class Item {
 public:
  Item() : value_(false) {}
  explicit Item(NodeRef node) : value_(node) {}
  explicit Item(std::string s) : value_(std::move(s)) {}
  explicit Item(double d) : value_(d) {}
  explicit Item(bool b) : value_(b) {}

  bool IsNode() const { return std::holds_alternative<NodeRef>(value_); }
  bool IsString() const { return std::holds_alternative<std::string>(value_); }
  bool IsNumber() const { return std::holds_alternative<double>(value_); }
  bool IsBool() const { return std::holds_alternative<bool>(value_); }

  const NodeRef& node() const { return std::get<NodeRef>(value_); }
  const std::string& str() const { return std::get<std::string>(value_); }
  double number() const { return std::get<double>(value_); }
  bool boolean() const { return std::get<bool>(value_); }

  /// XPath string-value of the item (atomics format themselves; nodes
  /// concatenate descendant text).
  std::string StringValue() const;

  /// Numeric value per XPath number() (NaN when not parseable).
  double NumberValue() const;

  /// Effective boolean value (nodes: true; strings: non-empty; numbers:
  /// non-zero and not NaN).
  bool BooleanValue() const;

  friend bool operator==(const Item& a, const Item& b) {
    return a.value_ == b.value_;
  }

  /// Debug rendering ("node(7)", "\"abc\"", "3.5", "true").
  std::string ToString() const;

 private:
  std::variant<NodeRef, std::string, double, bool> value_;
};

/// Sort `List`: a flat, ordered sequence of items (the W3C data model's
/// only collection sort).
using Sequence = std::vector<Item>;

/// Sorts document-order and removes duplicate node refs; atomic items keep
/// their relative order after all nodes.
void SortDocOrderDedup(Sequence* seq);

/// Sort `NestedList` (paper §3.2): arbitrary-depth nesting. Each entry
/// carries an item and an ordered list of nested children, so a flat list is
/// the special case where no entry has children. This is the output sort of
/// the tree-pattern-matching operator τ and the input of construction γ.
struct NestedItem {
  Item item;
  std::vector<NestedItem> children;

  explicit NestedItem(Item i) : item(std::move(i)) {}
  NestedItem(Item i, std::vector<NestedItem> kids)
      : item(std::move(i)), children(std::move(kids)) {}
};

using NestedList = std::vector<NestedItem>;

/// Flattens a nested list in pre-order into a flat sequence.
Sequence Flatten(const NestedList& list);

/// Total number of entries (at all nesting depths).
size_t NestedSize(const NestedList& list);

/// Debug rendering, e.g. "[a, [b, c], d]".
std::string ToString(const NestedList& list);

}  // namespace xmlq::algebra

#endif  // XMLQ_ALGEBRA_VALUE_H_
