#include "xmlq/api/database.h"

#include <utility>

#include "xmlq/base/strings.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xquery/translate.h"
#include "xmlq/opt/optimizer.h"
#include "xmlq/opt/plan_annotator.h"

namespace xmlq::api {

using algebra::LogicalExpr;
using algebra::LogicalExprPtr;
using algebra::LogicalOp;

Status Database::LoadDocument(std::string name, std::string_view xml_text,
                              xml::ParseOptions options) {
  XMLQ_ASSIGN_OR_RETURN(xml::Document parsed,
                        xml::ParseDocument(xml_text, options));
  return RegisterDocument(std::move(name),
                          std::make_unique<xml::Document>(std::move(parsed)));
}

Status Database::RegisterDocument(std::string name,
                                  std::unique_ptr<xml::Document> doc) {
  if (doc == nullptr) return Status::InvalidArgument("null document");
  if (!doc->IsPreorder()) {
    return Status::InvalidArgument(
        "document node ids must be in pre-order (build top-down)");
  }
  Entry entry;
  entry.dom = std::move(doc);
  XMLQ_ASSIGN_OR_RETURN(storage::SuccinctDocument succinct,
                        storage::SuccinctDocument::TryBuild(*entry.dom));
  entry.succinct =
      std::make_unique<storage::SuccinctDocument>(std::move(succinct));
  XMLQ_ASSIGN_OR_RETURN(storage::RegionIndex regions,
                        storage::RegionIndex::TryBuild(*entry.dom));
  entry.regions = std::make_unique<storage::RegionIndex>(std::move(regions));
  XMLQ_ASSIGN_OR_RETURN(storage::ValueIndex values,
                        storage::ValueIndex::TryBuild(*entry.dom));
  entry.values = std::make_unique<storage::ValueIndex>(std::move(values));
  entry.tags = std::make_unique<storage::TagDictionary>(*entry.dom);
  entry.synopsis = std::make_unique<opt::Synopsis>(*entry.dom);
  entry.view = exec::IndexedDocument{entry.dom.get(), entry.succinct.get(),
                                     entry.regions.get(), entry.values.get()};
  if (entries_.empty()) default_document_ = name;
  entries_[std::move(name)] = std::move(entry);
  return Status::Ok();
}

Result<storage::SnapshotWriteInfo> Database::Save(
    std::string_view name, const std::string& path) const {
  const auto it = entries_.find(name.empty() ? default_document_
                                             : std::string(name));
  if (it == entries_.end()) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not loaded");
  }
  const Entry& entry = it->second;
  return storage::WriteSnapshot(path, *entry.dom, *entry.succinct,
                                *entry.regions, *entry.values, *entry.tags);
}

Status Database::Open(std::string name, const std::string& path,
                      storage::SnapshotOpenMode mode) {
  XMLQ_ASSIGN_OR_RETURN(storage::OpenedSnapshot snapshot,
                        storage::OpenSnapshot(path, mode));
  Entry entry;
  entry.dom = std::move(snapshot.dom);
  entry.succinct = std::move(snapshot.succinct);
  entry.regions = std::move(snapshot.regions);
  entry.values = std::move(snapshot.values);
  entry.tags = std::move(snapshot.tags);
  entry.backing = std::move(snapshot.backing);
  // The synopsis is a small derived statistic; rebuilding it from the
  // restored DOM keeps it out of the file format.
  entry.synopsis = std::make_unique<opt::Synopsis>(*entry.dom);
  entry.view = exec::IndexedDocument{entry.dom.get(), entry.succinct.get(),
                                     entry.regions.get(), entry.values.get()};
  if (entries_.empty()) default_document_ = name;
  entries_[std::move(name)] = std::move(entry);
  return Status::Ok();
}

const exec::IndexedDocument* Database::Get(std::string_view name) const {
  const auto it = entries_.find(name.empty() ? default_document_
                                             : std::string(name));
  return it == entries_.end() ? nullptr : &it->second.view;
}

const opt::Synopsis* Database::GetSynopsis(std::string_view name) const {
  const auto it = entries_.find(name.empty() ? default_document_
                                             : std::string(name));
  return it == entries_.end() ? nullptr : it->second.synopsis.get();
}

exec::EvalContext Database::MakeContext(const QueryOptions& options) const {
  exec::EvalContext context;
  for (const auto& [name, entry] : entries_) {
    context.documents.emplace(name, entry.view);
  }
  if (!default_document_.empty()) {
    context.documents.emplace("", entries_.at(default_document_).view);
  }
  context.strategy = options.strategy;
  context.flwor_mode = options.flwor_mode;
  return context;
}

namespace {

/// Finds every τ node in a plan.
void CollectPatterns(const LogicalExpr& plan,
                     std::vector<const LogicalExpr*>* out) {
  if (plan.op == LogicalOp::kTreePattern) out->push_back(&plan);
  for (const auto& child : plan.children) CollectPatterns(*child, out);
}

/// First DocScan in the plan — the document the profile annotator uses for
/// its synopsis estimates.
const LogicalExpr* FindDocScan(const LogicalExpr& plan) {
  if (plan.op == LogicalOp::kDocScan) return &plan;
  for (const auto& child : plan.children) {
    if (const LogicalExpr* found = FindDocScan(*child)) return found;
  }
  return nullptr;
}

/// Stamps the strategy the executor will actually run (one per query) onto
/// every τ profile node, replacing the annotator's per-pattern pick.
void TagExecutedStrategy(const LogicalExpr& plan, std::string_view strategy,
                         exec::PlanProfile* profile) {
  if (plan.op == LogicalOp::kTreePattern) {
    if (exec::ProfileNode* node = profile->NodeFor(&plan); node != nullptr) {
      node->estimate.strategy = strategy;
    }
  }
  for (const auto& child : plan.children) {
    TagExecutedStrategy(*child, strategy, profile);
  }
}

}  // namespace

exec::PatternStrategy Database::PickStrategy(const LogicalExpr& plan,
                                             std::string* explanation) const {
  std::vector<const LogicalExpr*> patterns;
  CollectPatterns(plan, &patterns);
  exec::PatternStrategy best = exec::PatternStrategy::kNok;
  double worst_cost = -1;
  for (const LogicalExpr* node : patterns) {
    // The pattern's document is its DocScan child when present.
    std::string doc_name;
    if (!node->children.empty() &&
        node->children[0]->op == LogicalOp::kDocScan) {
      doc_name = node->children[0]->str;
    }
    if (doc_name.empty()) doc_name = default_document_;
    const auto it = entries_.find(doc_name);
    if (it == entries_.end() || node->pattern == nullptr) continue;
    const opt::StrategyChoice choice = opt::ChooseStrategy(
        *it->second.synopsis, it->second.dom->pool(), *node->pattern);
    if (explanation != nullptr) {
      explanation->append(choice.explanation);
      explanation->push_back('\n');
    }
    // One strategy per query: follow the costliest pattern's choice.
    if (choice.cost > worst_cost) {
      worst_cost = choice.cost;
      best = choice.strategy;
    }
  }
  return best;
}

Result<exec::QueryResult> Database::Run(LogicalExprPtr plan,
                                        const QueryOptions& options) {
  exec::EvalContext context = MakeContext(options);
  if (options.auto_optimize) {
    context.strategy = PickStrategy(*plan, nullptr);
  }
  std::unique_ptr<exec::PlanProfile> profile;
  if (options.collect_stats) {
    profile = exec::PlanProfile::Create(*plan);
    std::string doc_name;
    if (const LogicalExpr* scan = FindDocScan(*plan); scan != nullptr) {
      doc_name = scan->str;
    }
    if (doc_name.empty()) doc_name = default_document_;
    if (const auto it = entries_.find(doc_name); it != entries_.end()) {
      opt::AnnotateProfile(*it->second.synopsis, it->second.dom->pool(),
                           *plan, profile.get());
    }
    TagExecutedStrategy(*plan, exec::PatternStrategyName(context.strategy),
                        profile.get());
    context.profile = profile.get();
  }
  // The guard lives on this frame: the executor and everything below it only
  // borrow the pointer, and Run outlives the evaluation.
  ResourceGuard guard(options.limits);
  if (!options.limits.Unlimited()) context.guard = &guard;
  exec::Executor executor(&context);
  auto result = executor.Evaluate(*plan);
  if (profile != nullptr) profile->Finalize();
  if (!result.ok()) return result.status();
  result->profile = std::move(profile);
  return result;
}

Result<LogicalExprPtr> Database::Compile(std::string_view query,
                                         const QueryOptions& options) const {
  xquery::TranslateOptions translate_options;
  translate_options.default_document = default_document_;
  translate_options.apply_rewrites = options.apply_rewrites;
  auto plan = xquery::CompileQuery(query, translate_options);
  if (plan.ok()) return plan;
  // Pure XPath with predicates is outside the XQuery path subset but fully
  // supported by the XPath front end; fall back for absolute paths.
  const std::string_view trimmed = TrimWhitespace(query);
  if (!trimmed.empty() && trimmed[0] == '/') {
    auto xpath_plan = xpath::CompilePath(trimmed, default_document_);
    if (xpath_plan.ok()) return xpath_plan;
  }
  return plan.status();
}

Result<exec::QueryResult> Database::Query(std::string_view query,
                                          const QueryOptions& options) {
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan, Compile(query, options));
  return Run(std::move(plan), options);
}

Result<exec::QueryResult> Database::QueryPath(std::string_view path,
                                              std::string_view doc_name,
                                              const QueryOptions& options) {
  const std::string name =
      doc_name.empty() ? default_document_ : std::string(doc_name);
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan,
                        xpath::CompilePath(path, name));
  return Run(std::move(plan), options);
}

Result<std::string> Database::Explain(std::string_view query,
                                      const QueryOptions& options) {
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan, Compile(query, options));
  std::string out = plan->ToString();
  std::string strategies;
  PickStrategy(*plan, &strategies);
  if (!strategies.empty()) {
    out += "-- physical strategy --\n" + strategies;
  }
  return out;
}

Result<std::string> Database::ExplainAnalyze(std::string_view query,
                                             const QueryOptions& options) {
  QueryOptions analyze_options = options;
  analyze_options.collect_stats = true;
  XMLQ_ASSIGN_OR_RETURN(exec::QueryResult result,
                        Query(query, analyze_options));
  std::string out;
  if (result.profile != nullptr) out = result.profile->ToString();
  out += "-- " + std::to_string(result.value.size()) + " item(s)\n";
  return out;
}

std::string Database::ToXml(const exec::QueryResult& result, bool indent) {
  xml::SerializeOptions options;
  options.indent = indent;
  std::string out;
  for (const algebra::Item& item : result.value) {
    if (!out.empty()) out.push_back('\n');
    if (item.IsNode()) {
      out += xml::Serialize(*item.node().doc, item.node().id, options);
    } else {
      out += item.StringValue();
    }
  }
  return out;
}

Result<StorageReport> Database::Report(std::string_view name) const {
  const auto it = entries_.find(name.empty() ? default_document_
                                             : std::string(name));
  if (it == entries_.end()) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not loaded");
  }
  const Entry& entry = it->second;
  StorageReport report;
  report.dom_bytes = entry.dom->MemoryUsage();
  report.succinct_structure_bytes = entry.succinct->StructureBytes();
  report.succinct_content_bytes = entry.succinct->ContentBytes();
  report.region_index_bytes = entry.regions->MemoryUsage();
  report.value_index_bytes = entry.values->MemoryUsage();
  report.tag_dictionary_bytes = entry.tags->HeapBytes();
  report.node_count = entry.dom->NodeCount();
  report.succinct_heap_bytes = entry.succinct->HeapBytes();
  report.region_index_heap_bytes = entry.regions->HeapBytes();
  report.value_index_heap_bytes = entry.values->HeapBytes();
  report.tag_dictionary_heap_bytes = entry.tags->HeapBytes();
  if (entry.backing != nullptr) {
    report.from_snapshot = true;
    report.mapped =
        entry.backing->mode() == storage::SnapshotOpenMode::kMap;
    report.snapshot_file_bytes = entry.backing->file_size();
  }
  return report;
}

}  // namespace xmlq::api
