#include "xmlq/api/database.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <system_error>
#include <utility>

#include "xmlq/base/crash_point.h"
#include "xmlq/base/crc32.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/file_io.h"
#include "xmlq/base/strings.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xquery/translate.h"
#include "xmlq/opt/optimizer.h"
#include "xmlq/opt/plan_annotator.h"

namespace xmlq::api {

using algebra::LogicalExpr;
using algebra::LogicalExprPtr;
using algebra::LogicalOp;

Status Database::LoadDocument(std::string name, std::string_view xml_text,
                              xml::ParseOptions options) {
  XMLQ_ASSIGN_OR_RETURN(xml::Document parsed,
                        xml::ParseDocument(xml_text, options));
  return RegisterDocument(std::move(name),
                          std::make_unique<xml::Document>(std::move(parsed)));
}

Status Database::RegisterDocument(std::string name,
                                  std::unique_ptr<xml::Document> doc) {
  if (doc == nullptr) return Status::InvalidArgument("null document");
  if (!doc->IsPreorder()) {
    return Status::InvalidArgument(
        "document node ids must be in pre-order (build top-down)");
  }
  // All physical representations are built outside the catalog lock; only
  // the final pointer swap is serialized.
  auto entry = std::make_shared<Entry>();
  entry->dom = std::move(doc);
  XMLQ_ASSIGN_OR_RETURN(storage::SuccinctDocument succinct,
                        storage::SuccinctDocument::TryBuild(*entry->dom));
  entry->succinct =
      std::make_unique<storage::SuccinctDocument>(std::move(succinct));
  XMLQ_ASSIGN_OR_RETURN(storage::RegionIndex regions,
                        storage::RegionIndex::TryBuild(*entry->dom));
  entry->regions = std::make_unique<storage::RegionIndex>(std::move(regions));
  XMLQ_ASSIGN_OR_RETURN(storage::ValueIndex values,
                        storage::ValueIndex::TryBuild(*entry->dom));
  entry->values = std::make_unique<storage::ValueIndex>(std::move(values));
  entry->tags = std::make_unique<storage::TagDictionary>(*entry->dom);
  entry->synopsis = std::make_unique<opt::Synopsis>(*entry->dom);
  entry->view = exec::IndexedDocument{entry->dom.get(), entry->succinct.get(),
                                      entry->regions.get(),
                                      entry->values.get()};
  return Install(std::move(name), std::move(entry));
}

std::shared_ptr<Database::Entry> Database::EntryFromSnapshot(
    storage::OpenedSnapshot snapshot) {
  auto entry = std::make_shared<Entry>();
  entry->dom = std::move(snapshot.dom);
  entry->succinct = std::move(snapshot.succinct);
  entry->regions = std::move(snapshot.regions);
  entry->values = std::move(snapshot.values);
  entry->tags = std::move(snapshot.tags);
  entry->backing = std::move(snapshot.backing);
  // The synopsis is a small derived statistic; rebuilding it from the
  // restored DOM keeps it out of the file format.
  entry->synopsis = std::make_unique<opt::Synopsis>(*entry->dom);
  entry->view = exec::IndexedDocument{entry->dom.get(), entry->succinct.get(),
                                      entry->regions.get(),
                                      entry->values.get()};
  return entry;
}

Status Database::Open(std::string name, const std::string& path,
                      storage::SnapshotOpenMode mode) {
  XMLQ_ASSIGN_OR_RETURN(storage::OpenedSnapshot snapshot,
                        storage::OpenSnapshot(path, mode));
  return Install(std::move(name), EntryFromSnapshot(std::move(snapshot)));
}

Status Database::Install(std::string name,
                         std::shared_ptr<const Entry> entry) {
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    auto next = std::make_shared<CatalogState>(*catalog_);
    next->generation = catalog_->generation + 1;
    if (next->entries.empty()) next->default_document = name;
    next->entries[std::move(name)] = std::move(entry);
    generation = next->generation;
    catalog_ = std::move(next);
  }
  // Sweep cached plans compiled under older catalogs. Correctness never
  // depends on this (lookups compare generations); it only frees memory.
  PinPlanCache()->InvalidateGeneration(generation);
  return Status::Ok();
}

std::shared_ptr<const Database::CatalogState> Database::Pin() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_;
}

Result<storage::SnapshotWriteInfo> Database::Save(
    std::string_view name, const std::string& path) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  if (entry == nullptr) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not loaded");
  }
  return storage::WriteSnapshot(path, *entry->dom, *entry->succinct,
                                *entry->regions, *entry->values, *entry->tags);
}

// -- Durable store ----------------------------------------------------------

namespace {

/// Reads `path` whole into `out` in chunks, sleeping between chunks so the
/// cumulative rate stays under `max_bytes_per_second` (0 = unthrottled).
/// The scrubber's I/O primitive: bounded-rate, never mmap (a read() of a
/// corrupt file cannot SIGBUS a serving query).
Status ReadThrottled(const std::string& path, uint64_t max_bytes_per_second,
                     std::string* out, uint64_t* bytes_read) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::Internal("cannot open snapshot \"" + path +
                            "\" for scrub: " + std::strerror(errno));
  }
  constexpr size_t kChunk = 256 * 1024;
  std::vector<char> chunk(kChunk);
  const auto start = std::chrono::steady_clock::now();
  uint64_t total = 0;
  while (true) {
    const size_t n = std::fread(chunk.data(), 1, kChunk, file);
    if (n > 0) {
      out->append(chunk.data(), n);
      total += n;
      *bytes_read += n;
    }
    if (n < kChunk) {
      const bool failed = std::ferror(file) != 0;
      std::fclose(file);
      if (failed) {
        return Status::Internal("read error in snapshot \"" + path +
                                "\" at offset " + std::to_string(total));
      }
      return Status::Ok();
    }
    if (max_bytes_per_second > 0) {
      std::this_thread::sleep_until(
          start + std::chrono::duration<double>(
                      static_cast<double>(total) / max_bytes_per_second));
    }
  }
}

void AppendLines(std::string* out, std::string_view label,
                 const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    out->append(label);
    out->append(line);
    out->push_back('\n');
  }
}

/// 1 means serial; 0 means every hardware thread.
uint32_t ResolveLanes(uint32_t parallelism) {
  return parallelism != 0 ? parallelism
                          : std::max(1u, std::thread::hardware_concurrency());
}

/// Whole-file CRC-32C over `lanes` chunk workers, folded with Crc32Combine —
/// bit-identical to the single-pass Crc32 at any lane count.
uint32_t ParallelCrc32(const char* data, size_t size, uint32_t lanes) {
  constexpr size_t kMinChunk = 1 << 20;
  if (lanes <= 1 || size < 2 * kMinChunk) return Crc32(data, size);
  const std::vector<size_t> bounds = exec::SplitEvenly(size, kMinChunk, lanes);
  const size_t chunks = bounds.size() - 1;
  if (chunks <= 1) return Crc32(data, size);
  std::vector<uint32_t> crcs(chunks);
  exec::MorselPool::Shared().Run(chunks, lanes, [&](size_t c, uint32_t) {
    crcs[c] = Crc32(data + bounds[c], bounds[c + 1] - bounds[c]);
  });
  uint32_t crc = crcs[0];
  for (size_t c = 1; c < chunks; ++c) {
    crc = Crc32Combine(crc, crcs[c], bounds[c + 1] - bounds[c]);
  }
  return crc;
}

/// VerifySnapshotImage with the checksum pass's per-section CRCs fanned out
/// over pool lanes; the first failure in section order wins, so the verdict
/// (and its error text) matches the serial pass exactly. The deep pass stays
/// serial here — deep scrubs parallelize across snapshots instead.
Status VerifyImageParallel(std::span<const char> image, bool deep,
                           const std::string& path, uint32_t lanes) {
  if (deep || lanes <= 1) {
    return storage::VerifySnapshotImage(image, deep, path);
  }
  auto checks = storage::SnapshotSectionChecks(image, path);
  if (!checks.ok()) return checks.status();
  std::vector<Status> results(checks->size());
  exec::MorselPool::Shared().Run(
      checks->size(), lanes, [&](size_t i, uint32_t) {
        results[i] = storage::VerifySectionCheck(image, (*checks)[i], path);
      });
  for (Status& st : results) {
    if (!st.ok()) return std::move(st);
  }
  return Status::Ok();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = "store " + dir + ": " + std::to_string(loaded.size()) +
                    " document(s), " + std::to_string(manifest_records) +
                    " manifest record(s)";
  if (manifest_torn_bytes > 0) {
    out += ", torn tail truncated (" + std::to_string(manifest_torn_bytes) +
           " bytes: " + manifest_torn_detail + ")";
  }
  out.push_back('\n');
  AppendLines(&out, "  loaded ", loaded);
  AppendLines(&out, "  quarantined ", quarantined);
  AppendLines(&out, "  removed orphan ", orphans_removed);
  return out;
}

std::string ScrubReport::ToString() const {
  std::string out = "scrub: " + std::to_string(files_checked) +
                    " snapshot(s), " + std::to_string(bytes_read) +
                    " bytes read (" + (deep ? "deep" : "checksum") +
                    "), " + std::to_string(corrupt) + " corrupt\n";
  AppendLines(&out, "  quarantined ", quarantined);
  AppendLines(&out, "  ", notes);
  return out;
}

Database::~Database() { StopScrubber(); }

Result<RecoveryReport> Database::Attach(const std::string& dir,
                                        storage::SnapshotOpenMode mode,
                                        uint32_t parallelism) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (manifest_ != nullptr) {
    return Status::InvalidArgument("already attached to store \"" +
                                   manifest_->dir() + "\"");
  }
  XMLQ_ASSIGN_OR_RETURN(storage::Manifest manifest,
                        storage::Manifest::Open(dir));
  RecoveryReport report;
  report.dir = dir;
  report.manifest_records = manifest.replay().records;
  report.manifest_valid_bytes = manifest.replay().valid_bytes;
  report.manifest_torn_bytes = manifest.replay().torn_bytes;
  report.manifest_torn_detail = manifest.replay().torn_detail;

  // Verify and load every live snapshot. The whole-file CRC recorded in the
  // manifest at commit time is checked against a fresh read *before* the
  // image is trusted, so a snapshot corrupted at rest — even one whose
  // in-file checksums were consistently recomputed — never reaches the
  // catalog. Failures quarantine the file and keep going: one bad snapshot
  // must not take down the rest of the store.
  const std::vector<storage::ManifestRecord> records = [&] {
    std::vector<storage::ManifestRecord> out;
    for (const auto& [name, record] : manifest.entries()) {
      out.push_back(record);
    }
    return out;
  }();
  struct Recovered {
    uint64_t generation;
    std::string name;
    std::shared_ptr<const Entry> entry;
  };
  std::vector<Recovered> recovered;
  // Phase 1 — verify + open every snapshot. Pure reads with no shared
  // state, so the records fan out over pool lanes when asked (a
  // single-snapshot store instead chunk-parallelizes its whole-file CRC).
  // All manifest/catalog side effects wait for phase 2, which runs
  // serially in manifest order — recovery decisions and the report are
  // identical at any lane count.
  const uint32_t lanes = ResolveLanes(parallelism);
  const uint32_t file_lanes = records.size() > 1 ? 1 : lanes;
  struct LoadOutcome {
    std::shared_ptr<const Entry> entry;
    Status status;
  };
  std::vector<LoadOutcome> loads(records.size());
  auto load_one = [&](size_t i) {
    const storage::ManifestRecord& record = records[i];
    const std::string path = dir + "/" + record.file;
    auto load = [&]() -> Result<std::shared_ptr<const Entry>> {
      XMLQ_ASSIGN_OR_RETURN(FileBytes bytes, FileBytes::ReadWhole(path));
      if (bytes.size() != record.snapshot_size) {
        return Status::ParseError(
            "snapshot \"" + path + "\": size " +
            std::to_string(bytes.size()) + " != manifest size " +
            std::to_string(record.snapshot_size));
      }
      const uint32_t crc = ParallelCrc32(bytes.data(), bytes.size(),
                                         file_lanes);
      if (crc != record.snapshot_crc) {
        return Status::ParseError(
            "snapshot \"" + path + "\": whole-file checksum mismatch " +
            "(manifest " + std::to_string(record.snapshot_crc) +
            ", computed " + std::to_string(crc) + ")");
      }
      storage::OpenedSnapshot snapshot;
      if (mode == storage::SnapshotOpenMode::kMap) {
        // Re-open as a mapping; the bytes just verified stay warm in the
        // page cache, so this does not re-read the file from disk.
        XMLQ_ASSIGN_OR_RETURN(snapshot, storage::OpenSnapshot(path, mode));
      } else {
        XMLQ_ASSIGN_OR_RETURN(
            snapshot, storage::OpenSnapshotFromBytes(std::move(bytes), mode,
                                                     path));
      }
      return std::shared_ptr<const Entry>(
          EntryFromSnapshot(std::move(snapshot)));
    };
    auto entry = load();
    if (entry.ok()) {
      loads[i].entry = *std::move(entry);
    } else {
      loads[i].status = entry.status();
    }
  };
  if (lanes > 1 && records.size() > 1) {
    exec::MorselPool::Shared().Run(records.size(), lanes,
                                   [&](size_t i, uint32_t) { load_one(i); });
  } else {
    for (size_t i = 0; i < records.size(); ++i) load_one(i);
  }

  // Phase 2 — apply outcomes in manifest order.
  for (size_t i = 0; i < records.size(); ++i) {
    const storage::ManifestRecord& record = records[i];
    const std::string path = dir + "/" + record.file;
    if (loads[i].status.ok()) {
      recovered.push_back(
          Recovered{record.generation, record.name, std::move(loads[i].entry)});
      report.loaded.push_back(record.name + " (g" +
                              std::to_string(record.generation) + ", " +
                              record.file + ")");
      continue;
    }
    // Quarantine: move the file aside (keeping the evidence) and journal
    // the drop so the next recovery does not retry it.
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    storage::ManifestRecord quarantine;
    quarantine.op = storage::ManifestOp::kQuarantine;
    quarantine.generation = manifest.NextGeneration();
    quarantine.name = record.name;
    quarantine.file = record.file;
    XMLQ_RETURN_IF_ERROR(manifest.Append(quarantine));
    (void)SyncParentDir(path);
    report.quarantined.push_back(record.name + " (" + record.file +
                                 "): " + loads[i].status.message());
  }

  // Garbage-collect files no committed record references: snapshots from a
  // Persist that crashed before its manifest append, old generations whose
  // unlink crashed, and stray atomic-write temp files. Quarantined evidence
  // and the journal itself are kept.
  std::error_code ec;
  for (const auto& dirent : std::filesystem::directory_iterator(dir, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const std::string file = dirent.path().filename().string();
    if (file == storage::kManifestFileName) continue;
    const bool is_snapshot = file.size() > 7 &&
                             file.compare(file.size() - 7, 7, ".xqpack") == 0;
    const bool is_temp = file.find(".tmp") != std::string::npos;
    if (!is_snapshot && !is_temp) continue;
    bool referenced = false;
    for (const auto& [name, record] : manifest.entries()) {
      if (record.file == file) {
        referenced = true;
        break;
      }
    }
    if (referenced) continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(dirent.path(), remove_ec)) {
      report.orphans_removed.push_back(file);
    }
  }
  if (!report.orphans_removed.empty()) (void)SyncParentDir(dir + "/x");

  // Install every recovered document in one catalog swap; the lowest
  // generation becomes the default document when none is set yet (it is
  // the oldest surviving registration, matching load order semantics).
  std::sort(recovered.begin(), recovered.end(),
            [](const Recovered& a, const Recovered& b) {
              return a.generation < b.generation;
            });
  uint64_t catalog_generation = 0;
  {
    std::lock_guard<std::mutex> catalog_lock(catalog_mu_);
    auto next = std::make_shared<CatalogState>(*catalog_);
    next->generation = catalog_->generation + 1;
    for (Recovered& doc : recovered) {
      if (next->default_document.empty()) next->default_document = doc.name;
      next->entries[doc.name] = std::move(doc.entry);
    }
    catalog_generation = next->generation;
    catalog_ = std::move(next);
  }
  PinPlanCache()->InvalidateGeneration(catalog_generation);
  manifest_ = std::make_unique<storage::Manifest>(std::move(manifest));
  store_mode_ = mode;
  epoch_.store(manifest_->epoch());
  return report;
}

Status Database::Persist(std::string_view name) {
  if (follower()) return FollowerRefusal();
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const std::string doc_name = name.empty() ? catalog->default_document
                                            : std::string(name);
  const Entry* entry = catalog->Find(doc_name);
  if (entry == nullptr) {
    return Status::NotFound("document \"" + doc_name + "\" is not loaded");
  }
  std::lock_guard<std::mutex> lock(store_mu_);
  if (manifest_ == nullptr) {
    return Status::InvalidArgument(
        "no store attached (Attach a directory first)");
  }
  XMLQ_CRASH_POINT("persist.begin");
  const uint64_t generation = manifest_->NextGeneration();
  const std::string file = storage::Manifest::SanitizeFileStem(doc_name) +
                           "-g" + std::to_string(generation) + ".xqpack";
  const std::string path = manifest_->dir() + "/" + file;
  XMLQ_ASSIGN_OR_RETURN(
      storage::SnapshotWriteInfo info,
      storage::WriteSnapshot(path, *entry->dom, *entry->succinct,
                             *entry->regions, *entry->values, *entry->tags));
  XMLQ_CRASH_POINT("persist.snapshot_written");
  std::string old_file;
  if (const auto it = manifest_->entries().find(doc_name);
      it != manifest_->entries().end()) {
    old_file = it->second.file;
  }
  storage::ManifestRecord record;
  record.op = storage::ManifestOp::kRegister;
  record.generation = generation;
  record.name = doc_name;
  record.file = file;
  record.snapshot_size = info.file_size;
  record.snapshot_crc = info.file_crc;
  // The append below is the commit point: before it, recovery sees the old
  // state (the new file is an unreferenced orphan); after it, the new.
  XMLQ_RETURN_IF_ERROR(manifest_->Append(record));
  XMLQ_CRASH_POINT("persist.committed");
  if (!old_file.empty() && old_file != file) {
    // Best-effort: a crash before this unlink leaves an orphan the next
    // Attach garbage-collects. An mmap of the old file stays valid.
    std::error_code ec;
    std::filesystem::remove(manifest_->dir() + "/" + old_file, ec);
    (void)SyncParentDir(path);
  }
  if (manifest_->ShouldCompact()) {
    // Best-effort journal compaction (atomic old-or-new rewrite): a failure
    // only means the journal keeps its dead records until the next Persist
    // crosses the threshold again.
    (void)manifest_->Compact();
  }
  return Status::Ok();
}

Status Database::Remove(std::string_view name) {
  if (follower()) return FollowerRefusal();
  if (name.empty()) return Status::InvalidArgument("document name required");
  const std::string doc_name(name);
  bool in_store = false;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (manifest_ != nullptr) {
      const auto it = manifest_->entries().find(doc_name);
      if (it != manifest_->entries().end()) {
        in_store = true;
        const std::string file = it->second.file;
        XMLQ_CRASH_POINT("remove.begin");
        storage::ManifestRecord record;
        record.op = storage::ManifestOp::kRemove;
        record.generation = manifest_->NextGeneration();
        record.name = doc_name;
        // The commit point: after this append recovery no longer serves the
        // document, even if the unlink below never happens.
        XMLQ_RETURN_IF_ERROR(manifest_->Append(record));
        XMLQ_CRASH_POINT("remove.committed");
        std::error_code ec;
        std::filesystem::remove(manifest_->dir() + "/" + file, ec);
        (void)SyncParentDir(manifest_->dir() + "/" + file);
      }
    }
  }
  bool dropped = false;
  uint64_t catalog_generation = 0;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    // Swap (and bump the generation) only when the catalog actually
    // changes: a failed remove must not wipe every cached plan.
    if (catalog_->entries.count(doc_name) != 0 ||
        catalog_->degraded.count(doc_name) != 0) {
      auto next = std::make_shared<CatalogState>(*catalog_);
      next->generation = catalog_->generation + 1;
      dropped = next->entries.erase(doc_name) > 0;
      next->degraded.erase(doc_name);
      if (next->default_document == doc_name) {
        next->default_document =
            next->entries.empty() ? "" : next->entries.begin()->first;
      }
      catalog_generation = next->generation;
      catalog_ = std::move(next);
    }
  }
  if (catalog_generation != 0) {
    PinPlanCache()->InvalidateGeneration(catalog_generation);
  }
  if (!in_store && !dropped) {
    return Status::NotFound("document \"" + doc_name + "\" is not loaded");
  }
  return Status::Ok();
}

Result<ScrubReport> Database::Scrub(const ScrubOptions& options) {
  ScrubReport report;
  report.deep = options.deep;
  std::string dir;
  std::vector<storage::ManifestRecord> records;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (manifest_ == nullptr) {
      return Status::InvalidArgument(
          "no store attached (Attach a directory first)");
    }
    dir = manifest_->dir();
    for (const auto& [name, record] : manifest_->entries()) {
      records.push_back(record);
    }
  }
  // Phase 1 — read + verify every snapshot. With `parallelism` > 1 the
  // records fan out over pool lanes (a single-snapshot store instead
  // chunk-parallelizes its whole-file CRC and fans the per-section CRCs
  // out); the I/O throttle is divided among concurrent readers so the
  // aggregate rate honors max_bytes_per_second either way. Quarantine side
  // effects wait for phase 2, serial in manifest order, so detection and
  // quarantine decisions are identical at any lane count.
  const uint32_t lanes = ResolveLanes(options.parallelism);
  const uint32_t file_lanes = records.size() > 1 ? 1 : lanes;
  const uint64_t reader_rate =
      options.max_bytes_per_second == 0
          ? 0
          : std::max<uint64_t>(
                1, options.max_bytes_per_second /
                       std::max<uint64_t>(
                           1, std::min<uint64_t>(lanes, records.size())));
  struct Outcome {
    Status status;
    uint64_t bytes_read = 0;
  };
  std::vector<Outcome> outcomes(records.size());
  auto scrub_one = [&](size_t i) {
    const storage::ManifestRecord& record = records[i];
    const std::string path = dir + "/" + record.file;
    std::string image;
    Status status =
        ReadThrottled(path, reader_rate, &image, &outcomes[i].bytes_read);
    if (status.ok() && image.size() != record.snapshot_size) {
      status = Status::ParseError(
          "snapshot \"" + path + "\": size " + std::to_string(image.size()) +
          " != manifest size " + std::to_string(record.snapshot_size));
    }
    if (status.ok()) {
      // The manifest CRC is the authority: it was computed from the bytes
      // WriteSnapshot committed, so corruption that recomputed the in-file
      // header/section checksums to cover its tracks still fails here.
      const uint32_t crc = ParallelCrc32(image.data(), image.size(),
                                         file_lanes);
      if (crc != record.snapshot_crc) {
        status = Status::ParseError(
            "snapshot \"" + path + "\": whole-file checksum mismatch " +
            "(manifest " + std::to_string(record.snapshot_crc) +
            ", computed " + std::to_string(crc) + ")");
      }
    }
    if (status.ok()) {
      status = VerifyImageParallel(
          std::span<const char>(image.data(), image.size()), options.deep,
          path, file_lanes);
    }
    outcomes[i].status = std::move(status);
  };
  if (lanes > 1 && records.size() > 1) {
    exec::MorselPool::Shared().Run(records.size(), lanes,
                                   [&](size_t i, uint32_t) { scrub_one(i); });
  } else {
    for (size_t i = 0; i < records.size(); ++i) scrub_one(i);
  }

  // Phase 2 — fold outcomes into the report and quarantine, in manifest
  // order.
  for (size_t i = 0; i < records.size(); ++i) {
    ++report.files_checked;
    report.bytes_read += outcomes[i].bytes_read;
    if (outcomes[i].status.ok()) continue;
    // Only an actual quarantine counts as corruption: a concurrent Persist
    // may have replaced (and unlinked) this generation mid-read, which
    // QuarantineSnapshot detects and skips.
    const size_t before = report.quarantined.size();
    XMLQ_RETURN_IF_ERROR(
        QuarantineSnapshot(records[i], outcomes[i].status.message(), &report));
    if (report.quarantined.size() > before) ++report.corrupt;
  }
  {
    std::lock_guard<std::mutex> lock(scrub_report_mu_);
    last_scrub_ = report;
  }
  return report;
}

Status Database::QuarantineSnapshot(const storage::ManifestRecord& record,
                                    const std::string& reason,
                                    ScrubReport* report) {
  const std::string path_prefix = [&] {
    std::lock_guard<std::mutex> lock(store_mu_);
    return manifest_ == nullptr ? std::string() : manifest_->dir();
  }();
  const std::string path = path_prefix + "/" + record.file;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (manifest_ == nullptr) return Status::Ok();
    // A concurrent Persist may have replaced this generation while we were
    // reading; then the corrupt bytes are already unlinked history.
    const auto it = manifest_->entries().find(record.name);
    if (it == manifest_->entries().end() ||
        it->second.generation != record.generation) {
      report->notes.push_back(record.name +
                              ": replaced concurrently, skipped");
      return Status::Ok();
    }
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    storage::ManifestRecord quarantine;
    quarantine.op = storage::ManifestOp::kQuarantine;
    quarantine.generation = manifest_->NextGeneration();
    quarantine.name = record.name;
    quarantine.file = record.file;
    XMLQ_RETURN_IF_ERROR(manifest_->Append(quarantine));
    (void)SyncParentDir(path);
    report->quarantined.push_back(record.name + " (" + record.file +
                                  "): " + reason);
  }

  // Self-healing trigger (DESIGN.md §14): tell the replication client (when
  // one is attached) which generation just went bad, so it can re-fetch it
  // from the current primary. Outside store_mu_ — the hook only schedules.
  {
    std::function<void(const std::string&, uint64_t)> hook;
    {
      std::lock_guard<std::mutex> lock(quarantine_hook_mu_);
      hook = quarantine_hook_;
    }
    if (hook) hook(record.name, record.generation);
  }

  // Degrade the serving document. A kCopy (or purely in-memory) entry owns
  // bytes validated at load time — it keeps serving, flagged. A kMap entry
  // points at the poisoned file: re-validate a private copy of the mapped
  // bytes and swap it in, or drop the document when the corruption reads
  // through the mapping. In-flight queries are safe either way: they hold
  // catalog pins, and the quarantine *renamed* the file (same inode, the
  // mapping stays backed).
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const auto it = catalog->entries.find(record.name);
  if (it == catalog->entries.end()) {
    report->notes.push_back(record.name + ": not in serving catalog");
    return Status::Ok();
  }
  const Entry& entry = *it->second;
  const bool mapped = entry.backing != nullptr &&
                      entry.backing->mode() == storage::SnapshotOpenMode::kMap &&
                      entry.backing->path() == path;
  std::string note;
  std::shared_ptr<const Entry> replacement;
  bool drop = false;
  if (!mapped) {
    note = "snapshot quarantined (" + reason +
           "); serving load-time-validated in-memory copy";
  } else {
    auto reopened = storage::OpenSnapshotFromBytes(
        FileBytes::Copy(std::string_view(entry.backing->bytes().data(),
                                         entry.backing->bytes().size())),
        storage::SnapshotOpenMode::kCopy, path);
    if (reopened.ok()) {
      replacement = EntryFromSnapshot(std::move(*reopened));
      note = "snapshot quarantined (" + reason +
             "); remapped to revalidated in-memory copy";
    } else {
      drop = true;
      note = "snapshot quarantined and mapped bytes corrupt (" +
             reopened.status().message() + "); document dropped";
    }
  }
  uint64_t catalog_generation = 0;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    auto next = std::make_shared<CatalogState>(*catalog_);
    next->generation = catalog_->generation + 1;
    if (drop) {
      next->entries.erase(record.name);
      next->degraded.erase(record.name);
      if (next->default_document == record.name) {
        next->default_document =
            next->entries.empty() ? "" : next->entries.begin()->first;
      }
    } else {
      if (replacement != nullptr) {
        next->entries[record.name] = std::move(replacement);
      }
      next->degraded[record.name] = note;
    }
    catalog_generation = next->generation;
    catalog_ = std::move(next);
  }
  PinPlanCache()->InvalidateGeneration(catalog_generation);
  report->notes.push_back(record.name + ": " + note);
  return Status::Ok();
}

Status Database::StartScrubber(uint64_t interval_ms, ScrubOptions options) {
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (manifest_ == nullptr) {
      return Status::InvalidArgument(
          "no store attached (Attach a directory first)");
    }
  }
  std::lock_guard<std::mutex> lock(scrub_mu_);
  if (scrub_thread_.joinable()) {
    return Status::InvalidArgument("scrubber already running");
  }
  scrub_stop_ = false;
  scrub_thread_ = std::thread(
      [this, interval_ms, options] { ScrubberLoop(interval_ms, options); });
  return Status::Ok();
}

void Database::ScrubberLoop(uint64_t interval_ms, ScrubOptions options) {
  std::unique_lock<std::mutex> lock(scrub_mu_);
  while (!scrub_stop_) {
    if (scrub_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                           [this] { return scrub_stop_; })) {
      break;
    }
    lock.unlock();
    // Only scrub when serving has spare capacity: a pass that cannot get an
    // execution slot is skipped, not queued (the next tick retries).
    auto ticket = scheduler_.TryAdmit();
    if (ticket.ok()) {
      auto report = Scrub(options);
      std::lock_guard<std::mutex> report_lock(scrub_report_mu_);
      if (report.ok()) ++scrub_cycles_;
    } else {
      std::lock_guard<std::mutex> report_lock(scrub_report_mu_);
      ++scrub_skipped_;
    }
    lock.lock();
  }
}

void Database::StopScrubber() {
  std::thread thread;
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
    thread = std::move(scrub_thread_);
  }
  scrub_cv_.notify_all();
  if (thread.joinable()) thread.join();
}

bool Database::scrubber_running() const {
  std::lock_guard<std::mutex> lock(scrub_mu_);
  return scrub_thread_.joinable();
}

ScrubReport Database::last_scrub_report() const {
  std::lock_guard<std::mutex> lock(scrub_report_mu_);
  return last_scrub_;
}

uint64_t Database::scrub_cycles() const {
  std::lock_guard<std::mutex> lock(scrub_report_mu_);
  return scrub_cycles_;
}

uint64_t Database::scrub_cycles_skipped() const {
  std::lock_guard<std::mutex> lock(scrub_report_mu_);
  return scrub_skipped_;
}

std::string Database::store_dir() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return manifest_ == nullptr ? std::string() : manifest_->dir();
}

// -- Replication ------------------------------------------------------------

Result<Database::ReplDelta> Database::ReplDeltaFrom(uint64_t cursor) const {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (manifest_ == nullptr) {
    return Status::InvalidArgument(
        "no store attached (Attach a directory first)");
  }
  ReplDelta delta;
  delta.max_generation = manifest_->max_generation();
  delta.pending = manifest_->LiveRecordsAbove(cursor);
  for (const auto& [name, record] : manifest_->entries()) {
    delta.live.emplace_back(name, record.generation);
  }
  return delta;
}

Status Database::ApplyReplicated(const storage::ManifestRecord& record,
                                 std::string_view bytes) {
  if (record.op != storage::ManifestOp::kRegister) {
    return Status::InvalidArgument("replicated record is not a registration");
  }
  if (record.name.empty()) {
    return Status::InvalidArgument("replicated record carries no name");
  }
  // The shipped file name lands in this store directory verbatim; refuse
  // anything that could escape it or collide with non-snapshot files.
  if (record.file.size() <= 7 ||
      record.file.compare(record.file.size() - 7, 7, ".xqpack") != 0 ||
      record.file.find('/') != std::string::npos ||
      record.file.find("..") != std::string::npos) {
    return Status::InvalidArgument("replicated record file name \"" +
                                   record.file +
                                   "\" is not a store snapshot name");
  }
  std::lock_guard<std::mutex> lock(store_mu_);
  if (manifest_ == nullptr) {
    return Status::InvalidArgument(
        "no store attached (Attach a directory first)");
  }
  // Idempotence, per name (not the global clock): re-shipping a generation
  // this store already has — a crash mid-apply, a reconnect replaying the
  // cursor — is a no-op, while a resync from cursor 0 can still walk the
  // full history to heal divergence.
  if (const auto it = manifest_->entries().find(record.name);
      it != manifest_->entries().end() &&
      it->second.generation >= record.generation) {
    return Status::Ok();
  }
  if (bytes.size() != record.snapshot_size) {
    return Status::ParseError(
        "replicated snapshot for \"" + record.name + "\" g" +
        std::to_string(record.generation) + ": size " +
        std::to_string(bytes.size()) + " != announced " +
        std::to_string(record.snapshot_size));
  }
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  if (crc != record.snapshot_crc) {
    return Status::ParseError(
        "replicated snapshot for \"" + record.name + "\" g" +
        std::to_string(record.generation) +
        ": whole-file checksum mismatch (announced " +
        std::to_string(record.snapshot_crc) + ", computed " +
        std::to_string(crc) + ")");
  }
  if (XMLQ_FAULT("repl.apply.commit")) {
    return Status::Internal("injected replication apply failure for \"" +
                            record.name + "\" g" +
                            std::to_string(record.generation));
  }
  XMLQ_CRASH_POINT("repl.apply.begin");
  const std::string path = manifest_->dir() + "/" + record.file;
  XMLQ_RETURN_IF_ERROR(WriteFileAtomic(path, bytes));
  XMLQ_CRASH_POINT("repl.apply.snapshot_written");
  // Validate the snapshot opens *before* committing: the manifest append
  // below is the commit point, and a committed-but-unopenable snapshot
  // would only quarantine at the next recovery instead of serving now. A
  // failure here leaves an unreferenced file the next Attach collects.
  XMLQ_ASSIGN_OR_RETURN(storage::OpenedSnapshot snapshot,
                        storage::OpenSnapshot(path, store_mode_));
  std::string old_file;
  if (const auto it = manifest_->entries().find(record.name);
      it != manifest_->entries().end()) {
    old_file = it->second.file;
  }
  // The record is journaled with the *primary's* generation, so this
  // store's manifest clock (max_generation) is exactly the replication
  // cursor to resume from after a restart.
  XMLQ_RETURN_IF_ERROR(manifest_->Append(record));
  XMLQ_CRASH_POINT("repl.apply.committed");
  if (!old_file.empty() && old_file != record.file) {
    std::error_code ec;
    std::filesystem::remove(manifest_->dir() + "/" + old_file, ec);
    (void)SyncParentDir(path);
  }
  if (manifest_->ShouldCompact()) (void)manifest_->Compact();
  return Install(record.name, EntryFromSnapshot(std::move(snapshot)));
}

Status Database::ApplyReplicatedRemove(std::string_view name,
                                       uint64_t primary_generation) {
  const std::string doc_name(name);
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    if (manifest_ == nullptr) {
      return Status::InvalidArgument(
          "no store attached (Attach a directory first)");
    }
    const auto it = manifest_->entries().find(doc_name);
    if (it == manifest_->entries().end()) return Status::Ok();
    const std::string file = it->second.file;
    storage::ManifestRecord record;
    record.op = storage::ManifestOp::kRemove;
    record.generation = primary_generation;
    record.name = doc_name;
    XMLQ_RETURN_IF_ERROR(manifest_->Append(record));
    std::error_code ec;
    std::filesystem::remove(manifest_->dir() + "/" + file, ec);
    (void)SyncParentDir(manifest_->dir() + "/" + file);
  }
  uint64_t catalog_generation = 0;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    if (catalog_->entries.count(doc_name) != 0 ||
        catalog_->degraded.count(doc_name) != 0) {
      auto next = std::make_shared<CatalogState>(*catalog_);
      next->generation = catalog_->generation + 1;
      next->entries.erase(doc_name);
      next->degraded.erase(doc_name);
      if (next->default_document == doc_name) {
        next->default_document =
            next->entries.empty() ? "" : next->entries.begin()->first;
      }
      catalog_generation = next->generation;
      catalog_ = std::move(next);
    }
  }
  if (catalog_generation != 0) {
    PinPlanCache()->InvalidateGeneration(catalog_generation);
  }
  return Status::Ok();
}

void Database::SetPrimaryHint(std::string host_port) {
  std::lock_guard<std::mutex> lock(hint_mu_);
  primary_hint_ = std::move(host_port);
}

std::string Database::primary_hint() const {
  std::lock_guard<std::mutex> lock(hint_mu_);
  return primary_hint_;
}

Status Database::FollowerRefusal() const {
  const std::string hint = primary_hint();
  std::string message =
      "follower is read-only: the replication stream owns this store";
  message += hint.empty() ? "; primary unknown"
                          : "; writes go to the primary at " + hint;
  // The same structured hint the admission layer uses, so wire clients'
  // QueryWithRetry-style backoff parses it without a new code path.
  message += "; retry-after-micros=1000000";
  return Status::InvalidArgument(std::move(message));
}

Result<uint64_t> Database::Promote() {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (manifest_ == nullptr) {
    return Status::InvalidArgument(
        "no store attached (Attach a directory first)");
  }
  XMLQ_CRASH_POINT("promote.begin");
  storage::ManifestRecord record;
  record.op = storage::ManifestOp::kEpoch;
  record.generation = manifest_->epoch() + 1;
  // The append is the commit point: a crash before it leaves the old
  // epoch (and this node still a follower after restart, if its operator
  // config says so); after it, the new epoch fences every older primary.
  XMLQ_RETURN_IF_ERROR(manifest_->Append(record));
  XMLQ_CRASH_POINT("promote.committed");
  epoch_.store(manifest_->epoch());
  follower_.store(false);
  return manifest_->epoch();
}

Status Database::AdoptEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (epoch <= epoch_.load()) return Status::Ok();  // monotone: no-op
  if (manifest_ == nullptr) {
    return Status::InvalidArgument(
        "no store attached (Attach a directory first)");
  }
  storage::ManifestRecord record;
  record.op = storage::ManifestOp::kEpoch;
  record.generation = epoch;
  XMLQ_RETURN_IF_ERROR(manifest_->Append(record));
  epoch_.store(manifest_->epoch());
  return Status::Ok();
}

void Database::SetQuarantineHook(
    std::function<void(const std::string&, uint64_t)> hook) {
  std::lock_guard<std::mutex> lock(quarantine_hook_mu_);
  quarantine_hook_ = std::move(hook);
}

void Database::SetReadGate(std::shared_ptr<exec::StalenessGate> gate) const {
  std::lock_guard<std::mutex> lock(read_gate_mu_);
  read_gate_ = std::move(gate);
}

std::shared_ptr<exec::StalenessGate> Database::PinReadGate() const {
  std::lock_guard<std::mutex> lock(read_gate_mu_);
  return read_gate_;
}

bool Database::Contains(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  return catalog->entries.find(name) != catalog->entries.end();
}

const exec::IndexedDocument* Database::Get(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  return entry == nullptr ? nullptr : &entry->view;
}

const opt::Synopsis* Database::GetSynopsis(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  return entry == nullptr ? nullptr : entry->synopsis.get();
}

std::string Database::default_document() const {
  return Pin()->default_document;
}

exec::EvalContext Database::MakeContext(const CatalogState& catalog,
                                        const QueryOptions& options) const {
  exec::EvalContext context;
  for (const auto& [name, entry] : catalog.entries) {
    context.documents.emplace(name, entry->view);
  }
  if (!catalog.default_document.empty()) {
    const auto it = catalog.entries.find(catalog.default_document);
    if (it != catalog.entries.end()) {
      context.documents.emplace("", it->second->view);
    }
  }
  context.strategy = options.strategy;
  context.flwor_mode = options.flwor_mode;
  const uint32_t lanes =
      options.parallelism != 0
          ? options.parallelism
          : std::max(1u, std::thread::hardware_concurrency());
  if (lanes > 1) {
    context.par.pool = &exec::MorselPool::Shared();
    context.par.parallelism = lanes;
    context.par.morsel_elements = options.morsel_elements;
  }
  return context;
}

namespace {

/// Finds every τ node in a plan.
void CollectPatterns(const LogicalExpr& plan,
                     std::vector<const LogicalExpr*>* out) {
  if (plan.op == LogicalOp::kTreePattern) out->push_back(&plan);
  for (const auto& child : plan.children) CollectPatterns(*child, out);
}

/// Every document name the plan scans (for the degraded-doc check).
void CollectDocNames(const LogicalExpr& plan, std::set<std::string>* out) {
  if (plan.op == LogicalOp::kDocScan) out->insert(plan.str);
  for (const auto& child : plan.children) CollectDocNames(*child, out);
}

/// First DocScan in the plan — the document the profile annotator uses for
/// its synopsis estimates.
const LogicalExpr* FindDocScan(const LogicalExpr& plan) {
  if (plan.op == LogicalOp::kDocScan) return &plan;
  for (const auto& child : plan.children) {
    if (const LogicalExpr* found = FindDocScan(*child)) return found;
  }
  return nullptr;
}

/// Stamps the strategy the executor will actually run (one per query) onto
/// every τ profile node, replacing the annotator's per-pattern pick.
void TagExecutedStrategy(const LogicalExpr& plan, std::string_view strategy,
                         exec::PlanProfile* profile) {
  if (plan.op == LogicalOp::kTreePattern) {
    if (exec::ProfileNode* node = profile->NodeFor(&plan); node != nullptr) {
      node->estimate.strategy = strategy;
    }
  }
  for (const auto& child : plan.children) {
    TagExecutedStrategy(*child, strategy, profile);
  }
}

/// Unregisters a query from the active-token map on every exit path.
class ActiveRegistration {
 public:
  ActiveRegistration(std::mutex* mu,
                     std::map<uint64_t, std::shared_ptr<CancelToken>>* active,
                     uint64_t id, std::shared_ptr<CancelToken> token)
      : mu_(mu), active_(active), id_(id) {
    std::lock_guard<std::mutex> lock(*mu_);
    (*active_)[id_] = std::move(token);
  }
  ~ActiveRegistration() {
    std::lock_guard<std::mutex> lock(*mu_);
    active_->erase(id_);
  }
  ActiveRegistration(const ActiveRegistration&) = delete;
  ActiveRegistration& operator=(const ActiveRegistration&) = delete;

 private:
  std::mutex* mu_;
  std::map<uint64_t, std::shared_ptr<CancelToken>>* active_;
  uint64_t id_;
};

}  // namespace

exec::PatternStrategy Database::PickStrategy(
    const CatalogState& catalog, const LogicalExpr& plan,
    std::string* explanation,
    std::vector<std::pair<exec::PatternStrategy, double>>* ranking) const {
  std::vector<const LogicalExpr*> patterns;
  CollectPatterns(plan, &patterns);
  exec::PatternStrategy best = exec::PatternStrategy::kNok;
  double worst_cost = -1;
  for (const LogicalExpr* node : patterns) {
    // The pattern's document is its DocScan child when present.
    std::string doc_name;
    if (!node->children.empty() &&
        node->children[0]->op == LogicalOp::kDocScan) {
      doc_name = node->children[0]->str;
    }
    const Entry* entry = catalog.Find(doc_name);
    if (entry == nullptr || node->pattern == nullptr) continue;
    const opt::StrategyChoice choice = opt::ChooseStrategy(
        *entry->synopsis, entry->dom->pool(), *node->pattern);
    if (explanation != nullptr) {
      explanation->append(choice.explanation);
      explanation->push_back('\n');
    }
    // One strategy per query: follow the costliest pattern's choice.
    if (choice.cost > worst_cost) {
      worst_cost = choice.cost;
      best = choice.strategy;
      if (ranking != nullptr) {
        *ranking = choice.alternatives;
        std::sort(ranking->begin(), ranking->end(),
                  [](const auto& a, const auto& b) {
                    return a.second < b.second;
                  });
      }
    }
  }
  return best;
}

namespace {

/// Plan-level q-error of a profiled run: the worst estimate miss across all
/// operators carrying an estimate (0 when none do).
double MaxQError(const exec::ProfileNode& node) {
  double q = node.QError();
  for (const exec::ProfileNode& child : node.children) {
    q = std::max(q, MaxQError(child));
  }
  return q;
}

/// Deterministic work metric for strategy pinning: the counters every τ
/// engine's cost model is written in (wall time would make the adaptive
/// state machine timing-dependent and untestable).
double TotalWork(const exec::ProfileNode& node) {
  double work = static_cast<double>(node.stats.nodes_visited) +
                static_cast<double>(node.stats.index_probes) +
                static_cast<double>(node.stats.stack_pushes);
  for (const exec::ProfileNode& child : node.children) {
    work += TotalWork(child);
  }
  return work;
}

std::string CachedProvenance(const cache::CachedPlan& entry,
                             uint64_t generation,
                             const std::vector<std::string>& binds) {
  const auto age = std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::steady_clock::now() - entry.created)
                       .count();
  std::string out =
      "cached (gen " + std::to_string(generation) + ", age " +
      std::to_string(age) + "s, hits " +
      std::to_string(entry.hit_count.load(std::memory_order_relaxed)) +
      ", strategy " +
      std::string(exec::PatternStrategyName(
          entry.strategy.load(std::memory_order_relaxed))) +
      ")";
  if (entry.parameterized && !binds.empty()) {
    out += ", binds [";
    for (size_t i = 0; i < binds.size(); ++i) {
      if (i > 0) out += ", ";
      out += binds[i];
    }
    out += "]";
  }
  return out;
}

/// Rebuilds executable query text from a parameterized template by textually
/// replacing each slot's sentinel (planted exactly once by the canonical
/// render) with the quoted bind value — the uncached fallback for explicit
/// binds when the compiled template can't be bound plan-side.
Result<std::string> SubstituteBindText(
    const cache::NormalizedQuery& normalized,
    const std::vector<std::string>& values) {
  std::string text = normalized.compile_text;
  for (size_t i = 0; i < normalized.slots.size(); ++i) {
    const cache::BindSlot& slot = normalized.slots[i];
    std::string needle;
    std::string replacement;
    if (slot.numeric) {
      needle = slot.sentinel;
      replacement = values[i];
    } else {
      needle = "\"" + slot.sentinel + "\"";
      const bool has_d = values[i].find('"') != std::string::npos;
      const bool has_s = values[i].find('\'') != std::string::npos;
      if (has_d && has_s) {
        return Status::InvalidArgument(
            "bind slot " + std::to_string(i) +
            " value mixes both quote characters; not expressible as a "
            "literal for this query");
      }
      const char quote = has_d ? '\'' : '"';
      replacement = quote + values[i] + quote;
    }
    const size_t pos = text.find(needle);
    if (pos == std::string::npos) {
      return Status::Internal("bind sentinel " + std::to_string(i) +
                              " missing from template text");
    }
    text.replace(pos, needle.size(), replacement);
  }
  return text;
}

}  // namespace

Result<exec::QueryResult> Database::Run(
    LogicalExprPtr plan, const QueryOptions& options,
    std::shared_ptr<const CatalogState> catalog, ExecHints hints) const {
  // Every execution gets a serving identity and a cancel token, registered
  // *before* admission so a queued query is already cancellable.
  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<CancelToken> token =
      std::const_pointer_cast<CancelToken>(options.limits.cancel_token);
  if (token == nullptr) token = std::make_shared<CancelToken>();
  ActiveRegistration registration(&active_mu_, &active_, query_id, token);
  if (options.query_id_out != nullptr) {
    options.query_id_out->store(query_id, std::memory_order_release);
  }

  // Follower-read admission: a replica too stale for the configured bound
  // sheds the read with the standard retry-after hint *before* consuming a
  // scheduler slot. No gate (the default) admits everything.
  if (const std::shared_ptr<exec::StalenessGate> gate = PinReadGate();
      gate != nullptr) {
    XMLQ_RETURN_IF_ERROR(gate->Admit());
  }

  XMLQ_ASSIGN_OR_RETURN(exec::QueryScheduler::Ticket ticket,
                        scheduler_.Admit(token.get()));

  exec::EvalContext context = MakeContext(*catalog, options);
  if (hints.have_strategy) {
    // Cache hit (or install-time pick on the miss path): the per-execution
    // optimizer pass is exactly what the plan cache exists to skip.
    context.strategy = hints.strategy;
  } else if (options.auto_optimize) {
    context.strategy = PickStrategy(*catalog, *plan, nullptr);
  }
  std::unique_ptr<exec::PlanProfile> profile;
  const bool feedback_sample = hints.entry != nullptr && hints.sample_profile;
  if (options.collect_stats || feedback_sample) {
    profile = exec::PlanProfile::Create(*plan);
    std::string doc_name;
    if (const LogicalExpr* scan = FindDocScan(*plan); scan != nullptr) {
      doc_name = scan->str;
    }
    if (const Entry* entry = catalog->Find(doc_name); entry != nullptr) {
      opt::AnnotateProfile(*entry->synopsis, entry->dom->pool(), *plan,
                           profile.get());
    }
    TagExecutedStrategy(*plan, exec::PatternStrategyName(context.strategy),
                        profile.get());
    context.profile = profile.get();
  }
  // The guard lives on this frame: the executor and everything below it only
  // borrow the pointer, and Run outlives the evaluation. The serving token
  // means every query is governed (cancellable) even with no explicit
  // limits; the extra poll every 4096 steps is noise (bench R1).
  QueryLimits limits = options.limits;
  limits.cancel_token = token;
  ResourceGuard guard(limits);
  context.guard = &guard;
  context.breaker = &breaker_;
  context.admitted_seq = ticket.admitted_seq();
  exec::FallbackInfo fallback;
  context.fallback = &fallback;

  exec::Executor executor(&context);
  auto result = executor.Evaluate(*plan);
  if (profile != nullptr) {
    if (fallback.Degraded()) {
      opt::ReannotateFallback(*plan, fallback, profile.get());
    }
    profile->Finalize();
  }
  if (!result.ok()) return result.status();
  result->profile = std::move(profile);
  result->query_id = query_id;
  result->plan_provenance = std::move(hints.provenance);
  // Scheduling detail, not a plan property — it rides in the provenance
  // string, never in the profile tree (whose deterministic rendering the
  // parallel-vs-serial differential harness compares byte for byte).
  if (context.par.enabled()) {
    if (!result->plan_provenance.empty()) result->plan_provenance += ", ";
    result->plan_provenance +=
        "parallelism " + std::to_string(context.par.parallelism);
  }
  if (hints.entry != nullptr) {
    // Fold this execution's observations into the entry's feedback state.
    // Un-sampled, un-degraded runs just count; the state machine only moves
    // on profiled samples (or a degradation signal).
    if (result->profile != nullptr) {
      PinPlanCache()->CommitFeedback(
          *hints.entry, /*sampled=*/true, MaxQError(result->profile->root()),
          TotalWork(result->profile->root()), context.strategy,
          fallback.Degraded());
    } else if (fallback.Degraded()) {
      PinPlanCache()->CommitFeedback(*hints.entry, /*sampled=*/false, 0, 0,
                                     context.strategy, true);
    } else {
      hints.entry->executions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // A feedback-only profile is internal; the caller didn't ask for stats.
  if (!options.collect_stats) result->profile.reset();
  // Surface scrubber degradations for every document this query scanned,
  // the same channel engine fallbacks use.
  if (!catalog->degraded.empty()) {
    std::set<std::string> docs;
    CollectDocNames(*plan, &docs);
    for (const std::string& doc : docs) {
      const std::string& resolved =
          doc.empty() ? catalog->default_document : doc;
      const auto it = catalog->degraded.find(resolved);
      if (it == catalog->degraded.end()) continue;
      result->degraded = true;
      if (!result->degradation.empty()) result->degradation += "; ";
      result->degradation += "document \"" + it->first + "\": " + it->second;
    }
  }
  result->pinned = std::move(catalog);
  if (fallback.Degraded()) {
    result->degraded = true;
    if (!result->degradation.empty()) result->degradation += "; ";
    result->degradation +=
        "τ engine " + fallback.from_strategy +
        (fallback.quarantined ? " quarantined (circuit breaker open)"
                              : " faulted (" + fallback.reason + ")") +
        "; degraded to naive navigation";
  }
  return result;
}

Result<LogicalExprPtr> Database::Compile(std::string_view query,
                                         const QueryOptions& options,
                                         const CatalogState& catalog) const {
  xquery::TranslateOptions translate_options;
  translate_options.default_document = catalog.default_document;
  translate_options.apply_rewrites = options.apply_rewrites;
  auto plan = xquery::CompileQuery(query, translate_options);
  if (plan.ok()) return plan;
  // Pure XPath with predicates is outside the XQuery path subset but fully
  // supported by the XPath front end; fall back for absolute paths.
  const std::string_view trimmed = TrimWhitespace(query);
  if (!trimmed.empty() && trimmed[0] == '/') {
    auto xpath_plan = xpath::CompilePath(trimmed, catalog.default_document);
    if (xpath_plan.ok()) return xpath_plan;
  }
  return plan.status();
}

std::string Database::CacheKey(bool is_path, const std::string& path_doc,
                               const QueryOptions& options,
                               const std::string& fingerprint) {
  // Front-end tag: XPath plans depend on the explicit target document;
  // XQuery plans resolve documents (and the default document) from the
  // catalog, which the generation already versions.
  std::string key = is_path ? "P\x1f" + path_doc : std::string("Q");
  key += '\x1f';
  // Options class: anything that changes what Compile/PickStrategy produce.
  if (options.auto_optimize) {
    key += 'A';
  } else {
    key += 'F';
    key.append(exec::PatternStrategyName(options.strategy));
  }
  key += options.flwor_mode == exec::FlworMode::kEnv ? 'e' : 'p';
  key += options.apply_rewrites ? 'r' : 'n';
  // Limits class: bounded/unbounded bits only — the plan is identical, but
  // keeping classes apart means a fleet of deadline-bound queries can't
  // have its feedback state polluted by unbounded ad-hoc runs.
  key += options.limits.deadline_micros != 0 ? 'd' : '-';
  key += options.limits.max_steps != 0 ? 's' : '-';
  key += options.limits.max_memory_bytes != 0 ? 'm' : '-';
  key += '\x1f';
  key += fingerprint;
  return key;
}

Result<exec::QueryResult> Database::CachedExecute(
    std::string_view original_text, const cache::NormalizedQuery& normalized,
    const std::vector<std::string>& values, const QueryOptions& options,
    std::shared_ptr<const CatalogState> catalog, bool is_path,
    const std::string& path_doc) const {
  const std::shared_ptr<cache::PlanCache> plan_cache = PinPlanCache();
  // Explicit binds (PreparedQuery::Execute(binds)) that differ from the
  // text's own literals: every path must substitute them — re-running the
  // original text would execute the literals the query was *prepared* with.
  const bool custom_binds = normalized.parameterized &&
                            &values != &normalized.values &&
                            values != normalized.values;
  const auto run_uncached =
      [&](std::string provenance) -> Result<exec::QueryResult> {
    plan_cache->RecordBypass();
    LogicalExprPtr plan;
    if (custom_binds) {
      // Compile the sentinel template and bind, exactly like a cache hit;
      // when the compiled form hides a sentinel from the binder, fall back
      // to substituting the binds into the template text itself.
      Result<LogicalExprPtr> tmpl =
          is_path ? xpath::CompilePath(normalized.compile_text, path_doc)
                  : Compile(normalized.compile_text, options, *catalog);
      if (tmpl.ok() && cache::ValidateSentinels(**tmpl, normalized.slots)) {
        plan = cache::BindPlan(**tmpl, normalized.slots, values);
      } else {
        XMLQ_ASSIGN_OR_RETURN(const std::string text,
                              SubstituteBindText(normalized, values));
        XMLQ_ASSIGN_OR_RETURN(
            plan, is_path ? xpath::CompilePath(text, path_doc)
                          : Compile(text, options, *catalog));
      }
    } else {
      XMLQ_ASSIGN_OR_RETURN(
          plan, is_path ? xpath::CompilePath(original_text, path_doc)
                        : Compile(original_text, options, *catalog));
    }
    ExecHints hints;
    hints.provenance = std::move(provenance);
    return Run(std::move(plan), options, std::move(catalog),
               std::move(hints));
  };
  if (!plan_cache->config().enabled || !options.use_plan_cache) {
    return run_uncached("fresh (cache bypassed)");
  }

  const std::string key =
      CacheKey(is_path, path_doc, options, normalized.fingerprint);
  std::shared_ptr<cache::CachedPlan> entry =
      plan_cache->Lookup(key, catalog->generation);
  if (entry != nullptr &&
      (entry->parameterized ? entry->slots.size() != values.size()
                            : !values.empty())) {
    // Belt-and-braces against key-namespace bugs: a template whose slot
    // count doesn't match this execution's binds must not be bound (BindPlan
    // indexes values by slot position). Treat as a miss — the re-compiled
    // template just loses the Insert race below.
    entry = nullptr;
  }
  if (entry != nullptr) {
    // Hit: no parse, no rewrite, no optimizer — clone the template,
    // substitute this execution's binds, run with the entry's strategy.
    LogicalExprPtr bound =
        entry->parameterized
            ? cache::BindPlan(*entry->plan, entry->slots, values)
            : entry->plan->Clone();
    ExecHints hints;
    hints.have_strategy = true;
    hints.strategy = options.auto_optimize
                         ? entry->strategy.load(std::memory_order_relaxed)
                         : options.strategy;
    const uint64_t hit = entry->hit_count.load(std::memory_order_relaxed);
    const uint64_t period = plan_cache->config().sample_period;
    hints.sample_profile =
        entry->adaptive && (period <= 1 || hit % period == 1);
    hints.provenance = CachedProvenance(*entry, catalog->generation, values);
    hints.entry = std::move(entry);
    return Run(std::move(bound), options, std::move(catalog),
               std::move(hints));
  }

  // Miss: compile the sentinel template (one plan per fingerprint), check
  // the binder can reach every lifted literal, bind this execution's
  // values, pick the strategy on the *bound* plan (real values → real
  // selectivities), and try to install the template. Query/QueryPath
  // normalize in the light mode (fingerprint + values only — all a hit
  // needs), so the sentinel render happens here, on the slow path.
  cache::NormalizedQuery full_storage;
  const cache::NormalizedQuery* full = &normalized;
  if (normalized.compile_text.empty()) {
    full_storage = cache::NormalizeQuery(original_text);
    full = &full_storage;
  }
  Result<LogicalExprPtr> tmpl =
      is_path ? xpath::CompilePath(full->compile_text, path_doc)
              : Compile(full->compile_text, options, *catalog);
  if (!tmpl.ok() || (full->parameterized &&
                     !cache::ValidateSentinels(**tmpl, full->slots))) {
    return run_uncached("fresh (not cacheable)");
  }
  LogicalExprPtr bound = full->parameterized
                             ? cache::BindPlan(**tmpl, full->slots, values)
                             : (*tmpl)->Clone();
  entry = std::make_shared<cache::CachedPlan>();
  entry->key = key;
  entry->generation = catalog->generation;
  entry->slots = full->slots;
  entry->parameterized = full->parameterized;
  entry->adaptive = options.auto_optimize;
  entry->created = std::chrono::steady_clock::now();
  ExecHints hints;
  hints.provenance = "fresh";
  if (options.auto_optimize) {
    std::vector<std::pair<exec::PatternStrategy, double>> ranking;
    const exec::PatternStrategy choice =
        PickStrategy(*catalog, *bound, nullptr, &ranking);
    entry->strategy.store(choice, std::memory_order_relaxed);
    entry->feedback.ranking = std::move(ranking);
    hints.have_strategy = true;
    hints.strategy = choice;
  } else {
    entry->strategy.store(options.strategy, std::memory_order_relaxed);
  }
  entry->plan = std::move(*tmpl);
  entry->bytes = cache::PlanFootprint(*entry->plan) + key.size() +
                 sizeof(cache::CachedPlan);
  hints.entry = entry;
  hints.sample_profile = entry->adaptive;  // first execution always samples
  // Insert may fail (injected fault, racing first writer, over-budget
  // entry): the query still runs off its own bound copy.
  (void)plan_cache->Insert(std::move(entry));
  return Run(std::move(bound), options, std::move(catalog),
             std::move(hints));
}

Result<exec::QueryResult> Database::Query(std::string_view query,
                                          const QueryOptions& options) const {
  // One pin covers compilation and execution, so the default document the
  // plan was compiled against is exactly the one it runs against even when
  // a writer swaps the catalog in between.
  std::shared_ptr<const CatalogState> catalog = Pin();
  const cache::NormalizedQuery normalized =
      cache::NormalizeQuery(query, /*render_compile_text=*/false);
  return CachedExecute(query, normalized, normalized.values, options,
                       std::move(catalog), /*is_path=*/false, "");
}

Result<exec::QueryResult> Database::QueryPath(
    std::string_view path, std::string_view doc_name,
    const QueryOptions& options) const {
  std::shared_ptr<const CatalogState> catalog = Pin();
  const std::string name = doc_name.empty() ? catalog->default_document
                                            : std::string(doc_name);
  const cache::NormalizedQuery normalized =
      cache::NormalizeQuery(path, /*render_compile_text=*/false);
  return CachedExecute(path, normalized, normalized.values, options,
                       std::move(catalog), /*is_path=*/true, name);
}

Result<PreparedQuery> Database::Prepare(std::string_view text,
                                        const QueryOptions& options) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  // Surface syntax errors now, not at the first Execute.
  XMLQ_RETURN_IF_ERROR(Compile(text, options, *catalog).status());
  return PreparedQuery(this, std::string(text), options,
                       cache::NormalizeQuery(text));
}

Result<exec::QueryResult> PreparedQuery::Execute() const {
  return Execute(normalized_.values, options_);
}

Result<exec::QueryResult> PreparedQuery::Execute(
    const std::vector<std::string>& binds) const {
  return Execute(binds, options_);
}

Result<exec::QueryResult> PreparedQuery::Execute(
    const std::vector<std::string>& binds,
    const QueryOptions& options) const {
  if (binds.size() != normalized_.slots.size()) {
    return Status::InvalidArgument(
        "prepared query has " + std::to_string(normalized_.slots.size()) +
        " bind slot(s), got " + std::to_string(binds.size()) + " value(s)");
  }
  for (size_t i = 0; i < binds.size(); ++i) {
    const std::string& v = binds[i];
    const bool numeric = normalized_.slots[i].numeric;
    if (numeric) {
      // Numeric slots must stay well-formed numbers — digits with at most
      // one dot and digits on both sides of it — so the bound plan is
      // byte-for-byte what compiling the literal would have produced (a
      // malformed string like "1.2.3" would otherwise diverge from its
      // strtod prefix parse).
      const bool ok = [&] {
        if (v.empty() || !std::isdigit(static_cast<unsigned char>(v[0]))) {
          return false;
        }
        bool seen_dot = false;
        for (size_t j = 0; j < v.size(); ++j) {
          if (v[j] == '.') {
            if (seen_dot || j + 1 >= v.size() ||
                !std::isdigit(static_cast<unsigned char>(v[j + 1]))) {
              return false;
            }
            seen_dot = true;
          } else if (!std::isdigit(static_cast<unsigned char>(v[j]))) {
            return false;
          }
        }
        return true;
      }();
      if (!ok) {
        return Status::InvalidArgument("bind slot " + std::to_string(i) +
                                       " expects a number, got \"" + v +
                                       "\"");
      }
    }
    if (cache::CollidesWithSentinelSpace(v, numeric)) {
      return Status::InvalidArgument(
          "bind slot " + std::to_string(i) +
          " value collides with the plan-cache sentinel encoding");
    }
  }
  return db_->CachedExecute(text_, normalized_, binds, options, db_->Pin(),
                            /*is_path=*/false, "");
}

Result<std::string> Database::Explain(std::string_view query,
                                      const QueryOptions& options) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan,
                        Compile(query, options, *catalog));
  std::string out;
  // Plan provenance header: what Query(text) would serve right now. Peek,
  // not Lookup — explaining a query must not bump its LRU position or hit
  // counters.
  const std::shared_ptr<cache::PlanCache> plan_cache = PinPlanCache();
  if (plan_cache->config().enabled && options.use_plan_cache) {
    const cache::NormalizedQuery normalized =
        cache::NormalizeQuery(query, /*render_compile_text=*/false);
    const std::string key =
        CacheKey(/*is_path=*/false, "", options, normalized.fingerprint);
    if (const std::shared_ptr<cache::CachedPlan> entry =
            plan_cache->Peek(key, catalog->generation)) {
      out += "-- plan: " +
             CachedProvenance(*entry, catalog->generation, normalized.values) +
             "\n";
    } else {
      out += "-- plan: fresh (not cached)\n";
    }
  }
  out += plan->ToString();
  std::string strategies;
  PickStrategy(*catalog, *plan, &strategies);
  if (!strategies.empty()) {
    out += "-- physical strategy --\n" + strategies;
  }
  return out;
}

Result<std::string> Database::ExplainAnalyze(
    std::string_view query, const QueryOptions& options) const {
  QueryOptions analyze_options = options;
  analyze_options.collect_stats = true;
  XMLQ_ASSIGN_OR_RETURN(exec::QueryResult result,
                        Query(query, analyze_options));
  std::string out;
  if (!result.plan_provenance.empty()) {
    out += "-- plan: " + result.plan_provenance + "\n";
  }
  if (result.profile != nullptr) out += result.profile->ToString();
  out += "-- " + std::to_string(result.value.size()) + " item(s)\n";
  if (result.degraded) {
    out += "-- degraded: " + result.degradation + "\n";
  }
  return out;
}

std::shared_ptr<cache::PlanCache> Database::PinPlanCache() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  return plan_cache_;
}

void Database::SetPlanCache(const cache::CacheConfig& config) const {
  // Swap whole: in-flight queries finish against the instance they pinned;
  // old entries die with the last reference.
  auto next = std::make_shared<cache::PlanCache>(config);
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  plan_cache_ = std::move(next);
}

cache::CacheStats Database::plan_cache_stats() const {
  return PinPlanCache()->Stats();
}

void Database::SetAdmission(const exec::AdmissionConfig& config) const {
  scheduler_.Configure(config);
}

void Database::SetBreaker(const exec::CircuitBreaker::Config& config) const {
  breaker_.Configure(config);
}

bool Database::Cancel(uint64_t query_id) const {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    const auto it = active_.find(query_id);
    if (it == active_.end()) return false;
    token = it->second;
  }
  token->Cancel();
  // Wake the admission queue so a still-queued query notices promptly.
  scheduler_.Poke();
  return true;
}

exec::AdmissionStats Database::admission_stats() const {
  return scheduler_.Stats();
}

std::string Database::BreakerReport() const { return breaker_.Render(); }

std::string Database::ToXml(const exec::QueryResult& result, bool indent) {
  xml::SerializeOptions options;
  options.indent = indent;
  std::string out;
  for (const algebra::Item& item : result.value) {
    if (!out.empty()) out.push_back('\n');
    if (item.IsNode()) {
      out += xml::Serialize(*item.node().doc, item.node().id, options);
    } else {
      out += item.StringValue();
    }
  }
  return out;
}

Result<StorageReport> Database::Report(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  if (entry == nullptr) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not loaded");
  }
  StorageReport report;
  report.dom_bytes = entry->dom->MemoryUsage();
  report.succinct_structure_bytes = entry->succinct->StructureBytes();
  report.succinct_content_bytes = entry->succinct->ContentBytes();
  report.region_index_bytes = entry->regions->MemoryUsage();
  report.value_index_bytes = entry->values->MemoryUsage();
  report.tag_dictionary_bytes = entry->tags->HeapBytes();
  report.node_count = entry->dom->NodeCount();
  report.succinct_heap_bytes = entry->succinct->HeapBytes();
  report.region_index_heap_bytes = entry->regions->HeapBytes();
  report.value_index_heap_bytes = entry->values->HeapBytes();
  report.tag_dictionary_heap_bytes = entry->tags->HeapBytes();
  if (entry->backing != nullptr) {
    report.from_snapshot = true;
    report.mapped =
        entry->backing->mode() == storage::SnapshotOpenMode::kMap;
    report.snapshot_file_bytes = entry->backing->file_size();
  }
  return report;
}

}  // namespace xmlq::api
