#include "xmlq/api/database.h"

#include <utility>

#include "xmlq/base/strings.h"
#include "xmlq/xml/parser.h"
#include "xmlq/xml/serializer.h"
#include "xmlq/xpath/compiler.h"
#include "xmlq/xquery/translate.h"
#include "xmlq/opt/optimizer.h"
#include "xmlq/opt/plan_annotator.h"

namespace xmlq::api {

using algebra::LogicalExpr;
using algebra::LogicalExprPtr;
using algebra::LogicalOp;

Status Database::LoadDocument(std::string name, std::string_view xml_text,
                              xml::ParseOptions options) {
  XMLQ_ASSIGN_OR_RETURN(xml::Document parsed,
                        xml::ParseDocument(xml_text, options));
  return RegisterDocument(std::move(name),
                          std::make_unique<xml::Document>(std::move(parsed)));
}

Status Database::RegisterDocument(std::string name,
                                  std::unique_ptr<xml::Document> doc) {
  if (doc == nullptr) return Status::InvalidArgument("null document");
  if (!doc->IsPreorder()) {
    return Status::InvalidArgument(
        "document node ids must be in pre-order (build top-down)");
  }
  // All physical representations are built outside the catalog lock; only
  // the final pointer swap is serialized.
  auto entry = std::make_shared<Entry>();
  entry->dom = std::move(doc);
  XMLQ_ASSIGN_OR_RETURN(storage::SuccinctDocument succinct,
                        storage::SuccinctDocument::TryBuild(*entry->dom));
  entry->succinct =
      std::make_unique<storage::SuccinctDocument>(std::move(succinct));
  XMLQ_ASSIGN_OR_RETURN(storage::RegionIndex regions,
                        storage::RegionIndex::TryBuild(*entry->dom));
  entry->regions = std::make_unique<storage::RegionIndex>(std::move(regions));
  XMLQ_ASSIGN_OR_RETURN(storage::ValueIndex values,
                        storage::ValueIndex::TryBuild(*entry->dom));
  entry->values = std::make_unique<storage::ValueIndex>(std::move(values));
  entry->tags = std::make_unique<storage::TagDictionary>(*entry->dom);
  entry->synopsis = std::make_unique<opt::Synopsis>(*entry->dom);
  entry->view = exec::IndexedDocument{entry->dom.get(), entry->succinct.get(),
                                      entry->regions.get(),
                                      entry->values.get()};
  return Install(std::move(name), std::move(entry));
}

Status Database::Open(std::string name, const std::string& path,
                      storage::SnapshotOpenMode mode) {
  XMLQ_ASSIGN_OR_RETURN(storage::OpenedSnapshot snapshot,
                        storage::OpenSnapshot(path, mode));
  auto entry = std::make_shared<Entry>();
  entry->dom = std::move(snapshot.dom);
  entry->succinct = std::move(snapshot.succinct);
  entry->regions = std::move(snapshot.regions);
  entry->values = std::move(snapshot.values);
  entry->tags = std::move(snapshot.tags);
  entry->backing = std::move(snapshot.backing);
  // The synopsis is a small derived statistic; rebuilding it from the
  // restored DOM keeps it out of the file format.
  entry->synopsis = std::make_unique<opt::Synopsis>(*entry->dom);
  entry->view = exec::IndexedDocument{entry->dom.get(), entry->succinct.get(),
                                      entry->regions.get(),
                                      entry->values.get()};
  return Install(std::move(name), std::move(entry));
}

Status Database::Install(std::string name,
                         std::shared_ptr<const Entry> entry) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto next = std::make_shared<CatalogState>(*catalog_);
  if (next->entries.empty()) next->default_document = name;
  next->entries[std::move(name)] = std::move(entry);
  catalog_ = std::move(next);
  return Status::Ok();
}

std::shared_ptr<const Database::CatalogState> Database::Pin() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_;
}

Result<storage::SnapshotWriteInfo> Database::Save(
    std::string_view name, const std::string& path) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  if (entry == nullptr) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not loaded");
  }
  return storage::WriteSnapshot(path, *entry->dom, *entry->succinct,
                                *entry->regions, *entry->values, *entry->tags);
}

bool Database::Contains(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  return catalog->entries.find(name) != catalog->entries.end();
}

const exec::IndexedDocument* Database::Get(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  return entry == nullptr ? nullptr : &entry->view;
}

const opt::Synopsis* Database::GetSynopsis(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  return entry == nullptr ? nullptr : entry->synopsis.get();
}

std::string Database::default_document() const {
  return Pin()->default_document;
}

exec::EvalContext Database::MakeContext(const CatalogState& catalog,
                                        const QueryOptions& options) const {
  exec::EvalContext context;
  for (const auto& [name, entry] : catalog.entries) {
    context.documents.emplace(name, entry->view);
  }
  if (!catalog.default_document.empty()) {
    const auto it = catalog.entries.find(catalog.default_document);
    if (it != catalog.entries.end()) {
      context.documents.emplace("", it->second->view);
    }
  }
  context.strategy = options.strategy;
  context.flwor_mode = options.flwor_mode;
  return context;
}

namespace {

/// Finds every τ node in a plan.
void CollectPatterns(const LogicalExpr& plan,
                     std::vector<const LogicalExpr*>* out) {
  if (plan.op == LogicalOp::kTreePattern) out->push_back(&plan);
  for (const auto& child : plan.children) CollectPatterns(*child, out);
}

/// First DocScan in the plan — the document the profile annotator uses for
/// its synopsis estimates.
const LogicalExpr* FindDocScan(const LogicalExpr& plan) {
  if (plan.op == LogicalOp::kDocScan) return &plan;
  for (const auto& child : plan.children) {
    if (const LogicalExpr* found = FindDocScan(*child)) return found;
  }
  return nullptr;
}

/// Stamps the strategy the executor will actually run (one per query) onto
/// every τ profile node, replacing the annotator's per-pattern pick.
void TagExecutedStrategy(const LogicalExpr& plan, std::string_view strategy,
                         exec::PlanProfile* profile) {
  if (plan.op == LogicalOp::kTreePattern) {
    if (exec::ProfileNode* node = profile->NodeFor(&plan); node != nullptr) {
      node->estimate.strategy = strategy;
    }
  }
  for (const auto& child : plan.children) {
    TagExecutedStrategy(*child, strategy, profile);
  }
}

/// Unregisters a query from the active-token map on every exit path.
class ActiveRegistration {
 public:
  ActiveRegistration(std::mutex* mu,
                     std::map<uint64_t, std::shared_ptr<CancelToken>>* active,
                     uint64_t id, std::shared_ptr<CancelToken> token)
      : mu_(mu), active_(active), id_(id) {
    std::lock_guard<std::mutex> lock(*mu_);
    (*active_)[id_] = std::move(token);
  }
  ~ActiveRegistration() {
    std::lock_guard<std::mutex> lock(*mu_);
    active_->erase(id_);
  }
  ActiveRegistration(const ActiveRegistration&) = delete;
  ActiveRegistration& operator=(const ActiveRegistration&) = delete;

 private:
  std::mutex* mu_;
  std::map<uint64_t, std::shared_ptr<CancelToken>>* active_;
  uint64_t id_;
};

}  // namespace

exec::PatternStrategy Database::PickStrategy(const CatalogState& catalog,
                                             const LogicalExpr& plan,
                                             std::string* explanation) const {
  std::vector<const LogicalExpr*> patterns;
  CollectPatterns(plan, &patterns);
  exec::PatternStrategy best = exec::PatternStrategy::kNok;
  double worst_cost = -1;
  for (const LogicalExpr* node : patterns) {
    // The pattern's document is its DocScan child when present.
    std::string doc_name;
    if (!node->children.empty() &&
        node->children[0]->op == LogicalOp::kDocScan) {
      doc_name = node->children[0]->str;
    }
    const Entry* entry = catalog.Find(doc_name);
    if (entry == nullptr || node->pattern == nullptr) continue;
    const opt::StrategyChoice choice = opt::ChooseStrategy(
        *entry->synopsis, entry->dom->pool(), *node->pattern);
    if (explanation != nullptr) {
      explanation->append(choice.explanation);
      explanation->push_back('\n');
    }
    // One strategy per query: follow the costliest pattern's choice.
    if (choice.cost > worst_cost) {
      worst_cost = choice.cost;
      best = choice.strategy;
    }
  }
  return best;
}

Result<exec::QueryResult> Database::Run(
    LogicalExprPtr plan, const QueryOptions& options,
    std::shared_ptr<const CatalogState> catalog) const {
  // Every execution gets a serving identity and a cancel token, registered
  // *before* admission so a queued query is already cancellable.
  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<CancelToken> token =
      std::const_pointer_cast<CancelToken>(options.limits.cancel_token);
  if (token == nullptr) token = std::make_shared<CancelToken>();
  ActiveRegistration registration(&active_mu_, &active_, query_id, token);
  if (options.query_id_out != nullptr) {
    options.query_id_out->store(query_id, std::memory_order_release);
  }

  XMLQ_ASSIGN_OR_RETURN(exec::QueryScheduler::Ticket ticket,
                        scheduler_.Admit(token.get()));

  exec::EvalContext context = MakeContext(*catalog, options);
  if (options.auto_optimize) {
    context.strategy = PickStrategy(*catalog, *plan, nullptr);
  }
  std::unique_ptr<exec::PlanProfile> profile;
  if (options.collect_stats) {
    profile = exec::PlanProfile::Create(*plan);
    std::string doc_name;
    if (const LogicalExpr* scan = FindDocScan(*plan); scan != nullptr) {
      doc_name = scan->str;
    }
    if (const Entry* entry = catalog->Find(doc_name); entry != nullptr) {
      opt::AnnotateProfile(*entry->synopsis, entry->dom->pool(), *plan,
                           profile.get());
    }
    TagExecutedStrategy(*plan, exec::PatternStrategyName(context.strategy),
                        profile.get());
    context.profile = profile.get();
  }
  // The guard lives on this frame: the executor and everything below it only
  // borrow the pointer, and Run outlives the evaluation. The serving token
  // means every query is governed (cancellable) even with no explicit
  // limits; the extra poll every 4096 steps is noise (bench R1).
  QueryLimits limits = options.limits;
  limits.cancel_token = token;
  ResourceGuard guard(limits);
  context.guard = &guard;
  context.breaker = &breaker_;
  context.admitted_seq = ticket.admitted_seq();
  exec::FallbackInfo fallback;
  context.fallback = &fallback;

  exec::Executor executor(&context);
  auto result = executor.Evaluate(*plan);
  if (profile != nullptr) {
    if (fallback.Degraded()) {
      opt::ReannotateFallback(*plan, fallback, profile.get());
    }
    profile->Finalize();
  }
  if (!result.ok()) return result.status();
  result->profile = std::move(profile);
  result->query_id = query_id;
  result->pinned = std::move(catalog);
  if (fallback.Degraded()) {
    result->degraded = true;
    result->degradation =
        "τ engine " + fallback.from_strategy +
        (fallback.quarantined ? " quarantined (circuit breaker open)"
                              : " faulted (" + fallback.reason + ")") +
        "; degraded to naive navigation";
  }
  return result;
}

Result<LogicalExprPtr> Database::Compile(std::string_view query,
                                         const QueryOptions& options,
                                         const CatalogState& catalog) const {
  xquery::TranslateOptions translate_options;
  translate_options.default_document = catalog.default_document;
  translate_options.apply_rewrites = options.apply_rewrites;
  auto plan = xquery::CompileQuery(query, translate_options);
  if (plan.ok()) return plan;
  // Pure XPath with predicates is outside the XQuery path subset but fully
  // supported by the XPath front end; fall back for absolute paths.
  const std::string_view trimmed = TrimWhitespace(query);
  if (!trimmed.empty() && trimmed[0] == '/') {
    auto xpath_plan = xpath::CompilePath(trimmed, catalog.default_document);
    if (xpath_plan.ok()) return xpath_plan;
  }
  return plan.status();
}

Result<exec::QueryResult> Database::Query(std::string_view query,
                                          const QueryOptions& options) const {
  // One pin covers compilation and execution, so the default document the
  // plan was compiled against is exactly the one it runs against even when
  // a writer swaps the catalog in between.
  std::shared_ptr<const CatalogState> catalog = Pin();
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan,
                        Compile(query, options, *catalog));
  return Run(std::move(plan), options, std::move(catalog));
}

Result<exec::QueryResult> Database::QueryPath(
    std::string_view path, std::string_view doc_name,
    const QueryOptions& options) const {
  std::shared_ptr<const CatalogState> catalog = Pin();
  const std::string name = doc_name.empty() ? catalog->default_document
                                            : std::string(doc_name);
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan, xpath::CompilePath(path, name));
  return Run(std::move(plan), options, std::move(catalog));
}

Result<std::string> Database::Explain(std::string_view query,
                                      const QueryOptions& options) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  XMLQ_ASSIGN_OR_RETURN(LogicalExprPtr plan,
                        Compile(query, options, *catalog));
  std::string out = plan->ToString();
  std::string strategies;
  PickStrategy(*catalog, *plan, &strategies);
  if (!strategies.empty()) {
    out += "-- physical strategy --\n" + strategies;
  }
  return out;
}

Result<std::string> Database::ExplainAnalyze(
    std::string_view query, const QueryOptions& options) const {
  QueryOptions analyze_options = options;
  analyze_options.collect_stats = true;
  XMLQ_ASSIGN_OR_RETURN(exec::QueryResult result,
                        Query(query, analyze_options));
  std::string out;
  if (result.profile != nullptr) out = result.profile->ToString();
  out += "-- " + std::to_string(result.value.size()) + " item(s)\n";
  if (result.degraded) {
    out += "-- degraded: " + result.degradation + "\n";
  }
  return out;
}

void Database::SetAdmission(const exec::AdmissionConfig& config) const {
  scheduler_.Configure(config);
}

void Database::SetBreaker(const exec::CircuitBreaker::Config& config) const {
  breaker_.Configure(config);
}

bool Database::Cancel(uint64_t query_id) const {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    const auto it = active_.find(query_id);
    if (it == active_.end()) return false;
    token = it->second;
  }
  token->Cancel();
  // Wake the admission queue so a still-queued query notices promptly.
  scheduler_.Poke();
  return true;
}

exec::AdmissionStats Database::admission_stats() const {
  return scheduler_.Stats();
}

std::string Database::BreakerReport() const { return breaker_.Render(); }

std::string Database::ToXml(const exec::QueryResult& result, bool indent) {
  xml::SerializeOptions options;
  options.indent = indent;
  std::string out;
  for (const algebra::Item& item : result.value) {
    if (!out.empty()) out.push_back('\n');
    if (item.IsNode()) {
      out += xml::Serialize(*item.node().doc, item.node().id, options);
    } else {
      out += item.StringValue();
    }
  }
  return out;
}

Result<StorageReport> Database::Report(std::string_view name) const {
  const std::shared_ptr<const CatalogState> catalog = Pin();
  const Entry* entry = catalog->Find(name);
  if (entry == nullptr) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not loaded");
  }
  StorageReport report;
  report.dom_bytes = entry->dom->MemoryUsage();
  report.succinct_structure_bytes = entry->succinct->StructureBytes();
  report.succinct_content_bytes = entry->succinct->ContentBytes();
  report.region_index_bytes = entry->regions->MemoryUsage();
  report.value_index_bytes = entry->values->MemoryUsage();
  report.tag_dictionary_bytes = entry->tags->HeapBytes();
  report.node_count = entry->dom->NodeCount();
  report.succinct_heap_bytes = entry->succinct->HeapBytes();
  report.region_index_heap_bytes = entry->regions->HeapBytes();
  report.value_index_heap_bytes = entry->values->HeapBytes();
  report.tag_dictionary_heap_bytes = entry->tags->HeapBytes();
  if (entry->backing != nullptr) {
    report.from_snapshot = true;
    report.mapped =
        entry->backing->mode() == storage::SnapshotOpenMode::kMap;
    report.snapshot_file_bytes = entry->backing->file_size();
  }
  return report;
}

}  // namespace xmlq::api
