#ifndef XMLQ_API_DATABASE_H_
#define XMLQ_API_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/cache/plan_cache.h"
#include "xmlq/exec/admission.h"
#include "xmlq/exec/executor.h"
#include "xmlq/opt/synopsis.h"
#include "xmlq/storage/manifest.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/snapshot.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/storage/tag_dictionary.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/document.h"
#include "xmlq/xml/parser.h"

namespace xmlq::api {

/// Per-query options.
struct QueryOptions {
  /// Pick the τ strategy with the cost model; when false, `strategy` is
  /// forced for every pattern in the plan.
  bool auto_optimize = true;
  exec::PatternStrategy strategy = exec::PatternStrategy::kNok;
  exec::FlworMode flwor_mode = exec::FlworMode::kEnv;
  /// Run the logical rewrite pipeline before execution.
  bool apply_rewrites = true;
  /// Collect the per-operator execution profile (EXPLAIN ANALYZE): the
  /// result's `profile` then carries actual cardinalities, engine counters
  /// and wall times next to the optimizer's estimates. Off by default —
  /// disabled collection is engineered to cost nothing measurable.
  bool collect_stats = false;
  /// Resource limits for the query (deadline, step/memory budgets, cancel
  /// flag). Default-constructed = unlimited. A query that exhausts a limit
  /// returns kResourceExhausted; a cancelled one returns kCancelled.
  QueryLimits limits;
  /// Optional: receives this query's serving id *before* admission, so a
  /// concurrent thread can Database::Cancel() it while it is still queued
  /// or running. The caller keeps the atomic alive for the duration of the
  /// call and polls it until non-zero.
  std::atomic<uint64_t>* query_id_out = nullptr;
  /// Consult and populate the plan cache (DESIGN.md §11). Off bypasses the
  /// cache for this query only (it always compiles fresh); the Database-wide
  /// switch is cache::CacheConfig::enabled via SetPlanCache().
  bool use_plan_cache = true;
  /// Intra-query parallelism (DESIGN.md §12): worker lanes for eligible τ
  /// patterns, morsel-parallel over the shared pool. 1 (the default) is the
  /// serial path, untouched; 0 means "all hardware threads". Results and
  /// per-operator stats are byte-identical to the serial run at any value.
  /// Deadlines and cancellation also behave identically; step/memory budgets
  /// are conservatively sliced across lanes, so a skewed morsel distribution
  /// may return kResourceExhausted earlier than the serial run would.
  /// Not part of the plan-cache key: it changes scheduling, never the plan.
  uint32_t parallelism = 1;
  /// Morsel granularity in elements per morsel; 0 = automatic (stream
  /// elements / (lanes * 4)). 1 is the adversarial one-atomic-group-per-
  /// morsel configuration the differential tests exercise.
  size_t morsel_elements = 0;
};

/// Storage-footprint report for one document (experiments E2 and R2).
///
/// `*_bytes` count bytes *referenced* by each component (owned or borrowed
/// from a mapped snapshot); `*_heap_bytes` count bytes actually owned on the
/// heap, so for an mmap-opened document the difference is what the snapshot
/// backing provides for free.
struct StorageReport {
  size_t dom_bytes = 0;
  size_t succinct_structure_bytes = 0;
  size_t succinct_content_bytes = 0;
  size_t region_index_bytes = 0;
  size_t value_index_bytes = 0;
  size_t tag_dictionary_bytes = 0;
  size_t node_count = 0;
  // Per-component owned-heap breakdown (satellite of the snapshot store).
  size_t succinct_heap_bytes = 0;
  size_t region_index_heap_bytes = 0;
  size_t value_index_heap_bytes = 0;
  size_t tag_dictionary_heap_bytes = 0;
  // Snapshot backing, when the document came from Database::Open.
  bool from_snapshot = false;
  bool mapped = false;
  size_t snapshot_file_bytes = 0;
};

/// What Database::Attach found while recovering a durable store directory
/// (DESIGN.md §9): how much of the manifest journal replayed cleanly,
/// which documents are being served, which snapshots failed verification
/// and were quarantined, and which stray files were garbage-collected.
struct RecoveryReport {
  std::string dir;
  uint64_t manifest_records = 0;     // journal records applied
  uint64_t manifest_valid_bytes = 0; // journal prefix replayed
  uint64_t manifest_torn_bytes = 0;  // torn tail truncated (0 = clean)
  std::string manifest_torn_detail;  // why replay stopped, when torn
  std::vector<std::string> loaded;       // "name (g<N>, file)"
  std::vector<std::string> quarantined;  // "name (file): reason"
  std::vector<std::string> orphans_removed;  // uncommitted files unlinked
  std::string ToString() const;
};

/// Knobs for one integrity-scrub pass.
struct ScrubOptions {
  /// I/O throttle for the background scrubber; 0 = unthrottled (the
  /// foreground `.scrub` default).
  uint64_t max_bytes_per_second = 0;
  /// Re-run the full structural validation (cross-section invariants, BP
  /// balance, index fences) on top of the checksum sweep.
  bool deep = false;
  /// Worker lanes for the checksum sweep: whole-file CRC computed over
  /// parallel chunks (combined exactly), per-section CRCs verified in
  /// parallel. 1 = serial; 0 = all hardware threads. Detection and
  /// quarantine decisions are identical at any value.
  uint32_t parallelism = 1;
};

/// What one scrub pass found.
struct ScrubReport {
  uint64_t files_checked = 0;
  uint64_t bytes_read = 0;
  uint64_t corrupt = 0;  // snapshots that failed verification
  bool deep = false;
  std::vector<std::string> quarantined;  // "name (file): reason"
  std::vector<std::string> notes;        // per-document fallback decisions
  std::string ToString() const;
};

/// The embedded native XML database: owns documents in every physical
/// representation (DOM, succinct store, region index, value index, path
/// synopsis) and runs XPath/XQuery through the logical algebra, the rewrite
/// pipeline and the cost-based physical strategy choice.
///
/// Typical use:
///
///   xmlq::api::Database db;
///   db.LoadDocument("bib.xml", xml_text);
///   auto result = db.Query(R"(
///     for $b in doc("bib.xml")/bib/book
///     where $b/price > 50
///     return $b/title)");
///
/// ## Threading model (DESIGN.md §8)
///
/// The catalog is copy-on-write: every query pins an immutable snapshot of
/// the document set at admission, so Query/QueryPath/ExplainAnalyze are
/// const and may run concurrently from any number of threads, including
/// concurrently with LoadDocument/RegisterDocument/Open (which swap the
/// catalog atomically under a small mutex). A returned QueryResult keeps
/// its snapshot pinned, so its node items stay valid even after the
/// documents they point into are replaced.
///
/// Serving controls: SetAdmission() bounds concurrency with a shed-on-
/// overload wait queue, Cancel(query_id) cooperatively stops one query, and
/// a per-engine circuit breaker quarantines a τ engine after repeated
/// faults, degrading queries to the naive navigational engine (reported in
/// QueryResult::degradation and EXPLAIN ANALYZE).
class PreparedQuery;

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  /// Stops the background scrubber (if running) before members tear down.
  ~Database();

  /// Parses `xml_text` and registers it under `name` (building all physical
  /// representations). The first document loaded also becomes the default
  /// document for absolute paths. Replaces any existing document of that
  /// name; in-flight queries keep their pinned snapshot.
  Status LoadDocument(std::string name, std::string_view xml_text,
                      xml::ParseOptions options = {});

  /// Registers an already-built DOM tree (e.g. from a generator). The
  /// document must satisfy IsPreorder().
  Status RegisterDocument(std::string name,
                          std::unique_ptr<xml::Document> doc);

  /// Writes the document `name` (default document when empty) to `path` as
  /// an xqpack snapshot (single file, checksummed sections, atomic write).
  /// Safe concurrently with queries and catalog swaps (it works on its own
  /// pinned snapshot).
  Result<storage::SnapshotWriteInfo> Save(std::string_view name,
                                          const std::string& path) const;

  /// Opens an xqpack snapshot and registers it under `name`, replacing any
  /// existing document of that name. kMap points the succinct structures
  /// directly at the mapping; kCopy reads into a private heap buffer first.
  /// Corrupt or truncated files are rejected with a positioned kParseError.
  Status Open(std::string name, const std::string& path,
              storage::SnapshotOpenMode mode = storage::SnapshotOpenMode::kMap);

  // -- Durable store (DESIGN.md §9) ---------------------------------------

  /// Attaches this database to a durable store directory, creating it when
  /// absent and *recovering* it when present: replays the manifest journal
  /// (truncating any torn tail from a crashed append), verifies every live
  /// snapshot against the whole-file checksum recorded at commit time,
  /// quarantines snapshots that fail (renamed to `<file>.quarantined`,
  /// journaled, the rest keep serving), garbage-collects files no committed
  /// record references, and registers the surviving documents. The
  /// lowest-generation recovered document becomes the default document when
  /// none is set yet. At most one store may be attached per Database.
  ///
  /// `parallelism` > 1 verifies the snapshots on that many morsel-pool lanes
  /// (whole-file CRCs chunk-combined when the store has a single snapshot);
  /// 0 = all hardware threads. Verification outcomes, quarantine decisions
  /// and the report are identical at any value — the manifest side effects
  /// are applied serially in manifest order after the parallel verify.
  Result<RecoveryReport> Attach(
      const std::string& dir,
      storage::SnapshotOpenMode mode = storage::SnapshotOpenMode::kMap,
      uint32_t parallelism = 1);

  /// Durably persists document `name` (default document when empty) into
  /// the attached store: writes a new-generation snapshot file, commits it
  /// with one fsync'd manifest append, then unlinks the previous
  /// generation. Crash-atomic: a crash anywhere leaves the store serving
  /// exactly the old or exactly the new state after recovery. Kill points:
  /// "persist.begin", "persist.snapshot_written", "persist.committed" (plus
  /// the file-level sites inside the snapshot write and journal append).
  Status Persist(std::string_view name = {});

  /// Removes document `name` from the catalog and, when it is store-backed,
  /// durably from the attached store (manifest append, then unlink). Kill
  /// points: "remove.begin", "remove.committed".
  Status Remove(std::string_view name);

  /// One integrity-scrub pass over every live snapshot in the attached
  /// store: re-reads each file (throttled to `max_bytes_per_second`),
  /// verifies it against the manifest's whole-file CRC-32C — which catches
  /// even corruption hiding behind recomputed in-file section checksums —
  /// and re-validates the image (`deep` adds full structural validation).
  /// A corrupt snapshot is quarantined; a document that was serving
  /// straight off the corrupt mapping degrades to a revalidated in-memory
  /// copy (or is dropped when the poison reached memory), and subsequent
  /// query results carry the degradation note. Safe concurrently with
  /// queries, Persist and Remove.
  Result<ScrubReport> Scrub(const ScrubOptions& options = {});

  /// Starts the background scrubber: one Scrub(options) pass every
  /// `interval_ms`, each pass gated on a free admission slot
  /// (QueryScheduler::TryAdmit) so scrub I/O never competes with a
  /// saturated serving load. Requires an attached store.
  Status StartScrubber(uint64_t interval_ms, ScrubOptions options = {});

  /// Stops and joins the background scrubber; no-op when not running.
  void StopScrubber();

  bool scrubber_running() const;

  /// Most recent background-scrub result (foreground Scrub also records
  /// here) plus how many cycles ran / were skipped for lack of a slot.
  ScrubReport last_scrub_report() const;
  uint64_t scrub_cycles() const;
  uint64_t scrub_cycles_skipped() const;

  /// Directory of the attached store ("" when none).
  std::string store_dir() const;

  // -- Replication (DESIGN.md §13) -----------------------------------------

  /// What a replication subscriber at `cursor` still needs: the primary's
  /// manifest clock, every live registration above the cursor (ascending by
  /// generation, ready to ship), and the full live census (name, generation)
  /// the heartbeat carries so removals propagate even after compaction
  /// erased their journal records.
  struct ReplDelta {
    uint64_t max_generation = 0;
    std::vector<storage::ManifestRecord> pending;
    std::vector<std::pair<std::string, uint64_t>> live;
  };
  Result<ReplDelta> ReplDeltaFrom(uint64_t cursor) const;

  /// Applies one replicated registration shipped by the primary: verifies
  /// `bytes` against the record's whole-file size and CRC, writes the
  /// snapshot atomically, validates it opens, commits with one fsync'd
  /// manifest append (the commit point — the same discipline as Persist),
  /// unlinks the superseded generation and installs the document into the
  /// serving catalog. Idempotent per name: a record whose generation the
  /// local store already has (or passed) is skipped, so re-shipping after a
  /// crash mid-apply is safe. Records keep the *primary's* generations, so
  /// the local manifest clock tracks the replication cursor. Kill points:
  /// "repl.apply.begin", "repl.apply.snapshot_written",
  /// "repl.apply.committed"; fault site: "repl.apply.commit".
  Status ApplyReplicated(const storage::ManifestRecord& record,
                         std::string_view bytes);

  /// Applies a removal learned from the heartbeat census: journals a
  /// kRemove under `primary_generation` (the primary's clock — a follower
  /// never mints generations), unlinks the snapshot and drops the document
  /// from the catalog. No-op when the store has no such document. Only call
  /// when caught up to `primary_generation`, so the clock cannot skip
  /// unseen registrations.
  Status ApplyReplicatedRemove(std::string_view name,
                               uint64_t primary_generation);

  /// Follower mode: Persist and Remove refuse (the replication stream is
  /// the only writer of a follower's store), queries serve normally.
  void SetFollower(bool follower) { follower_.store(follower); }
  bool follower() const { return follower_.load(); }

  /// Address of the primary a follower's writes should go to ("" = unknown).
  /// Installed by the replication client; baked into the structured refusal
  /// Persist/Remove return in follower mode so clients know where to retry.
  void SetPrimaryHint(std::string host_port);
  std::string primary_hint() const;

  // -- Coordinated failover (DESIGN.md §14) --------------------------------

  /// Replication epoch (fencing term): the highest kEpoch record in the
  /// attached manifest, mirrored into an atomic so the serving loop can
  /// stamp it into every repl frame without taking store_mu_. 0 until the
  /// first promotion anywhere in the replication group.
  uint64_t epoch() const { return epoch_.load(); }

  /// Promotes this database to primary: persists epoch+1 as a kEpoch
  /// manifest record (the fsync'd commit point — kill points
  /// "promote.begin" / "promote.committed") and lifts follower mode.
  /// Returns the new epoch. The caller must stop any replication client
  /// *first* so the stream cannot race the promotion. Crash-atomic: a crash
  /// anywhere leaves the store at exactly the old or the new epoch.
  Result<uint64_t> Promote();

  /// Adopts a higher epoch observed on the wire (a follower learning that a
  /// promotion happened): persists it as a kEpoch record when it exceeds
  /// the local epoch; no-op otherwise. Never lowers the epoch.
  Status AdoptEpoch(uint64_t epoch);

  /// Installs (or clears, with nullptr) the hook QuarantineSnapshot calls
  /// after quarantining a snapshot — the self-healing trigger: a
  /// replication client schedules a re-fetch of exactly that generation
  /// from the current primary. Called without Database locks held.
  void SetQuarantineHook(
      std::function<void(const std::string& name, uint64_t generation)> hook);

  /// Installs (or clears, with nullptr) the staleness gate every query
  /// checks before admission — the follower-read shedding policy. The gate
  /// object is shared with the replication client that publishes into it.
  void SetReadGate(std::shared_ptr<exec::StalenessGate> gate) const;

  /// Evaluates an XQuery expression. Thread-safe; may block in admission
  /// when SetAdmission() configured bounded concurrency.
  Result<exec::QueryResult> Query(std::string_view query,
                                  const QueryOptions& options = {}) const;

  /// Evaluates an XPath expression against document `name` (or the default
  /// document when empty), returning matching nodes. Thread-safe.
  Result<exec::QueryResult> QueryPath(std::string_view path,
                                      std::string_view doc_name = {},
                                      const QueryOptions& options = {}) const;

  /// Prepares `text` as a reusable statement: normalizes it, lifts its
  /// comparison literals into bind slots, and validates that it compiles
  /// against the current catalog. The returned handle executes through the
  /// plan cache (parse + optimize happen once per catalog generation, not
  /// per call) and survives catalog swaps — a stale plan recompiles
  /// transparently on the next Execute. Thread-safe; the handle borrows this
  /// Database and must not outlive it.
  Result<PreparedQuery> Prepare(std::string_view text,
                                const QueryOptions& options = {}) const;

  /// Returns the optimized logical plan (and per-pattern strategy choices)
  /// for a query, without executing it (no admission slot is consumed).
  Result<std::string> Explain(std::string_view query,
                              const QueryOptions& options = {}) const;

  /// Executes the query with stats collection on and renders the annotated
  /// plan tree — per operator: estimated vs. actual rows (with q-error),
  /// engine counters (nodes visited, stack traffic, index probes, bytes)
  /// and inclusive wall time — followed by the result item count. An
  /// engine fallback shows up as "[<engine>->naive (fault|quarantined)]".
  Result<std::string> ExplainAnalyze(std::string_view query,
                                     const QueryOptions& options = {}) const;

  /// Serializes a query result: node items as XML, atomics as text, one
  /// item per line.
  static std::string ToXml(const exec::QueryResult& result, bool indent = false);

  // -- Serving controls ----------------------------------------------------

  /// Bounds query concurrency (see exec::AdmissionConfig). The default
  /// config admits everything immediately. Takes effect for subsequent
  /// admissions; running queries keep their slots.
  void SetAdmission(const exec::AdmissionConfig& config) const;

  /// Reconfigures the per-engine circuit breaker and closes every slot.
  void SetBreaker(const exec::CircuitBreaker::Config& config) const;

  /// Cooperatively cancels the active query with this id (ids are published
  /// via QueryOptions::query_id_out and exec::QueryResult::query_id). The
  /// query unwinds with kCancelled at its next guard poll — or leaves the
  /// admission queue immediately if it was still waiting. Returns false
  /// when no such query is active (already finished or never existed).
  bool Cancel(uint64_t query_id) const;

  /// Reconfigures the plan cache, dropping every cached plan (the safe
  /// default when tuning knobs change). `config.enabled = false` turns
  /// transparent caching off database-wide.
  void SetPlanCache(const cache::CacheConfig& config) const;

  /// Plan-cache counters (hits/misses/evictions/...) for monitoring.
  cache::CacheStats plan_cache_stats() const;

  /// Admission counters (running/queued/shed/...) for monitoring.
  exec::AdmissionStats admission_stats() const;

  /// Human-readable circuit-breaker state, one line per degraded engine.
  std::string BreakerReport() const;

  bool Contains(std::string_view name) const;

  /// Physical views of a loaded document (nullptr when absent). The
  /// pointer is valid while the named document is not replaced; concurrent
  /// replacers must coordinate with callers of this accessor (queries do
  /// not need it — they pin snapshots internally).
  const exec::IndexedDocument* Get(std::string_view name) const;
  const opt::Synopsis* GetSynopsis(std::string_view name) const;

  Result<StorageReport> Report(std::string_view name) const;

  /// Name of the default document ("" until the first load).
  std::string default_document() const;

 private:
  struct Entry {
    std::unique_ptr<xml::Document> dom;
    std::unique_ptr<storage::SuccinctDocument> succinct;
    std::unique_ptr<storage::RegionIndex> regions;
    std::unique_ptr<storage::ValueIndex> values;
    std::unique_ptr<storage::TagDictionary> tags;
    std::unique_ptr<opt::Synopsis> synopsis;
    /// Snapshot bytes the components borrow from (Database::Open only).
    /// Destruction order is irrelevant: component destructors never touch
    /// borrowed memory.
    std::unique_ptr<storage::SnapshotBacking> backing;
    exec::IndexedDocument view;
  };

  /// One immutable catalog version. Readers pin a shared_ptr to it; writers
  /// copy the entry map (cheap — entries are shared), mutate the copy and
  /// swap it in under `catalog_mu_`. An Entry lives until the last snapshot
  /// (or query result) referencing it is dropped.
  struct CatalogState {
    std::map<std::string, std::shared_ptr<const Entry>, std::less<>> entries;
    std::string default_document;
    /// Strictly increasing version of this catalog, bumped by every swap
    /// (Install/Remove/Attach/quarantine). Cached plans record the
    /// generation they were compiled under and never serve across one: any
    /// semantic input to compilation or strategy choice (document set,
    /// default document, synopsis) lives in the catalog, so a generation
    /// match proves the cached plan is still what a fresh compile would
    /// produce.
    uint64_t generation = 0;
    /// Documents the scrubber degraded (snapshot quarantined; serving an
    /// in-memory fallback): name -> note. Queries touching one surface the
    /// note in QueryResult::degradation, like engine fallbacks do.
    std::map<std::string, std::string, std::less<>> degraded;

    const Entry* Find(std::string_view name) const {
      const auto it = entries.find(name.empty()
                                       ? std::string_view(default_document)
                                       : name);
      return it == entries.end() ? nullptr : it->second.get();
    }
  };

  friend class PreparedQuery;

  std::shared_ptr<const CatalogState> Pin() const;
  std::shared_ptr<cache::PlanCache> PinPlanCache() const;
  std::shared_ptr<exec::StalenessGate> PinReadGate() const;
  Status Install(std::string name, std::shared_ptr<const Entry> entry);

  /// Moves an opened snapshot's components into a catalog entry (shared by
  /// Open, Attach and the scrubber's in-memory fallback).
  static std::shared_ptr<Entry> EntryFromSnapshot(
      storage::OpenedSnapshot snapshot);
  /// Quarantines the snapshot behind `record` (rename + journal append,
  /// under store_mu_) and degrades or drops the serving catalog entry.
  /// `reason` is the verification error; findings land in `report`.
  Status QuarantineSnapshot(const storage::ManifestRecord& record,
                            const std::string& reason, ScrubReport* report);
  void ScrubberLoop(uint64_t interval_ms, ScrubOptions options);

  /// The structured follower write refusal: names the primary (when known)
  /// and carries the standard retry-after hint so wire clients back off and
  /// redirect instead of hard-failing.
  Status FollowerRefusal() const;

  Result<algebra::LogicalExprPtr> Compile(std::string_view query,
                                          const QueryOptions& options,
                                          const CatalogState& catalog) const;

  /// How a plan handed to Run() relates to the plan cache.
  struct ExecHints {
    /// Strategy already decided (cache hit or install-time pick); Run skips
    /// the per-execution PickStrategy.
    bool have_strategy = false;
    exec::PatternStrategy strategy = exec::PatternStrategy::kNok;
    /// "fresh" / "cached (...)" for QueryResult::plan_provenance.
    std::string provenance;
    /// Feedback sink; when set, Run commits observed q-error/work to it.
    std::shared_ptr<cache::CachedPlan> entry;
    /// Profile this execution internally (feedback sampling) even when the
    /// caller did not ask for stats; the profile is stripped before return.
    bool sample_profile = false;
  };

  Result<exec::QueryResult> Run(algebra::LogicalExprPtr plan,
                                const QueryOptions& options,
                                std::shared_ptr<const CatalogState> catalog,
                                ExecHints hints) const;

  /// The transparent-cache execution path shared by Query, QueryPath and
  /// PreparedQuery::Execute: lookup by normalized fingerprint, bind + run on
  /// hit; compile the sentinel template, pick a strategy on the bound plan
  /// and insert on miss. `is_path` compiles via the XPath front end against
  /// `path_doc` instead of Database::Compile. `values` overrides the
  /// normalized query's own literals (PreparedQuery binds).
  Result<exec::QueryResult> CachedExecute(
      std::string_view original_text, const cache::NormalizedQuery& normalized,
      const std::vector<std::string>& values, const QueryOptions& options,
      std::shared_ptr<const CatalogState> catalog, bool is_path,
      const std::string& path_doc) const;

  /// Cache key: front-end tag + options/limits class + fingerprint.
  static std::string CacheKey(bool is_path, const std::string& path_doc,
                              const QueryOptions& options,
                              const std::string& fingerprint);

  exec::EvalContext MakeContext(const CatalogState& catalog,
                                const QueryOptions& options) const;
  /// Applies the cost model to every τ node; returns the forced strategy
  /// for the context (single strategy per plan: the cheapest for the most
  /// expensive pattern). `ranking` (optional) receives the costliest
  /// pattern's per-strategy cost ranking, cheapest first — the adaptive
  /// re-plan order.
  exec::PatternStrategy PickStrategy(
      const CatalogState& catalog, const algebra::LogicalExpr& plan,
      std::string* explanation,
      std::vector<std::pair<exec::PatternStrategy, double>>* ranking =
          nullptr) const;

  // Copy-on-write catalog: the mutex orders writers and guards the root
  // pointer; readers hold it only for the shared_ptr copy.
  mutable std::mutex catalog_mu_;
  std::shared_ptr<const CatalogState> catalog_ =
      std::make_shared<CatalogState>();

  // Serving state, shared by every concurrent query. All mutable so the
  // const (read-only-catalog) query paths can use them.
  mutable exec::QueryScheduler scheduler_;
  mutable exec::CircuitBreaker breaker_;
  // The plan cache is swapped whole on SetPlanCache; queries pin the
  // shared_ptr, so reconfiguration never races an in-flight lookup.
  mutable std::mutex plan_cache_mu_;
  mutable std::shared_ptr<cache::PlanCache> plan_cache_ =
      std::make_shared<cache::PlanCache>();
  mutable std::atomic<uint64_t> next_query_id_{1};
  mutable std::mutex active_mu_;
  mutable std::map<uint64_t, std::shared_ptr<CancelToken>> active_;

  // Durable store. store_mu_ orders manifest appends, generation allocation
  // and snapshot-file renames/unlinks; it nests *outside* catalog_mu_ and
  // the query paths never take it.
  mutable std::mutex store_mu_;
  std::unique_ptr<storage::Manifest> manifest_;
  storage::SnapshotOpenMode store_mode_ = storage::SnapshotOpenMode::kMap;

  // Replication: follower flag + the staleness gate queries consult before
  // admission (swapped whole like the plan cache, so reconfiguration never
  // races an in-flight check).
  mutable std::atomic<bool> follower_{false};
  mutable std::mutex read_gate_mu_;
  mutable std::shared_ptr<exec::StalenessGate> read_gate_;

  // Coordinated failover (DESIGN.md §14): the manifest's epoch mirrored
  // lock-free for per-frame stamping; writes happen under store_mu_ after
  // the manifest append commits. The primary hint and quarantine hook are
  // installed by the replication client.
  mutable std::atomic<uint64_t> epoch_{0};
  mutable std::mutex hint_mu_;
  std::string primary_hint_;
  mutable std::mutex quarantine_hook_mu_;
  std::function<void(const std::string&, uint64_t)> quarantine_hook_;

  // Background scrubber.
  mutable std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  std::thread scrub_thread_;
  bool scrub_stop_ = false;
  mutable std::mutex scrub_report_mu_;
  ScrubReport last_scrub_;
  uint64_t scrub_cycles_ = 0;
  uint64_t scrub_skipped_ = 0;
};

/// A prepared statement from Database::Prepare: the query text with its
/// comparison literals lifted into typed bind slots. The handle holds no
/// compiled state itself — Execute goes through the plan cache by
/// fingerprint, so it stays valid across catalog swaps (the plan silently
/// recompiles under the new generation) and cache evictions. Cheap to copy;
/// safe to Execute concurrently from many threads. Borrows the Database.
class PreparedQuery {
 public:
  /// Number of bind slots ("?" parameters) the text was lifted into. Zero
  /// for queries with no comparison literals (or unsupported syntax — the
  /// statement still works, it just caches by exact text).
  size_t slot_count() const { return normalized_.slots.size(); }
  /// True when slot `i` expects numeric text (the literal it replaced was a
  /// number token).
  bool slot_numeric(size_t i) const { return normalized_.slots[i].numeric; }
  /// The literal values from the original text, in slot order — the
  /// defaults used by Execute() without binds.
  const std::vector<std::string>& default_binds() const {
    return normalized_.values;
  }
  const std::string& text() const { return text_; }

  /// Executes with the original literal values.
  Result<exec::QueryResult> Execute() const;
  /// Executes with `binds` substituted into the slots (one value per slot,
  /// in slot order). String slots accept any text; numeric slots require
  /// number syntax (digits and dots) so the bound plan stays byte-for-byte
  /// what compiling the literal would produce.
  Result<exec::QueryResult> Execute(const std::vector<std::string>& binds) const;
  /// Same, overriding the options captured at Prepare time.
  Result<exec::QueryResult> Execute(const std::vector<std::string>& binds,
                                    const QueryOptions& options) const;

 private:
  friend class Database;
  PreparedQuery(const Database* db, std::string text, QueryOptions options,
                cache::NormalizedQuery normalized)
      : db_(db),
        text_(std::move(text)),
        options_(std::move(options)),
        normalized_(std::move(normalized)) {}

  const Database* db_;
  std::string text_;
  QueryOptions options_;
  cache::NormalizedQuery normalized_;
};

}  // namespace xmlq::api

#endif  // XMLQ_API_DATABASE_H_
