#ifndef XMLQ_API_DATABASE_H_
#define XMLQ_API_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/executor.h"
#include "xmlq/opt/synopsis.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/snapshot.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/storage/tag_dictionary.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/document.h"
#include "xmlq/xml/parser.h"

namespace xmlq::api {

/// Per-query options.
struct QueryOptions {
  /// Pick the τ strategy with the cost model; when false, `strategy` is
  /// forced for every pattern in the plan.
  bool auto_optimize = true;
  exec::PatternStrategy strategy = exec::PatternStrategy::kNok;
  exec::FlworMode flwor_mode = exec::FlworMode::kEnv;
  /// Run the logical rewrite pipeline before execution.
  bool apply_rewrites = true;
  /// Collect the per-operator execution profile (EXPLAIN ANALYZE): the
  /// result's `profile` then carries actual cardinalities, engine counters
  /// and wall times next to the optimizer's estimates. Off by default —
  /// disabled collection is engineered to cost nothing measurable.
  bool collect_stats = false;
  /// Resource limits for the query (deadline, step/memory budgets, cancel
  /// flag). Default-constructed = unlimited. A query that exhausts a limit
  /// returns kResourceExhausted; a cancelled one returns kCancelled.
  QueryLimits limits;
};

/// Storage-footprint report for one document (experiments E2 and R2).
///
/// `*_bytes` count bytes *referenced* by each component (owned or borrowed
/// from a mapped snapshot); `*_heap_bytes` count bytes actually owned on the
/// heap, so for an mmap-opened document the difference is what the snapshot
/// backing provides for free.
struct StorageReport {
  size_t dom_bytes = 0;
  size_t succinct_structure_bytes = 0;
  size_t succinct_content_bytes = 0;
  size_t region_index_bytes = 0;
  size_t value_index_bytes = 0;
  size_t tag_dictionary_bytes = 0;
  size_t node_count = 0;
  // Per-component owned-heap breakdown (satellite of the snapshot store).
  size_t succinct_heap_bytes = 0;
  size_t region_index_heap_bytes = 0;
  size_t value_index_heap_bytes = 0;
  size_t tag_dictionary_heap_bytes = 0;
  // Snapshot backing, when the document came from Database::Open.
  bool from_snapshot = false;
  bool mapped = false;
  size_t snapshot_file_bytes = 0;
};

/// The embedded native XML database: owns documents in every physical
/// representation (DOM, succinct store, region index, value index, path
/// synopsis) and runs XPath/XQuery through the logical algebra, the rewrite
/// pipeline and the cost-based physical strategy choice.
///
/// Typical use:
///
///   xmlq::api::Database db;
///   db.LoadDocument("bib.xml", xml_text);
///   auto result = db.Query(R"(
///     for $b in doc("bib.xml")/bib/book
///     where $b/price > 50
///     return $b/title)");
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses `xml_text` and registers it under `name` (building all physical
  /// representations). The first document loaded also becomes the default
  /// document for absolute paths.
  Status LoadDocument(std::string name, std::string_view xml_text,
                      xml::ParseOptions options = {});

  /// Registers an already-built DOM tree (e.g. from a generator). The
  /// document must satisfy IsPreorder().
  Status RegisterDocument(std::string name,
                          std::unique_ptr<xml::Document> doc);

  /// Writes the document `name` (default document when empty) to `path` as
  /// an xqpack snapshot (single file, checksummed sections, atomic write).
  Result<storage::SnapshotWriteInfo> Save(std::string_view name,
                                          const std::string& path) const;

  /// Opens an xqpack snapshot and registers it under `name`, replacing any
  /// existing document of that name. kMap points the succinct structures
  /// directly at the mapping; kCopy reads into a private heap buffer first.
  /// Corrupt or truncated files are rejected with a positioned kParseError.
  Status Open(std::string name, const std::string& path,
              storage::SnapshotOpenMode mode = storage::SnapshotOpenMode::kMap);

  /// Evaluates an XQuery expression.
  Result<exec::QueryResult> Query(std::string_view query,
                                  const QueryOptions& options = {});

  /// Evaluates an XPath expression against document `name` (or the default
  /// document when empty), returning matching nodes.
  Result<exec::QueryResult> QueryPath(std::string_view path,
                                      std::string_view doc_name = {},
                                      const QueryOptions& options = {});

  /// Returns the optimized logical plan (and per-pattern strategy choices)
  /// for a query, without executing it.
  Result<std::string> Explain(std::string_view query,
                              const QueryOptions& options = {});

  /// Executes the query with stats collection on and renders the annotated
  /// plan tree — per operator: estimated vs. actual rows (with q-error),
  /// engine counters (nodes visited, stack traffic, index probes, bytes)
  /// and inclusive wall time — followed by the result item count.
  Result<std::string> ExplainAnalyze(std::string_view query,
                                     const QueryOptions& options = {});

  /// Serializes a query result: node items as XML, atomics as text, one
  /// item per line.
  static std::string ToXml(const exec::QueryResult& result, bool indent = false);

  bool Contains(std::string_view name) const {
    return entries_.find(name) != entries_.end();
  }
  /// Physical views of a loaded document (nullptr when absent).
  const exec::IndexedDocument* Get(std::string_view name) const;
  const opt::Synopsis* GetSynopsis(std::string_view name) const;

  Result<StorageReport> Report(std::string_view name) const;

  /// Name of the default document ("" until the first load).
  const std::string& default_document() const { return default_document_; }

 private:
  struct Entry {
    std::unique_ptr<xml::Document> dom;
    std::unique_ptr<storage::SuccinctDocument> succinct;
    std::unique_ptr<storage::RegionIndex> regions;
    std::unique_ptr<storage::ValueIndex> values;
    std::unique_ptr<storage::TagDictionary> tags;
    std::unique_ptr<opt::Synopsis> synopsis;
    /// Snapshot bytes the components borrow from (Database::Open only).
    /// Destruction order is irrelevant: component destructors never touch
    /// borrowed memory.
    std::unique_ptr<storage::SnapshotBacking> backing;
    exec::IndexedDocument view;
  };

  Result<algebra::LogicalExprPtr> Compile(std::string_view query,
                                          const QueryOptions& options) const;
  Result<exec::QueryResult> Run(algebra::LogicalExprPtr plan,
                                const QueryOptions& options);
  exec::EvalContext MakeContext(const QueryOptions& options) const;
  /// Applies the cost model to every τ node; returns the forced strategy
  /// for the context (single strategy per plan: the cheapest for the most
  /// expensive pattern).
  exec::PatternStrategy PickStrategy(const algebra::LogicalExpr& plan,
                                     std::string* explanation) const;

  std::map<std::string, Entry, std::less<>> entries_;
  std::string default_document_;
};

}  // namespace xmlq::api

#endif  // XMLQ_API_DATABASE_H_
