#ifndef XMLQ_BASE_ARRAY_REF_H_
#define XMLQ_BASE_ARRAY_REF_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace xmlq {

/// Array storage that either owns its elements (a grown-in-place vector, the
/// normal build path) or borrows them from externally owned memory (a section
/// of an mmap'd snapshot). All reads go through a (pointer, size) view so the
/// two modes are indistinguishable to consumers; the snapshot layer is the
/// only code that creates borrowing instances.
///
/// Borrowed memory must outlive the ArrayRef (the snapshot bundle keeps the
/// mapping alive). Copying a borrowing ArrayRef yields another borrower of
/// the same memory; copying an owner deep-copies. Moves never invalidate the
/// view (vector moves transfer the heap buffer).
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  ArrayRef(const ArrayRef& other) { *this = other; }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this == &other) return *this;
    vec_ = other.vec_;
    external_ = other.external_;
    if (external_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      Sync();
    }
    return *this;
  }
  ArrayRef(ArrayRef&& other) noexcept
      : vec_(std::move(other.vec_)),
        data_(other.data_),
        size_(other.size_),
        external_(other.external_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.external_ = false;
  }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this == &other) return *this;
    vec_ = std::move(other.vec_);
    data_ = other.data_;
    size_ = other.size_;
    external_ = other.external_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.external_ = false;
    return *this;
  }

  /// A borrowing view over externally owned memory.
  static ArrayRef View(std::span<const T> external) {
    ArrayRef out;
    out.data_ = external.data();
    out.size_ = external.size();
    out.external_ = true;
    return out;
  }

  /// Takes ownership of `v` (replacing any previous contents or view).
  void Assign(std::vector<T> v) {
    vec_ = std::move(v);
    external_ = false;
    Sync();
  }

  void PushBack(T value) {
    vec_.push_back(std::move(value));
    Sync();
  }

  template <typename It>
  void Append(It first, It last) {
    vec_.insert(vec_.end(), first, last);
    Sync();
  }

  void Reserve(size_t n) {
    vec_.reserve(n);
    Sync();
  }

  /// Mutable element access; only valid while owning.
  T& MutableAt(size_t i) { return vec_[i]; }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  std::span<const T> span() const { return {data_, size_}; }

  /// True when the elements live in externally owned memory (mmap section).
  bool external() const { return external_; }

  /// Heap bytes owned by this instance (0 while borrowing).
  size_t OwnedBytes() const { return vec_.capacity() * sizeof(T); }

 private:
  void Sync() {
    data_ = vec_.data();
    size_ = vec_.size();
  }

  std::vector<T> vec_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool external_ = false;
};

}  // namespace xmlq

#endif  // XMLQ_BASE_ARRAY_REF_H_
