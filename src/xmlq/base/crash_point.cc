#include "xmlq/base/crash_point.h"

#include <cstdlib>

namespace xmlq {

bool CrashPointArmed(std::string_view site) {
  // Re-read the environment on every call: the crash-matrix test forks,
  // setenv's the site in the child, and then drives the durable write path,
  // so any caching here would latch the parent's unarmed state. The sites
  // only exist on cold durable-write paths (one getenv per fsync-bounded
  // step), so there is nothing worth caching.
  const char* armed = std::getenv("XMLQ_CRASH");
  return armed != nullptr && site == armed;
}

void CrashNow() { std::_Exit(2); }

void CrashPointHit(std::string_view site) {
  if (CrashPointArmed(site)) CrashNow();
}

}  // namespace xmlq
