#ifndef XMLQ_BASE_CRASH_POINT_H_
#define XMLQ_BASE_CRASH_POINT_H_

#include <string_view>

namespace xmlq {

/// Kill-point harness for crash-safety tests (DESIGN.md §9).
///
/// Durable write paths mark every write boundary with
/// `XMLQ_CRASH_POINT("site.name")`. When the environment variable
/// `XMLQ_CRASH` names that site, the process dies *immediately* with
/// `_Exit(2)` — no destructors, no buffer flushes, no atexit handlers —
/// which models a power cut at exactly that syscall boundary: every write
/// issued before the point is on disk (or in the page cache, which a forked
/// child's death preserves), and nothing after it ever happens.
///
/// The recovery test forks a child per (operation × kill point) cell,
/// arms one site via setenv before performing the operation, and asserts
/// that re-opening the store in the parent yields exactly the pre- or
/// post-operation state. Production cost: one getenv when the process has
/// the variable set, a single static boolean check when it does not — and
/// the sites only exist on cold durable-write paths.
///
/// Torn writes (a record or file image persisted only partially) cannot be
/// modeled by a kill *between* syscalls; write loops implement them
/// explicitly by checking `CrashPointArmed("...torn")`, issuing a prefix of
/// the write, and calling `CrashNow()`.

/// True when `XMLQ_CRASH` names `site`.
bool CrashPointArmed(std::string_view site);

/// Dies with `_Exit(2)` — the crash-point exit code the kill-point matrix
/// test recognizes.
[[noreturn]] void CrashNow();

/// `CrashNow()` when `site` is armed; otherwise a no-op.
void CrashPointHit(std::string_view site);

#define XMLQ_CRASH_POINT(site) ::xmlq::CrashPointHit(site)

}  // namespace xmlq

#endif  // XMLQ_BASE_CRASH_POINT_H_
