#include "xmlq/base/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define XMLQ_CRC32_HW 1
#endif

namespace xmlq {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C

/// 8 slicing tables, generated at compile time. kTables[0] is the classic
/// byte-at-a-time table; kTables[k][b] advances a byte `b` that sits k bytes
/// ahead of the current position.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables[0][b] = crc;
  }
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = tables[0][b];
    for (size_t k = 1; k < 8; ++k) {
      crc = (crc >> 8) ^ tables[0][crc & 0xFF];
      tables[k][b] = crc;
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

// ---- GF(2) machinery for recombining interleaved/chunked streams --------
//
// Appending n zero bytes to a message multiplies its CRC by x^(8n) in
// GF(2)[x]/P — a linear operator on the 32 crc bits. The hardware path
// precomputes that operator for its two interleave block sizes as 4x256
// lookup tables; Crc32Combine exponentiates it for arbitrary lengths. Same
// construction as zlib's crc32_combine.

uint32_t Gf2Times(const uint32_t mat[32], uint32_t vec) {
  uint32_t out = 0;
  for (int i = 0; vec != 0; ++i, vec >>= 1) {
    if (vec & 1) out ^= mat[i];
  }
  return out;
}

void Gf2Square(uint32_t dst[32], const uint32_t src[32]) {
  for (int i = 0; i < 32; ++i) dst[i] = Gf2Times(src, src[i]);
}

#ifdef XMLQ_CRC32_HW

struct ShiftTable {
  uint32_t t[4][256];

  /// The operator applied to a crc value: four byte-indexed lookups.
  uint32_t Apply(uint32_t crc) const {
    return t[0][crc & 0xFF] ^ t[1][(crc >> 8) & 0xFF] ^
           t[2][(crc >> 16) & 0xFF] ^ t[3][crc >> 24];
  }
};

/// Builds the "append 2^log2_bytes zero bytes" operator.
ShiftTable MakeShift(int log2_bytes) {
  // Operator for one zero *bit*: crc' = (crc >> 1) ^ (crc & 1 ? P : 0).
  uint32_t even[32], odd[32];
  odd[0] = kPoly;
  for (int i = 1; i < 32; ++i) odd[i] = uint32_t{1} << (i - 1);
  // Square log2_bytes + 3 times: 2^(log2_bytes + 3) bits.
  uint32_t* cur = odd;
  uint32_t* next = even;
  for (int s = 0; s < log2_bytes + 3; ++s) {
    Gf2Square(next, cur);
    std::swap(cur, next);
  }
  ShiftTable table;
  for (uint32_t b = 0; b < 256; ++b) {
    for (int j = 0; j < 4; ++j) {
      table.t[j][b] = Gf2Times(cur, b << (8 * j));
    }
  }
  return table;
}

constexpr int kLongLog2 = 13, kShortLog2 = 9;  // 8 KiB / 512 B blocks
constexpr size_t kLong = size_t{1} << kLongLog2;
constexpr size_t kShort = size_t{1} << kShortLog2;

uint64_t Load64(const unsigned char* p) {
  uint64_t word;
  std::memcpy(&word, p, sizeof(word));
  return word;
}

/// Three crc32q streams over `stride`-byte lanes, merged via `shift`.
/// The crc32 instruction family is exposed through builtins so only this
/// function needs the sse4.2 target, not the whole translation unit.
__attribute__((target("sse4.2"))) uint32_t Hw3Way(const unsigned char* p,
                                                  size_t stride,
                                                  const ShiftTable& shift,
                                                  uint32_t crc) {
  uint64_t c0 = crc, c1 = 0, c2 = 0;
  for (size_t i = 0; i < stride; i += 8) {
    c0 = __builtin_ia32_crc32di(c0, Load64(p + i));
    c1 = __builtin_ia32_crc32di(c1, Load64(p + stride + i));
    c2 = __builtin_ia32_crc32di(c2, Load64(p + 2 * stride + i));
  }
  crc = shift.Apply(static_cast<uint32_t>(c0)) ^ static_cast<uint32_t>(c1);
  crc = shift.Apply(crc) ^ static_cast<uint32_t>(c2);
  return crc;
}

__attribute__((target("sse4.2"))) uint32_t HwCrc(const unsigned char* p,
                                                 size_t size, uint32_t crc) {
  static const ShiftTable long_shift = MakeShift(kLongLog2);
  static const ShiftTable short_shift = MakeShift(kShortLog2);
  while (size != 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --size;
  }
  while (size >= 3 * kLong) {
    crc = Hw3Way(p, kLong, long_shift, crc);
    p += 3 * kLong;
    size -= 3 * kLong;
  }
  while (size >= 3 * kShort) {
    crc = Hw3Way(p, kShort, short_shift, crc);
    p += 3 * kShort;
    size -= 3 * kShort;
  }
  uint64_t wide = crc;
  while (size >= 8) {
    wide = __builtin_ia32_crc32di(wide, Load64(p));
    p += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(wide);
  while (size-- > 0) crc = __builtin_ia32_crc32qi(crc, *p++);
  return crc;
}

#endif  // XMLQ_CRC32_HW

}  // namespace

namespace internal {

uint32_t Crc32Software(const void* data, size_t size, uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
          kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
          kTables[3][p[4]] ^ kTables[2][p[5]] ^ kTables[1][p[6]] ^
          kTables[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

bool Crc32HardwareAvailable() {
#ifdef XMLQ_CRC32_HW
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
#else
  return false;
#endif
}

}  // namespace internal

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
#ifdef XMLQ_CRC32_HW
  if (internal::Crc32HardwareAvailable()) {
    return ~HwCrc(static_cast<const unsigned char*>(data), size, ~seed);
  }
#endif
  return internal::Crc32Software(data, size, seed);
}

uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b) {
  // The pre/post inversions cancel: with F the raw register map of chunk B
  // (affine: F(r) = L(r) ^ C, L = multiply by x^(8 len_b)), expanding
  // ~F(~crc_a) against ~F(~0) = crc_b leaves exactly L(crc_a) ^ crc_b.
  uint32_t even[32], odd[32];
  odd[0] = kPoly;  // the one-zero-bit operator
  for (int i = 1; i < 32; ++i) odd[i] = uint32_t{1} << (i - 1);
  Gf2Square(even, odd);  // 2 bits
  Gf2Square(odd, even);  // 4 bits
  // Square-and-multiply over the bits of len_b (first squaring: 8 bits =
  // one zero byte).
  while (len_b != 0) {
    Gf2Square(even, odd);
    if (len_b & 1) crc_a = Gf2Times(even, crc_a);
    len_b >>= 1;
    if (len_b == 0) break;
    Gf2Square(odd, even);
    if (len_b & 1) crc_a = Gf2Times(odd, crc_a);
    len_b >>= 1;
  }
  return crc_a ^ crc_b;
}

}  // namespace xmlq
