#ifndef XMLQ_BASE_CRC32_H_
#define XMLQ_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace xmlq {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over `size` bytes —
/// the storage-checksum standard (iSCSI, ext4, LevelDB) because x86 has a
/// dedicated instruction for it. On SSE4.2 hardware this runs three
/// interleaved crc32 streams (recombined with precomputed shift tables) at
/// roughly 15 GB/s, so checksumming a snapshot costs a fraction of the open;
/// elsewhere it falls back to slicing-by-8 (~1 byte/cycle). Chain blocks by
/// passing the previous result as `seed` (an empty range returns `seed`
/// unchanged).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Combines the CRCs of two adjacent chunks: given `crc_a = Crc32(A)` and
/// `crc_b = Crc32(B)` (both seeded with 0), returns `Crc32(A || B)` in
/// O(log len_b) — the GF(2) "append len_b zero bytes" operator applied to
/// crc_a, xor crc_b (zlib's crc32_combine construction). This is what makes
/// whole-file checksums chunk-parallel: checksum disjoint chunks on separate
/// lanes, then fold the results left to right.
uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b);

namespace internal {

/// The portable slicing-by-8 path, exposed so tests can pin the hardware
/// path to it bit-for-bit.
uint32_t Crc32Software(const void* data, size_t size, uint32_t seed = 0);

/// True when Crc32 dispatches to the SSE4.2 instruction path.
bool Crc32HardwareAvailable();

}  // namespace internal

}  // namespace xmlq

#endif  // XMLQ_BASE_CRC32_H_
