#include "xmlq/base/fault_injector.h"

namespace xmlq {

std::atomic<int> FaultInjector::armed_sites_{0};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

std::shared_ptr<FaultInjector::SiteState> FaultInjector::GetOrCreate(
    std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.try_emplace(std::string(site));
  if (it->second == nullptr) it->second = std::make_shared<SiteState>();
  return it->second;
}

void FaultInjector::Arm(std::string_view site, uint64_t skip, uint64_t count) {
  std::shared_ptr<SiteState> st = GetOrCreate(site);
  // Order matters: publish the countdown before flipping `armed` so a
  // concurrent ShouldFail never consumes a stale budget.
  st->skip.store(skip, std::memory_order_relaxed);
  st->count.store(count, std::memory_order_relaxed);
  if (!st->armed.exchange(true, std::memory_order_release)) {
    armed_sites_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second == nullptr) return;
  if (it->second->armed.exchange(false, std::memory_order_release)) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : sites_) {
    if (st != nullptr && st->armed.exchange(false)) {
      armed_sites_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  sites_.clear();
}

bool FaultInjector::ShouldFail(std::string_view site) {
  std::shared_ptr<SiteState> st = GetOrCreate(site);
  st->hits.fetch_add(1, std::memory_order_relaxed);
  if (!st->armed.load(std::memory_order_acquire)) return false;
  // Claim one unit of the skip budget, then of the fire budget; CAS loops
  // make each claim exclusive, so the totals are exact under concurrency.
  uint64_t skip = st->skip.load(std::memory_order_relaxed);
  while (skip > 0) {
    if (st->skip.compare_exchange_weak(skip, skip - 1,
                                       std::memory_order_relaxed)) {
      return false;
    }
  }
  uint64_t count = st->count.load(std::memory_order_relaxed);
  while (count > 0) {
    if (st->count.compare_exchange_weak(count, count - 1,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::Hits(std::string_view site) {
  std::shared_ptr<SiteState> st = GetOrCreate(site);
  return st->hits.load(std::memory_order_relaxed);
}

}  // namespace xmlq
