#include "xmlq/base/fault_injector.h"

namespace xmlq {

std::atomic<int> FaultInjector::armed_sites_{0};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(std::string_view site, uint64_t skip, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.try_emplace(std::string(site));
  SiteState& st = it->second;
  if (!st.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  st.armed = true;
  st.skip = skip;
  st.count = count;
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : sites_) {
    if (st.armed) armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  sites_.clear();
}

bool FaultInjector::ShouldFail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.try_emplace(std::string(site));
  SiteState& st = it->second;
  ++st.hits;
  if (!st.armed) return false;
  if (st.skip > 0) {
    --st.skip;
    return false;
  }
  if (st.count == 0) return false;
  --st.count;
  return true;
}

uint64_t FaultInjector::Hits(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

}  // namespace xmlq
