#ifndef XMLQ_BASE_FAULT_INJECTOR_H_
#define XMLQ_BASE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace xmlq {

/// Deterministic fault-injection registry for robustness tests.
///
/// Production code marks interesting failure points with
/// `XMLQ_FAULT("site.name")` — a macro that costs one relaxed atomic load
/// and a predictable branch while nothing is armed, so the hooks are
/// compiled in unconditionally (no test-only build flavor that could
/// diverge from what ships). Tests arm a site to force its failure path:
///
///   FaultInjector::Instance().Arm("storage.succinct.build", /*skip=*/0,
///                                 /*count=*/1);
///   ... exercise the path, expect a clean Status ...
///   FaultInjector::Instance().Reset();
///
/// Hit counters accumulate for every site that passes through XMLQ_FAULT
/// while *any* site is armed, which lets tests discover how often a site is
/// reached before choosing `skip`.
///
/// Thread safety: the registry mutex only guards the site map; each site's
/// countdown is a block of atomics, so concurrent ShouldFail calls race only
/// on lock-free counters. Across any interleaving of T threads, an armed
/// site passes exactly `skip` times and fires exactly `count` times (each
/// hit claims one unit of one counter via compare-exchange) — which threads
/// observe the fires depends on the schedule, but the totals are exact, and
/// that is what the concurrency stress suite asserts.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `site`: after `skip` passes, the next `count` hits report failure.
  void Arm(std::string_view site, uint64_t skip = 0,
           uint64_t count = std::numeric_limits<uint64_t>::max());

  /// Disarms `site` (its hit counter is kept until Reset).
  void Disarm(std::string_view site);

  /// Disarms every site and clears all hit counters.
  void Reset();

  /// True when the fault at `site` should fire now. Records a hit either
  /// way. Prefer the XMLQ_FAULT macro, which skips this entirely (including
  /// the lock) while nothing is armed.
  bool ShouldFail(std::string_view site);

  /// Times `site` was evaluated while any site was armed.
  uint64_t Hits(std::string_view site);

  /// Lock-free fast-path check used by XMLQ_FAULT.
  static bool AnyArmed() {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FaultInjector() = default;

  /// Countdown block for one site. Shared-ptr held so ShouldFail can drop
  /// the registry lock before touching the counters (a concurrent Reset may
  /// erase the map entry; the block itself stays alive).
  struct SiteState {
    std::atomic<bool> armed{false};
    std::atomic<uint64_t> skip{0};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> hits{0};
  };

  std::shared_ptr<SiteState> GetOrCreate(std::string_view site);

  static std::atomic<int> armed_sites_;

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<SiteState>, std::less<>> sites_;
};

/// True when the fault at `site` should fire now; ~free while disarmed.
#define XMLQ_FAULT(site)                        \
  (::xmlq::FaultInjector::AnyArmed() &&         \
   ::xmlq::FaultInjector::Instance().ShouldFail(site))

}  // namespace xmlq

#endif  // XMLQ_BASE_FAULT_INJECTOR_H_
