#include "xmlq/base/file_io.h"

#include "xmlq/base/crash_point.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define XMLQ_HAVE_MMAP 1
#endif

namespace xmlq {

namespace {

Status IoError(std::string_view op, const std::string& path) {
  return Status::Internal(std::string(op) + " " + path + ": " +
                          std::strerror(errno));
}

/// Directory component of `path` ("." when the path has no slash).
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

#ifdef XMLQ_HAVE_MMAP

Status SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError("open dir", dir);
  if (::fsync(fd) != 0) {
    const Status st = IoError("fsync dir", dir);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp);
  if (CrashPointArmed("file.atomic.torn")) {
    // A torn temp-file write: persist a prefix, then die. The final name is
    // untouched; recovery only has a *.tmp carcass to sweep.
    (void)!::write(fd, data.data(), data.size() / 2);
    CrashNow();
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return IoError("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  XMLQ_CRASH_POINT("file.atomic.tmp_written");
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return IoError("fsync", tmp);
  }
  XMLQ_CRASH_POINT("file.atomic.tmp_synced");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return IoError("rename", path);
  }
  XMLQ_CRASH_POINT("file.atomic.renamed");
  // Without this the rename may still live only in the directory's dirty
  // page; a crash could resurrect the old file (or no file) even though the
  // caller was told the write committed.
  return SyncParentDir(path);
}

Status AppendWithSync(const std::string& path, std::string_view data) {
  // Whether this append creates the file decides if the parent directory
  // needs an fsync for the new name (the TOCTOU window is harmless: an
  // extra directory sync is just redundant work).
  struct stat st;
  const bool created = ::stat(path.c_str(), &st) != 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IoError("open", path);
  if (CrashPointArmed("file.append.torn")) {
    // A torn journal append: half the record reaches disk, then the crash.
    // Recovery must detect the bad CRC and truncate the tail.
    (void)!::write(fd, data.data(), data.size() / 2);
    CrashNow();
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      // A partial append is a torn tail; the journal reader truncates it.
      return IoError("write", path);
    }
    written += static_cast<size_t>(n);
  }
  XMLQ_CRASH_POINT("file.append.written");
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    return IoError("fsync", path);
  }
  XMLQ_CRASH_POINT("file.append.synced");
  if (created) return SyncParentDir(path);
  return Status::Ok();
}

Result<FileBytes> FileBytes::ReadWhole(const std::string& path,
                                       size_t alignment) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("stat", path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // aligned_alloc requires a size that is a multiple of the alignment.
  const size_t alloc = ((size + alignment - 1) / alignment) * alignment;
  char* buf = static_cast<char*>(
      std::aligned_alloc(alignment, alloc == 0 ? alignment : alloc));
  if (buf == nullptr) {
    ::close(fd);
    return Status::ResourceExhausted("cannot allocate " +
                                     std::to_string(alloc) + " bytes for " +
                                     path);
  }
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, buf + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::free(buf);
      ::close(fd);
      return IoError("read", path);
    }
    if (n == 0) break;  // file shrank underneath us; caught by size checks
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  FileBytes out;
  out.data_ = buf;
  out.size_ = got;
  out.mapped_ = false;
  return out;
}

Result<FileBytes> FileBytes::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoError("stat", path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  FileBytes out;
  out.size_ = size;
  out.mapped_ = true;
  if (size == 0) {
    // mmap of length 0 is EINVAL; an empty mapping is representable as null.
    ::close(fd);
    out.data_ = nullptr;
    return out;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) return IoError("mmap", path);
  out.data_ = static_cast<char*>(addr);
  return out;
}

void FileBytes::Release() {
  if (data_ != nullptr) {
    if (mapped_) {
      ::munmap(data_, size_);
    } else {
      std::free(data_);
    }
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#else  // !XMLQ_HAVE_MMAP — stubs so non-POSIX builds still link.

Status SyncParentDir(const std::string& path) {
  (void)path;  // no directory fds to fsync on this platform
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("open", path);
  const size_t n = std::fwrite(data.data(), 1, data.size(), f);
  if (std::fclose(f) != 0 || n != data.size()) return IoError("write", path);
  return Status::Ok();
}

Status AppendWithSync(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return IoError("open", path);
  const size_t n = std::fwrite(data.data(), 1, data.size(), f);
  if (std::fflush(f) != 0 || std::fclose(f) != 0 || n != data.size()) {
    return IoError("write", path);
  }
  return Status::Ok();
}

Result<FileBytes> FileBytes::ReadWhole(const std::string& path,
                                       size_t alignment) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  const size_t alloc =
      ((static_cast<size_t>(size) + alignment - 1) / alignment) * alignment;
  char* buf = static_cast<char*>(
      std::aligned_alloc(alignment, alloc == 0 ? alignment : alloc));
  if (buf == nullptr) {
    std::fclose(f);
    return Status::ResourceExhausted("allocation failed for " + path);
  }
  const size_t got = std::fread(buf, 1, static_cast<size_t>(size), f);
  std::fclose(f);
  FileBytes out;
  out.data_ = buf;
  out.size_ = got;
  out.mapped_ = false;
  return out;
}

Result<FileBytes> FileBytes::Map(const std::string& path) {
  (void)path;
  return Status::Unsupported("mmap is unavailable on this platform");
}

void FileBytes::Release() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

#endif  // XMLQ_HAVE_MMAP

FileBytes FileBytes::Copy(std::string_view data, size_t alignment) {
  const size_t alloc = ((data.size() + alignment - 1) / alignment) * alignment;
  char* buf = static_cast<char*>(
      std::aligned_alloc(alignment, alloc == 0 ? alignment : alloc));
  if (!data.empty()) std::memcpy(buf, data.data(), data.size());
  FileBytes out;
  out.data_ = buf;
  out.size_ = data.size();
  out.mapped_ = false;
  return out;
}

FileBytes::FileBytes(FileBytes&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

FileBytes& FileBytes::operator=(FileBytes&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

FileBytes::~FileBytes() { Release(); }

}  // namespace xmlq
