#ifndef XMLQ_BASE_FILE_IO_H_
#define XMLQ_BASE_FILE_IO_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "xmlq/base/status.h"

namespace xmlq {

/// Writes `data` to `path` atomically: the bytes go to a sibling temp file
/// which is fsync'd and renamed over the target, so a crash mid-write never
/// leaves a half-written snapshot behind the final name.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// A read-only block of file bytes whose start is aligned to at least
/// `alignment` — the loader substrate for both snapshot read paths. Move-only;
/// unmaps / frees on destruction.
class FileBytes {
 public:
  FileBytes() = default;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;
  FileBytes(FileBytes&& other) noexcept;
  FileBytes& operator=(FileBytes&& other) noexcept;
  ~FileBytes();

  /// Reads the whole file into an owned heap buffer aligned to `alignment`
  /// (the safe copying path: later truncation of the file cannot hurt us).
  static Result<FileBytes> ReadWhole(const std::string& path,
                                     size_t alignment = 64);

  /// Copies `data` into an owned buffer aligned to `alignment`. Lets tests
  /// and tools feed in-memory images through the file-bytes interfaces.
  static FileBytes Copy(std::string_view data, size_t alignment = 64);

  /// Maps the file read-only (PROT_READ, MAP_PRIVATE). Page alignment of the
  /// mapping guarantees any section alignment the writer produced. The file
  /// must not shrink while mapped (SIGBUS territory) — the copying path is
  /// the defensive alternative.
  static Result<FileBytes> Map(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const char> bytes() const { return {data_, size_}; }
  /// True when backed by an mmap rather than an owned heap copy.
  bool mapped() const { return mapped_; }

 private:
  void Release();

  char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace xmlq

#endif  // XMLQ_BASE_FILE_IO_H_
