#ifndef XMLQ_BASE_FILE_IO_H_
#define XMLQ_BASE_FILE_IO_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "xmlq/base/status.h"

namespace xmlq {

/// Writes `data` to `path` atomically and durably: the bytes go to a
/// sibling temp file which is fsync'd and renamed over the target, then the
/// parent directory is fsync'd so the rename itself survives a crash. A
/// crash mid-write never leaves a half-written file behind the final name,
/// and every failure path unlinks the temp file. Crash-test kill points:
/// "file.atomic.torn" (temp file half-written), "file.atomic.tmp_written"
/// (before the temp fsync), "file.atomic.tmp_synced" (before the rename),
/// "file.atomic.renamed" (before the directory fsync).
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Appends `data` to `path` (creating it, and fsync'ing the parent
/// directory on creation) and fsyncs the file — the journal-append
/// primitive. A failed or interrupted append may leave a *prefix* of
/// `data` behind (a torn tail); journal formats must make that detectable
/// (per-record CRCs) and recovery truncates it. Crash-test kill points:
/// "file.append.torn" (half the record written), "file.append.written"
/// (before the fsync), "file.append.synced" (after it).
Status AppendWithSync(const std::string& path, std::string_view data);

/// Best-effort fsync of the directory containing `path` (no-op on platforms
/// without directory fds). Public so multi-file commit protocols (journal +
/// snapshot files) can force their unlinks/renames down too.
Status SyncParentDir(const std::string& path);

/// A read-only block of file bytes whose start is aligned to at least
/// `alignment` — the loader substrate for both snapshot read paths. Move-only;
/// unmaps / frees on destruction.
class FileBytes {
 public:
  FileBytes() = default;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;
  FileBytes(FileBytes&& other) noexcept;
  FileBytes& operator=(FileBytes&& other) noexcept;
  ~FileBytes();

  /// Reads the whole file into an owned heap buffer aligned to `alignment`
  /// (the safe copying path: later truncation of the file cannot hurt us).
  static Result<FileBytes> ReadWhole(const std::string& path,
                                     size_t alignment = 64);

  /// Copies `data` into an owned buffer aligned to `alignment`. Lets tests
  /// and tools feed in-memory images through the file-bytes interfaces.
  static FileBytes Copy(std::string_view data, size_t alignment = 64);

  /// Maps the file read-only (PROT_READ, MAP_PRIVATE). Page alignment of the
  /// mapping guarantees any section alignment the writer produced. The file
  /// must not shrink while mapped (SIGBUS territory) — the copying path is
  /// the defensive alternative.
  static Result<FileBytes> Map(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const char> bytes() const { return {data_, size_}; }
  /// True when backed by an mmap rather than an owned heap copy.
  bool mapped() const { return mapped_; }

 private:
  void Release();

  char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace xmlq

#endif  // XMLQ_BASE_FILE_IO_H_
