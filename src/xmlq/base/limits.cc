#include "xmlq/base/limits.h"

#include <algorithm>
#include <string>

namespace xmlq {

ResourceGuard::ResourceGuard(const QueryLimits& limits)
    : limits_(limits), armed_(!limits.Unlimited()) {
  if (!armed_) return;
  next_poll_ = 1;
  if (limits_.deadline_micros != 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(limits_.deadline_micros);
  }
}

bool ResourceGuard::Poll() const {
  if (!status_.ok()) return true;  // sticky
  if (!armed_) return false;
  if (limits_.max_steps != 0 && steps_ > limits_.max_steps) {
    return Trip(Status::ResourceExhausted(
        "step budget of " + std::to_string(limits_.max_steps) +
        " exhausted after " + std::to_string(steps_) + " steps"));
  }
  if (limits_.cancel != nullptr &&
      limits_.cancel->load(std::memory_order_relaxed)) {
    return Trip(Status::Cancelled("query cancelled by caller"));
  }
  if (limits_.cancel_token != nullptr && limits_.cancel_token->cancelled()) {
    return Trip(Status::Cancelled("query cancelled by caller"));
  }
  if (limits_.deadline_micros != 0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Trip(Status::ResourceExhausted(
        "deadline of " + std::to_string(limits_.deadline_micros) +
        "us exceeded"));
  }
  // Schedule the next slow poll: one stride out, but never past the step
  // budget (so a small max_steps trips exactly, not a stride late).
  uint64_t stride = kPollStride;
  if (limits_.max_steps != 0) {
    stride = std::min(stride, limits_.max_steps - steps_ + 1);
  }
  next_poll_ = steps_ + stride;
  return false;
}

Status ResourceGuard::ChargeMemory(uint64_t bytes) const {
  memory_bytes_ += bytes;
  if (armed_ && limits_.max_memory_bytes != 0 &&
      memory_bytes_ > limits_.max_memory_bytes && status_.ok()) {
    Trip(Status::ResourceExhausted(
        "memory budget of " + std::to_string(limits_.max_memory_bytes) +
        " bytes exhausted (" + std::to_string(memory_bytes_) +
        " bytes charged)"));
  }
  return status_;
}

bool ResourceGuard::Trip(Status status) const {
  status_ = std::move(status);
  next_poll_ = 0;  // every subsequent Tick trips immediately
  return true;
}

}  // namespace xmlq
