#include "xmlq/base/limits.h"

#include <algorithm>
#include <string>

namespace xmlq {

ResourceGuard::ResourceGuard(const QueryLimits& limits)
    : limits_(limits), armed_(!limits.Unlimited()) {
  if (!armed_) return;
  next_poll_ = 1;
  if (limits_.deadline_micros != 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(limits_.deadline_micros);
  }
}

ResourceGuard::ResourceGuard(LaneTag, const ResourceGuard& parent,
                             uint32_t lanes)
    : limits_(parent.limits_), armed_(parent.armed_) {
  if (!armed_) return;
  const uint32_t n = lanes == 0 ? 1 : lanes;
  if (limits_.max_steps != 0) {
    const uint64_t remaining = limits_.max_steps > parent.steps_
                                   ? limits_.max_steps - parent.steps_
                                   : 1;
    limits_.max_steps = std::max<uint64_t>(1, remaining / n);
  }
  if (limits_.max_memory_bytes != 0) {
    const uint64_t remaining =
        limits_.max_memory_bytes > parent.memory_bytes_
            ? limits_.max_memory_bytes - parent.memory_bytes_
            : 1;
    limits_.max_memory_bytes = std::max<uint64_t>(1, remaining / n);
  }
  deadline_ = parent.deadline_;  // absolute: lanes share the query deadline
  next_poll_ = 1;
  if (!parent.status_.ok()) {
    status_ = parent.status_;
    next_poll_ = 0;
  }
}

void ResourceGuard::Absorb(const ResourceGuard& lane) const {
  steps_ += lane.steps_;
  memory_bytes_ += lane.memory_bytes_;
  if (!armed_ || !status_.ok()) return;
  next_poll_ = std::min(next_poll_, steps_ + 1);
}

bool ResourceGuard::Poll() const {
  if (!status_.ok()) return true;  // sticky
  if (!armed_) return false;
  if (limits_.max_steps != 0 && steps_ > limits_.max_steps) {
    return Trip(Status::ResourceExhausted(
        "step budget of " + std::to_string(limits_.max_steps) +
        " exhausted after " + std::to_string(steps_) + " steps"));
  }
  if (limits_.cancel != nullptr &&
      limits_.cancel->load(std::memory_order_relaxed)) {
    return Trip(Status::Cancelled("query cancelled by caller"));
  }
  if (limits_.cancel_token != nullptr && limits_.cancel_token->cancelled()) {
    return Trip(Status::Cancelled("query cancelled by caller"));
  }
  if (limits_.deadline_micros != 0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Trip(Status::ResourceExhausted(
        "deadline of " + std::to_string(limits_.deadline_micros) +
        "us exceeded"));
  }
  // Schedule the next slow poll: one stride out, but never past the step
  // budget (so a small max_steps trips exactly, not a stride late).
  uint64_t stride = kPollStride;
  if (limits_.max_steps != 0) {
    stride = std::min(stride, limits_.max_steps - steps_ + 1);
  }
  next_poll_ = steps_ + stride;
  return false;
}

Status ResourceGuard::ChargeMemory(uint64_t bytes) const {
  memory_bytes_ += bytes;
  if (armed_ && limits_.max_memory_bytes != 0 &&
      memory_bytes_ > limits_.max_memory_bytes && status_.ok()) {
    Trip(Status::ResourceExhausted(
        "memory budget of " + std::to_string(limits_.max_memory_bytes) +
        " bytes exhausted (" + std::to_string(memory_bytes_) +
        " bytes charged)"));
  }
  return status_;
}

bool ResourceGuard::Trip(Status status) const {
  status_ = std::move(status);
  next_poll_ = 0;  // every subsequent Tick trips immediately
  return true;
}

}  // namespace xmlq
