#ifndef XMLQ_BASE_LIMITS_H_
#define XMLQ_BASE_LIMITS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "xmlq/base/status.h"

namespace xmlq {

/// Shared cancellation flag for one query. The serving layer hands every
/// admitted query a token (see api::Database::Cancel); callers may also
/// create their own and stash it in QueryLimits::cancel_token. Cancel() may
/// be called from any thread, any number of times; the query observes it at
/// the next ResourceGuard poll (including while it is still waiting in the
/// admission queue) and returns kCancelled.
///
/// Tokens are shared-ptr managed so a cancel issued concurrently with query
/// completion can never touch freed memory: both the canceller and the
/// guard hold a reference.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query resource limits. A zero field means "unlimited"; a
/// default-constructed QueryLimits imposes no bounds at all.
struct QueryLimits {
  /// Wall-clock budget, measured from guard construction (steady clock).
  uint64_t deadline_micros = 0;

  /// Abstract work quota. A step roughly corresponds to one node visited,
  /// one tuple produced, or one merge-loop iteration — the same granularity
  /// the operator cost model counts.
  uint64_t max_steps = 0;

  /// Budget for result-side allocations (constructed documents,
  /// materialized sequences). Input documents are not charged.
  uint64_t max_memory_bytes = 0;

  /// Cooperative cancellation: the caller may set this flag from another
  /// thread; the query returns kCancelled at the next poll. Must outlive
  /// the query. Not owned.
  const std::atomic<bool>* cancel = nullptr;

  /// Shared-ownership cancellation token, checked at the same polls as
  /// `cancel`. The serving layer fills this in for every admitted query so
  /// api::Database::Cancel(query_id) works without the caller wiring a flag;
  /// callers may also install their own token here and keep a reference to
  /// cancel directly.
  std::shared_ptr<const CancelToken> cancel_token;

  bool Unlimited() const {
    return deadline_micros == 0 && max_steps == 0 && max_memory_bytes == 0 &&
           cancel == nullptr && cancel_token == nullptr;
  }
};

/// Tracks a running query's resource consumption against QueryLimits.
///
/// The hot path is `Tick(n)`: one add and one compare per call when nothing
/// needs checking. Expensive checks (clock read, cancel-flag load) run only
/// every kPollStride steps. Once any limit trips, the guard is *sticky*:
/// every subsequent Tick returns true and `status()` keeps the original
/// error, so deeply nested operators can unwind without re-diagnosing.
///
/// All counters are mutable so a `const ResourceGuard*` can be threaded
/// through the read-only evaluation APIs. The guard itself is not
/// thread-safe (one guard per query execution); only the cancel flag may be
/// touched from other threads.
class ResourceGuard {
 public:
  /// Steps between slow polls. Small enough that a 1 ms deadline is noticed
  /// promptly on the node-scan paths, large enough to amortize the clock
  /// read to noise (see bench_limits).
  static constexpr uint64_t kPollStride = 4096;

  /// Unarmed guard: Tick never trips. Useful as a placeholder.
  ResourceGuard() = default;

  explicit ResourceGuard(const QueryLimits& limits);

  /// Tag type selecting the lane-fork constructor below.
  struct LaneTag {};

  /// Lane fork for intra-query parallel sections (DESIGN.md §12): each lane
  /// gets its own guard so the hot Tick path stays single-threaded. The lane
  /// shares the parent's *absolute* deadline and cancel flags, and receives
  /// 1/`lanes` of the parent's remaining step/memory budget (at least 1, so
  /// an exhausted parent trips the lane on its first poll rather than
  /// dividing by zero into "unlimited"). The slicing is conservative: a
  /// parallel run can never spend more total budget than the serial run, but
  /// a lane whose morsels are skewed past its even share trips
  /// kResourceExhausted earlier than the serial run would. A parent that has
  /// already tripped produces lanes that trip immediately with the same
  /// status.
  ///
  /// After the parallel section joins, fold each lane back with Absorb() on
  /// the parent, in lane order, from the owning thread.
  ResourceGuard(LaneTag, const ResourceGuard& parent, uint32_t lanes);

  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;

  /// Folds a joined lane's consumption back into this (parent) guard and
  /// schedules a prompt poll so an over-budget total trips on the next Tick.
  /// Call only after the lane's thread has finished (not thread-safe).
  void Absorb(const ResourceGuard& lane) const;

  bool armed() const { return armed_; }

  /// Records `n` steps of work; returns true when the query must stop (some
  /// limit tripped — the sticky error is in `status()`). Hot path.
  bool Tick(uint64_t n = 1) const {
    steps_ += n;
    if (steps_ < next_poll_) return false;
    return Poll();
  }

  /// Runs the slow checks now, regardless of stride. Returns true when
  /// tripped. Tick(0) is equivalent after a trip; this also works before.
  bool Poll() const;

  /// Records `bytes` of result-side allocation; trips the guard (and
  /// returns the error) when the budget is exceeded.
  Status ChargeMemory(uint64_t bytes) const;

  /// Returns previously charged bytes (e.g. a discarded intermediate).
  void ReleaseMemory(uint64_t bytes) const {
    memory_bytes_ -= bytes < memory_bytes_ ? bytes : memory_bytes_;
  }

  /// Ok until a limit trips; afterwards the first failure, unchanged.
  const Status& status() const { return status_; }

  uint64_t steps() const { return steps_; }
  uint64_t memory_bytes() const { return memory_bytes_; }

 private:
  bool Trip(Status status) const;

  QueryLimits limits_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  mutable uint64_t steps_ = 0;
  // Unarmed: UINT64_MAX (never polls). Armed: starts at 1 so the first Tick
  // polls immediately — a pre-set cancel flag or an already-expired deadline
  // is noticed before any real work. After a trip: 0 (every Tick trips).
  mutable uint64_t next_poll_ = std::numeric_limits<uint64_t>::max();
  mutable uint64_t memory_bytes_ = 0;
  mutable Status status_;
};

/// Ticks `n` steps against an optional guard pointer and propagates the
/// guard's sticky error out of the enclosing function on a trip.
#define XMLQ_GUARD_TICK(guard, n)                                      \
  do {                                                                 \
    const ::xmlq::ResourceGuard* _xmlq_g = (guard);                    \
    if (_xmlq_g != nullptr && _xmlq_g->Tick(n)) {                      \
      return _xmlq_g->status();                                        \
    }                                                                  \
  } while (false)

/// Charges `bytes` of result memory against an optional guard pointer,
/// propagating kResourceExhausted when the budget is exceeded.
#define XMLQ_GUARD_CHARGE(guard, bytes)                                \
  do {                                                                 \
    const ::xmlq::ResourceGuard* _xmlq_g = (guard);                    \
    if (_xmlq_g != nullptr) {                                          \
      ::xmlq::Status _xmlq_st = _xmlq_g->ChargeMemory(bytes);          \
      if (!_xmlq_st.ok()) return _xmlq_st;                             \
    }                                                                  \
  } while (false)

}  // namespace xmlq

#endif  // XMLQ_BASE_LIMITS_H_
