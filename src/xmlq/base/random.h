#ifndef XMLQ_BASE_RANDOM_H_
#define XMLQ_BASE_RANDOM_H_

#include <cassert>
#include <cstdint>

namespace xmlq {

/// Deterministic 64-bit PRNG (splitmix64 core). All workload generators and
/// property tests seed one of these explicitly so every experiment in
/// EXPERIMENTS.md is reproducible bit-for-bit across runs and machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all << 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace xmlq

#endif  // XMLQ_BASE_RANDOM_H_
