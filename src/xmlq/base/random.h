#ifndef XMLQ_BASE_RANDOM_H_
#define XMLQ_BASE_RANDOM_H_

#include <cassert>
#include <cstdint>

namespace xmlq {

/// splitmix64 finalizer: a bijective avalanche mix used to derive
/// decorrelated Rng streams from (seed, stream) pairs.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit PRNG (splitmix64 core). All workload generators and
/// property tests seed one of these explicitly so every experiment in
/// EXPERIMENTS.md is reproducible bit-for-bit across runs and machines.
///
/// Per-thread seeding rule (the reproducibility contract for every
/// multi-threaded stress test and bench in this repo): a run seeded with
/// `seed` gives worker thread `t` the generator `Rng::Stream(seed, t)`.
/// Never share one Rng between threads (Next() is not atomic), and never
/// seed per-thread generators with `seed + t` — adjacent splitmix states
/// correlate. Stream() double-mixes the pair instead, so each worker's
/// sequence is a pure function of (seed, t) and the assertions a stress
/// test can make (e.g. exact per-thread query workloads) are independent
/// of the thread schedule.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// The documented per-thread seeding rule: worker `stream` of a test run
  /// seeded with `seed` uses Rng::Stream(seed, stream).
  static Rng Stream(uint64_t seed, uint64_t stream) {
    return Rng(Mix64(seed ^ Mix64(stream + 0x9E3779B97F4A7C15ULL)));
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all << 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace xmlq

#endif  // XMLQ_BASE_RANDOM_H_
