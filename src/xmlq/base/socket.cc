#include "xmlq/base/socket.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

namespace xmlq {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: \"" + host +
                                   "\"");
  }
  return addr;
}

void SetTimeout(int fd, int option, uint64_t micros) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(micros / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(micros % 1'000'000);
  (void)setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog) {
  XMLQ_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  (void)setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (listen(fd.get(), backlog) < 0) return Errno("listen");
  return fd;
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            uint64_t connect_timeout_micros,
                            uint64_t io_timeout_micros) {
  XMLQ_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  UniqueFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  // Connect with a timeout: go non-blocking for the handshake, then back to
  // blocking (with I/O timeouts) for the caller.
  XMLQ_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  int rc = connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  if (rc < 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int timeout_ms =
        connect_timeout_micros == 0
            ? -1
            : static_cast<int>((connect_timeout_micros + 999) / 1000);
    rc = poll(&pfd, 1, timeout_ms);
    if (rc == 0) {
      return Status::ResourceExhausted("connect timeout to " + host + ":" +
                                       std::to_string(port));
    }
    if (rc < 0) return Errno("poll(connect)");
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Internal("connect " + host + ":" +
                              std::to_string(port) + ": " +
                              std::strerror(err));
    }
  }
  const int flags = fcntl(fd.get(), F_GETFL, 0);
  if (flags >= 0) (void)fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK);
  if (io_timeout_micros != 0) {
    SetTimeout(fd.get(), SO_RCVTIMEO, io_timeout_micros);
    SetTimeout(fd.get(), SO_SNDTIMEO, io_timeout_micros);
  }
  const int one = 1;
  (void)setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // Subtract ".", ".." and the directory fd itself.
  return count - 3;
}

}  // namespace xmlq
