#ifndef XMLQ_BASE_SOCKET_H_
#define XMLQ_BASE_SOCKET_H_

#include <cstdint>
#include <string>

#include "xmlq/base/status.h"

namespace xmlq {

/// Move-only owner of one file descriptor; closes on destruction. The
/// serving tier's fd-leak guarantees rest on every socket living in one of
/// these from creation to close.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    Reset(other.fd_);
    other.fd_ = -1;
    return *this;
  }
  ~UniqueFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the current fd (if any) and adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode.
Status SetNonBlocking(int fd);

/// Creates a listening TCP socket bound to `host:port` (SO_REUSEADDR,
/// CLOEXEC, non-blocking). `port` 0 binds an ephemeral port — read it back
/// with LocalPort(). `host` must be a numeric IPv4 address ("127.0.0.1",
/// "0.0.0.0").
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog = 128);

/// Blocking TCP connect to `host:port` with a connect timeout; the returned
/// socket is in blocking mode with SO_RCVTIMEO/SO_SNDTIMEO set to
/// `io_timeout_micros` (0 = no I/O timeout).
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            uint64_t connect_timeout_micros,
                            uint64_t io_timeout_micros = 0);

/// The port a bound socket actually listens on (resolves ephemeral binds).
Result<uint16_t> LocalPort(int fd);

/// Number of open file descriptors in this process (via /proc/self/fd) —
/// the chaos tests' leak detector. Returns -1 when /proc is unavailable.
int CountOpenFds();

}  // namespace xmlq

#endif  // XMLQ_BASE_SOCKET_H_
