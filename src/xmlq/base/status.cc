#include "xmlq/base/status.h"

namespace xmlq {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  for (StatusCode code : kAllStatusCodes) {
    if (StatusCodeName(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xmlq
