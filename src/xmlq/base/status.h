#ifndef XMLQ_BASE_STATUS_H_
#define XMLQ_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace xmlq {

/// Error category for a failed operation. Kept deliberately small; the
/// human-readable message carries the detail (including source positions for
/// parse errors).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed something malformed
  kParseError,         // XML / XPath / XQuery syntax error
  kNotFound,           // named document / variable / tag missing
  kUnsupported,        // outside the implemented XQuery subset
  kOutOfRange,         // index past the end of a container
  kInternal,           // invariant violation inside the engine
  kResourceExhausted,  // deadline, step quota, or memory budget exceeded
  kCancelled,          // caller-requested cooperative cancellation
};

/// Every StatusCode value, for exhaustive iteration in tests and tooling.
/// Keep in sync with the enum above (the round-trip test enforces this).
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,          StatusCode::kInvalidArgument,
    StatusCode::kParseError,  StatusCode::kNotFound,
    StatusCode::kUnsupported, StatusCode::kOutOfRange,
    StatusCode::kInternal,    StatusCode::kResourceExhausted,
    StatusCode::kCancelled,
};

/// Returns a stable lowercase name for `code` ("ok", "parse_error", ...).
std::string_view StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName; nullopt for unrecognized names.
std::optional<StatusCode> StatusCodeFromName(std::string_view name);

/// Result of an operation that can fail without a payload. Cheap to copy in
/// the OK case (no allocation); errors carry a message.
///
/// The library does not use exceptions on query or storage paths; every
/// fallible public entry point returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Mirrors the subset of
/// absl::StatusOr the library needs.
template <typename T>
class Result {
 public:
  /// Intentionally implicit so `return value;` and `return status;` both work
  /// from functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status out of the current function.
#define XMLQ_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::xmlq::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`. `lhs` may include a declaration, e.g.
///   XMLQ_ASSIGN_OR_RETURN(auto doc, ParseDocument(text));
#define XMLQ_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  XMLQ_ASSIGN_OR_RETURN_IMPL_(                             \
      XMLQ_STATUS_CONCAT_(_xmlq_result, __LINE__), lhs, rexpr)

#define XMLQ_STATUS_CONCAT_INNER_(x, y) x##y
#define XMLQ_STATUS_CONCAT_(x, y) XMLQ_STATUS_CONCAT_INNER_(x, y)
#define XMLQ_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace xmlq

#endif  // XMLQ_BASE_STATUS_H_
