#include "xmlq/base/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xmlq {

namespace {

bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

}  // namespace

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsXmlSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsXmlSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsXmlSpace(c)) return false;
  }
  return true;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(s.substr(start));
      break;
    }
    pieces.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty() || s.size() > 63) return std::nullopt;
  char buf[64];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf, &end);
  if (end != buf + s.size() || errno == ERANGE) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty() || s.size() > 31) return std::nullopt;
  char buf[32];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(buf, &end, 10);
  if (end != buf + s.size() || errno == ERANGE) return std::nullopt;
  return static_cast<int64_t>(value);
}

std::string FormatNumber(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "INF" : "-INF";
  double integral;
  if (std::modf(d, &integral) == 0.0 && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

bool IsValidName(std::string_view name) {
  if (name.empty()) return false;
  char first = name[0];
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
    return false;
  }
  for (size_t i = 1; i < name.size(); ++i) {
    char c = name[i];
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_' || c == '.' || c == ':')) {
      return false;
    }
  }
  return true;
}

}  // namespace xmlq
