#ifndef XMLQ_BASE_STRINGS_H_
#define XMLQ_BASE_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xmlq {

/// Removes leading and trailing XML whitespace (space, tab, CR, LF).
std::string_view TrimWhitespace(std::string_view s);

/// True if `s` consists solely of XML whitespace (or is empty).
bool IsAllWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Parses a decimal (optionally signed, optionally fractional) number.
/// Returns nullopt on any trailing garbage or empty input. XQuery `number()`
/// semantics minus NaN propagation: surrounding whitespace is allowed.
std::optional<double> ParseDouble(std::string_view s);

/// Parses a decimal integer; whitespace-tolerant, rejects trailing garbage.
std::optional<int64_t> ParseInt(std::string_view s);

/// Formats `d` the way XQuery serializes xs:double-derived atomics: integral
/// values print without a fractional part ("42"), others use shortest-ish
/// fixed notation ("3.14").
std::string FormatNumber(double d);

/// True if `name` is a valid XML NCName (letter/underscore start; letters,
/// digits, '-', '_', '.' afterwards). We restrict names to ASCII, which is
/// sufficient for the workloads the paper evaluates.
bool IsValidName(std::string_view name);

}  // namespace xmlq

#endif  // XMLQ_BASE_STRINGS_H_
