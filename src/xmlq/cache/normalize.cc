#include "xmlq/cache/normalize.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <utility>

#include "xmlq/base/strings.h"

namespace xmlq::cache {

namespace {

// The normalizer re-tokenizes query text with rules that mirror the common
// subset of the XPath lexer and the XQuery scanner: anything the two would
// disagree on (doubled-quote escapes, element constructors, braces) bails
// out to raw mode instead of guessing. Mis-tokenizing can only ever produce
// a canonical text that fails to compile (the caller then falls back to the
// original text, uncached) — it must never produce one that compiles to
// different semantics, which is why the rules below are conservative.
//
// Normalization runs on every cache *hit*, so tokens are string_views into
// the query text (alive for the whole NormalizeQuery call) — the hot path
// allocates only the output strings, never per-token.

struct Tok {
  enum class Kind : uint8_t {
    kName,      // bare name (also keywords: for/let/where/and/eq/...)
    kAxis,      // name:: (fused: the XPath lexer requires adjacency)
    kVariable,  // $name (fused: '-' is a name char, so "$a - $b" must not
                // re-lex as the variable "a-")
    kNumber,    // digits with optional dots
    kString,    // text holds the VALUE, without quotes
    kSymbol,    // everything else: / // [ ] ( ) @ , * + - = != < <= > >= . :=
  };
  Kind kind;
  std::string_view text;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// Shared by both front-end lexers (single ':' allowed for QName-style
// names, "::" terminates the name).
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

/// Tokenizes `text`; nullopt = raw mode. The returned tokens view into
/// `text` and must not outlive it.
std::optional<std::vector<Tok>> TokenizeQuery(std::string_view text) {
  std::vector<Tok> out;
  out.reserve(text.size() / 3 + 4);
  size_t i = 0;
  const size_t n = text.size();
  auto peek = [&](size_t ahead) -> char {
    return i + ahead < n ? text[i + ahead] : '\0';
  };
  while (i < n) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++i;
      continue;
    }
    if (c == '(' && peek(1) == ':') {
      // XQuery comment, possibly nested; part of "whitespace".
      i += 2;
      int depth = 1;
      while (i < n && depth > 0) {
        if (text[i] == '(' && peek(1) == ':') {
          depth++;
          i += 2;
        } else if (text[i] == ':' && peek(1) == ')') {
          depth--;
          i += 2;
        } else {
          ++i;
        }
      }
      if (depth > 0) return std::nullopt;  // unterminated comment
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      const size_t start = ++i;
      while (i < n && text[i] != quote) ++i;
      if (i >= n) return std::nullopt;  // unterminated
      const size_t len = i - start;
      ++i;
      if (i < n && text[i] == quote) {
        // Doubled-quote escape: XQuery reads one literal, XPath reads two —
        // ambiguous across front ends, so don't model it.
        return std::nullopt;
      }
      out.push_back({Tok::Kind::kString, text.substr(start, len)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.')) {
        ++i;
      }
      out.push_back({Tok::Kind::kNumber, text.substr(start, i - start)});
      continue;
    }
    if (IsNameStart(c) || c == '$') {
      const bool variable = c == '$';
      const size_t start = i;
      if (variable) {
        ++i;
        if (i >= n || !IsNameStart(text[i])) return std::nullopt;
      }
      while (i < n && IsNameChar(text[i])) {
        if (text[i] == ':' && peek(1) == ':') break;
        ++i;
      }
      if (!variable && i + 1 < n && text[i] == ':' && peek(1) == ':') {
        out.push_back({Tok::Kind::kAxis, text.substr(start, i - start)});
        i += 2;
      } else {
        out.push_back({variable ? Tok::Kind::kVariable : Tok::Kind::kName,
                       text.substr(start, i - start)});
      }
      continue;
    }
    auto symbol = [&](size_t len) {
      out.push_back({Tok::Kind::kSymbol, text.substr(i, len)});
      i += len;
    };
    switch (c) {
      case '/':
        symbol(peek(1) == '/' ? 2 : 1);
        continue;
      case '<':
        if (peek(1) == '=') {
          symbol(2);
          continue;
        }
        // '<' starting a name (or '</', '<!') is an element constructor —
        // its content has its own lexical rules the normalizer does not
        // model.
        if (IsNameStart(peek(1)) || peek(1) == '/' || peek(1) == '!') {
          return std::nullopt;
        }
        symbol(1);
        continue;
      case '>':
        symbol(peek(1) == '=' ? 2 : 1);
        continue;
      case '!':
        if (peek(1) != '=') return std::nullopt;
        symbol(2);
        continue;
      case ':':
        if (peek(1) != '=') return std::nullopt;
        symbol(2);
        continue;
      case '[':
      case ']':
      case '(':
      case ')':
      case '@':
      case ',':
      case '*':
      case '+':
      case '-':
      case '=':
      case '.':
        symbol(1);
        continue;
      default:
        return std::nullopt;  // braces, semicolons, control bytes, ...
    }
  }
  return out;
}

bool IsComparisonTok(const Tok& t) {
  if (t.kind == Tok::Kind::kSymbol) {
    return t.text == "=" || t.text == "!=" || t.text == "<" ||
           t.text == "<=" || t.text == ">" || t.text == ">=";
  }
  if (t.kind == Tok::Kind::kName) {
    return t.text == "eq" || t.text == "ne" || t.text == "lt" ||
           t.text == "le" || t.text == "gt" || t.text == "ge";
  }
  return false;
}

bool IsLiteral(const Tok& t) {
  return t.kind == Tok::Kind::kString || t.kind == Tok::Kind::kNumber;
}

/// A literal is lifted into a bind slot iff it is an operand of a
/// comparison. Everything else (doc("...") arguments, arithmetic constants,
/// parenthesized constants) stays in the canonical text verbatim —
/// conservative and always correct, since an un-lifted literal
/// distinguishes fingerprints. Liftability only looks at the immediate
/// neighbors, so it gives the same answer inside a detached predicate-group
/// token vector as in the full query (group boundaries are the brackets).
std::vector<char> ComputeLift(const std::vector<Tok>& tokens) {
  std::vector<char> lift(tokens.size(), 0);
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsLiteral(tokens[i])) continue;
    const bool prev_cmp = i > 0 && IsComparisonTok(tokens[i - 1]);
    const bool next_cmp =
        i + 1 < tokens.size() && IsComparisonTok(tokens[i + 1]);
    lift[i] = (prev_cmp || next_cmp) ? 1 : 0;
  }
  return lift;
}

/// Appends a re-quoted string literal, or returns false when the value
/// needs an escape the two front ends disagree on.
bool AppendQuoted(std::string_view value, std::string* out) {
  const bool has_d = value.find('"') != std::string_view::npos;
  const bool has_s = value.find('\'') != std::string_view::npos;
  if (has_d && has_s) return false;
  const char quote = has_d ? '\'' : '"';
  out->push_back(quote);
  out->append(value);
  out->push_back(quote);
  return true;
}

enum class RenderMode { kFingerprint, kCompile };

/// Renders `tokens` joined by single spaces (except after a fused `name::`
/// axis, which the XPath lexer requires to sit flush against what follows).
/// kFingerprint replaces liftable literals with typed placeholders `?s`/`?n`;
/// kCompile plants sentinel literals and records slots + original values.
/// Returns false when a string literal cannot be re-quoted.
bool Render(const std::vector<Tok>& tokens, const std::vector<char>& lift,
            RenderMode mode, std::string* out, std::vector<BindSlot>* slots,
            std::vector<std::string>* values) {
  out->reserve(tokens.size() * 4 + 16);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Tok& t = tokens[i];
    if (!out->empty() && !(i > 0 && tokens[i - 1].kind == Tok::Kind::kAxis)) {
      out->push_back(' ');
    }
    if (lift[i]) {
      const bool numeric = t.kind == Tok::Kind::kNumber;
      if (mode == RenderMode::kFingerprint) {
        out->append(numeric ? "?n" : "?s");
        if (values != nullptr) values->emplace_back(t.text);
      } else {
        const size_t slot = slots->size();
        BindSlot s;
        s.numeric = numeric;
        if (numeric) {
          s.sentinel = NumberSentinelText(slot);
          s.sentinel_number = NumberSentinelValue(slot);
          out->append(s.sentinel);
        } else {
          s.sentinel = StringSentinel(slot);
          out->push_back('"');
          out->append(s.sentinel);
          out->push_back('"');
        }
        slots->push_back(std::move(s));
        if (values != nullptr) values->emplace_back(t.text);
      }
      continue;
    }
    switch (t.kind) {
      case Tok::Kind::kString:
        if (!AppendQuoted(t.text, out)) return false;
        break;
      case Tok::Kind::kAxis:
        out->append(t.text);
        out->append("::");
        break;
      default:
        out->append(t.text);
        break;
    }
  }
  return true;
}

/// Canonicalizes `tokens[begin, end)` into a fresh vector: every run of
/// adjacent predicate groups `[..][..]` is recursively canonicalized and
/// then stably sorted by fingerprint rendering (placeholders, not values,
/// so differently-parameterized spellings of the same query converge on one
/// slot numbering). Safe because the supported predicate subset is purely
/// existential/comparison conjunctions — positional predicates are rejected
/// by the parsers — so adjacent groups commute. Returns nullopt on
/// unbalanced brackets (caller degrades to raw mode).
std::optional<std::vector<Tok>> CanonicalizeRange(
    const std::vector<Tok>& tokens, size_t begin, size_t end) {
  std::vector<Tok> out;
  out.reserve(end - begin);
  size_t i = begin;
  while (i < end) {
    const Tok& t = tokens[i];
    if (t.kind != Tok::Kind::kSymbol || t.text != "[") {
      out.push_back(t);
      ++i;
      continue;
    }
    // Collect the run of adjacent groups starting here, each recursively
    // canonicalized ('[' + canonical body + ']').
    std::vector<std::vector<Tok>> groups;
    while (i < end && tokens[i].kind == Tok::Kind::kSymbol &&
           tokens[i].text == "[") {
      size_t j = i + 1;
      int depth = 1;
      while (j < end && depth > 0) {
        if (tokens[j].kind == Tok::Kind::kSymbol) {
          if (tokens[j].text == "[") ++depth;
          if (tokens[j].text == "]") --depth;
        }
        ++j;
      }
      if (depth != 0) return std::nullopt;
      auto body = CanonicalizeRange(tokens, i + 1, j - 1);
      if (!body) return std::nullopt;
      std::vector<Tok> group;
      group.reserve(body->size() + 2);
      group.push_back(tokens[i]);  // '['
      group.insert(group.end(), body->begin(), body->end());
      group.push_back(tokens[j - 1]);  // ']'
      groups.push_back(std::move(group));
      i = j;
    }
    if (groups.size() > 1) {
      std::vector<std::pair<std::string, size_t>> keyed;
      keyed.reserve(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        std::string key;
        Render(groups[g], ComputeLift(groups[g]), RenderMode::kFingerprint,
               &key, nullptr, nullptr);
        keyed.emplace_back(std::move(key), g);
      }
      std::stable_sort(
          keyed.begin(), keyed.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [key, g] : keyed) {
        out.insert(out.end(), groups[g].begin(), groups[g].end());
      }
    } else {
      for (const auto& group : groups) {
        out.insert(out.end(), group.begin(), group.end());
      }
    }
  }
  return out;
}

NormalizedQuery RawMode(std::string_view text) {
  NormalizedQuery out;
  out.parameterized = false;
  out.compile_text = std::string(TrimWhitespace(text));
  // Raw fingerprints get their own key namespace: a raw query whose text
  // happens to equal a placeholder render ('?' always forces raw mode) must
  // not resolve to the cached template — the template expects binds the raw
  // path never collects. A canonical render can never start with "R\x1f":
  // its first character comes from a name/axis token (whose chars exclude
  // \x1f), a quote, or a digit/symbol, and a name token is always followed
  // by ' ' or "::".
  out.fingerprint = "R\x1f" + out.compile_text;
  return out;
}

// The reserved numeric sentinel range: base + slot index, far more slots
// than any query can lift. Every value inside it is exactly representable
// in a double (the range sits below 2^53).
constexpr double kNumberSentinelBase = 9007100000000000.0;
constexpr double kNumberSentinelLimit = 9007200000000000.0;

}  // namespace

std::string StringSentinel(size_t slot) {
  return "\x01" + std::to_string(slot) + "\x01";
}

std::string NumberSentinelText(size_t slot) {
  return std::to_string(9007100000000000ull + slot);
}

double NumberSentinelValue(size_t slot) {
  return static_cast<double>(9007100000000000ull + slot);
}

bool CollidesWithSentinelSpace(std::string_view value, bool numeric) {
  if (!numeric) return value.find('\x01') != std::string_view::npos;
  const double v = std::strtod(std::string(value).c_str(), nullptr);
  return v >= kNumberSentinelBase && v < kNumberSentinelLimit;
}

NormalizedQuery NormalizeQuery(std::string_view text,
                               bool render_compile_text) {
  auto tokens = TokenizeQuery(text);
  if (!tokens || tokens->empty()) return RawMode(text);
  // An adjacent predicate pair (a `][` token sequence, at any nesting
  // depth) is the only thing canonicalization can reorder; without one the
  // token stream is already canonical and only bracket balance needs
  // checking — one flat scan covers both, so the common single-predicate
  // query skips the recursive pass entirely.
  int depth = 0;
  bool adjacent_groups = false;
  for (size_t i = 0; i < tokens->size(); ++i) {
    const Tok& t = (*tokens)[i];
    if (t.kind != Tok::Kind::kSymbol) continue;
    if (t.text == "[") {
      ++depth;
      if (i > 0 && (*tokens)[i - 1].kind == Tok::Kind::kSymbol &&
          (*tokens)[i - 1].text == "]") {
        adjacent_groups = true;
      }
    } else if (t.text == "]") {
      if (--depth < 0) return RawMode(text);
    }
  }
  if (depth != 0) return RawMode(text);
  std::optional<std::vector<Tok>> canon;
  if (adjacent_groups) {
    canon = CanonicalizeRange(*tokens, 0, tokens->size());
    if (!canon) return RawMode(text);
  } else {
    canon = std::move(tokens);
  }
  const std::vector<char> lift = ComputeLift(*canon);
  // Any literal whose value lives in the sentinel encoding space poisons
  // substitution: an un-lifted lookalike would be rewritten by BindPlan as
  // if it were a slot (silently changing query semantics), and a lifted one
  // could make one slot's bound value match another slot's sentinel. Such
  // queries degrade to raw mode — still cached, just not parameterized.
  for (const Tok& t : *canon) {
    if (IsLiteral(t) &&
        CollidesWithSentinelSpace(t.text, t.kind == Tok::Kind::kNumber)) {
      return RawMode(text);
    }
  }

  NormalizedQuery out;
  // The fingerprint render also collects the literal values, so the hit
  // path is done after this one pass.
  if (!Render(*canon, lift, RenderMode::kFingerprint, &out.fingerprint,
              nullptr, &out.values)) {
    return RawMode(text);
  }
  out.parameterized = !out.values.empty();
  if (render_compile_text) {
    // With no slots the canonical text still shares entries across
    // whitespace/predicate-order variants; with slots it carries the
    // sentinels the binder replaces per execution.
    if (!Render(*canon, lift, RenderMode::kCompile, &out.compile_text,
                &out.slots, nullptr)) {
      return RawMode(text);
    }
  }
  return out;
}

}  // namespace xmlq::cache
