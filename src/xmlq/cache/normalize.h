#ifndef XMLQ_CACHE_NORMALIZE_H_
#define XMLQ_CACHE_NORMALIZE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xmlq::cache {

/// One parameter slot a query's text was lifted into. The slot is typed
/// (string vs. number literal — the two compile to different comparison
/// semantics, so they must never share a fingerprint) and carries the
/// sentinel literal the plan-cache normalizer planted into the canonical
/// text in its place. At bind time the compiled template is cloned and every
/// occurrence of the sentinel is replaced by the actual parameter value.
struct BindSlot {
  bool numeric = false;
  /// The sentinel literal text as it appears in the parameterized query
  /// (string slots: the raw string value, without quotes; numeric slots:
  /// the digit text).
  std::string sentinel;
  /// Numeric slots: the exact double the sentinel digits parse to (the
  /// XQuery front end stores number literals as doubles, so substitution
  /// matches by value there).
  double sentinel_number = 0;
};

/// The plan-cache view of one query text (DESIGN.md §11).
///
/// `fingerprint` is the canonical form used as the cache key: tokens joined
/// with single spaces (whitespace and comments erased), adjacent predicate
/// groups `[..][..]` sorted into a canonical order (safe: the supported
/// predicate subset is existential/comparison conjunctions, which commute),
/// and every comparison-adjacent string/number literal replaced by a typed
/// placeholder `?s` / `?n`. Two queries differing only in parameter values
/// (or whitespace, or commuting predicate order) share a fingerprint and
/// therefore a cached plan.
///
/// `compile_text` is the same canonical form but with unique sentinel
/// literals in place of the placeholders — a valid query the front ends
/// compile once per fingerprint; the resulting plan is the cached template.
///
/// When the text uses syntax the normalizer does not model (element
/// constructors, unknown characters) — or carries a literal that collides
/// with the sentinel encoding space — it degrades to *raw mode*:
/// `parameterized` is false, `compile_text` is the trimmed original text
/// and `fingerprint` is that text behind an `"R\x1f"` prefix, keeping the
/// exact-match entries in a key namespace no placeholder render can reach
/// (a raw query whose text equals a template's fingerprint must never
/// resolve to the template).
struct NormalizedQuery {
  bool parameterized = false;
  std::string fingerprint;
  std::string compile_text;
  std::vector<BindSlot> slots;
  /// This query text's own literal values, in slot order — the binds the
  /// transparent cache path substitutes (and the defaults for a
  /// PreparedQuery executed without explicit binds).
  std::vector<std::string> values;
};

/// Normalizes a query (XQuery or XPath; the canonical text re-parses through
/// whichever front end accepted the original). Never fails: unsupported
/// syntax degrades to raw mode.
///
/// `render_compile_text` = false skips the sentinel render: `compile_text`
/// and `slots` stay empty (raw-mode results still carry both — they cost
/// nothing there). The fingerprint and values are all a cache *hit* needs,
/// so the transparent path normalizes in this mode and only pays for the
/// full form when a miss actually compiles a template.
NormalizedQuery NormalizeQuery(std::string_view text,
                               bool render_compile_text = true);

/// Sentinel constructors, shared with the plan binder (plan_cache.cc) and
/// exposed for tests. Slot `k`'s string sentinel wraps the index in \x01
/// bytes (cannot collide with user data that survives the lexers un-lifted);
/// the numeric sentinel is 9007100000000000 + k — exactly representable in a
/// double and far outside any natural document value, and its uniqueness is
/// verified against the compiled plan before an entry is cached.
std::string StringSentinel(size_t slot);
std::string NumberSentinelText(size_t slot);
double NumberSentinelValue(size_t slot);

/// True when `value` could collide with the sentinel encoding: a string
/// containing \x01, or a number inside the reserved sentinel range.
/// NormalizeQuery degrades any query carrying such a literal to raw mode
/// and PreparedQuery rejects such binds, so plan-template substitution can
/// never touch (or be confused by) a user value.
bool CollidesWithSentinelSpace(std::string_view value, bool numeric);

}  // namespace xmlq::cache

#endif  // XMLQ_CACHE_NORMALIZE_H_
