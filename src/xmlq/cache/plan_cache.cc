#include "xmlq/cache/plan_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "xmlq/base/fault_injector.h"

namespace xmlq::cache {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Pre-order walk over a plan tree (and the pattern graphs hanging off it
/// are visited by the callers directly — they are payloads, not children).
template <typename Expr, typename Fn>
void WalkPlan(Expr& expr, const Fn& fn) {
  fn(expr);
  for (const auto& child : expr.children) {
    if (child) WalkPlan(*child, fn);
  }
}

bool SlotMatchesPredicate(const BindSlot& slot,
                          const algebra::ValuePredicate& pred) {
  return pred.numeric == slot.numeric && pred.literal == slot.sentinel;
}

bool SlotMatchesItem(const BindSlot& slot, const algebra::Item& item) {
  if (slot.numeric) {
    return item.IsNumber() && item.number() == slot.sentinel_number;
  }
  return item.IsString() && item.str() == slot.sentinel;
}

}  // namespace

std::string CacheStats::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "plan-cache: hits=%llu misses=%llu bypass=%llu inserts=%llu "
                "insert_faults=%llu evictions=%llu invalidations=%llu "
                "replans=%llu resident_bytes=%llu entries=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(bypass),
                static_cast<unsigned long long>(inserts),
                static_cast<unsigned long long>(insert_faults),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(invalidations),
                static_cast<unsigned long long>(replans),
                static_cast<unsigned long long>(resident_bytes),
                static_cast<unsigned long long>(entries));
  return buf;
}

PlanCache::PlanCache(CacheConfig config) : config_(config) {
  const size_t count = NextPowerOfTwo(std::max<size_t>(1, config.shard_count));
  shard_mask_ = count - 1;
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key)&shard_mask_];
}

const PlanCache::Shard& PlanCache::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key)&shard_mask_];
}

void PlanCache::EraseLocked(
    Shard& shard, std::list<std::shared_ptr<CachedPlan>>::iterator it) {
  const CachedPlan& entry = **it;
  shard.bytes -= entry.bytes;
  resident_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.map.erase(entry.key);
  shard.lru.erase(it);
}

std::shared_ptr<CachedPlan> PlanCache::Lookup(const std::string& key,
                                              uint64_t generation) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::shared_ptr<CachedPlan> entry = *it->second;
  if (entry->generation != generation) {
    // Compiled against a catalog that no longer exists; drop on the spot.
    EraseLocked(shard, it->second);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second = shard.lru.begin();
  hits_.fetch_add(1, std::memory_order_relaxed);
  entry->hit_count.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

std::shared_ptr<CachedPlan> PlanCache::Peek(const std::string& key,
                                            uint64_t generation) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  std::shared_ptr<CachedPlan> entry = *it->second;
  if (entry->generation != generation) return nullptr;
  return entry;
}

bool PlanCache::Insert(std::shared_ptr<CachedPlan> entry) {
  if (XMLQ_FAULT("cache.plan.insert")) {
    insert_faults_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const size_t share = config_.memory_budget_bytes / shards_.size();
  if (entry->bytes > share) return false;  // never admissible
  Shard& shard = ShardFor(entry->key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.count(entry->key)) return false;  // first writer won
  while (shard.bytes + entry->bytes > share && !shard.lru.empty()) {
    EraseLocked(shard, std::prev(shard.lru.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.bytes += entry->bytes;
  resident_bytes_.fetch_add(entry->bytes, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.push_front(entry);
  shard.map.emplace(entry->key, shard.lru.begin());
  return true;
}

void PlanCache::InvalidateGeneration(uint64_t live_generation) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      auto next = std::next(it);
      if ((*it)->generation != live_generation) {
        EraseLocked(shard, it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      }
      it = next;
    }
  }
}

void PlanCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    while (!shard.lru.empty()) EraseLocked(shard, shard.lru.begin());
  }
}

bool PlanCache::CommitFeedback(CachedPlan& entry, bool sampled,
                               double q_error, double work,
                               exec::PatternStrategy executed,
                               bool degraded) {
  entry.executions.fetch_add(1, std::memory_order_relaxed);
  if (!entry.adaptive) return false;
  std::lock_guard<std::mutex> lock(entry.mu);
  FeedbackState& fb = entry.feedback;
  const size_t si = static_cast<size_t>(executed) & 7;
  if (sampled && !degraded) {
    // Only real profiled measurements feed the mean-work accumulators. The
    // degraded paths report work=0 (no profile) or the fallback engine's
    // counters — folding either in would drag the faulting strategy's mean
    // toward 0 and let the terminal pinning step pin the very engine that
    // was degrading.
    fb.work_sum[si] += work;
    fb.work_count[si]++;
  }
  fb.tried_mask |= 1u << si;
  fb.executions_since_replan++;
  if (fb.pinned) return false;
  if (sampled && q_error > 0) {
    fb.qerrors.push_back(q_error);
    if (fb.qerrors.size() > config_.feedback_window) {
      fb.qerrors.erase(fb.qerrors.begin());
    }
  }
  // Hysteresis: no re-plan (even a quarantine-forced one) until the cool-down
  // since the last switch has elapsed, so one bad interval can't flap the
  // engine back and forth.
  if (fb.executions_since_replan < config_.replan_cooldown_hits &&
      fb.replans > 0) {
    return false;
  }
  bool want = degraded;
  if (!want) {
    if (fb.qerrors.size() < config_.min_samples) return false;
    std::vector<double> sorted = fb.qerrors;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    want = sorted[sorted.size() / 2] > config_.qerror_threshold;
  }
  if (!want) return false;
  // Switch to the cheapest strategy the entry has not yet run.
  for (const auto& [strategy, cost] : fb.ranking) {
    const size_t ci = static_cast<size_t>(strategy) & 7;
    if (fb.tried_mask & (1u << ci)) continue;
    fb.tried_mask |= 1u << ci;
    fb.qerrors.clear();
    fb.executions_since_replan = 0;
    fb.replans++;
    replans_.fetch_add(1, std::memory_order_relaxed);
    entry.strategy.store(strategy, std::memory_order_relaxed);
    return true;
  }
  // Every ranked strategy has run: pin the one with the least mean observed
  // work. Terminal — the entry stops adapting until invalidated/evicted.
  exec::PatternStrategy best =
      entry.strategy.load(std::memory_order_relaxed);
  double best_work = -1;
  for (const auto& [strategy, cost] : fb.ranking) {
    const size_t ci = static_cast<size_t>(strategy) & 7;
    if (fb.work_count[ci] == 0) continue;
    const double mean = fb.work_sum[ci] / static_cast<double>(fb.work_count[ci]);
    if (best_work < 0 || mean < best_work) {
      best_work = mean;
      best = strategy;
    }
  }
  fb.pinned = true;
  const bool switched =
      best != entry.strategy.load(std::memory_order_relaxed);
  if (switched) {
    fb.replans++;
    replans_.fetch_add(1, std::memory_order_relaxed);
    entry.strategy.store(best, std::memory_order_relaxed);
  }
  fb.qerrors.clear();
  fb.executions_since_replan = 0;
  return switched;
}

CacheStats PlanCache::Stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bypass = bypass_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.insert_faults = insert_faults_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.replans = replans_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

bool ValidateSentinels(const algebra::LogicalExpr& plan,
                       const std::vector<BindSlot>& slots) {
  std::vector<size_t> seen(slots.size(), 0);
  WalkPlan(plan, [&](const algebra::LogicalExpr& e) {
    for (size_t i = 0; i < slots.size(); ++i) {
      if (e.op == algebra::LogicalOp::kSelectValue &&
          SlotMatchesPredicate(slots[i], e.predicate)) {
        seen[i]++;
      }
      if (e.op == algebra::LogicalOp::kLiteral &&
          SlotMatchesItem(slots[i], e.literal)) {
        seen[i]++;
      }
      if (e.pattern) {
        for (size_t v = 0; v < e.pattern->VertexCount(); ++v) {
          for (const auto& pred : e.pattern->vertex(v).predicates) {
            if (SlotMatchesPredicate(slots[i], pred)) seen[i]++;
          }
        }
      }
    }
  });
  // "At least once": rewrites may duplicate a predicate (filter grafting),
  // and BindPlan replaces every occurrence. Zero occurrences means the
  // compile pipeline put the literal somewhere the binder can't reach.
  return std::all_of(seen.begin(), seen.end(),
                     [](size_t n) { return n >= 1; });
}

algebra::LogicalExprPtr BindPlan(const algebra::LogicalExpr& tmpl,
                                 const std::vector<BindSlot>& slots,
                                 const std::vector<std::string>& values) {
  algebra::LogicalExprPtr bound = tmpl.Clone();
  WalkPlan(*bound, [&](algebra::LogicalExpr& e) {
    for (size_t i = 0; i < slots.size(); ++i) {
      const BindSlot& slot = slots[i];
      if (e.op == algebra::LogicalOp::kSelectValue &&
          SlotMatchesPredicate(slot, e.predicate)) {
        e.predicate.literal = values[i];
      }
      if (e.op == algebra::LogicalOp::kLiteral &&
          SlotMatchesItem(slot, e.literal)) {
        e.literal = slot.numeric
                        ? algebra::Item(std::strtod(values[i].c_str(), nullptr))
                        : algebra::Item(values[i]);
      }
      if (e.pattern) {
        for (size_t v = 0; v < e.pattern->VertexCount(); ++v) {
          for (auto& pred : e.pattern->mutable_vertex(
                                static_cast<algebra::VertexId>(v))
                                .predicates) {
            if (SlotMatchesPredicate(slot, pred)) pred.literal = values[i];
          }
        }
      }
    }
  });
  return bound;
}

size_t PlanFootprint(const algebra::LogicalExpr& plan) {
  size_t bytes = 0;
  WalkPlan(plan, [&](const algebra::LogicalExpr& e) {
    bytes += sizeof(algebra::LogicalExpr);
    bytes += e.str.capacity() + e.predicate.literal.capacity();
    bytes += e.clauses.capacity() * sizeof(algebra::FlworClause);
    if (e.pattern) {
      bytes += sizeof(algebra::PatternGraph);
      for (size_t v = 0; v < e.pattern->VertexCount(); ++v) {
        const auto& vertex = e.pattern->vertex(v);
        bytes += sizeof(vertex) + vertex.label.capacity();
        for (const auto& pred : vertex.predicates) {
          bytes += sizeof(pred) + pred.literal.capacity();
        }
      }
    }
    if (e.schema) bytes += 256;  // coarse: schemas only occur un-cached paths
    if (e.literal.IsString()) bytes += e.literal.str().capacity();
  });
  return bytes;
}

}  // namespace xmlq::cache
