#ifndef XMLQ_CACHE_PLAN_CACHE_H_
#define XMLQ_CACHE_PLAN_CACHE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xmlq/algebra/logical_plan.h"
#include "xmlq/cache/normalize.h"
#include "xmlq/exec/executor.h"

namespace xmlq::cache {

/// Plan-cache tuning knobs (api::Database::SetPlanCache). The defaults are
/// the production configuration; tests shrink them to force evictions and
/// re-plans deterministically.
struct CacheConfig {
  bool enabled = true;
  /// Number of independently locked shards (rounded up to a power of two).
  size_t shard_count = 8;
  /// Total resident-plan budget across all shards; LRU eviction keeps each
  /// shard under its 1/shard_count share.
  size_t memory_budget_bytes = size_t{64} << 20;

  // Feedback-driven adaptation (DESIGN.md §11). A cached plan is profiled
  // every `sample_period`-th execution; when the median q-error over the
  // last `feedback_window` samples exceeds `qerror_threshold` (and at least
  // `min_samples` samples exist), the entry re-plans onto the next engine
  // in the optimizer's cost ranking. `replan_cooldown_hits` executions must
  // pass between re-plans (hysteresis: one bad sample after a re-plan can't
  // flap the engine straight back).
  uint64_t sample_period = 16;
  double qerror_threshold = 8.0;
  size_t feedback_window = 9;
  size_t min_samples = 5;
  uint64_t replan_cooldown_hits = 32;
};

/// Monotonic counters, mirrored after exec::AdmissionStats. All cheap
/// relaxed atomics internally; this is the snapshot type.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Lookups that skipped the cache entirely: caching disabled, stats-only
  /// executions, or plans whose compiled form failed sentinel validation.
  uint64_t bypass = 0;
  uint64_t inserts = 0;
  uint64_t insert_faults = 0;  // XMLQ_FAULT site "cache.plan.insert"
  uint64_t evictions = 0;      // LRU / memory-budget removals
  uint64_t invalidations = 0;  // entries dropped by catalog generation swap
  uint64_t replans = 0;        // feedback-driven strategy switches
  uint64_t resident_bytes = 0; // current footprint estimate
  uint64_t entries = 0;        // current entry count

  /// One line, shell/wire format:
  /// "plan-cache: hits=… misses=… … resident_kb=… entries=…".
  std::string ToString() const;
};

/// Per-entry adaptive-selection state (guarded by CachedPlan::mu).
/// State machine: an entry starts *tracking*; each profiled sample appends
/// its plan-level q-error to a bounded window. When the median exceeds the
/// threshold (or the executor reports the engine degraded/quarantined), the
/// entry *re-plans*: switches to the cheapest not-yet-tried strategy from
/// the install-time cost ranking and clears the window. Once every ranked
/// strategy has been tried, the entry *pins* the strategy with the lowest
/// mean observed work and stops adapting (terminal, until the entry is
/// invalidated or evicted).
struct FeedbackState {
  /// Install-time cost ranking (cheapest first) from opt::ChooseStrategy's
  /// alternatives, for the costliest pattern of the plan.
  std::vector<std::pair<exec::PatternStrategy, double>> ranking;
  /// Recent plan q-errors (bounded ring of CacheConfig::feedback_window).
  std::vector<double> qerrors;
  uint64_t executions_since_replan = 0;
  uint32_t tried_mask = 0;  // bit per PatternStrategy value
  bool pinned = false;
  uint64_t replans = 0;
  /// Mean-observed-work accumulators per strategy (indexed by enum value).
  /// Fed only by profiled, non-degraded runs — degraded executions carry no
  /// usable work measurement for the attempted strategy.
  double work_sum[8] = {};
  uint64_t work_count[8] = {};
};

/// One immutable compiled template plus its mutable execution/feedback
/// bookkeeping. Shared: lookups hand out shared_ptrs, so eviction or
/// invalidation never frees a plan a concurrent execution still reads.
/// `plan` itself is never mutated after insert — executions clone it
/// (binding sentinels) and run the clone.
struct CachedPlan {
  std::string key;
  uint64_t generation = 0;
  algebra::LogicalExprPtr plan;  // const after Insert
  std::vector<BindSlot> slots;
  bool parameterized = false;
  /// False for forced-strategy (auto_optimize=false) entries: they execute
  /// with the caller's engine and never adapt.
  bool adaptive = false;
  size_t bytes = 0;
  std::chrono::steady_clock::time_point created{};

  std::atomic<uint64_t> hit_count{0};
  std::atomic<uint64_t> executions{0};
  /// Current engine pick, re-written by feedback re-plans. Read lock-free
  /// on the hit path.
  std::atomic<exec::PatternStrategy> strategy{exec::PatternStrategy::kNok};

  mutable std::mutex mu;  // guards feedback
  FeedbackState feedback;
};

/// Sharded, thread-safe LRU plan cache. Keys are composed by the caller
/// (api::Database) from front-end tag + options class + limits class +
/// normalized fingerprint; the catalog generation is stored per entry and
/// checked at lookup, so a stale entry can never serve even before the
/// post-swap invalidation sweep reaches it.
class PlanCache {
 public:
  explicit PlanCache(CacheConfig config = {});

  const CacheConfig& config() const { return config_; }

  /// Returns the live entry for `key` compiled at `generation`, bumping its
  /// LRU position and hit counter; null on miss (counted) or generation
  /// mismatch (the stale entry is dropped on the spot).
  std::shared_ptr<CachedPlan> Lookup(const std::string& key,
                                     uint64_t generation);

  /// Lookup without side effects (no LRU touch, no counters) — EXPLAIN uses
  /// this so inspecting a plan doesn't perturb what it reports.
  std::shared_ptr<CachedPlan> Peek(const std::string& key,
                                   uint64_t generation) const;

  /// Inserts `entry` (keyed by entry->key). Returns false without caching
  /// when the XMLQ_FAULT site "cache.plan.insert" fires or when an entry
  /// with the key already exists (first writer wins; the caller just runs
  /// its own copy). Evicts LRU entries as needed to keep the shard within
  /// its budget share; an entry bigger than the share is not admitted.
  bool Insert(std::shared_ptr<CachedPlan> entry);

  /// Drops every entry whose generation != `live_generation`. Called after
  /// each copy-on-write catalog swap; correctness never depends on it (the
  /// generation check in Lookup already fences), it just frees memory.
  void InvalidateGeneration(uint64_t live_generation);

  /// Drops everything (SetPlanCache reconfiguration).
  void Clear();

  void RecordBypass() { bypass_.fetch_add(1, std::memory_order_relaxed); }

  /// Folds one execution's observations into `entry`'s feedback state and
  /// applies the re-plan state machine. `sampled` says whether this
  /// execution was profiled (q_error valid); `work` is the deterministic
  /// work metric (node visits + index probes + stack pushes) under the
  /// strategy `executed`; `degraded` forces an immediate re-plan attempt
  /// (engine fault / quarantine). Returns true when the entry switched
  /// strategy.
  bool CommitFeedback(CachedPlan& entry, bool sampled, double q_error,
                      double work, exec::PatternStrategy executed,
                      bool degraded);

  CacheStats Stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Key → handle into lru (most-recent at front).
    std::unordered_map<std::string,
                       std::list<std::shared_ptr<CachedPlan>>::iterator>
        map;
    std::list<std::shared_ptr<CachedPlan>> lru;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  void EraseLocked(Shard& shard,
                   std::list<std::shared_ptr<CachedPlan>>::iterator it);

  CacheConfig config_;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0}, misses_{0}, bypass_{0}, inserts_{0},
      insert_faults_{0}, evictions_{0}, invalidations_{0}, replans_{0},
      resident_bytes_{0}, entries_{0};
};

/// Verifies every slot's sentinel literal occurs somewhere in `plan`
/// (rewrites may duplicate a predicate — e.g. grafting a filter branch —
/// so "at least once" is the invariant; substitution replaces every
/// occurrence). A slot whose sentinel vanished means the compile pipeline
/// transformed a literal in a way the binder can't reach — the caller must
/// not cache that template.
bool ValidateSentinels(const algebra::LogicalExpr& plan,
                       const std::vector<BindSlot>& slots);

/// Deep-copies `tmpl` and replaces every sentinel occurrence of slot i with
/// `values[i]` (raw string value for string slots; digit text + parsed
/// double for numeric slots). `values.size()` must equal `slots.size()`.
algebra::LogicalExprPtr BindPlan(const algebra::LogicalExpr& tmpl,
                                 const std::vector<BindSlot>& slots,
                                 const std::vector<std::string>& values);

/// Rough resident-size estimate of a plan tree (for the memory budget).
size_t PlanFootprint(const algebra::LogicalExpr& plan);

}  // namespace xmlq::cache

#endif  // XMLQ_CACHE_PLAN_CACHE_H_
