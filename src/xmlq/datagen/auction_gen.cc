#include "xmlq/datagen/auction_gen.h"

#include <array>
#include <cmath>

#include "xmlq/base/random.h"
#include "xmlq/base/strings.h"

namespace xmlq::datagen {

namespace {

constexpr std::array<const char*, 6> kRegions = {
    "africa", "asia", "australia", "europe", "namerica", "samerica"};

constexpr std::array<const char*, 16> kWords = {
    "vintage", "rare",    "antique", "modern", "classic", "signed",
    "limited", "edition", "mint",    "boxed",  "sealed",  "original",
    "refurb",  "bundle",  "deluxe",  "promo"};

constexpr std::array<const char*, 12> kFirst = {
    "Alice", "Bob",   "Carol", "Dave", "Erin",  "Frank",
    "Grace", "Heidi", "Ivan",  "Judy", "Mallory", "Niaj"};

constexpr std::array<const char*, 12> kLast = {
    "Smith", "Jones", "Lee",   "Patel",  "Garcia", "Kim",
    "Chen",  "Silva", "Brown", "Devi",   "Novak",  "Okafor"};

constexpr std::array<const char*, 8> kCities = {
    "Waterloo", "Toronto", "Boston", "Berlin",
    "Tokyo",    "Sydney",  "Nairobi", "Lima"};

std::string Sentence(xmlq::Rng* rng, int min_words, int max_words) {
  std::string out;
  const int n = static_cast<int>(rng->Range(min_words, max_words));
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    out += kWords[rng->Below(kWords.size())];
  }
  return out;
}

std::string Money(xmlq::Rng* rng, double lo, double hi) {
  const double v = lo + rng->NextDouble() * (hi - lo);
  return xmlq::FormatNumber(std::round(v * 100) / 100);
}

}  // namespace

std::unique_ptr<xml::Document> GenerateAuctionSite(
    const AuctionOptions& options) {
  Rng rng(options.seed);
  const auto scaled = [&](size_t per_scale) {
    return std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               static_cast<double>(per_scale) * options.scale)));
  };
  const size_t num_items = scaled(options.items_per_scale);
  const size_t num_people = scaled(options.people_per_scale);
  const size_t num_open = scaled(options.open_auctions_per_scale);
  const size_t num_closed = scaled(options.closed_auctions_per_scale);
  const size_t num_categories = scaled(options.categories_per_scale);

  auto doc = std::make_unique<xml::Document>();
  const xml::NodeId site = doc->AddElement(doc->root(), "site");

  // -- regions / items -------------------------------------------------
  // Assign items to regions up front so each region subtree is built
  // completely before the next one starts (keeps NodeIds in pre-order).
  const xml::NodeId regions = doc->AddElement(site, "regions");
  const size_t num_regions = std::min(options.regions, kRegions.size());
  std::vector<std::vector<size_t>> items_by_region(num_regions);
  for (size_t i = 0; i < num_items; ++i) {
    items_by_region[rng.Below(num_regions)].push_back(i);
  }
  for (size_t r = 0; r < num_regions; ++r) {
    const xml::NodeId region = doc->AddElement(regions, kRegions[r]);
    for (const size_t i : items_by_region[r]) {
      const xml::NodeId item = doc->AddElement(region, "item");
    doc->AddAttribute(item, "id", "item" + std::to_string(i));
    const xml::NodeId location = doc->AddElement(item, "location");
    doc->AddText(location, kCities[rng.Below(kCities.size())]);
    const xml::NodeId quantity = doc->AddElement(item, "quantity");
    doc->AddText(quantity, std::to_string(rng.Range(1, 5)));
    const xml::NodeId name = doc->AddElement(item, "name");
    doc->AddText(name, Sentence(&rng, 2, 4));
    const xml::NodeId payment = doc->AddElement(item, "payment");
    doc->AddText(payment, rng.Chance(0.5) ? "Creditcard" : "Cash");
    const xml::NodeId description = doc->AddElement(item, "description");
    const xml::NodeId text = doc->AddElement(description, "text");
    doc->AddText(text, Sentence(&rng, 5, 20));
    // Mailbox with a geometric number of mails (deep, mixed structure).
    const xml::NodeId mailbox = doc->AddElement(item, "mailbox");
    while (rng.Chance(0.4)) {
      const xml::NodeId mail = doc->AddElement(mailbox, "mail");
      const xml::NodeId from = doc->AddElement(mail, "from");
      doc->AddText(from, kFirst[rng.Below(kFirst.size())]);
      const xml::NodeId date = doc->AddElement(mail, "date");
      doc->AddText(date, std::to_string(rng.Range(2001, 2004)) + "-" +
                             std::to_string(rng.Range(1, 12)));
      const xml::NodeId body = doc->AddElement(mail, "text");
      doc->AddText(body, Sentence(&rng, 3, 12));
    }
    }
  }

  // -- categories -------------------------------------------------------
  const xml::NodeId categories = doc->AddElement(site, "categories");
  for (size_t c = 0; c < num_categories; ++c) {
    const xml::NodeId category = doc->AddElement(categories, "category");
    doc->AddAttribute(category, "id", "category" + std::to_string(c));
    const xml::NodeId name = doc->AddElement(category, "name");
    doc->AddText(name, Sentence(&rng, 1, 3));
    const xml::NodeId description = doc->AddElement(category, "description");
    const xml::NodeId text = doc->AddElement(description, "text");
    doc->AddText(text, Sentence(&rng, 4, 10));
  }

  // -- people ------------------------------------------------------------
  const xml::NodeId people = doc->AddElement(site, "people");
  for (size_t p = 0; p < num_people; ++p) {
    const xml::NodeId person = doc->AddElement(people, "person");
    doc->AddAttribute(person, "id", "person" + std::to_string(p));
    const xml::NodeId name = doc->AddElement(person, "name");
    doc->AddText(name, std::string(kFirst[rng.Below(kFirst.size())]) + " " +
                           kLast[rng.Below(kLast.size())]);
    const xml::NodeId email = doc->AddElement(person, "emailaddress");
    doc->AddText(email, "mailto:person" + std::to_string(p) + "@example.com");
    if (rng.Chance(0.6)) {
      const xml::NodeId phone = doc->AddElement(person, "phone");
      doc->AddText(phone, "+1-" + std::to_string(rng.Range(200, 999)) + "-" +
                              std::to_string(rng.Range(1000000, 9999999)));
    }
    if (rng.Chance(0.7)) {
      const xml::NodeId address = doc->AddElement(person, "address");
      const xml::NodeId street = doc->AddElement(address, "street");
      doc->AddText(street, std::to_string(rng.Range(1, 99)) + " Main St");
      const xml::NodeId city = doc->AddElement(address, "city");
      doc->AddText(city, kCities[rng.Below(kCities.size())]);
      const xml::NodeId country = doc->AddElement(address, "country");
      doc->AddText(country, "United States");
    }
    if (rng.Chance(0.8)) {
      const xml::NodeId profile = doc->AddElement(person, "profile");
      doc->AddAttribute(profile, "income", Money(&rng, 9000, 250000));
      const int interests = static_cast<int>(rng.Range(0, 4));
      for (int i = 0; i < interests; ++i) {
        const xml::NodeId interest = doc->AddElement(profile, "interest");
        doc->AddAttribute(
            interest, "category",
            "category" + std::to_string(rng.Below(num_categories)));
      }
      if (rng.Chance(0.5)) {
        const xml::NodeId education = doc->AddElement(profile, "education");
        doc->AddText(education,
                     rng.Chance(0.5) ? "Graduate School" : "College");
      }
      const xml::NodeId gender = doc->AddElement(profile, "gender");
      doc->AddText(gender, rng.Chance(0.5) ? "male" : "female");
    }
  }

  // -- open auctions ------------------------------------------------------
  const xml::NodeId open_auctions = doc->AddElement(site, "open_auctions");
  for (size_t a = 0; a < num_open; ++a) {
    const xml::NodeId auction = doc->AddElement(open_auctions, "open_auction");
    doc->AddAttribute(auction, "id", "open_auction" + std::to_string(a));
    const xml::NodeId initial = doc->AddElement(auction, "initial");
    const double initial_price =
        1.0 + rng.NextDouble() * 199.0;
    doc->AddText(initial, FormatNumber(std::round(initial_price * 100) / 100));
    double current_price = initial_price;
    while (rng.Chance(0.55)) {
      const xml::NodeId bidder = doc->AddElement(auction, "bidder");
      const xml::NodeId date = doc->AddElement(bidder, "date");
      doc->AddText(date, std::to_string(rng.Range(2001, 2004)) + "-" +
                             std::to_string(rng.Range(1, 12)));
      const xml::NodeId personref = doc->AddElement(bidder, "personref");
      doc->AddAttribute(personref, "person",
                        "person" + std::to_string(rng.Below(num_people)));
      const xml::NodeId increase = doc->AddElement(bidder, "increase");
      const double inc = 1.5 + rng.NextDouble() * 25.0;
      current_price += inc;
      doc->AddText(increase, FormatNumber(std::round(inc * 100) / 100));
    }
    const xml::NodeId current = doc->AddElement(auction, "current");
    doc->AddText(current, FormatNumber(std::round(current_price * 100) / 100));
    const xml::NodeId itemref = doc->AddElement(auction, "itemref");
    doc->AddAttribute(itemref, "item",
                      "item" + std::to_string(rng.Below(num_items)));
    const xml::NodeId seller = doc->AddElement(auction, "seller");
    doc->AddAttribute(seller, "person",
                      "person" + std::to_string(rng.Below(num_people)));
    const xml::NodeId quantity = doc->AddElement(auction, "quantity");
    doc->AddText(quantity, std::to_string(rng.Range(1, 3)));
  }

  // -- closed auctions -----------------------------------------------------
  const xml::NodeId closed_auctions =
      doc->AddElement(site, "closed_auctions");
  for (size_t a = 0; a < num_closed; ++a) {
    const xml::NodeId auction =
        doc->AddElement(closed_auctions, "closed_auction");
    const xml::NodeId seller = doc->AddElement(auction, "seller");
    doc->AddAttribute(seller, "person",
                      "person" + std::to_string(rng.Below(num_people)));
    const xml::NodeId buyer = doc->AddElement(auction, "buyer");
    doc->AddAttribute(buyer, "person",
                      "person" + std::to_string(rng.Below(num_people)));
    const xml::NodeId itemref = doc->AddElement(auction, "itemref");
    doc->AddAttribute(itemref, "item",
                      "item" + std::to_string(rng.Below(num_items)));
    const xml::NodeId price = doc->AddElement(auction, "price");
    doc->AddText(price, Money(&rng, 5, 400));
    const xml::NodeId quantity = doc->AddElement(auction, "quantity");
    doc->AddText(quantity, std::to_string(rng.Range(1, 3)));
    const xml::NodeId date = doc->AddElement(auction, "date");
    doc->AddText(date, std::to_string(rng.Range(1999, 2003)) + "-" +
                           std::to_string(rng.Range(1, 12)));
  }

  return doc;
}

}  // namespace xmlq::datagen
