#ifndef XMLQ_DATAGEN_AUCTION_GEN_H_
#define XMLQ_DATAGEN_AUCTION_GEN_H_

#include <cstdint>
#include <memory>

#include "xmlq/xml/document.h"

namespace xmlq::datagen {

/// Knobs for the XMark-style auction-site generator. `scale = 1.0`
/// approximates the original benchmark's entity ratios at a laptop-friendly
/// size; all counts scale linearly. Deterministic for a fixed seed.
struct AuctionOptions {
  double scale = 0.1;
  uint64_t seed = 7;

  /// Entity counts at scale 1.0 (ratios follow the XMark schema).
  size_t items_per_scale = 4000;
  size_t people_per_scale = 2000;
  size_t open_auctions_per_scale = 2400;
  size_t closed_auctions_per_scale = 1600;
  size_t categories_per_scale = 200;
  size_t regions = 6;
};

/// Generates an auction-site document with the XMark skeleton:
///
///   <site>
///     <regions> <africa|asia|...> <item id>...</item>* </...> </regions>
///     <categories> <category id><name/><description/></category>* </...>
///     <people> <person id><name/><emailaddress/><phone?/><address?>
///              <profile income>...</profile?></person>* </people>
///     <open_auctions> <open_auction id><initial/><bidder>*<current/>
///                      <itemref item/><seller person/></open_auction>* </...>
///     <closed_auctions> <closed_auction><seller/><buyer/><itemref/>
///                        <price/><quantity/></closed_auction>* </...>
///   </site>
///
/// This preserves the tag distributions, nesting depths, reference
/// structure and value skew that the paper's query workloads exercise.
std::unique_ptr<xml::Document> GenerateAuctionSite(
    const AuctionOptions& options);

}  // namespace xmlq::datagen

#endif  // XMLQ_DATAGEN_AUCTION_GEN_H_
