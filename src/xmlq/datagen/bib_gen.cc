#include "xmlq/datagen/bib_gen.h"

#include <array>
#include <cmath>

#include "xmlq/base/random.h"
#include "xmlq/base/strings.h"

namespace xmlq::datagen {

namespace {

constexpr std::array<const char*, 12> kTitleWords = {
    "Data", "on", "the", "Web", "Advanced", "Programming", "Unix",
    "Systems", "Digital", "Economy", "Query", "Processing"};

constexpr std::array<const char*, 10> kSurnames = {
    "Stevens", "Abiteboul", "Buneman", "Suciu", "Gray",
    "Codd",    "Ullman",    "Widom",   "Zhang", "Ozsu"};

constexpr std::array<const char*, 8> kFirstNames = {
    "W.", "Serge", "Peter", "Dan", "Jim", "Edgar", "Jeffrey", "Jennifer"};

constexpr std::array<const char*, 5> kPublishers = {
    "Addison-Wesley", "Morgan Kaufmann", "Springer", "ACM Press",
    "O'Reilly"};

}  // namespace

std::unique_ptr<xml::Document> GenerateBibliography(
    const BibOptions& options) {
  Rng rng(options.seed);
  auto doc = std::make_unique<xml::Document>();
  const xml::NodeId bib = doc->AddElement(doc->root(), "bib");
  for (size_t i = 0; i < options.num_books; ++i) {
    const xml::NodeId book = doc->AddElement(bib, "book");
    doc->AddAttribute(
        book, "year",
        std::to_string(rng.Range(options.first_year, options.last_year)));
    doc->AddAttribute(book, "id", "b" + std::to_string(i));

    const xml::NodeId title = doc->AddElement(book, "title");
    std::string title_text;
    const int title_len = static_cast<int>(rng.Range(2, 5));
    for (int w = 0; w < title_len; ++w) {
      if (w > 0) title_text.push_back(' ');
      title_text += kTitleWords[rng.Below(kTitleWords.size())];
    }
    doc->AddText(title, title_text);

    const int num_authors =
        static_cast<int>(rng.Range(options.min_authors, options.max_authors));
    for (int a = 0; a < num_authors; ++a) {
      const xml::NodeId author = doc->AddElement(book, "author");
      const xml::NodeId last = doc->AddElement(author, "last");
      doc->AddText(last, kSurnames[rng.Below(kSurnames.size())]);
      const xml::NodeId first = doc->AddElement(author, "first");
      doc->AddText(first, kFirstNames[rng.Below(kFirstNames.size())]);
    }

    const xml::NodeId publisher = doc->AddElement(book, "publisher");
    doc->AddText(publisher, kPublishers[rng.Below(kPublishers.size())]);

    const xml::NodeId price = doc->AddElement(book, "price");
    const double value =
        options.min_price +
        rng.NextDouble() * (options.max_price - options.min_price);
    doc->AddText(price, FormatNumber(std::round(value * 100) / 100));
  }
  return doc;
}

}  // namespace xmlq::datagen
