#ifndef XMLQ_DATAGEN_BIB_GEN_H_
#define XMLQ_DATAGEN_BIB_GEN_H_

#include <cstdint>
#include <memory>

#include "xmlq/xml/document.h"

namespace xmlq::datagen {

/// Knobs for the bibliography generator (the `bib.xml` workload of the
/// XQuery Use Cases that the paper's Fig. 1 queries).
struct BibOptions {
  size_t num_books = 100;
  uint64_t seed = 42;
  int min_authors = 1;
  int max_authors = 4;
  int first_year = 1985;
  int last_year = 2004;
  double min_price = 10.0;
  double max_price = 150.0;
};

/// Generates a deterministic bibliography document:
///   <bib>
///     <book year="...">
///       <title>...</title> <author>...</author>+ <publisher>...</publisher>
///       <price>...</price>
///     </book>*
///   </bib>
/// Node ids are pre-order (IsPreorder() holds).
std::unique_ptr<xml::Document> GenerateBibliography(const BibOptions& options);

}  // namespace xmlq::datagen

#endif  // XMLQ_DATAGEN_BIB_GEN_H_
