#include "xmlq/datagen/random_tree.h"

#include <functional>

#include "xmlq/base/random.h"

namespace xmlq::datagen {

std::unique_ptr<xml::Document> GenerateRandomTree(
    const RandomTreeOptions& options) {
  Rng rng(options.seed);
  auto doc = std::make_unique<xml::Document>();
  const auto tag = [&](uint64_t i) { return "t" + std::to_string(i); };

  size_t created = 1;
  // Recursive DFS: each child subtree is completed before the next sibling
  // is created, so NodeIds stay in pre-order.
  std::function<void(xml::NodeId, int)> grow = [&](xml::NodeId node,
                                                   int depth) {
    if (rng.Chance(options.attribute_probability)) {
      doc->AddAttribute(node, "a" + std::to_string(rng.Below(3)),
                        std::to_string(rng.Below(50)));
    }
    if (rng.Chance(options.text_probability)) {
      doc->AddText(node, std::to_string(rng.Below(100)));
    }
    if (depth >= options.max_depth) return;
    // Geometric fanout, biased wider near the root.
    double keep_going = depth <= 2 ? 0.75 : 0.45;
    while (created < options.num_elements && rng.Chance(keep_going)) {
      keep_going *= 0.9;
      const xml::NodeId child = doc->AddElement(
          node,
          tag(rng.Below(static_cast<uint64_t>(options.tag_vocabulary))));
      ++created;
      grow(child, depth + 1);
    }
  };

  const xml::NodeId root = doc->AddElement(doc->root(), tag(0));
  grow(root, 1);
  // Top up to the requested element count with extra root children, so the
  // generator honours num_elements even when early subtrees terminate.
  while (created < options.num_elements) {
    const xml::NodeId child = doc->AddElement(
        root, tag(rng.Below(static_cast<uint64_t>(options.tag_vocabulary))));
    ++created;
    grow(child, 2);
  }
  return doc;
}

}  // namespace xmlq::datagen
