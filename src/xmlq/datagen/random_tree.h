#ifndef XMLQ_DATAGEN_RANDOM_TREE_H_
#define XMLQ_DATAGEN_RANDOM_TREE_H_

#include <cstdint>
#include <memory>

#include "xmlq/xml/document.h"

namespace xmlq::datagen {

/// Knobs for the random labeled-tree generator used by property tests.
struct RandomTreeOptions {
  size_t num_elements = 200;
  uint64_t seed = 1;
  int tag_vocabulary = 6;       // tags "t0".."t{n-1}"
  int max_depth = 12;
  double text_probability = 0.4;       // chance an element gets a text child
  double attribute_probability = 0.3;  // chance of an "a0".."a2" attribute
};

/// Generates a random ordered labeled tree. Shapes are skewed (geometric
/// descent) so both deep chains and wide fans occur. Deterministic per seed;
/// IsPreorder() holds.
std::unique_ptr<xml::Document> GenerateRandomTree(
    const RandomTreeOptions& options);

}  // namespace xmlq::datagen

#endif  // XMLQ_DATAGEN_RANDOM_TREE_H_
