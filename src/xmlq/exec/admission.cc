#include "xmlq/exec/admission.h"

#include <algorithm>
#include <chrono>
#include <string_view>

namespace xmlq::exec {

namespace {

/// The backpressure hint attached to rejected/shed admissions: clients
/// should wait roughly one queue-deadline (or 1 ms when unbounded waiting is
/// configured) before resubmitting.
uint64_t RetryAfterMicros(const AdmissionConfig& config) {
  return config.queue_deadline_micros != 0 ? config.queue_deadline_micros
                                           : 1000;
}

Status ExhaustedWithHint(std::string reason, const AdmissionConfig& config) {
  reason += "; retry-after-micros=";
  reason += std::to_string(RetryAfterMicros(config));
  return Status::ResourceExhausted(std::move(reason));
}

}  // namespace

uint64_t RetryAfterMicrosFromStatus(const Status& status) {
  // Only the two refusal codes that legitimately tell a client when to come
  // back carry the hint: overload sheds (kResourceExhausted) and a
  // follower's write refusal (kInvalidArgument, naming the primary to go
  // to). Anything else — including an unlucky kInternal whose message
  // happens to contain the key — yields 0.
  if (status.code() != StatusCode::kResourceExhausted &&
      status.code() != StatusCode::kInvalidArgument) {
    return 0;
  }
  static constexpr std::string_view kKey = "retry-after-micros=";
  const std::string& message = status.message();
  const size_t pos = message.rfind(kKey);
  if (pos == std::string::npos) return 0;
  uint64_t value = 0;
  for (size_t i = pos + kKey.size(); i < message.size(); ++i) {
    const char c = message[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

uint64_t StalenessGate::HeartbeatAgeMicros() const {
  const uint64_t last = last_heartbeat_micros_.load(std::memory_order_relaxed);
  if (last == 0) return UINT64_MAX;
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now > last ? now - last : 0;
}

Status StalenessGate::Admit() const {
  const uint64_t max_lag = max_generation_lag_.load(std::memory_order_relaxed);
  const uint64_t max_age =
      max_heartbeat_age_micros_.load(std::memory_order_relaxed);
  if (max_lag != 0) {
    const uint64_t lag = generation_lag_.load(std::memory_order_relaxed);
    if (lag > max_lag) {
      return Status::ResourceExhausted(
          "follower too stale (generation lag " + std::to_string(lag) +
          " > " + std::to_string(max_lag) + "); retry-after-micros=" +
          std::to_string(1000));
    }
  }
  if (max_age != 0) {
    const uint64_t age = HeartbeatAgeMicros();
    if (age > max_age) {
      // The retry hint is the staleness bound itself: by then the follower
      // has either heard from the primary again or the caller should fail
      // over to another replica.
      return Status::ResourceExhausted(
          "follower too stale (heartbeat age " +
          (age == UINT64_MAX ? std::string("unknown")
                             : std::to_string(age) + " micros") +
          " > " + std::to_string(max_age) + " micros); retry-after-micros=" +
          std::to_string(max_age));
    }
  }
  return Status::Ok();
}

QueryScheduler::QueryScheduler(AdmissionConfig config) : config_(config) {}

void QueryScheduler::Ticket::Release() {
  if (scheduler_ == nullptr) return;
  scheduler_->Release();
  scheduler_ = nullptr;
}

Result<QueryScheduler::Ticket> QueryScheduler::Admit(
    const CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  auto admit = [&]() -> Ticket {
    ++stats_.admitted;
    ++stats_.running;
    stats_.peak_running = std::max(stats_.peak_running, stats_.running);
    return Ticket(this, ++admitted_seq_);
  };
  if (cancel != nullptr && cancel->cancelled()) {
    ++stats_.cancelled_while_queued;
    return Status::Cancelled("query cancelled before admission");
  }
  if (config_.max_concurrent == 0 ||
      stats_.running < config_.max_concurrent) {
    return admit();
  }
  if (stats_.queued >= config_.max_queue) {
    ++stats_.rejected;
    return ExhaustedWithHint(
        "admission queue full (" + std::to_string(stats_.running) +
            " running, " + std::to_string(stats_.queued) + " queued)",
        config_);
  }
  ++stats_.queued;
  stats_.peak_queued = std::max(stats_.peak_queued, stats_.queued);
  const bool bounded_wait = config_.queue_deadline_micros != 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(config_.queue_deadline_micros);
  while (true) {
    if (cancel != nullptr && cancel->cancelled()) {
      --stats_.queued;
      ++stats_.cancelled_while_queued;
      return Status::Cancelled("query cancelled while queued for admission");
    }
    if (config_.max_concurrent == 0 ||
        stats_.running < config_.max_concurrent) {
      --stats_.queued;
      return admit();
    }
    if (bounded_wait) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          (config_.max_concurrent != 0 &&
           stats_.running >= config_.max_concurrent)) {
        --stats_.queued;
        ++stats_.shed;
        return ExhaustedWithHint(
            "query shed after waiting " +
                std::to_string(config_.queue_deadline_micros) +
                "us for an execution slot",
            config_);
      }
    } else {
      // Unbounded waits still wake periodically so a cancel that raced the
      // Poke() is noticed without one.
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
}

Result<QueryScheduler::Ticket> QueryScheduler::TryAdmit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (config_.max_concurrent == 0 ||
      stats_.running < config_.max_concurrent) {
    ++stats_.admitted;
    ++stats_.running;
    stats_.peak_running = std::max(stats_.peak_running, stats_.running);
    return Ticket(this, ++admitted_seq_);
  }
  ++stats_.rejected;
  return ExhaustedWithHint(
      "no free execution slot (" + std::to_string(stats_.running) +
          " running)",
      config_);
}

void QueryScheduler::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.running;
    ++stats_.completed;
  }
  cv_.notify_all();
}

void QueryScheduler::Configure(const AdmissionConfig& config) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
  }
  cv_.notify_all();
}

void QueryScheduler::Poke() { cv_.notify_all(); }

AdmissionStats QueryScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats stats = stats_;
  stats.retry_after_micros = RetryAfterMicros(config_);
  return stats;
}

uint64_t QueryScheduler::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_seq_;
}


CircuitBreaker::Slot& CircuitBreaker::SlotOf(PatternStrategy strategy) {
  return slots_[static_cast<size_t>(strategy) % kSlots];
}

const CircuitBreaker::Slot& CircuitBreaker::SlotOf(
    PatternStrategy strategy) const {
  return slots_[static_cast<size_t>(strategy) % kSlots];
}

bool CircuitBreaker::Allow(PatternStrategy strategy, uint64_t admitted_seq) {
  if (strategy == PatternStrategy::kNaive) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = SlotOf(strategy);
  switch (slot.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (admitted_seq >= slot.opened_seq + config_.cooldown_admissions) {
        slot.state = State::kHalfOpen;
        slot.probe_in_flight = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time; everyone else keeps degrading until it reports.
      if (!slot.probe_in_flight) {
        slot.probe_in_flight = true;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(PatternStrategy strategy) {
  if (strategy == PatternStrategy::kNaive) return;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = SlotOf(strategy);
  slot.consecutive_faults = 0;
  slot.probe_in_flight = false;
  slot.state = State::kClosed;
}

void CircuitBreaker::RecordFault(PatternStrategy strategy,
                                 uint64_t admitted_seq) {
  if (strategy == PatternStrategy::kNaive) return;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = SlotOf(strategy);
  ++slot.consecutive_faults;
  if (slot.state == State::kHalfOpen) {
    // The probe faulted: re-open and restart the cool-down from here.
    slot.state = State::kOpen;
    slot.opened_seq = admitted_seq;
    slot.probe_in_flight = false;
    return;
  }
  if (slot.state == State::kClosed &&
      slot.consecutive_faults >= config_.fault_threshold) {
    slot.state = State::kOpen;
    slot.opened_seq = admitted_seq;
  }
}

CircuitBreaker::State CircuitBreaker::StateOf(PatternStrategy strategy) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SlotOf(strategy).state;
}

uint32_t CircuitBreaker::ConsecutiveFaults(PatternStrategy strategy) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SlotOf(strategy).consecutive_faults;
}

void CircuitBreaker::Configure(const Config& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  for (Slot& slot : slots_) slot = Slot{};
}

std::string_view BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

std::string CircuitBreaker::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (size_t i = 0; i < kSlots; ++i) {
    const auto strategy = static_cast<PatternStrategy>(i);
    if (strategy == PatternStrategy::kNaive) continue;
    const Slot& slot = slots_[i];
    if (slot.state == State::kClosed && slot.consecutive_faults == 0) {
      continue;
    }
    out += "breaker ";
    out += PatternStrategyName(strategy);
    out += ": ";
    out += BreakerStateName(slot.state);
    out += " (consecutive_faults=" +
           std::to_string(slot.consecutive_faults);
    if (slot.state != State::kClosed) {
      out += ", opened_at_admission=" + std::to_string(slot.opened_seq);
    }
    out += ")\n";
  }
  if (out.empty()) out = "breakers: all engines closed (healthy)\n";
  return out;
}

}  // namespace xmlq::exec
