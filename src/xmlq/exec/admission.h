#ifndef XMLQ_EXEC_ADMISSION_H_
#define XMLQ_EXEC_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/executor.h"

namespace xmlq::exec {

/// Admission-control knobs for one serving Database. All-zero (the default)
/// admits every query immediately — the scheduler then only numbers
/// admissions (the circuit breaker's clock) and tracks concurrency.
struct AdmissionConfig {
  /// Queries allowed to execute at once; 0 = unbounded.
  uint32_t max_concurrent = 0;

  /// Queries allowed to *wait* for a slot beyond the running ones. A query
  /// arriving with the queue full is rejected immediately with
  /// kResourceExhausted (fail fast beats building an unbounded backlog).
  uint32_t max_queue = 0;

  /// How long a query may wait in the queue before it is shed with
  /// kResourceExhausted; 0 = wait indefinitely (cancellation still works).
  uint64_t queue_deadline_micros = 0;
};

/// Counters the scheduler keeps; every terminal admission outcome increments
/// exactly one of admitted / rejected / shed / cancelled_while_queued.
struct AdmissionStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;               // queue full on arrival
  uint64_t shed = 0;                   // queue deadline exceeded
  uint64_t cancelled_while_queued = 0;
  uint64_t completed = 0;
  uint32_t running = 0;
  uint32_t queued = 0;
  uint32_t peak_running = 0;
  uint32_t peak_queued = 0;
  /// The backoff hint (micros) the scheduler currently attaches to rejected
  /// and shed admissions — the same value RetryAfterMicrosFromStatus parses
  /// back out of those statuses. The single source of truth for the wire
  /// protocol's retry_after_micros field.
  uint64_t retry_after_micros = 0;
};

/// Parses the "retry-after-micros=<n>" hint carried in a status message —
/// appended by the scheduler to every kResourceExhausted admission status,
/// and by a follower's structured write refusal (kInvalidArgument naming the
/// primary). 0 when `status` carries no hint (not a retryable condition, or
/// a foreign error such as a query deadline). Keeping the hint in micros
/// end-to-end — config, status detail, stats, wire frame — means no layer
/// ever has to guess the unit.
uint64_t RetryAfterMicrosFromStatus(const Status& status);

/// Bounded admission with load shedding. One instance serves one Database;
/// Admit() is called on the query's own thread and blocks while the query
/// waits for a slot.
///
/// Rejection and shedding both return kResourceExhausted whose message ends
/// in "retry-after-micros=<hint>" — the serving layer's backpressure signal
/// (clients should back off roughly that long before resubmitting).
class QueryScheduler {
 public:
  /// RAII execution slot. Destroying (or Release()-ing) the ticket frees the
  /// slot and wakes one queued query. `admitted_seq` is the 1-based
  /// admission number — the logical clock the circuit breaker's cool-down
  /// counts in.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      scheduler_ = other.scheduler_;
      seq_ = other.seq_;
      other.scheduler_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool valid() const { return scheduler_ != nullptr; }
    uint64_t admitted_seq() const { return seq_; }
    void Release();

   private:
    friend class QueryScheduler;
    Ticket(QueryScheduler* scheduler, uint64_t seq)
        : scheduler_(scheduler), seq_(seq) {}

    QueryScheduler* scheduler_ = nullptr;
    uint64_t seq_ = 0;
  };

  explicit QueryScheduler(AdmissionConfig config = {});

  /// Blocks until the query is admitted, rejected, shed, or cancelled.
  /// `cancel` (optional, borrowed; must outlive the call) is polled while
  /// queued so a cancelled query leaves the queue promptly — pair it with
  /// Poke() from the cancelling thread.
  Result<Ticket> Admit(const CancelToken* cancel = nullptr);

  /// Non-blocking admission for background maintenance (the integrity
  /// scrubber): admits only when an execution slot is free *right now*,
  /// never queues. A failed try counts as a rejection — maintenance that
  /// loses the race simply skips its cycle instead of competing with
  /// queries for capacity.
  Result<Ticket> TryAdmit();

  /// Swaps the config. Queries already running keep their slots; queued
  /// queries re-evaluate against the new bounds at their next wake-up.
  void Configure(const AdmissionConfig& config);

  /// Wakes every queued query so it re-checks its cancel token / the new
  /// config. Cheap; safe from any thread.
  void Poke();

  AdmissionStats Stats() const;

  /// Total admissions so far — the circuit-breaker clock, monotone across
  /// Configure() calls.
  uint64_t admitted_total() const;

 private:
  void Release();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  AdmissionConfig config_;
  uint64_t admitted_seq_ = 0;
  AdmissionStats stats_;
};

/// Follower-read admission (DESIGN.md §13): a read-only replica decides per
/// query whether its catalog is fresh enough to serve. The replication
/// client publishes the follower's generation lag and the age of the last
/// primary heartbeat; queries check Admit() before taking a scheduler slot
/// and are shed with the standard kResourceExhausted + retry-after hint
/// when the configured staleness bound is exceeded.
///
/// A disconnected primary does NOT trip the default (unbounded) policy:
/// degrade-never-drop means a follower keeps serving its last consistent
/// catalog at any lag unless the operator opted into a bound.
class StalenessGate {
 public:
  struct Policy {
    /// Maximum generations the follower may trail the primary; 0 = no bound.
    uint64_t max_generation_lag = 0;
    /// Maximum age of the last heartbeat before reads shed; 0 = no bound.
    uint64_t max_heartbeat_age_micros = 0;
  };

  void Configure(const Policy& policy) {
    max_generation_lag_.store(policy.max_generation_lag,
                              std::memory_order_relaxed);
    max_heartbeat_age_micros_.store(policy.max_heartbeat_age_micros,
                                    std::memory_order_relaxed);
  }

  /// Publishes the follower's current staleness; called by the replication
  /// client on every applied record and heartbeat. `heartbeat_micros` is a
  /// steady-clock timestamp (micros since epoch of that clock); 0 = no
  /// heartbeat received yet this connection epoch.
  void Publish(uint64_t generation_lag, uint64_t heartbeat_micros) {
    generation_lag_.store(generation_lag, std::memory_order_relaxed);
    last_heartbeat_micros_.store(heartbeat_micros, std::memory_order_relaxed);
  }

  uint64_t generation_lag() const {
    return generation_lag_.load(std::memory_order_relaxed);
  }

  /// Age of the last heartbeat, in micros; UINT64_MAX when none arrived yet.
  uint64_t HeartbeatAgeMicros() const;

  /// Ok when the follower is fresh enough to serve a read under the current
  /// policy; kResourceExhausted with a "retry-after-micros=<n>" hint (the
  /// admission-status contract) otherwise.
  Status Admit() const;

 private:
  std::atomic<uint64_t> max_generation_lag_{0};
  std::atomic<uint64_t> max_heartbeat_age_micros_{0};
  std::atomic<uint64_t> generation_lag_{0};
  std::atomic<uint64_t> last_heartbeat_micros_{0};
};

/// Per-strategy circuit breaker for engine-fallback graceful degradation.
///
/// Each specialized τ engine (NoK, TwigStack, PathStack, binary joins) has a
/// slot; the naive navigational engine is the always-trusted fallback and is
/// never managed. A slot moves
///
///   kClosed --K consecutive faults--> kOpen
///   kOpen   --cool-down admissions--> kHalfOpen (exactly one probe runs)
///   kHalfOpen --probe succeeds--> kClosed / --probe faults--> kOpen
///
/// While a slot is open, MatchPattern routes the pattern straight to the
/// naive engine without attempting the quarantined one. The cool-down is
/// measured in *admitted queries* (QueryScheduler::Ticket::admitted_seq),
/// not wall-clock time, so breaker tests are deterministic: admit N queries
/// and the probe is due, regardless of how fast they ran.
class CircuitBreaker {
 public:
  struct Config {
    /// Consecutive retryable faults that open the breaker.
    uint32_t fault_threshold = 3;
    /// Admissions that must elapse after opening before a probe is let
    /// through.
    uint64_t cooldown_admissions = 32;
  };

  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Config config) : config_(config) {}

  /// May `strategy` run for the query admitted as `admitted_seq`? Open
  /// slots return false until the cool-down elapses, then admit exactly one
  /// caller as the half-open probe (concurrent queries keep falling back
  /// while the probe is in flight).
  bool Allow(PatternStrategy strategy, uint64_t admitted_seq);

  /// The engine completed a pattern without a retryable fault.
  void RecordSuccess(PatternStrategy strategy);

  /// The engine returned a retryable fault while running the query admitted
  /// as `admitted_seq`.
  void RecordFault(PatternStrategy strategy, uint64_t admitted_seq);

  State StateOf(PatternStrategy strategy) const;
  uint32_t ConsecutiveFaults(PatternStrategy strategy) const;

  /// Re-applies `config` and resets every slot to kClosed.
  void Configure(const Config& config);

  /// One line per non-closed slot (plus a summary), for `.stats admission`.
  std::string Render() const;

 private:
  struct Slot {
    State state = State::kClosed;
    uint32_t consecutive_faults = 0;
    uint64_t opened_seq = 0;   // admission number of the opening fault
    bool probe_in_flight = false;
  };
  static constexpr size_t kSlots = 5;  // one per PatternStrategy

  Slot& SlotOf(PatternStrategy strategy);
  const Slot& SlotOf(PatternStrategy strategy) const;

  Config config_;
  mutable std::mutex mu_;
  Slot slots_[kSlots];
};

std::string_view BreakerStateName(CircuitBreaker::State state);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_ADMISSION_H_
