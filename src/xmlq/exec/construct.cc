#include "xmlq/exec/construct.h"

#include "xmlq/exec/executor.h"

namespace xmlq::exec {

using algebra::Item;
using algebra::LogicalExpr;
using algebra::SchemaAttr;
using algebra::SchemaNode;
using algebra::SchemaNodeKind;
using algebra::Sequence;

xml::NodeId CopySubtree(const xml::Document& src, xml::NodeId node,
                        xml::Document* dst, xml::NodeId parent) {
  switch (src.Kind(node)) {
    case xml::NodeKind::kElement: {
      const xml::NodeId copy = dst->AddElement(parent, src.NameStr(node));
      for (xml::NodeId a = src.FirstAttr(node); a != xml::kNullNode;
           a = src.NextSibling(a)) {
        dst->AddAttribute(copy, src.NameStr(a), src.Text(a));
      }
      for (xml::NodeId c = src.FirstChild(node); c != xml::kNullNode;
           c = src.NextSibling(c)) {
        CopySubtree(src, c, dst, copy);
      }
      return copy;
    }
    case xml::NodeKind::kText:
      return dst->AddText(parent, src.Text(node));
    case xml::NodeKind::kComment:
      return dst->AddComment(parent, src.Text(node));
    case xml::NodeKind::kProcessingInstruction:
      return dst->AddProcessingInstruction(parent, src.NameStr(node),
                                           src.Text(node));
    case xml::NodeKind::kAttribute:
    case xml::NodeKind::kDocument:
      break;  // handled by callers
  }
  return xml::kNullNode;
}

namespace {

/// Instantiates schema-tree nodes into `dst`. Owned by one EvalConstruct
/// call; the expression evaluator is injected so placeholders can reference
/// FLWOR variables in scope.
class Instantiator {
 public:
  using EvalFn =
      std::function<Result<Sequence>(const LogicalExpr& slot_expr)>;

  Instantiator(const LogicalExpr& construct, xml::Document* dst, EvalFn eval)
      : construct_(construct), dst_(dst), eval_(std::move(eval)) {}

  Status Build(const SchemaNode& node, xml::NodeId parent) {
    switch (node.kind) {
      case SchemaNodeKind::kElement: {
        const xml::NodeId elem = dst_->AddElement(parent, node.label);
        for (const SchemaAttr& attr : node.attrs) {
          if (attr.expr == algebra::kNoExpr) {
            dst_->AddAttribute(elem, attr.name, attr.literal);
          } else {
            XMLQ_ASSIGN_OR_RETURN(Sequence value, EvalSlot(attr.expr));
            std::string text;
            for (size_t i = 0; i < value.size(); ++i) {
              if (i > 0) text.push_back(' ');
              text += value[i].StringValue();
            }
            dst_->AddAttribute(elem, attr.name, text);
          }
        }
        for (const SchemaNode& child : node.children) {
          XMLQ_RETURN_IF_ERROR(Build(child, elem));
        }
        return Status::Ok();
      }
      case SchemaNodeKind::kText:
        dst_->AddText(parent, node.literal);
        return Status::Ok();
      case SchemaNodeKind::kPlaceholder: {
        XMLQ_ASSIGN_OR_RETURN(Sequence value, EvalSlot(node.expr));
        return Splice(value, parent);
      }
      case SchemaNodeKind::kIf: {
        XMLQ_ASSIGN_OR_RETURN(Sequence cond, EvalSlot(node.expr));
        const bool truthy = !cond.empty() && cond[0].BooleanValue();
        if (truthy) {
          for (const SchemaNode& child : node.children) {
            XMLQ_RETURN_IF_ERROR(Build(child, parent));
          }
        }
        return Status::Ok();
      }
    }
    return Status::Internal("unknown schema node kind");
  }

 private:
  Result<Sequence> EvalSlot(algebra::ExprSlot slot) {
    if (slot < 0 ||
        static_cast<size_t>(slot) >= construct_.children.size()) {
      return Status::Internal("construction placeholder slot out of range");
    }
    return eval_(*construct_.children[slot]);
  }

  /// Splices a placeholder's value into the content of `parent`: node items
  /// are deep-copied, runs of atomic items become a single space-separated
  /// text node (XQuery content construction rules).
  Status Splice(const Sequence& value, xml::NodeId parent) {
    std::string pending;
    bool has_pending = false;
    auto flush = [&] {
      if (has_pending) {
        dst_->AddText(parent, pending);
        pending.clear();
        has_pending = false;
      }
    };
    for (const Item& item : value) {
      if (item.IsNode()) {
        const algebra::NodeRef& ref = item.node();
        if (ref.doc->Kind(ref.id) == xml::NodeKind::kAttribute) {
          // An attribute node in content attaches to the parent element.
          flush();
          dst_->AddAttribute(parent, ref.doc->NameStr(ref.id),
                             ref.doc->Text(ref.id));
          continue;
        }
        if (ref.doc->Kind(ref.id) == xml::NodeKind::kDocument) {
          flush();
          for (xml::NodeId c = ref.doc->FirstChild(ref.id);
               c != xml::kNullNode; c = ref.doc->NextSibling(c)) {
            CopySubtree(*ref.doc, c, dst_, parent);
          }
          continue;
        }
        flush();
        CopySubtree(*ref.doc, ref.id, dst_, parent);
      } else {
        if (has_pending) pending.push_back(' ');
        pending += item.StringValue();
        has_pending = true;
      }
    }
    flush();
    return Status::Ok();
  }

  const LogicalExpr& construct_;
  xml::Document* dst_;
  EvalFn eval_;
};

}  // namespace

Result<Sequence> Executor::EvalConstruct(const LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out) {
  if (expr.schema == nullptr) {
    return Status::Internal("Construct node without a schema tree");
  }
  const SchemaNode& root = expr.schema->root();
  if (root.kind != SchemaNodeKind::kElement) {
    return Status::Unsupported(
        "γ requires an element constructor at the schema root");
  }
  auto doc = std::make_unique<xml::Document>();
  Instantiator inst(expr, doc.get(),
                    [this, scope, out](const LogicalExpr& slot_expr) {
                      return Eval(slot_expr, scope, out);
                    });
  XMLQ_RETURN_IF_ERROR(inst.Build(root, doc->root()));
  const xml::NodeId root_elem = doc->RootElement();
  Sequence result{Item(algebra::NodeRef{doc.get(), root_elem})};
  out->constructed.push_back(std::move(doc));
  return result;
}

}  // namespace xmlq::exec
