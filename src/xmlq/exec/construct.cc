#include "xmlq/exec/construct.h"

#include "xmlq/exec/executor.h"

namespace xmlq::exec {

using algebra::Item;
using algebra::LogicalExpr;
using algebra::SchemaAttr;
using algebra::SchemaNode;
using algebra::SchemaNodeKind;
using algebra::Sequence;

xml::NodeId CopySubtree(const xml::Document& src, xml::NodeId node,
                        xml::Document* dst, xml::NodeId parent,
                        const ResourceGuard* guard) {
  // Iterative preorder copy: the source subtree can be arbitrarily deep.
  // Children are pushed in reverse so siblings are appended in order.
  constexpr uint64_t kNodeOverhead = 48;  // rough per-node index cost
  struct Task {
    xml::NodeId src_node;
    xml::NodeId dst_parent;
  };
  xml::NodeId result = xml::kNullNode;
  bool first = true;
  std::vector<Task> stack;
  std::vector<xml::NodeId> children;  // scratch, reused across iterations
  stack.push_back({node, parent});
  while (!stack.empty()) {
    const Task t = stack.back();
    stack.pop_back();
    if (guard != nullptr && guard->Tick(1)) break;
    xml::NodeId copy = xml::kNullNode;
    uint64_t bytes = kNodeOverhead;
    switch (src.Kind(t.src_node)) {
      case xml::NodeKind::kElement: {
        copy = dst->AddElement(t.dst_parent, src.NameStr(t.src_node));
        bytes += src.NameStr(t.src_node).size();
        for (xml::NodeId a = src.FirstAttr(t.src_node); a != xml::kNullNode;
             a = src.NextSibling(a)) {
          dst->AddAttribute(copy, src.NameStr(a), src.Text(a));
          bytes += kNodeOverhead + src.NameStr(a).size() + src.Text(a).size();
        }
        children.clear();
        for (xml::NodeId c = src.FirstChild(t.src_node); c != xml::kNullNode;
             c = src.NextSibling(c)) {
          children.push_back(c);
        }
        for (size_t i = children.size(); i-- > 0;) {
          stack.push_back({children[i], copy});
        }
        break;
      }
      case xml::NodeKind::kText:
        copy = dst->AddText(t.dst_parent, src.Text(t.src_node));
        bytes += src.Text(t.src_node).size();
        break;
      case xml::NodeKind::kComment:
        copy = dst->AddComment(t.dst_parent, src.Text(t.src_node));
        bytes += src.Text(t.src_node).size();
        break;
      case xml::NodeKind::kProcessingInstruction:
        copy = dst->AddProcessingInstruction(
            t.dst_parent, src.NameStr(t.src_node), src.Text(t.src_node));
        bytes += src.NameStr(t.src_node).size() + src.Text(t.src_node).size();
        break;
      case xml::NodeKind::kAttribute:
      case xml::NodeKind::kDocument:
        continue;  // handled by callers
    }
    if (first) {
      result = copy;
      first = false;
    }
    if (guard != nullptr && !guard->ChargeMemory(bytes).ok()) break;
  }
  return result;
}

namespace {

/// Instantiates schema-tree nodes into `dst`. Owned by one EvalConstruct
/// call; the expression evaluator is injected so placeholders can reference
/// FLWOR variables in scope.
class Instantiator {
 public:
  using EvalFn =
      std::function<Result<Sequence>(const LogicalExpr& slot_expr)>;

  Instantiator(const LogicalExpr& construct, xml::Document* dst,
               const ResourceGuard* guard, EvalFn eval)
      : construct_(construct),
        dst_(dst),
        guard_(guard),
        eval_(std::move(eval)) {}

  Status Build(const SchemaNode& node, xml::NodeId parent) {
    XMLQ_GUARD_TICK(guard_, 1);
    switch (node.kind) {
      case SchemaNodeKind::kElement: {
        const xml::NodeId elem = dst_->AddElement(parent, node.label);
        XMLQ_GUARD_CHARGE(guard_, 48 + node.label.size());
        for (const SchemaAttr& attr : node.attrs) {
          if (attr.expr == algebra::kNoExpr) {
            dst_->AddAttribute(elem, attr.name, attr.literal);
          } else {
            XMLQ_ASSIGN_OR_RETURN(Sequence value, EvalSlot(attr.expr));
            std::string text;
            for (size_t i = 0; i < value.size(); ++i) {
              if (i > 0) text.push_back(' ');
              text += value[i].StringValue();
            }
            dst_->AddAttribute(elem, attr.name, text);
          }
        }
        for (const SchemaNode& child : node.children) {
          XMLQ_RETURN_IF_ERROR(Build(child, elem));
        }
        return Status::Ok();
      }
      case SchemaNodeKind::kText:
        dst_->AddText(parent, node.literal);
        return Status::Ok();
      case SchemaNodeKind::kPlaceholder: {
        XMLQ_ASSIGN_OR_RETURN(Sequence value, EvalSlot(node.expr));
        return Splice(value, parent);
      }
      case SchemaNodeKind::kIf: {
        XMLQ_ASSIGN_OR_RETURN(Sequence cond, EvalSlot(node.expr));
        const bool truthy = !cond.empty() && cond[0].BooleanValue();
        if (truthy) {
          for (const SchemaNode& child : node.children) {
            XMLQ_RETURN_IF_ERROR(Build(child, parent));
          }
        }
        return Status::Ok();
      }
    }
    return Status::Internal("unknown schema node kind");
  }

 private:
  Result<Sequence> EvalSlot(algebra::ExprSlot slot) {
    if (slot < 0 ||
        static_cast<size_t>(slot) >= construct_.children.size()) {
      return Status::Internal("construction placeholder slot out of range");
    }
    return eval_(*construct_.children[slot]);
  }

  /// Splices a placeholder's value into the content of `parent`: node items
  /// are deep-copied, runs of atomic items become a single space-separated
  /// text node (XQuery content construction rules).
  Status Splice(const Sequence& value, xml::NodeId parent) {
    std::string pending;
    bool has_pending = false;
    auto flush = [&] {
      if (has_pending) {
        dst_->AddText(parent, pending);
        pending.clear();
        has_pending = false;
      }
    };
    for (const Item& item : value) {
      if (item.IsNode()) {
        const algebra::NodeRef& ref = item.node();
        if (ref.doc->Kind(ref.id) == xml::NodeKind::kAttribute) {
          // An attribute node in content attaches to the parent element.
          flush();
          dst_->AddAttribute(parent, ref.doc->NameStr(ref.id),
                             ref.doc->Text(ref.id));
          continue;
        }
        if (ref.doc->Kind(ref.id) == xml::NodeKind::kDocument) {
          flush();
          for (xml::NodeId c = ref.doc->FirstChild(ref.id);
               c != xml::kNullNode; c = ref.doc->NextSibling(c)) {
            CopySubtree(*ref.doc, c, dst_, parent, guard_);
            XMLQ_GUARD_TICK(guard_, 0);  // the copy stops early on a trip
          }
          continue;
        }
        flush();
        CopySubtree(*ref.doc, ref.id, dst_, parent, guard_);
        XMLQ_GUARD_TICK(guard_, 0);  // the copy stops early on a trip
      } else {
        if (has_pending) pending.push_back(' ');
        pending += item.StringValue();
        has_pending = true;
      }
    }
    flush();
    return Status::Ok();
  }

  const LogicalExpr& construct_;
  xml::Document* dst_;
  const ResourceGuard* guard_;
  EvalFn eval_;
};

}  // namespace

Result<Sequence> Executor::EvalConstruct(const LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out) {
  if (expr.schema == nullptr) {
    return Status::Internal("Construct node without a schema tree");
  }
  const SchemaNode& root = expr.schema->root();
  if (root.kind != SchemaNodeKind::kElement) {
    return Status::Unsupported(
        "γ requires an element constructor at the schema root");
  }
  auto doc = std::make_unique<xml::Document>();
  Instantiator inst(expr, doc.get(), context_->guard,
                    [this, scope, out](const LogicalExpr& slot_expr) {
                      return Eval(slot_expr, scope, out);
                    });
  XMLQ_RETURN_IF_ERROR(inst.Build(root, doc->root()));
  const xml::NodeId root_elem = doc->RootElement();
  Sequence result{Item(algebra::NodeRef{doc.get(), root_elem})};
  out->constructed.push_back(std::move(doc));
  return result;
}

}  // namespace xmlq::exec
