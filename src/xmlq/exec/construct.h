#ifndef XMLQ_EXEC_CONSTRUCT_H_
#define XMLQ_EXEC_CONSTRUCT_H_

#include "xmlq/xml/document.h"

namespace xmlq::exec {

/// Deep-copies the subtree rooted at `node` (an element, text, comment or
/// PI) of `src` as a new last child of `parent` in `dst`. Returns the copy's
/// id. Used by the γ (construction) operator to splice query results into
/// the output document.
xml::NodeId CopySubtree(const xml::Document& src, xml::NodeId node,
                        xml::Document* dst, xml::NodeId parent);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_CONSTRUCT_H_
