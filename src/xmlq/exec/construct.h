#ifndef XMLQ_EXEC_CONSTRUCT_H_
#define XMLQ_EXEC_CONSTRUCT_H_

#include "xmlq/base/limits.h"
#include "xmlq/xml/document.h"

namespace xmlq::exec {

/// Deep-copies the subtree rooted at `node` (an element, text, comment or
/// PI) of `src` as a new last child of `parent` in `dst`. Returns the copy's
/// id. Used by the γ (construction) operator to splice query results into
/// the output document.
///
/// The walk is iterative (explicit stack), so arbitrarily deep subtrees do
/// not overflow the call stack. `guard` (optional) is ticked per copied node
/// and charged the approximate bytes materialized; on a trip the copy stops
/// early (partial subtree) and the caller must check the guard's sticky
/// status before using the result.
xml::NodeId CopySubtree(const xml::Document& src, xml::NodeId node,
                        xml::Document* dst, xml::NodeId parent,
                        const ResourceGuard* guard = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_CONSTRUCT_H_
