#include <algorithm>
#include <deque>
#include <functional>

#include "xmlq/base/strings.h"
#include "xmlq/exec/executor.h"

namespace xmlq::exec {

using algebra::Env;
using algebra::FlworClause;
using algebra::Item;
using algebra::LogicalExpr;
using algebra::Sequence;

namespace {

/// Sort key for one order-by clause: numeric when both sides parse as
/// numbers, string otherwise.
struct SortKey {
  std::string text;
  double number = 0;
  bool is_number = false;
  bool descending = false;
};

bool KeyLess(const std::vector<SortKey>& a, const std::vector<SortKey>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    int cmp;
    if (a[i].is_number && b[i].is_number) {
      cmp = a[i].number < b[i].number ? -1 : (a[i].number > b[i].number ? 1 : 0);
    } else {
      cmp = a[i].text.compare(b[i].text);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    if (cmp != 0) return a[i].descending ? cmp > 0 : cmp < 0;
  }
  return false;
}

}  // namespace

/// Builds the layered Env of Definition 3 for a FLWOR expression by a
/// depth-first expansion of its for/let/where clauses (paper Example 1:
/// the nested list schema ($a,($b,$c,$d,($e))) materialized as a forest).
class FlworEnvBuilder {
 public:
  FlworEnvBuilder(Executor* exec, const LogicalExpr& flwor,
                  const Executor::Scope* outer, QueryResult* out,
                  const ResourceGuard* guard)
      : exec_(exec), flwor_(flwor), outer_(outer), out_(out), guard_(guard) {}

  Status Build(Env* env) {
    layer_of_.assign(flwor_.clauses.size(), -1);
    for (size_t i = 0; i < flwor_.clauses.size(); ++i) {
      const FlworClause& c = flwor_.clauses[i];
      switch (c.kind) {
        case FlworClause::Kind::kFor:
          layer_of_[i] = env->AddLayer(c.var, Env::LayerKind::kFor);
          break;
        case FlworClause::Kind::kLet:
          layer_of_[i] = env->AddLayer(c.var, Env::LayerKind::kLet);
          break;
        case FlworClause::Kind::kWhere:
          layer_of_[i] = env->AddLayer("", Env::LayerKind::kWhere);
          break;
        case FlworClause::Kind::kOrderBy:
          break;  // order-by sorts tuples; it binds nothing
      }
    }
    return Extend(0, Env::kNoParent, outer_, env);
  }

 private:
  Status Extend(size_t ci, uint32_t parent, const Executor::Scope* scope,
                Env* env) {
    // Skip non-binding clauses.
    while (ci < flwor_.clauses.size() &&
           flwor_.clauses[ci].kind == FlworClause::Kind::kOrderBy) {
      ++ci;
    }
    if (ci >= flwor_.clauses.size()) return Status::Ok();
    const FlworClause& clause = flwor_.clauses[ci];
    const LogicalExpr& clause_expr = *flwor_.children[clause.expr_child];
    auto value = exec_->Eval(clause_expr, scope, out_);
    if (!value.ok()) return value.status();

    switch (clause.kind) {
      case FlworClause::Kind::kFor: {
        for (Item& item : *value) {
          XMLQ_GUARD_TICK(guard_, 1);
          values_.push_back(Sequence{std::move(item)});
          const uint32_t idx =
              env->AddBinding(layer_of_[ci], parent, values_.back());
          Executor::Scope s{scope, clause.var, &values_.back()};
          XMLQ_RETURN_IF_ERROR(Extend(ci + 1, idx, &s, env));
        }
        return Status::Ok();
      }
      case FlworClause::Kind::kLet: {
        values_.push_back(std::move(*value));
        const uint32_t idx =
            env->AddBinding(layer_of_[ci], parent, values_.back());
        Executor::Scope s{scope, clause.var, &values_.back()};
        return Extend(ci + 1, idx, &s, env);
      }
      case FlworClause::Kind::kWhere: {
        const bool keep = [&] {
          const Sequence& v = *value;
          if (v.empty()) return false;
          if (v.size() == 1) return v[0].BooleanValue();
          return true;
        }();
        const uint32_t idx = env->AddBinding(layer_of_[ci], parent,
                                             Sequence{Item(keep)});
        if (!keep) return Status::Ok();  // prune this branch
        return Extend(ci + 1, idx, scope, env);
      }
      case FlworClause::Kind::kOrderBy:
        break;
    }
    return Status::Internal("unreachable FLWOR clause kind");
  }

  Executor* exec_;
  const LogicalExpr& flwor_;
  const Executor::Scope* outer_;
  QueryResult* out_;
  const ResourceGuard* guard_;
  std::vector<int> layer_of_;
  // Stable storage for binding values (the Env keeps copies; scopes point
  // here so later insertions cannot invalidate them).
  std::deque<Sequence> values_;

  friend class Executor;
};

Result<Sequence> Executor::EvalFlwor(const LogicalExpr& expr,
                                     const Scope* scope, QueryResult* out) {
  if (expr.children.empty()) {
    return Status::Internal("FLWOR node without a return expression");
  }
  const LogicalExpr& return_expr = *expr.children.back();
  std::vector<const FlworClause*> orderbys;
  for (const FlworClause& c : expr.clauses) {
    if (c.kind == FlworClause::Kind::kOrderBy) orderbys.push_back(&c);
  }

  struct TupleOutput {
    std::vector<SortKey> keys;
    Sequence value;
  };
  std::vector<TupleOutput> outputs;
  Status failure = Status::Ok();

  // Evaluates order-by keys + the return expression under `tuple_scope`.
  auto eval_tuple = [&](const Scope* tuple_scope) {
    if (context_->guard != nullptr && context_->guard->Tick(1)) {
      failure = context_->guard->status();
      return;
    }
    TupleOutput to;
    for (const FlworClause* ob : orderbys) {
      auto key = Eval(*expr.children[ob->expr_child], tuple_scope, out);
      if (!key.ok()) {
        failure = key.status();
        return;
      }
      SortKey sk;
      sk.descending = ob->descending;
      sk.text = key->empty() ? std::string() : (*key)[0].StringValue();
      if (auto num = ParseDouble(sk.text)) {
        sk.is_number = true;
        sk.number = *num;
      }
      to.keys.push_back(std::move(sk));
    }
    auto value = Eval(return_expr, tuple_scope, out);
    if (!value.ok()) {
      failure = value.status();
      return;
    }
    to.value = std::move(*value);
    outputs.push_back(std::move(to));
  };

  if (context_->flwor_mode == FlworMode::kEnv) {
    // Materialize the Definition-3 environment, then evaluate the return
    // expression once per surviving total variable binding.
    Env env;
    FlworEnvBuilder builder(this, expr, scope, out, context_->guard);
    XMLQ_RETURN_IF_ERROR(builder.Build(&env));
    env.ForEachTuple([&](const Env::Tuple& tuple) {
      if (!failure.ok()) return;
      std::vector<Scope> chain;
      chain.reserve(env.LayerCount());
      const Scope* cur = scope;
      for (size_t l = 0; l < env.LayerCount(); ++l) {
        if (env.layer(static_cast<int>(l)).kind == Env::LayerKind::kWhere) {
          continue;
        }
        chain.push_back(
            Scope{cur, env.layer(static_cast<int>(l)).var, tuple[l]});
        cur = &chain.back();
      }
      eval_tuple(cur);
    });
    XMLQ_RETURN_IF_ERROR(failure);
  } else {
    // Pipelined nested-loop evaluation (no Env materialization).
    std::deque<Sequence> values;
    std::function<Status(size_t, const Scope*)> recurse =
        [&](size_t ci, const Scope* cur) -> Status {
      while (ci < expr.clauses.size() &&
             expr.clauses[ci].kind == FlworClause::Kind::kOrderBy) {
        ++ci;
      }
      if (ci >= expr.clauses.size()) {
        eval_tuple(cur);
        return failure;
      }
      const FlworClause& clause = expr.clauses[ci];
      XMLQ_ASSIGN_OR_RETURN(
          Sequence value,
          Eval(*expr.children[clause.expr_child], cur, out));
      switch (clause.kind) {
        case FlworClause::Kind::kFor:
          for (Item& item : value) {
            XMLQ_GUARD_TICK(context_->guard, 1);
            values.push_back(Sequence{std::move(item)});
            Scope s{cur, clause.var, &values.back()};
            XMLQ_RETURN_IF_ERROR(recurse(ci + 1, &s));
          }
          return Status::Ok();
        case FlworClause::Kind::kLet: {
          values.push_back(std::move(value));
          Scope s{cur, clause.var, &values.back()};
          return recurse(ci + 1, &s);
        }
        case FlworClause::Kind::kWhere: {
          const bool keep = [&] {
            if (value.empty()) return false;
            if (value.size() == 1) return value[0].BooleanValue();
            return true;
          }();
          return keep ? recurse(ci + 1, cur) : Status::Ok();
        }
        case FlworClause::Kind::kOrderBy:
          break;
      }
      return Status::Internal("unreachable FLWOR clause kind");
    };
    XMLQ_RETURN_IF_ERROR(recurse(0, scope));
    XMLQ_RETURN_IF_ERROR(failure);
  }

  if (!orderbys.empty()) {
    std::stable_sort(outputs.begin(), outputs.end(),
                     [](const TupleOutput& a, const TupleOutput& b) {
                       return KeyLess(a.keys, b.keys);
                     });
  }
  Sequence result;
  for (TupleOutput& to : outputs) {
    for (Item& item : to.value) result.push_back(std::move(item));
  }
  return result;
}

}  // namespace xmlq::exec
