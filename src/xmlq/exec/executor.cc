#include "xmlq/exec/executor.h"

#include <algorithm>
#include <chrono>

#include "xmlq/exec/admission.h"
#include "xmlq/exec/hybrid.h"
#include "xmlq/exec/op_stats.h"
#include "xmlq/exec/naive_nav.h"
#include "xmlq/exec/parallel_match.h"
#include "xmlq/exec/path_stack.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/exec/twig_stack.h"

namespace xmlq::exec {

using algebra::Item;
using algebra::LogicalExpr;
using algebra::LogicalOp;
using algebra::NodeRef;
using algebra::Sequence;

std::string_view PatternStrategyName(PatternStrategy strategy) {
  switch (strategy) {
    case PatternStrategy::kNok:
      return "nok";
    case PatternStrategy::kTwigStack:
      return "twigstack";
    case PatternStrategy::kPathStack:
      return "pathstack";
    case PatternStrategy::kBinaryJoin:
      return "binaryjoin";
    case PatternStrategy::kNaive:
      return "naive";
  }
  return "unknown";
}

Result<QueryResult> Executor::Evaluate(const LogicalExpr& plan) {
  QueryResult out;
  XMLQ_ASSIGN_OR_RETURN(out.value, Eval(plan, nullptr, &out));
  return out;
}

Result<Sequence> Executor::EvaluateWithVars(
    const LogicalExpr& expr, const std::map<std::string, Sequence>& vars,
    QueryResult* out) {
  std::vector<Scope> scopes;
  scopes.reserve(vars.size());
  const Scope* parent = nullptr;
  for (const auto& [name, value] : vars) {
    scopes.push_back(Scope{parent, name, &value});
    parent = &scopes.back();
  }
  return Eval(expr, parent, out);
}

Result<const IndexedDocument*> Executor::LookupDocument(
    std::string_view name) const {
  const auto it = context_->documents.find(name);
  if (it == context_->documents.end()) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not loaded");
  }
  return &it->second;
}

Result<const IndexedDocument*> Executor::DocumentOf(
    const xml::Document* dom) const {
  for (const auto& [name, doc] : context_->documents) {
    if (doc.dom == dom) return &doc;
  }
  return Status::Internal("node belongs to an unregistered document");
}

const Sequence* Executor::LookupVar(const Scope* scope,
                                    std::string_view name) const {
  for (const Scope* s = scope; s != nullptr; s = s->parent) {
    if (s->name == name) return s->value;
  }
  return nullptr;
}

Result<NodeList> Executor::MatchPattern(const IndexedDocument& doc,
                                        const algebra::PatternGraph& pattern,
                                        OpStats* stats) const {
  const ResourceGuard* guard = context_->guard;
  const PatternStrategy chosen = context_->strategy;
  const ParallelSpec& par = context_->par;
  // Each stream engine first offers the pattern to its morsel-parallel
  // driver; nullopt means ineligible (or parallelism off) and the serial
  // engine runs — including reproducing its canonical validation errors.
  auto run = [&](PatternStrategy strategy) -> Result<NodeList> {
    switch (strategy) {
      case PatternStrategy::kNok:
        return HybridMatch(doc, pattern, guard, stats, &par);
      case PatternStrategy::kTwigStack: {
        if (auto r = ParallelTwigStackMatch(doc, pattern, par, guard, stats)) {
          return std::move(*r);
        }
        return TwigStackMatch(doc, pattern, guard, stats);
      }
      case PatternStrategy::kPathStack: {
        bool linear = true;
        for (algebra::VertexId v = 0; v < pattern.VertexCount(); ++v) {
          if (pattern.vertex(v).children.size() > 1) linear = false;
        }
        if (linear) {
          if (auto r =
                  ParallelPathStackMatch(doc, pattern, par, guard, stats)) {
            return std::move(*r);
          }
          return PathStackMatch(doc, pattern, guard, stats);
        }
        if (auto r = ParallelTwigStackMatch(doc, pattern, par, guard, stats)) {
          return std::move(*r);
        }
        return TwigStackMatch(doc, pattern, guard, stats);
      }
      case PatternStrategy::kBinaryJoin: {
        if (auto r =
                ParallelBinaryJoinPlanMatch(doc, pattern, par, guard, stats)) {
          return std::move(*r);
        }
        return BinaryJoinPlanMatch(doc, pattern, {}, nullptr, guard, stats);
      }
      case PatternStrategy::kNaive:
        return NaiveMatchPattern(*doc.dom, pattern, guard, stats);
    }
    return Status::Internal("unknown pattern strategy");
  };
  // Quarantine check: a breaker-opened engine is not even attempted; the
  // pattern runs on the always-trusted naive engine outright.
  if (chosen != PatternStrategy::kNaive && context_->breaker != nullptr &&
      !context_->breaker->Allow(chosen, context_->admitted_seq)) {
    if (FallbackInfo* info = context_->fallback;
        info != nullptr && !info->Degraded()) {
      info->quarantined = true;
      info->from_strategy = PatternStrategyName(chosen);
      info->reason = "circuit breaker open";
    }
    return run(PatternStrategy::kNaive);
  }
  auto result = run(chosen);
  if (result.ok()) {
    if (chosen != PatternStrategy::kNaive && context_->breaker != nullptr) {
      context_->breaker->RecordSuccess(chosen);
    }
    return result;
  }
  if (chosen == PatternStrategy::kNaive) return result;
  const StatusCode code = result.status().code();
  if (code == StatusCode::kUnsupported) {
    // Patterns outside a specialized engine's subset (e.g. following-sibling
    // arcs) always have the navigational evaluator as a safety net. This is
    // a capability gap, not a fault: the breaker does not count it.
    return NaiveMatchPattern(*doc.dom, pattern, guard, stats);
  }
  if (code == StatusCode::kInternal) {
    // Retryable fault (an invariant trip or an injected XMLQ_FAULT): count
    // it against the engine and retry the pattern once on the naive engine.
    if (context_->breaker != nullptr) {
      context_->breaker->RecordFault(chosen, context_->admitted_seq);
    }
    auto retry = NaiveMatchPattern(*doc.dom, pattern, guard, stats);
    if (retry.ok()) {
      if (FallbackInfo* info = context_->fallback;
          info != nullptr && !info->Degraded()) {
        info->engine_downgraded = true;
        info->from_strategy = PatternStrategyName(chosen);
        info->reason = result.status().message();
      }
    }
    return retry;
  }
  // Resource exhaustion, cancellation, bad input: not the engine's fault —
  // surface unchanged.
  return result;
}

OpStats* Executor::StatsFor(const LogicalExpr& expr) const {
  if (context_->profile == nullptr) return nullptr;
  ProfileNode* node = context_->profile->NodeFor(&expr);
  return node == nullptr ? nullptr : &node->stats;
}

Result<Sequence> Executor::Eval(const LogicalExpr& expr, const Scope* scope,
                                QueryResult* out) {
  // The hot path: no profile attached means not a single extra branch
  // beyond this nullptr check per operator evaluation.
  if (context_->profile == nullptr) return EvalDispatch(expr, scope, out);
  ProfileNode* node = context_->profile->NodeFor(&expr);
  if (node == nullptr) return EvalDispatch(expr, scope, out);
  const auto begin = std::chrono::steady_clock::now();
  auto result = EvalDispatch(expr, scope, out);
  node->stats.wall_nanos += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
  ++node->stats.invocations;
  if (result.ok()) node->stats.output_rows += result->size();
  return result;
}

Result<Sequence> Executor::EvalDispatch(const LogicalExpr& expr,
                                        const Scope* scope,
                                        QueryResult* out) {
  // One step per operator evaluation; per-item costs are charged inside the
  // operator bodies. Also the unwind point once the guard has tripped.
  XMLQ_GUARD_TICK(context_->guard, 1);
  switch (expr.op) {
    case LogicalOp::kDocScan: {
      XMLQ_ASSIGN_OR_RETURN(const IndexedDocument* doc,
                            LookupDocument(expr.str));
      return Sequence{Item(NodeRef{doc->dom, doc->dom->root()})};
    }
    case LogicalOp::kLiteral:
      return Sequence{expr.literal};
    case LogicalOp::kVarRef: {
      const Sequence* value = LookupVar(scope, expr.str);
      if (value == nullptr) {
        return Status::NotFound("unbound variable $" + expr.str);
      }
      return *value;
    }
    case LogicalOp::kSelectTag: {
      XMLQ_ASSIGN_OR_RETURN(Sequence input,
                            Eval(*expr.children[0], scope, out));
      XMLQ_GUARD_TICK(context_->guard, input.size());
      Sequence result;
      for (const Item& item : input) {
        if (item.IsNode() &&
            item.node().doc->IsElement(item.node().id) &&
            item.node().doc->NameStr(item.node().id) == expr.str) {
          result.push_back(item);
        }
      }
      return result;
    }
    case LogicalOp::kSelectValue: {
      XMLQ_ASSIGN_OR_RETURN(Sequence input,
                            Eval(*expr.children[0], scope, out));
      XMLQ_GUARD_TICK(context_->guard, input.size());
      OpStats* stats = StatsFor(expr);
      Sequence result;
      for (const Item& item : input) {
        const std::string value = item.StringValue();
        if (stats != nullptr) stats->bytes_touched += value.size();
        if (expr.predicate.Eval(value)) result.push_back(item);
      }
      return result;
    }
    case LogicalOp::kNavigate:
      return EvalNavigate(expr, scope, out);
    case LogicalOp::kStructuralJoin:
      return EvalStructuralJoin(expr, scope, out);
    case LogicalOp::kValueJoin:
      return EvalValueJoin(expr, scope, out);
    case LogicalOp::kTreePattern:
      return EvalTreePattern(expr, scope, out);
    case LogicalOp::kPatternFilter: {
      if (expr.pattern == nullptr) {
        return Status::Internal("PatternFilter node without a filter graph");
      }
      XMLQ_ASSIGN_OR_RETURN(Sequence input,
                            Eval(*expr.children[0], scope, out));
      OpStats* stats = StatsFor(expr);
      Sequence result;
      for (const Item& item : input) {
        XMLQ_GUARD_TICK(context_->guard, 1);
        if (!item.IsNode()) continue;
        if (MatchesFilter(*item.node().doc, item.node().id, *expr.pattern,
                          stats)) {
          result.push_back(item);
        }
      }
      return result;
    }
    case LogicalOp::kConstruct:
      return EvalConstruct(expr, scope, out);
    case LogicalOp::kFlwor:
      return EvalFlwor(expr, scope, out);
    case LogicalOp::kSequence: {
      Sequence result;
      for (const auto& child : expr.children) {
        XMLQ_ASSIGN_OR_RETURN(Sequence part, Eval(*child, scope, out));
        XMLQ_GUARD_TICK(context_->guard, part.size());
        for (Item& item : part) result.push_back(std::move(item));
      }
      return result;
    }
    case LogicalOp::kBinary:
      return EvalBinary(expr, scope, out);
    case LogicalOp::kFunction:
      return EvalFunction(expr, scope, out);
    case LogicalOp::kDocOrderDedup: {
      XMLQ_ASSIGN_OR_RETURN(Sequence input,
                            Eval(*expr.children[0], scope, out));
      algebra::SortDocOrderDedup(&input);
      return input;
    }
  }
  return Status::Internal("unknown logical operator");
}

Result<Sequence> Executor::EvalNavigate(const LogicalExpr& expr,
                                        const Scope* scope,
                                        QueryResult* out) {
  XMLQ_ASSIGN_OR_RETURN(Sequence input, Eval(*expr.children[0], scope, out));
  // Build a transient vertex describing the step.
  algebra::PatternVertex vertex;
  vertex.label = expr.str.empty() ? "*" : expr.str;
  vertex.is_attribute = expr.is_attribute;
  vertex.incoming_axis = expr.axis;
  const ResourceGuard* guard = context_->guard;
  OpStats* stats = StatsFor(expr);
  Sequence result;
  for (const Item& item : input) {
    XMLQ_GUARD_TICK(guard, 1);
    if (!item.IsNode()) continue;
    const xml::Document* doc = item.node().doc;
    for (xml::NodeId id :
         AxisStep(*doc, item.node().id, vertex, guard, stats)) {
      result.push_back(Item(NodeRef{doc, id}));
    }
    // AxisStep stops early on a trip; surface the sticky error here.
    XMLQ_GUARD_TICK(guard, 0);
  }
  XMLQ_GUARD_CHARGE(guard, result.size() * sizeof(Item));
  algebra::SortDocOrderDedup(&result);
  return result;
}

Result<Sequence> Executor::EvalStructuralJoin(const LogicalExpr& expr,
                                              const Scope* scope,
                                              QueryResult* out) {
  XMLQ_ASSIGN_OR_RETURN(Sequence left, Eval(*expr.children[0], scope, out));
  XMLQ_ASSIGN_OR_RETURN(Sequence right, Eval(*expr.children[1], scope, out));
  // Locate the (single) document both sides live in.
  const xml::Document* dom = nullptr;
  for (const Item& item : left) {
    if (item.IsNode()) {
      dom = item.node().doc;
      break;
    }
  }
  if (dom == nullptr) return Sequence{};
  XMLQ_ASSIGN_OR_RETURN(const IndexedDocument* doc, DocumentOf(dom));
  const ResourceGuard* guard = context_->guard;
  OpStats* stats = StatsFor(expr);
  XMLQ_GUARD_TICK(guard, left.size() + right.size());
  const NodeList anc = ToNodeList(*dom, left);
  const NodeList desc = ToNodeList(*dom, right);
  const bool parent_child = expr.axis == algebra::Axis::kChild ||
                            expr.axis == algebra::Axis::kAttribute;
  const NodeList joined =
      expr.return_ancestor
          ? StructuralSemiJoinAnc(ToRegions(*doc->regions, anc, stats),
                                  ToRegions(*doc->regions, desc, stats),
                                  parent_child, guard, stats)
          : StructuralSemiJoinDesc(ToRegions(*doc->regions, anc, stats),
                                   ToRegions(*doc->regions, desc, stats),
                                   parent_child, guard, stats);
  // The semi-joins stop early on a trip; surface the sticky error here.
  XMLQ_GUARD_TICK(guard, 0);
  return ToSequence(*dom, joined);
}

Result<Sequence> Executor::EvalValueJoin(const LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out) {
  XMLQ_ASSIGN_OR_RETURN(Sequence left, Eval(*expr.children[0], scope, out));
  XMLQ_ASSIGN_OR_RETURN(Sequence right, Eval(*expr.children[1], scope, out));
  // ⋈v semi-join semantics: keep left items whose string-value compares
  // true against at least one right item.
  const ResourceGuard* guard = context_->guard;
  OpStats* stats = StatsFor(expr);
  XMLQ_GUARD_TICK(guard, right.size());
  std::vector<std::string> right_values;
  right_values.reserve(right.size());
  for (const Item& item : right) {
    right_values.push_back(item.StringValue());
    if (stats != nullptr) stats->bytes_touched += right_values.back().size();
  }
  Sequence result;
  for (const Item& item : left) {
    // The nested-loop comparison is the engine's only quadratic operator;
    // charge its true per-row cost so small step budgets bite here.
    XMLQ_GUARD_TICK(guard, right_values.size() + 1);
    algebra::ValuePredicate pred;
    pred.op = expr.predicate.op;
    pred.numeric = expr.predicate.numeric;
    const std::string value = item.StringValue();
    if (stats != nullptr) stats->bytes_touched += value.size();
    bool matched = false;
    for (const std::string& rv : right_values) {
      pred.literal = rv;
      if (pred.Eval(value)) {
        matched = true;
        break;
      }
    }
    if (matched) result.push_back(item);
  }
  return result;
}

Result<Sequence> Executor::EvalTreePattern(const LogicalExpr& expr,
                                           const Scope* scope,
                                           QueryResult* out) {
  if (expr.pattern == nullptr) {
    return Status::Internal("TreePattern node without a pattern graph");
  }
  XMLQ_ASSIGN_OR_RETURN(Sequence input, Eval(*expr.children[0], scope, out));
  // The input must be a document node (the Tree argument of τ).
  const xml::Document* dom = nullptr;
  for (const Item& item : input) {
    if (item.IsNode() && item.node().id == item.node().doc->root()) {
      dom = item.node().doc;
      break;
    }
  }
  if (dom == nullptr) {
    return Status::InvalidArgument(
        "τ expects a document node as its Tree input");
  }
  XMLQ_ASSIGN_OR_RETURN(const IndexedDocument* doc, DocumentOf(dom));
  XMLQ_ASSIGN_OR_RETURN(NodeList matches,
                        MatchPattern(*doc, *expr.pattern, StatsFor(expr)));
  XMLQ_GUARD_CHARGE(context_->guard, matches.size() * sizeof(xml::NodeId));
  return ToSequence(*dom, matches);
}

}  // namespace xmlq::exec
