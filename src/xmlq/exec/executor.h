#ifndef XMLQ_EXEC_EXECUTOR_H_
#define XMLQ_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xmlq/algebra/env.h"
#include "xmlq/algebra/logical_plan.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/node_stream.h"
#include "xmlq/exec/op_stats.h"

namespace xmlq::exec {

/// Physical strategy for the τ (tree pattern matching) operator — the choice
/// the paper's evaluation compares (§4.2 / experiment E1).
enum class PatternStrategy : uint8_t {
  kNok,        // NoK partition + single-scan matching + seam joins (hybrid)
  kTwigStack,  // holistic twig join over region streams [13]
  kPathStack,  // chained-stack path join [13]; twigs fall back to TwigStack
  kBinaryJoin, // one stack-tree structural join per edge [12]
  kNaive,      // recursive DOM navigation [10]
};

std::string_view PatternStrategyName(PatternStrategy strategy);

/// How FLWOR expressions are evaluated (experiment F2).
enum class FlworMode : uint8_t {
  kEnv,        // materialize the layered Env (Definition 3), then iterate
  kPipelined,  // direct nested-loop recursion, no materialization
};

/// Everything a plan needs at run time. The documents map is keyed by the
/// name used in doc("...") / DocScan; the entry under "" is the default
/// document.
struct EvalContext {
  std::map<std::string, IndexedDocument, std::less<>> documents;
  PatternStrategy strategy = PatternStrategy::kNok;
  FlworMode flwor_mode = FlworMode::kEnv;
  /// Optional resource governor polled throughout evaluation (deadline,
  /// step quota, memory budget, cancellation). Not owned; must outlive the
  /// evaluation. Null means ungoverned.
  const ResourceGuard* guard = nullptr;
  /// Optional per-operator profile (EXPLAIN ANALYZE). Must be built from
  /// the exact plan object being evaluated (PlanProfile::Create). Not owned.
  /// Null (the default) disables stats collection entirely — the executor
  /// then performs no lookups, no clock reads and no counter updates.
  PlanProfile* profile = nullptr;
};

/// Holds a query's output plus any documents constructed by γ (node items
/// in `value` may point into them).
struct QueryResult {
  algebra::Sequence value;
  std::vector<std::unique_ptr<xml::Document>> constructed;
  /// Per-operator execution profile; non-null only when the caller asked
  /// for stats (api::QueryOptions::collect_stats). Already finalized.
  std::unique_ptr<PlanProfile> profile;
};

/// Interprets logical algebra plans. Stateless across Evaluate calls except
/// for the constructed-document arena of the current call.
class Executor {
 public:
  explicit Executor(const EvalContext* context) : context_(context) {}

  /// Evaluates a plan to completion.
  Result<QueryResult> Evaluate(const algebra::LogicalExpr& plan);

  /// Lower-level entry point: evaluates with an initial variable scope.
  /// Exposed for tests; `out` receives constructed documents.
  Result<algebra::Sequence> EvaluateWithVars(
      const algebra::LogicalExpr& expr,
      const std::map<std::string, algebra::Sequence>& vars,
      QueryResult* out);

  /// Runs just the τ operator on `pattern` over the named document with the
  /// context's strategy. Used by the plan interpreter and the benches.
  /// `stats` (optional) receives the chosen engine's execution counters.
  Result<NodeList> MatchPattern(const IndexedDocument& doc,
                                const algebra::PatternGraph& pattern,
                                OpStats* stats = nullptr) const;

 private:
  struct Scope {
    const Scope* parent = nullptr;
    std::string_view name;
    const algebra::Sequence* value = nullptr;
  };

  /// Profiling wrapper: dispatches to EvalDispatch, and — only when the
  /// context carries a PlanProfile — records invocations, output rows and
  /// inclusive wall time on the operator's ProfileNode.
  Result<algebra::Sequence> Eval(const algebra::LogicalExpr& expr,
                                 const Scope* scope, QueryResult* out);

  Result<algebra::Sequence> EvalDispatch(const algebra::LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out);

  /// The engine-counter sink for `expr`, or nullptr when not profiling.
  OpStats* StatsFor(const algebra::LogicalExpr& expr) const;

  // Implemented in executor.cc.
  Result<algebra::Sequence> EvalNavigate(const algebra::LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out);
  Result<algebra::Sequence> EvalStructuralJoin(
      const algebra::LogicalExpr& expr, const Scope* scope, QueryResult* out);
  Result<algebra::Sequence> EvalValueJoin(const algebra::LogicalExpr& expr,
                                          const Scope* scope,
                                          QueryResult* out);
  Result<algebra::Sequence> EvalTreePattern(const algebra::LogicalExpr& expr,
                                            const Scope* scope,
                                            QueryResult* out);

  // Implemented in expr_eval.cc.
  Result<algebra::Sequence> EvalBinary(const algebra::LogicalExpr& expr,
                                       const Scope* scope, QueryResult* out);
  Result<algebra::Sequence> EvalFunction(const algebra::LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out);

  // Implemented in env_eval.cc.
  Result<algebra::Sequence> EvalFlwor(const algebra::LogicalExpr& expr,
                                      const Scope* scope, QueryResult* out);

  // Implemented in construct.cc.
  Result<algebra::Sequence> EvalConstruct(const algebra::LogicalExpr& expr,
                                          const Scope* scope,
                                          QueryResult* out);

  Result<const IndexedDocument*> LookupDocument(std::string_view name) const;
  Result<const IndexedDocument*> DocumentOf(const xml::Document* dom) const;
  const algebra::Sequence* LookupVar(const Scope* scope,
                                     std::string_view name) const;

  const EvalContext* context_;

  friend class FlworEnvBuilder;  // env_eval.cc helper
};

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_EXECUTOR_H_
