#ifndef XMLQ_EXEC_EXECUTOR_H_
#define XMLQ_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xmlq/algebra/env.h"
#include "xmlq/algebra/logical_plan.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/morsel.h"
#include "xmlq/exec/node_stream.h"
#include "xmlq/exec/op_stats.h"

namespace xmlq::exec {

/// Physical strategy for the τ (tree pattern matching) operator — the choice
/// the paper's evaluation compares (§4.2 / experiment E1).
enum class PatternStrategy : uint8_t {
  kNok,        // NoK partition + single-scan matching + seam joins (hybrid)
  kTwigStack,  // holistic twig join over region streams [13]
  kPathStack,  // chained-stack path join [13]; twigs fall back to TwigStack
  kBinaryJoin, // one stack-tree structural join per edge [12]
  kNaive,      // recursive DOM navigation [10]
};

std::string_view PatternStrategyName(PatternStrategy strategy);

class CircuitBreaker;  // exec/admission.h

/// How (and why) the executor degraded a query to the naive navigational
/// engine. Filled in by MatchPattern when the serving layer attached one to
/// the EvalContext; a query with several τ operators accumulates into the
/// same record (the first downgrade's reason wins).
struct FallbackInfo {
  /// The chosen engine returned a retryable fault and the pattern was
  /// re-run (successfully or not) on the naive engine.
  bool engine_downgraded = false;
  /// The chosen engine was quarantined by the circuit breaker and never
  /// attempted; the pattern ran on the naive engine outright.
  bool quarantined = false;
  std::string from_strategy;  // engine originally chosen for the pattern
  std::string reason;         // fault message, or "circuit breaker open"

  bool Degraded() const { return engine_downgraded || quarantined; }
};

/// How FLWOR expressions are evaluated (experiment F2).
enum class FlworMode : uint8_t {
  kEnv,        // materialize the layered Env (Definition 3), then iterate
  kPipelined,  // direct nested-loop recursion, no materialization
};

/// Everything a plan needs at run time. The documents map is keyed by the
/// name used in doc("...") / DocScan; the entry under "" is the default
/// document.
struct EvalContext {
  std::map<std::string, IndexedDocument, std::less<>> documents;
  PatternStrategy strategy = PatternStrategy::kNok;
  FlworMode flwor_mode = FlworMode::kEnv;
  /// Optional resource governor polled throughout evaluation (deadline,
  /// step quota, memory budget, cancellation). Not owned; must outlive the
  /// evaluation. Null means ungoverned.
  const ResourceGuard* guard = nullptr;
  /// Optional per-operator profile (EXPLAIN ANALYZE). Must be built from
  /// the exact plan object being evaluated (PlanProfile::Create). Not owned.
  /// Null (the default) disables stats collection entirely — the executor
  /// then performs no lookups, no clock reads and no counter updates.
  PlanProfile* profile = nullptr;
  /// Optional per-strategy circuit breaker (exec/admission.h), shared by
  /// every query of the owning Database. When set, MatchPattern consults it
  /// before running a specialized engine and reports faults/successes back.
  /// Not owned. Null disables quarantine (faults still fall back).
  CircuitBreaker* breaker = nullptr;
  /// Admission number of this query (QueryScheduler ticket) — the logical
  /// clock the breaker's cool-down counts in. 0 outside the serving layer.
  uint64_t admitted_seq = 0;
  /// Optional degradation record for this query; MatchPattern fills it when
  /// an engine fault or quarantine rerouted a pattern to the naive engine.
  /// Not owned.
  FallbackInfo* fallback = nullptr;
  /// Intra-query parallelism (DESIGN.md §12). Default-constructed (pool
  /// null / parallelism 1) keeps every engine on its serial path. When
  /// enabled, eligible τ patterns run morsel-parallel with results and
  /// OpStats byte-identical to the serial engines.
  ParallelSpec par;
};

/// Holds a query's output plus any documents constructed by γ (node items
/// in `value` may point into them).
struct QueryResult {
  algebra::Sequence value;
  std::vector<std::unique_ptr<xml::Document>> constructed;
  /// Per-operator execution profile; non-null only when the caller asked
  /// for stats (api::QueryOptions::collect_stats). Already finalized.
  std::unique_ptr<PlanProfile> profile;
  /// Serving-layer identity of this execution (api::Database assigns it;
  /// 0 when the executor was driven directly). The id a concurrent caller
  /// would pass to Database::Cancel.
  uint64_t query_id = 0;
  /// True when the query survived an engine fault or quarantine by
  /// degrading to the naive navigational engine; `degradation` says which
  /// engine was abandoned and why.
  bool degraded = false;
  std::string degradation;
  /// Where the plan came from: "fresh" (compiled for this execution) or
  /// "cached (gen N, age Ns, hits K, strategy S, binds ...)". Empty when the
  /// executor was driven directly (api::Database fills it).
  std::string plan_provenance;
  /// Keeps the catalog snapshot the query was pinned to alive: node items
  /// in `value` point into documents owned by it, so a result stays valid
  /// even after the Database swaps or drops the documents it was computed
  /// from. Null when the executor was driven directly.
  std::shared_ptr<const void> pinned;
};

/// Interprets logical algebra plans. Stateless across Evaluate calls except
/// for the constructed-document arena of the current call.
class Executor {
 public:
  explicit Executor(const EvalContext* context) : context_(context) {}

  /// Evaluates a plan to completion.
  Result<QueryResult> Evaluate(const algebra::LogicalExpr& plan);

  /// Lower-level entry point: evaluates with an initial variable scope.
  /// Exposed for tests; `out` receives constructed documents.
  Result<algebra::Sequence> EvaluateWithVars(
      const algebra::LogicalExpr& expr,
      const std::map<std::string, algebra::Sequence>& vars,
      QueryResult* out);

  /// Runs just the τ operator on `pattern` over the named document with the
  /// context's strategy. Used by the plan interpreter and the benches.
  /// `stats` (optional) receives the chosen engine's execution counters.
  Result<NodeList> MatchPattern(const IndexedDocument& doc,
                                const algebra::PatternGraph& pattern,
                                OpStats* stats = nullptr) const;

 private:
  struct Scope {
    const Scope* parent = nullptr;
    std::string_view name;
    const algebra::Sequence* value = nullptr;
  };

  /// Profiling wrapper: dispatches to EvalDispatch, and — only when the
  /// context carries a PlanProfile — records invocations, output rows and
  /// inclusive wall time on the operator's ProfileNode.
  Result<algebra::Sequence> Eval(const algebra::LogicalExpr& expr,
                                 const Scope* scope, QueryResult* out);

  Result<algebra::Sequence> EvalDispatch(const algebra::LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out);

  /// The engine-counter sink for `expr`, or nullptr when not profiling.
  OpStats* StatsFor(const algebra::LogicalExpr& expr) const;

  // Implemented in executor.cc.
  Result<algebra::Sequence> EvalNavigate(const algebra::LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out);
  Result<algebra::Sequence> EvalStructuralJoin(
      const algebra::LogicalExpr& expr, const Scope* scope, QueryResult* out);
  Result<algebra::Sequence> EvalValueJoin(const algebra::LogicalExpr& expr,
                                          const Scope* scope,
                                          QueryResult* out);
  Result<algebra::Sequence> EvalTreePattern(const algebra::LogicalExpr& expr,
                                            const Scope* scope,
                                            QueryResult* out);

  // Implemented in expr_eval.cc.
  Result<algebra::Sequence> EvalBinary(const algebra::LogicalExpr& expr,
                                       const Scope* scope, QueryResult* out);
  Result<algebra::Sequence> EvalFunction(const algebra::LogicalExpr& expr,
                                         const Scope* scope,
                                         QueryResult* out);

  // Implemented in env_eval.cc.
  Result<algebra::Sequence> EvalFlwor(const algebra::LogicalExpr& expr,
                                      const Scope* scope, QueryResult* out);

  // Implemented in construct.cc.
  Result<algebra::Sequence> EvalConstruct(const algebra::LogicalExpr& expr,
                                          const Scope* scope,
                                          QueryResult* out);

  Result<const IndexedDocument*> LookupDocument(std::string_view name) const;
  Result<const IndexedDocument*> DocumentOf(const xml::Document* dom) const;
  const algebra::Sequence* LookupVar(const Scope* scope,
                                     std::string_view name) const;

  const EvalContext* context_;

  friend class FlworEnvBuilder;  // env_eval.cc helper
};

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_EXECUTOR_H_
