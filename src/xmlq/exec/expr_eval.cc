#include <algorithm>
#include <cmath>
#include <limits>

#include "xmlq/base/strings.h"
#include "xmlq/exec/executor.h"

// GCC 12 emits spurious -Wmaybe-uninitialized reports from inside
// libstdc++'s std::variant move-assignment when Item sequences are built in
// the large EvalFunction body (gcc bug 105593 family); the diagnostics point
// at <variant> internals, not user code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace xmlq::exec {

using algebra::BinaryOp;
using algebra::Item;
using algebra::LogicalExpr;
using algebra::Sequence;

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// XPath 1.0-style comparison of two items: numeric when either side is a
/// number (or both parse as numbers), string otherwise.
bool CompareItems(BinaryOp op, const Item& a, const Item& b) {
  const bool numeric = a.IsNumber() || b.IsNumber() ||
                       (ParseDouble(a.StringValue()).has_value() &&
                        ParseDouble(b.StringValue()).has_value());
  if (numeric) {
    const double x = a.NumberValue();
    const double y = b.NumberValue();
    if (std::isnan(x) || std::isnan(y)) return op == BinaryOp::kNe;
    switch (op) {
      case BinaryOp::kEq:
        return x == y;
      case BinaryOp::kNe:
        return x != y;
      case BinaryOp::kLt:
        return x < y;
      case BinaryOp::kLe:
        return x <= y;
      case BinaryOp::kGt:
        return x > y;
      case BinaryOp::kGe:
        return x >= y;
      default:
        return false;
    }
  }
  const std::string x = a.StringValue();
  const std::string y = b.StringValue();
  switch (op) {
    case BinaryOp::kEq:
      return x == y;
    case BinaryOp::kNe:
      return x != y;
    case BinaryOp::kLt:
      return x < y;
    case BinaryOp::kLe:
      return x <= y;
    case BinaryOp::kGt:
      return x > y;
    case BinaryOp::kGe:
      return x >= y;
    default:
      return false;
  }
}

/// Effective boolean value of a sequence.
bool Ebv(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq.size() == 1) return seq[0].BooleanValue();
  // Node sequences are true; mixed sequences use the first item.
  return true;
}

double NumberOf(const Sequence& seq) {
  if (seq.empty()) return std::numeric_limits<double>::quiet_NaN();
  return seq[0].NumberValue();
}

std::string StringOf(const Sequence& seq) {
  return seq.empty() ? std::string() : seq[0].StringValue();
}

}  // namespace

Result<Sequence> Executor::EvalBinary(const LogicalExpr& expr,
                                      const Scope* scope, QueryResult* out) {
  // Short-circuit logic operators.
  if (expr.binary == BinaryOp::kAnd || expr.binary == BinaryOp::kOr) {
    XMLQ_ASSIGN_OR_RETURN(Sequence left,
                          Eval(*expr.children[0], scope, out));
    const bool l = Ebv(left);
    if (expr.binary == BinaryOp::kAnd && !l) return Sequence{Item(false)};
    if (expr.binary == BinaryOp::kOr && l) return Sequence{Item(true)};
    XMLQ_ASSIGN_OR_RETURN(Sequence right,
                          Eval(*expr.children[1], scope, out));
    return Sequence{Item(Ebv(right))};
  }

  XMLQ_ASSIGN_OR_RETURN(Sequence left, Eval(*expr.children[0], scope, out));
  XMLQ_ASSIGN_OR_RETURN(Sequence right, Eval(*expr.children[1], scope, out));

  if (IsComparison(expr.binary)) {
    // General comparison: existential over both sequences (quadratic, so
    // charge one step per pair probed).
    for (const Item& a : left) {
      XMLQ_GUARD_TICK(context_->guard, right.size() + 1);
      for (const Item& b : right) {
        if (CompareItems(expr.binary, a, b)) return Sequence{Item(true)};
      }
    }
    return Sequence{Item(false)};
  }

  // Arithmetic: empty operand propagates the empty sequence (XQuery rules).
  if (left.empty() || right.empty()) return Sequence{};
  const double x = NumberOf(left);
  const double y = NumberOf(right);
  double value = 0;
  switch (expr.binary) {
    case BinaryOp::kAdd:
      value = x + y;
      break;
    case BinaryOp::kSub:
      value = x - y;
      break;
    case BinaryOp::kMul:
      value = x * y;
      break;
    case BinaryOp::kDiv:
      value = x / y;
      break;
    case BinaryOp::kMod:
      value = std::fmod(x, y);
      break;
    default:
      return Status::Internal("unexpected binary operator");
  }
  return Sequence{Item(value)};
}

Result<Sequence> Executor::EvalFunction(const LogicalExpr& expr,
                                        const Scope* scope,
                                        QueryResult* out) {
  const std::string& name = expr.str;
  auto arity = [&](size_t n) -> Status {
    if (expr.children.size() != n) {
      return Status::InvalidArgument("function " + name + "() expects " +
                                     std::to_string(n) + " argument(s)");
    }
    return Status::Ok();
  };
  // if(cond, then, else): lazy — only the taken branch is evaluated.
  if (name == "if") {
    XMLQ_RETURN_IF_ERROR(arity(3));
    XMLQ_ASSIGN_OR_RETURN(Sequence cond, Eval(*expr.children[0], scope, out));
    return Eval(*expr.children[Ebv(cond) ? 1 : 2], scope, out);
  }
  // doc("name") resolves a named document like DocScan.
  if (name == "doc" || name == "document") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    XMLQ_ASSIGN_OR_RETURN(Sequence arg, Eval(*expr.children[0], scope, out));
    XMLQ_ASSIGN_OR_RETURN(const IndexedDocument* doc,
                          LookupDocument(StringOf(arg)));
    return Sequence{Item(algebra::NodeRef{doc->dom, doc->dom->root()})};
  }

  // Evaluate all arguments once.
  std::vector<Sequence> args;
  args.reserve(expr.children.size());
  for (const auto& child : expr.children) {
    XMLQ_ASSIGN_OR_RETURN(Sequence arg, Eval(*child, scope, out));
    args.push_back(std::move(arg));
  }

  if (name == "count") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(static_cast<double>(args[0].size()))};
  }
  if (name == "exists") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(!args[0].empty())};
  }
  if (name == "empty") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(args[0].empty())};
  }
  if (name == "not") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(!Ebv(args[0]))};
  }
  if (name == "string") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(StringOf(args[0]))};
  }
  if (name == "number") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(NumberOf(args[0]))};
  }
  if (name == "data") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    Sequence result;
    for (const Item& item : args[0]) {
      result.push_back(Item(item.StringValue()));
    }
    return result;
  }
  if (name == "name") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    if (args[0].empty() || !args[0][0].IsNode()) {
      return Sequence{Item(std::string())};
    }
    const algebra::NodeRef& node = args[0][0].node();
    return Sequence{Item(std::string(node.doc->NameStr(node.id)))};
  }
  if (name == "concat") {
    std::string value;
    for (const Sequence& arg : args) value += StringOf(arg);
    return Sequence{Item(std::move(value))};
  }
  if (name == "contains") {
    XMLQ_RETURN_IF_ERROR(arity(2));
    return Sequence{Item(StringOf(args[0]).find(StringOf(args[1])) !=
                         std::string::npos)};
  }
  if (name == "starts-with") {
    XMLQ_RETURN_IF_ERROR(arity(2));
    const std::string s = StringOf(args[0]);
    const std::string p = StringOf(args[1]);
    return Sequence{Item(s.size() >= p.size() && s.compare(0, p.size(), p) == 0)};
  }
  if (name == "string-length") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(static_cast<double>(StringOf(args[0]).size()))};
  }
  if (name == "sum" || name == "avg" || name == "min" || name == "max") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    if (args[0].empty()) {
      return name == "sum" ? Sequence{Item(0.0)} : Sequence{};
    }
    double sum = 0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const Item& item : args[0]) {
      const double v = item.NumberValue();
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    if (name == "sum") return Sequence{Item(sum)};
    if (name == "avg") {
      return Sequence{Item(sum / static_cast<double>(args[0].size()))};
    }
    return Sequence{Item(name == "min" ? mn : mx)};
  }
  if (name == "round") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(std::round(NumberOf(args[0])))};
  }
  if (name == "floor") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(std::floor(NumberOf(args[0])))};
  }
  if (name == "ceiling") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    return Sequence{Item(std::ceil(NumberOf(args[0])))};
  }
  if (name == "distinct-values") {
    XMLQ_RETURN_IF_ERROR(arity(1));
    std::vector<std::string> seen;
    Sequence result;
    for (const Item& item : args[0]) {
      std::string v = item.StringValue();
      if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
        result.push_back(Item(v));
        seen.push_back(std::move(v));
      }
    }
    return result;
  }
  return Status::Unsupported("unknown function " + name + "()");
}

}  // namespace xmlq::exec
