#include "xmlq/exec/hybrid.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "xmlq/base/fault_injector.h"
#include "xmlq/exec/nok_matcher.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/exec/twig_stack.h"
#include "xmlq/xpath/nok_partition.h"

namespace xmlq::exec {

namespace {

using algebra::PatternGraph;
using algebra::VertexId;
using xpath::NokPartition;

bool IsPatternAncestor(const PatternGraph& graph, VertexId anc, VertexId v) {
  for (VertexId p = graph.vertex(v).parent; p != algebra::kNoVertex;
       p = graph.vertex(p).parent) {
    if (p == anc) return true;
  }
  return false;
}

/// True when two non-head seam/output vertices of one part are nested, which
/// the per-part (head, vertex) pair lists cannot correlate exactly.
bool NeedsFallback(const PatternGraph& graph, const NokPartition& partition,
                   VertexId output) {
  std::vector<std::vector<VertexId>> special(partition.parts.size());
  for (size_t q = 0; q < partition.parts.size(); ++q) {
    const xpath::NokPart& part = partition.parts[q];
    if (part.parent_part >= 0) {
      special[part.parent_part].push_back(part.attach_vertex);
    }
  }
  special[partition.part_of[output]].push_back(output);
  for (size_t p = 0; p < special.size(); ++p) {
    const VertexId head = partition.parts[p].head;
    std::vector<VertexId>& s = special[p];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    for (VertexId a : s) {
      if (a == head) continue;
      for (VertexId b : s) {
        if (b == head || a == b) continue;
        if (IsPatternAncestor(graph, a, b)) return true;
      }
    }
  }
  return false;
}

}  // namespace

Result<NodeList> HybridMatch(const IndexedDocument& doc,
                             const PatternGraph& pattern,
                             const ResourceGuard* guard, OpStats* stats,
                             const ParallelSpec* par) {
  if (XMLQ_FAULT("exec.nok.match")) {
    return Status::Internal("injected fault: exec.nok.match");
  }
  XMLQ_RETURN_IF_ERROR(pattern.Validate());
  const VertexId output = pattern.SoleOutput();
  if (output == algebra::kNoVertex) {
    return Status::InvalidArgument(
        "hybrid matcher requires a sole output vertex");
  }
  const NokPartition partition = xpath::PartitionNok(pattern);
  if (NeedsFallback(pattern, partition, output)) {
    return TwigStackMatch(doc, pattern, guard, stats);
  }

  const size_t num_parts = partition.parts.size();
  const int output_part = partition.part_of[output];

  // Requested vertices per part: seam attach points + the output vertex.
  std::vector<std::vector<VertexId>> requested(num_parts);
  // Per part: attach vertex -> list of child parts hanging there.
  std::vector<std::map<VertexId, std::vector<int>>> attach_children(
      num_parts);
  for (size_t q = 1; q < num_parts; ++q) {
    const xpath::NokPart& part = partition.parts[q];
    requested[part.parent_part].push_back(part.attach_vertex);
    attach_children[part.parent_part][part.attach_vertex].push_back(
        static_cast<int>(q));
  }
  requested[output_part].push_back(output);
  for (auto& r : requested) {
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
  }

  // Match every part. Labeled heads use the localized navigational scan
  // seeded from the per-tag stream (the paper's "jump then navigate");
  // wildcard or root heads fall back to the single whole-document pass.
  std::vector<NokMatchResult> matched(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    const algebra::PatternVertex& head =
        pattern.vertex(partition.parts[p].head);
    if (head.is_root && partition.parts[p].vertices.size() == 1) {
      // Trivial part: just the pattern root, matched by the document node.
      NokMatchResult trivial;
      trivial.head_matches = {0};
      trivial.pairs.resize(requested[p].size(), {JoinPair{0, 0}});
      trivial.bindings.resize(requested[p].size(), {0});
      matched[p] = std::move(trivial);
      continue;
    }
    std::vector<uint32_t> candidates;
    const std::vector<uint32_t>* candidates_ptr = nullptr;
    if (!head.is_root && head.label != "*") {
      const xml::NameId name = doc.dom->pool().Find(head.label);
      const auto stream = head.is_attribute
                              ? doc.regions->AttributeStream(name)
                              : doc.regions->ElementStream(name);
      candidates.reserve(stream.size());
      for (const storage::Region& r : stream) candidates.push_back(r.start);
      candidates_ptr = &candidates;
      if (stats != nullptr) stats->index_probes += stream.size();
    }
    // The localized candidate scans are the parallel surface of the hybrid
    // path: independent subtree windows, chunked over the pool. Whole-doc
    // scans (wildcard/root heads) and the seam semi-joins below stay serial.
    const bool chunked = par != nullptr && par->enabled() &&
                         candidates_ptr != nullptr;
    auto result =
        chunked ? MatchNokPartChunked(*doc.succinct, pattern,
                                      partition.parts[p], requested[p],
                                      candidates, *par, guard, stats)
                : MatchNokPart(*doc.succinct, pattern, partition.parts[p],
                               requested[p], candidates_ptr, guard, stats);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kUnsupported) {
        // e.g. following-sibling arcs
        return TwigStackMatch(doc, pattern, guard, stats);
      }
      return result.status();
    }
    matched[p] = std::move(*result);
  }

  auto slot_of = [&](size_t p, VertexId v) -> int {
    const auto& r = requested[p];
    const auto it = std::lower_bound(r.begin(), r.end(), v);
    return (it != r.end() && *it == v)
               ? static_cast<int>(it - r.begin())
               : -1;
  };

  // Bottom-up validity: children parts before parents (part indices are
  // topologically ordered by construction).
  std::vector<NodeList> valid_heads(num_parts);
  // Per part, per requested slot: the attach bindings that survive the
  // bottom-up pass (only filled for attach vertices).
  std::vector<std::vector<NodeList>> valid_attach(num_parts);
  for (size_t pi = num_parts; pi-- > 0;) {
    const size_t p = pi;
    valid_attach[p].resize(requested[p].size());
    NodeList heads = matched[p].head_matches;
    for (const auto& [w, child_parts] : attach_children[p]) {
      const int slot = slot_of(p, w);
      NodeList w_bindings = matched[p].bindings[slot];
      for (int q : child_parts) {
        // Keep attach bindings that have a valid child-part head below.
        w_bindings = StructuralSemiJoinAnc(
            ToRegions(*doc.regions, w_bindings, stats),
            ToRegions(*doc.regions, valid_heads[q], stats),
            /*parent_child=*/false, guard, stats);
        XMLQ_GUARD_TICK(guard, 0);  // semi-joins stop early on a trip
        if (w_bindings.empty()) break;
      }
      valid_attach[p][slot] = w_bindings;
      // Keep heads that own at least one surviving attach binding.
      std::unordered_set<uint32_t> ok_w(w_bindings.begin(), w_bindings.end());
      std::unordered_set<uint32_t> ok_heads;
      XMLQ_GUARD_TICK(guard, matched[p].pairs[slot].size());
      for (const JoinPair& pair : matched[p].pairs[slot]) {
        if (ok_w.count(pair.descendant) > 0) ok_heads.insert(pair.ancestor);
      }
      NodeList filtered;
      for (xml::NodeId h : heads) {
        if (ok_heads.count(h) > 0) filtered.push_back(h);
      }
      heads = std::move(filtered);
      if (heads.empty()) break;
    }
    valid_heads[p] = std::move(heads);
  }

  // Top-down reachability from the root part.
  std::vector<NodeList> reach_heads(num_parts);
  reach_heads[0] = valid_heads[0];
  for (size_t q = 1; q < num_parts; ++q) {
    const xpath::NokPart& part = partition.parts[q];
    const size_t p = static_cast<size_t>(part.parent_part);
    const int slot = slot_of(p, part.attach_vertex);
    // Attach bindings owned by a reachable head of the parent part.
    std::unordered_set<uint32_t> reach_p(reach_heads[p].begin(),
                                         reach_heads[p].end());
    NodeList reach_w;
    std::unordered_set<uint32_t> valid_w(valid_attach[p][slot].begin(),
                                         valid_attach[p][slot].end());
    XMLQ_GUARD_TICK(guard, matched[p].pairs[slot].size());
    for (const JoinPair& pair : matched[p].pairs[slot]) {
      if (reach_p.count(pair.ancestor) > 0 &&
          valid_w.count(pair.descendant) > 0) {
        reach_w.push_back(pair.descendant);
      }
    }
    Normalize(&reach_w);
    reach_heads[q] = StructuralSemiJoinDesc(
        ToRegions(*doc.regions, reach_w, stats),
        ToRegions(*doc.regions, valid_heads[q], stats),
        /*parent_child=*/false, guard, stats);
    XMLQ_GUARD_TICK(guard, 0);  // semi-joins stop early on a trip
  }

  // Extract the output bindings.
  const size_t po = static_cast<size_t>(output_part);
  if (output == partition.parts[po].head) {
    return reach_heads[po];
  }
  const int slot = slot_of(po, output);
  std::unordered_set<uint32_t> reach_po(reach_heads[po].begin(),
                                        reach_heads[po].end());
  const bool output_is_attach =
      attach_children[po].count(output) > 0;
  std::unordered_set<uint32_t> allowed;
  if (output_is_attach) {
    allowed.insert(valid_attach[po][slot].begin(),
                   valid_attach[po][slot].end());
  }
  NodeList result;
  for (const JoinPair& pair : matched[po].pairs[slot]) {
    if (reach_po.count(pair.ancestor) == 0) continue;
    if (output_is_attach && allowed.count(pair.descendant) == 0) continue;
    result.push_back(pair.descendant);
  }
  Normalize(&result);
  return result;
}

}  // namespace xmlq::exec
