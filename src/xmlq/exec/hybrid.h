#ifndef XMLQ_EXEC_HYBRID_H_
#define XMLQ_EXEC_HYBRID_H_

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/morsel.h"
#include "xmlq/exec/node_stream.h"

namespace xmlq::exec {

/// The paper's hybrid evaluation strategy (§4.2): partition the pattern
/// graph into next-of-kin fragments, match every fragment with the
/// single-scan NoK matcher over the succinct store, then stitch the
/// fragments together with stack-tree structural joins on the cut
/// descendant arcs — "just as in the join-based approach", but with far
/// fewer joins (one per `//` seam instead of one per query edge).
///
/// Validity flows both ways across a seam: a fragment head must have a
/// matching attach ancestor (top-down), and an attach binding must have at
/// least one valid fragment-head descendant per attached fragment
/// (bottom-up, because cut arcs are existence constraints on the parent
/// side too).
///
/// Rare patterns where two non-head seam/output vertices of the same
/// fragment are nested (requiring correlated bindings the per-fragment pair
/// lists cannot express) fall back to TwigStack transparently.
///
/// `stats` (optional) aggregates the observability counters of every
/// constituent: the NoK scans' `nodes_visited`/`stack_*`/`bytes_touched`,
/// the seam joins' merge counters, and `index_probes` for the candidate
/// seeds and region lookups.
///
/// `par` (optional) enables intra-query parallelism for the localized
/// candidate scans — the independent subtree windows chunk over the morsel
/// pool with results and counters byte-identical to the serial run
/// (DESIGN.md §12). Whole-document scans, seam semi-joins, and the TwigStack
/// fallback stay serial.
Result<NodeList> HybridMatch(const IndexedDocument& doc,
                             const algebra::PatternGraph& pattern,
                             const ResourceGuard* guard = nullptr,
                             OpStats* stats = nullptr,
                             const ParallelSpec* par = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_HYBRID_H_
