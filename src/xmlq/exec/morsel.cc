#include "xmlq/exec/morsel.h"

#include <algorithm>

namespace xmlq::exec {

MorselPool& MorselPool::Shared() {
  static MorselPool* pool = new MorselPool();  // leaked: outlives teardown
  return *pool;
}

MorselPool::MorselPool(uint32_t max_threads)
    : max_threads_(max_threads != 0
                       ? max_threads
                       : std::max(1u, std::thread::hardware_concurrency())) {}

MorselPool::~MorselPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void MorselPool::Run(size_t tasks, uint32_t lanes,
                     const std::function<void(size_t, uint32_t)>& fn) {
  if (tasks == 0) return;
  const uint32_t lane_limit =
      std::max<uint32_t>(1, std::min<uint64_t>(lanes, tasks));
  auto batch = std::make_shared<Batch>();
  batch->fn = fn;
  batch->tasks = tasks;
  batch->lane_limit = lane_limit;
  if (lane_limit > 1) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t want = std::min<size_t>(max_threads_, lane_limit - 1);
    while (threads_.size() < want) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
    queue_.push_back(batch);
    cv_.notify_all();
  }
  RunTasks(*batch, 0);
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] {
    return batch->active == 0 &&
           batch->next.load(std::memory_order_relaxed) >= batch->tasks;
  });
}

void MorselPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    uint32_t lane = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      // Drop exhausted batches, claim a lane on the first live one.
      while (!queue_.empty()) {
        std::shared_ptr<Batch>& front = queue_.front();
        if (front->next.load(std::memory_order_relaxed) >= front->tasks ||
            front->lanes_claimed >= front->lane_limit) {
          queue_.pop_front();
          continue;
        }
        batch = front;
        lane = front->lanes_claimed++;
        if (front->lanes_claimed >= front->lane_limit) queue_.pop_front();
        break;
      }
    }
    if (batch != nullptr) RunTasks(*batch, lane);
  }
}

void MorselPool::RunTasks(Batch& batch, uint32_t lane) {
  {
    std::lock_guard<std::mutex> lock(batch.mu);
    ++batch.active;
  }
  for (;;) {
    const size_t task = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (task >= batch.tasks) break;
    batch.fn(task, lane);
  }
  {
    std::lock_guard<std::mutex> lock(batch.mu);
    --batch.active;
  }
  batch.cv.notify_all();
}

LaneGuards::LaneGuards(const ResourceGuard* parent, uint32_t lanes,
                       size_t tasks)
    : parent_(parent) {
  if (parent_ == nullptr) return;
  // Slice by the requested lane count (deterministic in the caller's
  // parallelism alone), but allocate only as many guards as MorselPool::Run
  // can hand out lane ids for — defense-in-depth against a huge `lanes`.
  const uint32_t n = std::max<uint32_t>(1, lanes);
  const uint32_t count =
      std::max<uint32_t>(1, static_cast<uint32_t>(std::min<uint64_t>(n, tasks)));
  for (uint32_t i = 0; i < count; ++i) {
    guards_.emplace_back(ResourceGuard::LaneTag{}, *parent_, n);
  }
}

void LaneGuards::Absorb() {
  if (parent_ == nullptr || absorbed_) return;
  absorbed_ = true;
  for (const ResourceGuard& lane : guards_) parent_->Absorb(lane);
}

MorselPlan SplitStreams(
    const std::vector<std::vector<storage::Region>>& streams,
    size_t skip_vertex, size_t target_elements, uint32_t lanes) {
  const size_t k = streams.size();
  // Merge all participating stream entries by start. Each entry remembers
  // its vertex so per-vertex boundaries fall out of one scan.
  struct Entry {
    uint32_t start;
    uint32_t end;
    uint32_t vertex;
  };
  std::vector<Entry> merged;
  size_t total = 0;
  for (size_t v = 0; v < k; ++v) {
    if (v == skip_vertex) continue;
    total += streams[v].size();
  }
  merged.reserve(total);
  for (size_t v = 0; v < k; ++v) {
    if (v == skip_vertex) continue;
    for (const storage::Region& r : streams[v]) {
      merged.push_back(Entry{r.start, r.end, static_cast<uint32_t>(v)});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Entry& a, const Entry& b) { return a.start < b.start; });

  MorselPlan plan;
  if (merged.empty()) return plan;  // count() == 0: caller runs serially

  size_t target = target_elements;
  if (target == 0) {
    const size_t want_morsels = std::max<size_t>(1, size_t{lanes} * 4);
    target = std::max<size_t>(1, merged.size() / want_morsels);
  }

  // One pass: a cut is legal where the next start lies strictly past every
  // earlier end (no spanning region). Coalesce atomic groups until the
  // current morsel reaches `target`, then emit the per-vertex boundary row.
  std::vector<size_t> cursor(k, 0);  // per-vertex consumed counts
  plan.bounds.push_back(std::vector<size_t>(k, 0));
  uint32_t running_max_end = 0;
  size_t in_morsel = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i > 0 && merged[i].start > running_max_end && in_morsel >= target) {
      plan.bounds.push_back(cursor);
      in_morsel = 0;
    }
    running_max_end = std::max(running_max_end, merged[i].end);
    ++cursor[merged[i].vertex];
    ++in_morsel;
  }
  plan.bounds.push_back(std::move(cursor));
  return plan;
}

std::vector<size_t> SplitEvenly(size_t n, size_t min_chunk,
                                size_t max_chunks) {
  const size_t floor = std::max<size_t>(1, min_chunk);
  size_t chunks = std::max<size_t>(1, std::min(max_chunks, n / floor));
  std::vector<size_t> bounds;
  bounds.reserve(chunks + 1);
  bounds.push_back(0);
  for (size_t c = 1; c <= chunks; ++c) {
    bounds.push_back(n * c / chunks);
  }
  return bounds;
}

}  // namespace xmlq::exec
