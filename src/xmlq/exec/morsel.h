#ifndef XMLQ_EXEC_MORSEL_H_
#define XMLQ_EXEC_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "xmlq/base/limits.h"
#include "xmlq/storage/region_index.h"

namespace xmlq::exec {

/// A small shared worker pool for intra-query parallelism (DESIGN.md §12).
///
/// Queries hand the pool a batch of independent *morsels* (tasks); the
/// calling thread always participates as lane 0 and up to `lanes - 1` pool
/// threads join opportunistically. Tasks are claimed from a shared atomic
/// counter, so a worker that finishes early steals the remaining tasks —
/// work stealing by claiming, the same shape as the net tier's worker pool
/// but with batch-scoped completion instead of per-job queues.
///
/// Determinism contract: which lane runs which task is scheduling-dependent,
/// so per-task state (results, OpStats sinks, errors) must be indexed by
/// task, never by lane. Lane count and budget slicing depend only on the
/// requested parallelism, not on how many pool threads actually show up.
///
/// Threads are spawned lazily up to the configured maximum and sleep when
/// idle. Run() must not be called from inside a batch callback (no nested
/// batches — the engine drivers are leaves).
class MorselPool {
 public:
  /// Process-wide pool shared by queries and the scrubber. Never destroyed
  /// (intentionally leaked so pool threads outlive static teardown).
  static MorselPool& Shared();

  /// `max_threads` = 0 picks the hardware concurrency.
  explicit MorselPool(uint32_t max_threads = 0);
  ~MorselPool();

  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  /// Runs fn(task, lane) for every task in [0, tasks), distributing tasks
  /// over at most `lanes` participants (caller = lane 0). Returns once every
  /// task has finished and all participants have left the callback. Lane ids
  /// passed to fn are < max(1, lanes).
  void Run(size_t tasks, uint32_t lanes,
           const std::function<void(size_t task, uint32_t lane)>& fn);

  uint32_t max_threads() const { return max_threads_; }

 private:
  struct Batch {
    std::function<void(size_t, uint32_t)> fn;
    size_t tasks = 0;
    uint32_t lane_limit = 1;  // total participants including the caller
    std::atomic<size_t> next{0};
    uint32_t lanes_claimed = 1;  // guarded by the pool mutex; caller = lane 0
    std::mutex mu;
    std::condition_variable cv;
    int active = 0;  // participants inside RunTasks (guarded by mu)
  };

  void WorkerLoop();
  void RunTasks(Batch& batch, uint32_t lane);

  const uint32_t max_threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Knobs for one parallel execution attempt, carried on the EvalContext and
/// threaded into the engine drivers. Default-constructed = serial.
struct ParallelSpec {
  MorselPool* pool = nullptr;
  uint32_t parallelism = 1;
  /// Morsel sizing: target stream elements (or NoK candidates) per morsel.
  /// 0 = auto (a few morsels per lane); 1 = one atomic group per morsel,
  /// the adversarial configuration the differential harness runs.
  size_t morsel_elements = 0;

  bool enabled() const { return pool != nullptr && parallelism > 1; }
};

/// Forks one ResourceGuard per lane and folds them back on destruction —
/// ResourceGuard's hot path is deliberately not thread-safe, so concurrent
/// lanes must never share the parent. A null parent yields null lane guards
/// (unlimited). Only min(lanes, tasks) guards are allocated — MorselPool::Run
/// never hands out lane ids beyond that — so the allocation scales with
/// actual work, not with a caller-supplied u32; budget slicing still divides
/// by the requested `lanes` so the slices are independent of the morsel
/// count. Absorb happens in lane order on the owning thread; callers should
/// Tick(0) the parent afterwards so an over-budget total or a deadline/cancel
/// observed by a lane trips the parent promptly.
class LaneGuards {
 public:
  LaneGuards(const ResourceGuard* parent, uint32_t lanes, size_t tasks);
  ~LaneGuards() { Absorb(); }

  LaneGuards(const LaneGuards&) = delete;
  LaneGuards& operator=(const LaneGuards&) = delete;

  /// `i` must be a lane id from the matching MorselPool::Run call, i.e.
  /// i < min(lanes, tasks).
  const ResourceGuard* lane(uint32_t i) const {
    return parent_ == nullptr ? nullptr : &guards_[i];
  }

  /// Number of guards actually allocated (min(lanes, tasks); 0 with a null
  /// parent).
  size_t lane_count() const { return guards_.size(); }

  /// Folds lane consumption into the parent now (idempotent).
  void Absorb();

 private:
  const ResourceGuard* parent_;
  std::deque<ResourceGuard> guards_;  // deque: ResourceGuard is immovable
  bool absorbed_ = false;
};

/// Document-order partitioning of per-vertex region streams into morsels.
///
/// `bounds` has count()+1 rows of stream indices: morsel m covers, for every
/// vertex v, the half-open slice [bounds[m][v], bounds[m+1][v]) of stream v.
/// Row 0 is all zeros and the last row holds the stream sizes, so the slices
/// are disjoint and cover every stream. Cuts are placed only where no region
/// from any participating stream spans the boundary (subtree-closed), which
/// is what makes per-morsel matching equivalent to the serial run.
struct MorselPlan {
  std::vector<std::vector<size_t>> bounds;

  size_t count() const { return bounds.empty() ? 0 : bounds.size() - 1; }

  std::span<const storage::Region> Sub(
      const std::vector<std::vector<storage::Region>>& streams, size_t morsel,
      size_t vertex) const {
    const size_t lo = bounds[morsel][vertex];
    const size_t hi = bounds[morsel + 1][vertex];
    return std::span<const storage::Region>(streams[vertex].data() + lo,
                                            hi - lo);
  }
};

/// Splits `streams` (one document-ordered region stream per pattern vertex)
/// into document-order morsels. `skip_vertex` (the pattern root, whose
/// single document region spans everything) is excluded from cut placement
/// and gets empty slices in every morsel; pass streams.size() to skip none.
///
/// A legal cut is a position where, scanning all participating regions by
/// start, the next start lies strictly past every earlier end — no region
/// straddles the cut. Atomic groups between cuts are then coalesced greedily
/// until each morsel holds at least `target_elements` regions (0 = auto:
/// roughly four morsels per lane). Every returned morsel is nonempty; a
/// document with no legal cut (one deep chain) yields a single morsel.
MorselPlan SplitStreams(
    const std::vector<std::vector<storage::Region>>& streams,
    size_t skip_vertex, size_t target_elements, uint32_t lanes);

/// Chunk boundaries for splitting `n` items into at most `max_chunks`
/// contiguous near-equal chunks of at least `min_chunk` items each (the
/// candidate-list splitter for NoK). Returns chunks+1 indices, first 0,
/// last n; for n == 0 returns {0, 0} (one empty chunk).
std::vector<size_t> SplitEvenly(size_t n, size_t min_chunk,
                                size_t max_chunks);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_MORSEL_H_
