#include "xmlq/exec/naive_nav.h"

#include <algorithm>
#include <functional>

#include "xmlq/base/fault_injector.h"
#include "xmlq/exec/op_stats.h"

namespace xmlq::exec {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::PatternVertex;
using algebra::VertexId;

void CollectChildren(const xml::Document& doc, xml::NodeId context,
                     const PatternVertex& vertex, OpStats* stats,
                     NodeList* out) {
  uint64_t visited = 0;
  if (vertex.is_attribute) {
    for (xml::NodeId a = doc.FirstAttr(context); a != xml::kNullNode;
         a = doc.NextSibling(a)) {
      ++visited;
      if (MatchesNodeTest(vertex, doc, a)) out->push_back(a);
    }
  } else {
    for (xml::NodeId c = doc.FirstChild(context); c != xml::kNullNode;
         c = doc.NextSibling(c)) {
      ++visited;
      if (MatchesNodeTest(vertex, doc, c)) out->push_back(c);
    }
  }
  if (stats != nullptr) stats->nodes_visited += visited;
}

void CollectDescendants(const xml::Document& doc, xml::NodeId context,
                        const PatternVertex& vertex, bool include_self,
                        const ResourceGuard* guard, OpStats* stats,
                        NodeList* out) {
  // Explicit-stack preorder walk: the DOM can be arbitrarily deep, so
  // recursing per tree level would overflow the call stack on pathological
  // documents. Children are pushed in reverse to preserve document order.
  struct Frame {
    xml::NodeId node;
    bool include_self;
  };
  std::vector<Frame> stack;
  std::vector<xml::NodeId> children;  // scratch, reused across iterations
  stack.push_back({context, include_self});
  uint64_t visited = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (guard != nullptr && guard->Tick(1)) break;
    ++visited;
    if (f.include_self && MatchesNodeTest(vertex, doc, f.node)) {
      out->push_back(f.node);
    }
    if (vertex.is_attribute && doc.Kind(f.node) == xml::NodeKind::kElement) {
      for (xml::NodeId a = doc.FirstAttr(f.node); a != xml::kNullNode;
           a = doc.NextSibling(a)) {
        ++visited;
        if (MatchesNodeTest(vertex, doc, a)) out->push_back(a);
      }
    }
    children.clear();
    for (xml::NodeId c = doc.FirstChild(f.node); c != xml::kNullNode;
         c = doc.NextSibling(c)) {
      children.push_back(c);
    }
    for (size_t i = children.size(); i-- > 0;) {
      stack.push_back({children[i], /*include_self=*/!vertex.is_attribute});
    }
  }
  if (stats != nullptr) stats->nodes_visited += visited;
}

}  // namespace

NodeList AxisStep(const xml::Document& doc, xml::NodeId context,
                  const PatternVertex& vertex, const ResourceGuard* guard,
                  OpStats* stats) {
  NodeList out;
  switch (vertex.incoming_axis) {
    case Axis::kChild:
    case Axis::kAttribute:
      CollectChildren(doc, context, vertex, stats, &out);
      if (guard != nullptr) guard->Tick(out.size() + 1);
      break;
    case Axis::kDescendant:
      if (vertex.is_attribute) {
        // `//@a`: attributes of the context and of every descendant.
        CollectDescendants(doc, context, vertex, /*include_self=*/false,
                           guard, stats, &out);
      } else {
        for (xml::NodeId c = doc.FirstChild(context); c != xml::kNullNode;
             c = doc.NextSibling(c)) {
          CollectDescendants(doc, c, vertex, /*include_self=*/true, guard,
                             stats, &out);
        }
      }
      break;
    case Axis::kFollowingSibling:
      for (xml::NodeId s = doc.NextSibling(context); s != xml::kNullNode;
           s = doc.NextSibling(s)) {
        if (guard != nullptr && guard->Tick(1)) break;
        if (stats != nullptr) ++stats->nodes_visited;
        if (MatchesNodeTest(vertex, doc, s)) out.push_back(s);
      }
      break;
    case Axis::kSelf:
      if (guard != nullptr) guard->Tick(1);
      if (stats != nullptr) ++stats->nodes_visited;
      if (MatchesNodeTest(vertex, doc, context)) out.push_back(context);
      break;
  }
  return out;
}

bool MatchesFilter(const xml::Document& doc, xml::NodeId context,
                   const algebra::PatternGraph& filter, OpStats* stats) {
  // Recursive existence check, mirroring NaiveMatcher::ExistsEmbedding.
  const std::function<bool(VertexId, xml::NodeId)> exists =
      [&](VertexId v, xml::NodeId from) -> bool {
    for (const xml::NodeId node :
         AxisStep(doc, from, filter.vertex(v), nullptr, stats)) {
      if (!EvalVertexPredicates(filter.vertex(v), doc, node, stats)) continue;
      bool all = true;
      for (const VertexId c : filter.vertex(v).children) {
        if (!exists(c, node)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  };
  if (!EvalVertexPredicates(filter.vertex(filter.root()), doc, context,
                            stats)) {
    return false;
  }
  for (const VertexId c : filter.vertex(filter.root()).children) {
    if (!exists(c, context)) return false;
  }
  return true;
}

namespace {

class NaiveMatcher {
 public:
  NaiveMatcher(const xml::Document& doc, const PatternGraph& pattern,
               const ResourceGuard* guard, OpStats* stats)
      : doc_(doc), pattern_(pattern), guard_(guard), stats_(stats) {}

  Result<NodeList> Run() {
    const VertexId output = pattern_.SoleOutput();
    if (output == algebra::kNoVertex) {
      return Status::InvalidArgument(
          "naive matcher requires a sole output vertex");
    }
    // Spine: path from root to output vertex.
    std::vector<VertexId> spine;
    for (VertexId v = output; v != algebra::kNoVertex;
         v = pattern_.vertex(v).parent) {
      spine.push_back(v);
    }
    std::reverse(spine.begin(), spine.end());

    NodeList contexts = {doc_.root()};
    if (!EvalBranchesExcept(pattern_.root(), doc_.root(),
                            spine.size() > 1 ? spine[1] : algebra::kNoVertex)) {
      return NodeList{};
    }
    for (size_t i = 1; i < spine.size(); ++i) {
      const VertexId v = spine[i];
      const VertexId skip_child =
          i + 1 < spine.size() ? spine[i + 1] : algebra::kNoVertex;
      NodeList next;
      for (xml::NodeId ctx : contexts) {
        XMLQ_GUARD_TICK(guard_, 1);
        for (xml::NodeId node :
             AxisStep(doc_, ctx, pattern_.vertex(v), guard_, stats_)) {
          if (!EvalVertexPredicates(pattern_.vertex(v), doc_, node, stats_)) {
            continue;
          }
          if (!EvalBranchesExcept(v, node, skip_child)) continue;
          next.push_back(node);
        }
      }
      Normalize(&next);
      contexts = std::move(next);
      if (contexts.empty()) break;
    }
    XMLQ_GUARD_TICK(guard_, 0);  // surface a trip from the inner walks
    return contexts;
  }

 private:
  /// True iff every child branch of `v` other than `skip` has a full
  /// embedding under `node`.
  bool EvalBranchesExcept(VertexId v, xml::NodeId node, VertexId skip) {
    for (VertexId c : pattern_.vertex(v).children) {
      if (c == skip) continue;
      if (!ExistsEmbedding(c, node)) return false;
    }
    return true;
  }

  /// True iff the subtree pattern rooted at `v` embeds under `context`.
  /// Returns false (no embedding) once the guard trips; the caller surfaces
  /// the sticky status.
  bool ExistsEmbedding(VertexId v, xml::NodeId context) {
    for (xml::NodeId node :
         AxisStep(doc_, context, pattern_.vertex(v), guard_, stats_)) {
      if (guard_ != nullptr && guard_->Tick(1)) return false;
      if (!EvalVertexPredicates(pattern_.vertex(v), doc_, node, stats_)) {
        continue;
      }
      bool all = true;
      for (VertexId c : pattern_.vertex(v).children) {
        if (!ExistsEmbedding(c, node)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  const xml::Document& doc_;
  const PatternGraph& pattern_;
  const ResourceGuard* guard_;
  OpStats* stats_;
};

}  // namespace

Result<NodeList> NaiveMatchPattern(const xml::Document& doc,
                                   const PatternGraph& pattern,
                                   const ResourceGuard* guard,
                                   OpStats* stats) {
  if (XMLQ_FAULT("exec.naive.match")) {
    return Status::Internal("injected fault: exec.naive.match");
  }
  XMLQ_RETURN_IF_ERROR(pattern.Validate());
  NaiveMatcher matcher(doc, pattern, guard, stats);
  return matcher.Run();
}

Result<algebra::NestedList> MatchPatternNested(const xml::Document& doc,
                                               const PatternGraph& pattern,
                                               const ResourceGuard* guard,
                                               OpStats* stats) {
  XMLQ_RETURN_IF_ERROR(pattern.Validate());
  // Bindings per output vertex: evaluate the same pattern once per output
  // (each evaluation enforces the full twig, so every binding is part of a
  // complete embedding).
  NodeList all;
  for (const VertexId out : pattern.OutputVertices()) {
    PatternGraph solo = pattern;
    for (VertexId v = 0; v < solo.VertexCount(); ++v) {
      solo.mutable_vertex(v).output = v == out;
    }
    XMLQ_ASSIGN_OR_RETURN(NodeList bindings,
                          NaiveMatchPattern(doc, solo, guard, stats));
    all.insert(all.end(), bindings.begin(), bindings.end());
  }
  Normalize(&all);

  // Subtree ends for containment tests (pre-order ids: the subtree of n is
  // the id range [n, end[n]]).
  XMLQ_GUARD_CHARGE(guard, doc.NodeCount() * sizeof(xml::NodeId));
  XMLQ_GUARD_TICK(guard, doc.NodeCount());
  std::vector<xml::NodeId> end(doc.NodeCount());
  for (size_t i = 0; i < end.size(); ++i) end[i] = static_cast<xml::NodeId>(i);
  for (size_t i = end.size(); i-- > 1;) {
    const xml::NodeId parent = doc.Parent(static_cast<xml::NodeId>(i));
    if (parent != xml::kNullNode && end[i] > end[parent]) {
      end[parent] = end[i];
    }
  }

  // Stack-based nesting over the document-ordered bindings.
  algebra::NestedList result;
  std::vector<std::pair<xml::NodeId, algebra::NestedList*>> stack;
  for (const xml::NodeId n : all) {
    while (!stack.empty() && end[stack.back().first] < n) stack.pop_back();
    algebra::NestedList* parent_list =
        stack.empty() ? &result : stack.back().second;
    parent_list->push_back(
        algebra::NestedItem(algebra::Item(algebra::NodeRef{&doc, n})));
    stack.emplace_back(n, &parent_list->back().children);
  }
  return result;
}

}  // namespace xmlq::exec
