#ifndef XMLQ_EXEC_NAIVE_NAV_H_
#define XMLQ_EXEC_NAIVE_NAV_H_

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/algebra/value.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/node_stream.h"

namespace xmlq::exec {

/// Naive navigational pattern matching over the DOM tree (the classic
/// recursive-descent strategy of [10] and the stand-in for the commercial
/// native system the paper compares against). Correct and simple; used as
/// the reference oracle in property tests and as the baseline engine in the
/// benchmarks. Worst-case exponential in the query size for pathological
/// `//a//a//...` chains (paper §3.2 / [4]) — exercised by bench E5.
///
/// `pattern` must have a sole output vertex. Returns the output-vertex
/// bindings, sorted in document order without duplicates.
///
/// `stats` (optional, here and below) counts every DOM node examined in
/// `nodes_visited` and the predicate string-value bytes in `bytes_touched`.
Result<NodeList> NaiveMatchPattern(const xml::Document& doc,
                                   const algebra::PatternGraph& pattern,
                                   const ResourceGuard* guard = nullptr,
                                   OpStats* stats = nullptr);

/// Nodes reachable from `context` via one step (axis + vertex node test,
/// without predicates), in document order. Exposed for reuse by the
/// logical-plan interpreter's πs (Navigate) operator.
///
/// Axis semantics: kDescendant from an element/document node yields proper
/// descendants for element tests, and descendant-or-self attributes for
/// attribute tests (matching `//@a` expansion).
/// `guard` (optional) is ticked per visited node; on a trip the walk stops
/// early with partial output and the caller must check the guard's status.
NodeList AxisStep(const xml::Document& doc, xml::NodeId context,
                  const algebra::PatternVertex& vertex,
                  const ResourceGuard* guard = nullptr,
                  OpStats* stats = nullptr);

/// The full τ signature of Table 1: Tree × PatternGraph → NestedList.
/// Every vertex in the pattern's output set O contributes its bindings; the
/// result nests binding b under binding a when a is the nearest output-
/// binding ancestor of b (the paper's rule: "two nodes are immediately
/// nested in the output nested list iff they are in immediate
/// ancestor-descendant relationship in the input tree").
Result<algebra::NestedList> MatchPatternNested(
    const xml::Document& doc, const algebra::PatternGraph& pattern,
    const ResourceGuard* guard = nullptr, OpStats* stats = nullptr);

/// Per-node predicate filter: true iff the filter graph embeds *at*
/// `context` — the root vertex's value predicates hold on the context's
/// string-value and every child branch has an embedding below/at it. The
/// root vertex's label and kind are ignored (it stands for the context
/// item). Implements the kPatternFilter operator and XQuery path
/// predicates over variable-rooted paths.
bool MatchesFilter(const xml::Document& doc, xml::NodeId context,
                   const algebra::PatternGraph& filter,
                   OpStats* stats = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_NAIVE_NAV_H_
