#include "xmlq/exec/node_stream.h"

#include <algorithm>

#include "xmlq/exec/op_stats.h"

namespace xmlq::exec {

void Normalize(NodeList* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

algebra::Sequence ToSequence(const xml::Document& doc,
                             const NodeList& nodes) {
  algebra::Sequence seq;
  seq.reserve(nodes.size());
  for (xml::NodeId id : nodes) {
    seq.push_back(algebra::Item(algebra::NodeRef{&doc, id}));
  }
  return seq;
}

NodeList ToNodeList(const xml::Document& doc, const algebra::Sequence& seq) {
  NodeList nodes;
  for (const algebra::Item& item : seq) {
    if (item.IsNode() && item.node().doc == &doc) {
      nodes.push_back(item.node().id);
    }
  }
  Normalize(&nodes);
  return nodes;
}

bool EvalVertexPredicates(const algebra::PatternVertex& vertex,
                          const xml::Document& doc, xml::NodeId node,
                          OpStats* stats) {
  if (vertex.predicates.empty()) return true;
  const std::string value = doc.StringValue(node);
  if (stats != nullptr) stats->bytes_touched += value.size();
  for (const algebra::ValuePredicate& pred : vertex.predicates) {
    if (!pred.Eval(value)) return false;
  }
  return true;
}

bool MatchesNodeTest(const algebra::PatternVertex& vertex,
                     const xml::Document& doc, xml::NodeId node) {
  if (vertex.is_root) return node == doc.root();
  const xml::NodeKind kind = doc.Kind(node);
  if (vertex.is_attribute) {
    if (kind != xml::NodeKind::kAttribute) return false;
  } else {
    if (kind != xml::NodeKind::kElement) return false;
  }
  if (vertex.label == "*") return true;
  return doc.NameStr(node) == vertex.label;
}

}  // namespace xmlq::exec
