#ifndef XMLQ_EXEC_NODE_STREAM_H_
#define XMLQ_EXEC_NODE_STREAM_H_

#include <string>
#include <vector>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/algebra/value.h"
#include "xmlq/storage/region_index.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/storage/value_index.h"
#include "xmlq/xml/document.h"

namespace xmlq::exec {

struct OpStats;  // exec/op_stats.h

/// A document together with the physical representations the different
/// engines consume. The DOM tree is always present; the succinct store and
/// the region index are built at load time (see api::Database). All three
/// views agree on node identity (pre-order NodeIds).
struct IndexedDocument {
  const xml::Document* dom = nullptr;
  const storage::SuccinctDocument* succinct = nullptr;
  const storage::RegionIndex* regions = nullptr;
  const storage::ValueIndex* values = nullptr;  // optional
};

/// Sorted, duplicate-free list of NodeIds (document order).
using NodeList = std::vector<xml::NodeId>;

/// Sorts and dedups in place.
void Normalize(NodeList* nodes);

/// Converts a node list of `doc` into a Sequence of node items.
algebra::Sequence ToSequence(const xml::Document& doc, const NodeList& nodes);

/// Extracts the node ids of `seq` that belong to `doc` (ignoring atomics and
/// foreign nodes), normalized.
NodeList ToNodeList(const xml::Document& doc, const algebra::Sequence& seq);

/// Evaluates a pattern-vertex value constraint against a DOM node (uses the
/// node's XPath string-value). When `stats` is given, the materialized
/// string-value bytes are charged to `bytes_touched`.
bool EvalVertexPredicates(const algebra::PatternVertex& vertex,
                          const xml::Document& doc, xml::NodeId node,
                          OpStats* stats = nullptr);

/// True if `node` matches the vertex's kind + label test (not predicates).
bool MatchesNodeTest(const algebra::PatternVertex& vertex,
                     const xml::Document& doc, xml::NodeId node);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_NODE_STREAM_H_
