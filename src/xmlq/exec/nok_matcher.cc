#include "xmlq/exec/nok_matcher.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "xmlq/exec/morsel.h"

namespace xmlq::exec {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::PatternVertex;
using algebra::VertexId;
using storage::SuccinctDocument;
using xpath::NokPart;

constexpr uint8_t kNoLocal = 0xFF;

/// Per-part compiled matching tables. Locals index the part's vertices in
/// part.vertices order (head = local 0); activation and satisfaction are
/// tracked in 64-bit masks.
struct CompiledPart {
  std::vector<VertexId> originals;
  std::vector<uint8_t> parent_local;     // kNoLocal for the head
  std::vector<uint64_t> required_mask;   // children-in-part bits per local
  std::vector<uint8_t> has_predicates;
  std::vector<uint8_t> requested_slot;   // index into `requested`, or 0xFF
  // Activation lookup: candidate locals per node label/kind.
  std::vector<uint64_t> label_masks;     // indexed by NameId
  uint64_t wildcard_element_mask = 0;
  uint64_t wildcard_attribute_mask = 0;
  uint64_t root_mask = 0;
  uint64_t predicate_mask = 0;
  uint64_t attribute_bits = 0;  // locals that are attribute vertices
  bool never_matches = false;  // some label absent from the document
};

Result<CompiledPart> Compile(const SuccinctDocument& doc,
                             const PatternGraph& graph, const NokPart& part,
                             std::span<const VertexId> requested) {
  if (part.vertices.size() > 64) {
    return Status::Unsupported("NoK part exceeds 64 vertices");
  }
  CompiledPart out;
  out.originals = part.vertices;
  std::vector<uint8_t> local_of(graph.VertexCount(), kNoLocal);
  for (size_t i = 0; i < part.vertices.size(); ++i) {
    local_of[part.vertices[i]] = static_cast<uint8_t>(i);
  }
  const size_t k = part.vertices.size();
  out.parent_local.assign(k, kNoLocal);
  out.required_mask.assign(k, 0);
  out.has_predicates.assign(k, 0);
  out.requested_slot.assign(k, 0xFF);
  out.label_masks.assign(doc.pool().size(), 0);
  for (size_t i = 0; i < k; ++i) {
    const VertexId v = part.vertices[i];
    const PatternVertex& vertex = graph.vertex(v);
    const uint64_t bit = uint64_t{1} << i;
    if (v != part.head) {
      if (vertex.incoming_axis != Axis::kChild &&
          vertex.incoming_axis != Axis::kAttribute) {
        return Status::Unsupported(
            "NoK scan supports child/attribute arcs only");
      }
      const uint8_t p = local_of[vertex.parent];
      assert(p != kNoLocal);
      out.parent_local[i] = p;
      out.required_mask[p] |= bit;
    }
    if (!vertex.predicates.empty()) {
      out.has_predicates[i] = 1;
      out.predicate_mask |= bit;
    }
    if (vertex.is_attribute) out.attribute_bits |= bit;
    if (vertex.is_root) {
      out.root_mask |= bit;
    } else if (vertex.label == "*") {
      if (vertex.is_attribute) {
        out.wildcard_attribute_mask |= bit;
      } else {
        out.wildcard_element_mask |= bit;
      }
    } else {
      const xml::NameId id = doc.pool().Find(vertex.label);
      if (id == xml::kInvalidName) {
        out.never_matches = true;
      } else {
        out.label_masks[id] |= bit;
      }
    }
  }
  for (size_t r = 0; r < requested.size(); ++r) {
    const uint8_t local = local_of[requested[r]];
    if (local == kNoLocal) {
      return Status::InvalidArgument(
          "requested vertex is not a member of the part");
    }
    out.requested_slot[local] = static_cast<uint8_t>(r);
  }
  return out;
}

struct Entry {
  uint8_t vertex;   // local id of the bound vertex
  uint8_t control;  // local id of the pattern ancestor the current node
                    // is expected to match
  uint32_t rank;    // bound document node
};

/// One open node on the scan stack. Frames are pooled and reused across the
/// whole scan, so the steady-state hot path performs no allocations.
struct Frame {
  uint32_t rank = 0;
  uint64_t active = 0;
  uint64_t child_sat[64];  // per active local vertex (cleared lazily)
  std::vector<Entry> buffer;
};

class Scanner {
 public:
  Scanner(const SuccinctDocument& doc, const PatternGraph& graph,
          const CompiledPart& part, size_t requested_count,
          const ResourceGuard* guard, OpStats* stats)
      : doc_(doc), graph_(graph), part_(part), guard_(guard), stats_(stats) {
    result_.pairs.resize(requested_count);
    result_.bindings.resize(requested_count);
  }

  /// Whole-document scan: the head may anchor at any matching node (except
  /// a root-vertex head, which only matches the document node — enabling
  /// subtree skipping below inactive frames).
  NokMatchResult Run() {
    // A root-labeled head can never anchor below depth 0.
    const bool head_anchors_anywhere = (part_.root_mask & 1) == 0;
    ScanWindow(0, doc_.bp().size() - 1, 0, head_anchors_anywhere);
    Finish();
    return std::move(result_);
  }

  /// Localized scan: for each candidate, scan only its subtree with the
  /// head anchored at the subtree root. Nested candidates are scanned by
  /// their own (inner) windows, so each window rejects non-root heads.
  NokMatchResult RunOnCandidates(std::span<const uint32_t> candidates) {
    const storage::BalancedParens& bp = doc_.bp();
    anchor_depth_only_ = true;
    for (const uint32_t head_rank : candidates) {
      if (tripped_) break;
      const size_t begin = bp.Select1(head_rank);
      const size_t end = bp.FindClose(begin);
      ScanWindow(begin, end, head_rank, /*head_anchors_anywhere=*/false);
      assert(tripped_ || depth_ == 0);
    }
    Finish();
    return std::move(result_);
  }

  bool tripped() const { return tripped_; }

 private:
  /// Scans BP positions [begin, end]. When the head cannot anchor below the
  /// current position, a frame that activates nothing is popped immediately
  /// and its whole subtree skipped via FindClose — the scan then touches
  /// only the "relevant" spine of the document.
  void ScanWindow(size_t begin, size_t end, uint32_t first_rank,
                  bool head_anchors_anywhere) {
    const storage::BalancedParens& bp = doc_.bp();
    uint32_t next_rank = first_rank;
    size_t pos = begin;
    while (pos <= end) {
      if (!bp.IsOpen(pos)) {
        Close();
        ++pos;
        continue;
      }
      // One guard step per scanned node — the NoK hot path. On a trip the
      // scan aborts with partial state; MatchNokPart surfaces the sticky
      // error before any result escapes.
      if (guard_ != nullptr && guard_->Tick(1)) {
        tripped_ = true;
        return;
      }
      Open(next_rank++);
      if (!head_anchors_anywhere && frames_[depth_ - 1].active == 0) {
        --depth_;  // nothing can match anywhere in this subtree
        ++pops_;
        if (!bp.IsOpen(pos + 1)) {  // leaf: "()"
          pos += 2;
          continue;
        }
        const size_t close = bp.FindClose(pos);
        next_rank += static_cast<uint32_t>((close - pos + 1) / 2) - 1;
        pos = close + 1;
        continue;
      }
      ++pos;
    }
  }

  void Open(uint32_t rank) {
    if (depth_ == frames_.size()) frames_.emplace_back();
    Frame& frame = frames_[depth_];
    frame.rank = rank;
    frame.buffer.clear();

    // Candidate vertices by node test (label + kind).
    uint64_t candidates = 0;
    switch (doc_.Kind(rank)) {
      case xml::NodeKind::kElement: {
        const xml::NameId label = doc_.Label(rank);
        candidates = part_.wildcard_element_mask |
                     (label < part_.label_masks.size()
                          ? part_.label_masks[label]
                          : 0);
        // Attribute vertices never match elements; labels are disjoint by
        // construction (attribute bits only live in attribute masks).
        candidates &= ~part_.attribute_bits;
        break;
      }
      case xml::NodeKind::kAttribute: {
        const xml::NameId label = doc_.Label(rank);
        candidates = part_.wildcard_attribute_mask |
                     (label < part_.label_masks.size()
                          ? part_.label_masks[label]
                          : 0);
        candidates &= part_.attribute_bits;
        break;
      }
      case xml::NodeKind::kDocument:
        candidates = part_.root_mask;
        break;
      default:
        break;
    }
    uint64_t active = 0;
    if (candidates != 0) {
      // Anchoring: the head (bit 0) matches anywhere (or, in a localized
      // window, only at the window root); other vertices need their pattern
      // parent active on the parent frame.
      uint64_t allowed =
          (!anchor_depth_only_ || depth_ == 0) ? uint64_t{1} : 0;
      if (depth_ > 0) {
        uint64_t parent_active = frames_[depth_ - 1].active;
        while (parent_active != 0) {
          const int p = std::countr_zero(parent_active);
          parent_active &= parent_active - 1;
          allowed |= part_.required_mask[p];
        }
      }
      active = candidates & allowed;
      // Lazily clear satisfaction slots for the vertices that activated.
      uint64_t m = active;
      while (m != 0) {
        const int v = std::countr_zero(m);
        m &= m - 1;
        frame.child_sat[v] = 0;
      }
    }
    frame.active = active;
    ++depth_;
    ++visited_;
    ++pushes_;
  }

  bool PredicatesHold(size_t local, uint32_t rank, bool* value_cached,
                      std::string* value) {
    if (!part_.has_predicates[local]) return true;
    if (!*value_cached) {
      *value = doc_.StringValue(rank);
      *value_cached = true;
      bytes_ += value->size();
    }
    for (const algebra::ValuePredicate& pred :
         graph_.vertex(part_.originals[local]).predicates) {
      if (!pred.Eval(*value)) return false;
    }
    return true;
  }

  void Close() {
    ++pops_;
    Frame& frame = frames_[--depth_];
    Frame* parent = depth_ > 0 ? &frames_[depth_ - 1] : nullptr;
    if (frame.active == 0 && frame.buffer.empty()) return;

    // Which active vertices are fully satisfied at this node?
    uint64_t fully = 0;
    bool value_cached = false;
    std::string value;
    for (uint64_t m = frame.active; m != 0; m &= m - 1) {
      const size_t v = static_cast<size_t>(std::countr_zero(m));
      if ((frame.child_sat[v] & part_.required_mask[v]) !=
          part_.required_mask[v]) {
        continue;
      }
      if (!PredicatesHold(v, frame.rank, &value_cached, &value)) continue;
      fully |= uint64_t{1} << v;
    }

    // Resolve buffered tentative bindings.
    for (const Entry& e : frame.buffer) {
      if (((fully >> e.control) & 1) == 0) continue;  // embedding failed
      if (e.control == 0) {
        Emit(e.vertex, frame.rank, e.rank);
      } else if (parent != nullptr) {
        parent->buffer.push_back(
            Entry{e.vertex, part_.parent_local[e.control], e.rank});
      }
    }

    // Propagate full satisfaction upward and record new bindings.
    for (uint64_t m = fully; m != 0; m &= m - 1) {
      const size_t v = static_cast<size_t>(std::countr_zero(m));
      if (v == 0) {
        result_.head_matches.push_back(frame.rank);
        if (part_.requested_slot[0] != 0xFF) {
          Emit(0, frame.rank, frame.rank);
        }
        continue;
      }
      if (parent != nullptr) {
        const uint8_t p = part_.parent_local[v];
        if ((parent->active >> p) & 1) {
          parent->child_sat[p] |= uint64_t{1} << v;
        }
        if (part_.requested_slot[v] != 0xFF) {
          parent->buffer.push_back(
              Entry{static_cast<uint8_t>(v), p, frame.rank});
        }
      }
    }
  }

  void Emit(uint8_t vertex, uint32_t head_rank, uint32_t rank) {
    const uint8_t slot = part_.requested_slot[vertex];
    assert(slot != 0xFF);
    result_.pairs[slot].push_back(JoinPair{head_rank, rank});
    result_.bindings[slot].push_back(rank);
  }

  void Finish() {
    std::sort(result_.head_matches.begin(), result_.head_matches.end());
    result_.head_matches.erase(std::unique(result_.head_matches.begin(),
                                           result_.head_matches.end()),
                               result_.head_matches.end());
    for (auto& pairs : result_.pairs) {
      std::sort(pairs.begin(), pairs.end(),
                [](const JoinPair& a, const JoinPair& b) {
                  if (a.ancestor != b.ancestor) return a.ancestor < b.ancestor;
                  return a.descendant < b.descendant;
                });
      pairs.erase(std::unique(pairs.begin(), pairs.end(),
                              [](const JoinPair& a, const JoinPair& b) {
                                return a.ancestor == b.ancestor &&
                                       a.descendant == b.descendant;
                              }),
                  pairs.end());
    }
    for (NodeList& list : result_.bindings) Normalize(&list);
    if (stats_ != nullptr) {
      stats_->nodes_visited += visited_;
      stats_->stack_pushes += pushes_;
      stats_->stack_pops += pops_;
      stats_->bytes_touched += bytes_;
    }
  }

  const SuccinctDocument& doc_;
  const PatternGraph& graph_;
  const CompiledPart& part_;
  const ResourceGuard* guard_ = nullptr;
  OpStats* stats_ = nullptr;
  uint64_t visited_ = 0;
  uint64_t pushes_ = 0;
  uint64_t pops_ = 0;
  uint64_t bytes_ = 0;
  std::vector<Frame> frames_;
  size_t depth_ = 0;
  bool anchor_depth_only_ = false;
  bool tripped_ = false;
  NokMatchResult result_;
};

/// The degenerate single-vertex localized path: the candidates *are* the
/// matches (the tag stream is exact); only value predicates need checking.
/// Shared by the serial and chunked entries — candidates arrive in document
/// order, so concatenating chunk outputs in chunk order reproduces the
/// serial result and counters exactly.
Status MatchSingleVertexCandidates(const SuccinctDocument& doc,
                                   const PatternVertex& head,
                                   std::span<const uint32_t> candidates,
                                   size_t requested_count,
                                   const ResourceGuard* guard, OpStats* stats,
                                   NokMatchResult* out) {
  out->pairs.resize(requested_count);
  out->bindings.resize(requested_count);
  for (const uint32_t rank : candidates) {
    XMLQ_GUARD_TICK(guard, 1);
    if (stats != nullptr) ++stats->nodes_visited;
    if (!head.predicates.empty()) {
      const std::string value = doc.StringValue(rank);
      if (stats != nullptr) stats->bytes_touched += value.size();
      bool ok = true;
      for (const algebra::ValuePredicate& pred : head.predicates) {
        if (!pred.Eval(value)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
    }
    out->head_matches.push_back(rank);
    for (size_t r = 0; r < requested_count; ++r) {
      out->pairs[r].push_back(JoinPair{rank, rank});
      out->bindings[r].push_back(rank);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<NokMatchResult> MatchNokPart(const SuccinctDocument& doc,
                                    const PatternGraph& graph,
                                    const NokPart& part,
                                    std::span<const VertexId> requested,
                                    const std::vector<uint32_t>* head_candidates,
                                    const ResourceGuard* guard,
                                    OpStats* stats) {
  XMLQ_ASSIGN_OR_RETURN(CompiledPart compiled,
                        Compile(doc, graph, part, requested));
  if (compiled.never_matches) {
    NokMatchResult empty;
    empty.pairs.resize(requested.size());
    empty.bindings.resize(requested.size());
    return empty;
  }
  Scanner scanner(doc, graph, compiled, requested.size(), guard, stats);
  if (head_candidates != nullptr) {
    if (part.vertices.size() == 1) {
      NokMatchResult out;
      XMLQ_RETURN_IF_ERROR(MatchSingleVertexCandidates(
          doc, graph.vertex(part.head), *head_candidates, requested.size(),
          guard, stats, &out));
      return out;
    }
    NokMatchResult result = scanner.RunOnCandidates(*head_candidates);
    XMLQ_GUARD_TICK(guard, 0);  // surface a mid-scan trip
    return result;
  }
  NokMatchResult result = scanner.Run();
  XMLQ_GUARD_TICK(guard, 0);  // surface a mid-scan trip
  return result;
}

Result<NokMatchResult> MatchNokPartChunked(
    const SuccinctDocument& doc, const PatternGraph& graph,
    const NokPart& part, std::span<const VertexId> requested,
    std::span<const uint32_t> head_candidates, const ParallelSpec& par,
    const ResourceGuard* guard, OpStats* stats) {
  XMLQ_ASSIGN_OR_RETURN(CompiledPart compiled,
                        Compile(doc, graph, part, requested));
  NokMatchResult merged;
  merged.pairs.resize(requested.size());
  merged.bindings.resize(requested.size());
  if (compiled.never_matches) return merged;

  // Chunk sizing: auto mode aims for a few chunks per lane with a floor
  // that keeps small candidate lists effectively serial; an explicit
  // morsel_elements (the adversarial differential config) is honored down
  // to one candidate per chunk.
  const size_t n = head_candidates.size();
  std::vector<size_t> bounds =
      par.morsel_elements == 0
          ? SplitEvenly(n, 256, size_t{par.parallelism} * 4)
          : SplitEvenly(n, par.morsel_elements, n);
  const size_t chunks = bounds.size() - 1;
  const bool degenerate = part.vertices.size() == 1;

  LaneGuards lanes(guard, par.parallelism, chunks);
  std::vector<NokMatchResult> parts(chunks);
  std::vector<OpStats> sinks(stats != nullptr ? chunks : 0);
  std::vector<Status> errors(chunks);
  par.pool->Run(chunks, par.parallelism, [&](size_t c, uint32_t lane) {
    OpStats* sink = stats != nullptr ? &sinks[c] : nullptr;
    const ResourceGuard* lane_guard = lanes.lane(lane);
    const std::span<const uint32_t> span =
        head_candidates.subspan(bounds[c], bounds[c + 1] - bounds[c]);
    if (degenerate) {
      errors[c] = MatchSingleVertexCandidates(doc, graph.vertex(part.head),
                                              span, requested.size(),
                                              lane_guard, sink, &parts[c]);
      return;
    }
    Scanner scanner(doc, graph, compiled, requested.size(), lane_guard, sink);
    parts[c] = scanner.RunOnCandidates(span);
    if (scanner.tripped() && lane_guard != nullptr) {
      errors[c] = lane_guard->status();
    }
  });
  lanes.Absorb();
  XMLQ_GUARD_TICK(guard, 0);  // re-check deadline/cancel/budget on the parent
  for (const Status& st : errors) {
    if (!st.ok()) return st;
  }
  // Deterministic merge in chunk order. Candidates ascend in document
  // order, so concatenation preserves the serial ordering for heads and
  // pairs; bindings can overlap across chunks (nested candidate subtrees),
  // so they get the same Normalize the serial Finish applies. Stats merge
  // in chunk order too (sums, so the total is schedule-independent).
  for (size_t c = 0; c < chunks; ++c) {
    NokMatchResult& p = parts[c];
    merged.head_matches.insert(merged.head_matches.end(),
                               p.head_matches.begin(), p.head_matches.end());
    for (size_t r = 0; r < requested.size(); ++r) {
      merged.pairs[r].insert(merged.pairs[r].end(), p.pairs[r].begin(),
                             p.pairs[r].end());
      merged.bindings[r].insert(merged.bindings[r].end(),
                                p.bindings[r].begin(), p.bindings[r].end());
    }
  }
  if (!degenerate) {
    // Re-run the global Finish invariants over the concatenation.
    std::sort(merged.head_matches.begin(), merged.head_matches.end());
    merged.head_matches.erase(
        std::unique(merged.head_matches.begin(), merged.head_matches.end()),
        merged.head_matches.end());
    for (auto& pairs : merged.pairs) {
      std::sort(pairs.begin(), pairs.end(),
                [](const JoinPair& a, const JoinPair& b) {
                  if (a.ancestor != b.ancestor) return a.ancestor < b.ancestor;
                  return a.descendant < b.descendant;
                });
      pairs.erase(std::unique(pairs.begin(), pairs.end(),
                              [](const JoinPair& a, const JoinPair& b) {
                                return a.ancestor == b.ancestor &&
                                       a.descendant == b.descendant;
                              }),
                  pairs.end());
    }
    for (NodeList& list : merged.bindings) Normalize(&list);
  }
  if (stats != nullptr) {
    for (const OpStats& sink : sinks) stats->MergeFrom(sink);
  }
  return merged;
}

Result<NodeList> MatchNokPattern(const SuccinctDocument& doc,
                                 const PatternGraph& graph,
                                 const ResourceGuard* guard, OpStats* stats) {
  const VertexId output = graph.SoleOutput();
  if (output == algebra::kNoVertex) {
    return Status::InvalidArgument("pattern must have a sole output vertex");
  }
  const xpath::NokPartition partition = xpath::PartitionNok(graph);
  if (partition.parts.size() != 1) {
    return Status::InvalidArgument(
        "MatchNokPattern requires a pattern that is a single NoK part");
  }
  const VertexId requested[] = {output};
  XMLQ_ASSIGN_OR_RETURN(NokMatchResult result,
                        MatchNokPart(doc, graph, partition.parts[0], requested,
                                     nullptr, guard, stats));
  return std::move(result.bindings[0]);
}

}  // namespace xmlq::exec
