#ifndef XMLQ_EXEC_NOK_MATCHER_H_
#define XMLQ_EXEC_NOK_MATCHER_H_

#include <span>
#include <vector>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/morsel.h"
#include "xmlq/exec/node_stream.h"
#include "xmlq/exec/structural_join.h"
#include "xmlq/storage/succinct_doc.h"
#include "xmlq/xpath/nok_partition.h"

namespace xmlq::exec {

/// Result of matching one NoK part against a document.
struct NokMatchResult {
  /// Distinct head bindings (nodes where the whole part embeds, rooted at
  /// the head vertex), in document order.
  NodeList head_matches;
  /// For each requested vertex (parallel to the `requested` argument):
  /// (head binding, vertex binding) pairs, sorted, distinct. The head
  /// binding is the unique part anchor the vertex binding belongs to.
  std::vector<std::vector<JoinPair>> pairs;
  /// For each requested vertex: distinct vertex bindings in document order.
  std::vector<NodeList> bindings;
};

/// Matches a NoK part — a fragment of `graph` whose internal arcs are all
/// child/attribute relations — in a *single pre-order scan* of the balanced-
/// parentheses structure, with no structural joins (paper §4.2).
///
/// The scan maintains, per open node, the set of pattern vertices whose
/// root-to-node path condition holds ("active"), accumulates which pattern
/// children were satisfied as the subtree closes, and buffers tentative
/// bindings that are confirmed or discarded when their controlling ancestor
/// vertex resolves. Because all part arcs are local, a vertex at pattern
/// depth k below the head can only match at tree depth k below a head
/// match, which makes the confirmation chain unambiguous.
///
/// Cost: O(document nodes × part size); the scan order equals streaming XML
/// arrival order, so the same matcher powers the streaming evaluation
/// experiment (E3).
///
/// Returns kUnsupported if the part contains a following-sibling arc (not
/// produced by the XPath compiler) or more than 64 vertices.
///
/// When `head_candidates` is non-null, the scan is *localized*: instead of
/// one pass over the whole document, each candidate's subtree is scanned
/// with the head anchored at the subtree root (the paper's navigational
/// evaluation — jump to a candidate via the tag stream, then verify the NoK
/// pattern by local navigation). Candidates must be pre-order ranks in
/// document order, and must include every node the head could match (the
/// per-tag stream from the region index is exactly that).
/// `guard` (optional) is ticked once per scanned node; on a trip the scan
/// aborts and the guard's sticky status is returned.
///
/// `stats` (optional) receives observability counters: `nodes_visited` is
/// one per node the scan opens — a whole-document scan opens each node at
/// most once (the subtree-skip optimization can only lower it below the
/// node count, never raise it), `stack_pushes`/`stack_pops` track the scan's
/// frame stack, and `bytes_touched` the string-values materialized for
/// value predicates.
Result<NokMatchResult> MatchNokPart(
    const storage::SuccinctDocument& doc, const algebra::PatternGraph& graph,
    const xpath::NokPart& part, std::span<const algebra::VertexId> requested,
    const std::vector<uint32_t>* head_candidates = nullptr,
    const ResourceGuard* guard = nullptr, OpStats* stats = nullptr);

/// Parallel variant of the localized-candidate path (DESIGN.md §12): splits
/// `head_candidates` into contiguous document-order chunks, scans each chunk
/// on a morsel-pool lane with its own forked guard and OpStats sink, then
/// merges in chunk order and re-applies the global result invariants
/// (sort/unique heads and pairs, Normalize bindings — nested candidate
/// subtrees can bind the same node from two chunks). The merged result and
/// the summed counters are byte-identical to the serial localized scan.
/// `par` must be enabled(); errors surface as the first failing chunk in
/// chunk order.
Result<NokMatchResult> MatchNokPartChunked(
    const storage::SuccinctDocument& doc, const algebra::PatternGraph& graph,
    const xpath::NokPart& part, std::span<const algebra::VertexId> requested,
    std::span<const uint32_t> head_candidates, const ParallelSpec& par,
    const ResourceGuard* guard = nullptr, OpStats* stats = nullptr);

/// Convenience wrapper: matches a pattern that is a single NoK part (no
/// descendant arcs except the head's incoming arc) and returns the sole
/// output vertex's bindings. Used by σs-style scans and tests.
Result<NodeList> MatchNokPattern(const storage::SuccinctDocument& doc,
                                 const algebra::PatternGraph& graph,
                                 const ResourceGuard* guard = nullptr,
                                 OpStats* stats = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_NOK_MATCHER_H_
