#include "xmlq/exec/op_stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace xmlq::exec {

using algebra::LogicalExpr;
using algebra::LogicalOp;

void OpStats::MergeFrom(const OpStats& other) {
  invocations += other.invocations;
  input_rows += other.input_rows;
  output_rows += other.output_rows;
  nodes_visited += other.nodes_visited;
  stack_pushes += other.stack_pushes;
  stack_pops += other.stack_pops;
  index_probes += other.index_probes;
  bytes_touched += other.bytes_touched;
  wall_nanos += other.wall_nanos;
}

bool OpStats::DeterministicEquals(const OpStats& other) const {
  return invocations == other.invocations && input_rows == other.input_rows &&
         output_rows == other.output_rows &&
         nodes_visited == other.nodes_visited &&
         stack_pushes == other.stack_pushes &&
         stack_pops == other.stack_pops &&
         index_probes == other.index_probes &&
         bytes_touched == other.bytes_touched;
}

double ProfileNode::ActualRows() const {
  return static_cast<double>(stats.output_rows);
}

double ProfileNode::QError() const {
  if (!estimate.HasRows()) return 0;
  const double est = std::max(estimate.rows, 1.0);
  const double actual = std::max(ActualRows(), 1.0);
  return std::max(est / actual, actual / est);
}

std::string OperatorLabel(const LogicalExpr& expr) {
  std::string out(algebra::LogicalOpName(expr.op));
  switch (expr.op) {
    case LogicalOp::kDocScan:
    case LogicalOp::kVarRef:
    case LogicalOp::kFunction:
      out += "(" + expr.str + ")";
      break;
    case LogicalOp::kSelectTag:
      out += "(tag=" + expr.str + ")";
      break;
    case LogicalOp::kNavigate:
      out += "(";
      out += algebra::AxisName(expr.axis);
      out += "::" + (expr.str.empty() ? "*" : expr.str) + ")";
      break;
    case LogicalOp::kStructuralJoin:
      out += "(";
      out += algebra::AxisName(expr.axis);
      out += expr.return_ancestor ? ", return=ancestor)"
                                  : ", return=descendant)";
      break;
    case LogicalOp::kSelectValue:
      out += "(" + expr.predicate.ToString() + ")";
      break;
    case LogicalOp::kBinary:
      out += "(";
      out += algebra::BinaryOpName(expr.binary);
      out += ")";
      break;
    case LogicalOp::kTreePattern:
    case LogicalOp::kPatternFilter:
      if (expr.pattern != nullptr) {
        out += "(" + std::to_string(expr.pattern->VertexCount()) + " vertices)";
      }
      break;
    default:
      break;
  }
  return out;
}

namespace {

void BuildSkeleton(const LogicalExpr& expr, ProfileNode* node) {
  node->label = OperatorLabel(expr);
  node->children.resize(expr.children.size());
  for (size_t i = 0; i < expr.children.size(); ++i) {
    BuildSkeleton(*expr.children[i], &node->children[i]);
  }
}

/// Registers node addresses after the tree shape is final (children vectors
/// are never resized again, so the pointers stay valid).
void IndexNodes(const LogicalExpr& expr, ProfileNode* node,
                std::map<const LogicalExpr*, ProfileNode*>* by_expr) {
  (*by_expr)[&expr] = node;
  for (size_t i = 0; i < expr.children.size(); ++i) {
    IndexNodes(*expr.children[i], &node->children[i], by_expr);
  }
}

void FinalizeNode(ProfileNode* node) {
  uint64_t input = 0;
  for (ProfileNode& child : node->children) {
    FinalizeNode(&child);
    input += child.stats.output_rows;
  }
  node->stats.input_rows = input;
}

void AppendCounter(std::string* out, const char* name, uint64_t value) {
  if (value == 0) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, name, value);
  out->append(buf);
}

void Render(const ProfileNode& node, int depth, bool include_time,
            std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.label);
  if (!node.estimate.strategy.empty()) {
    out->append(" [" + node.estimate.strategy + "]");
  }
  char buf[96];
  if (node.estimate.HasRows()) {
    std::snprintf(buf, sizeof(buf), "  est=%.0f", node.estimate.rows);
    out->append(buf);
  }
  std::snprintf(buf, sizeof(buf), "%srows=%" PRIu64,
                node.estimate.HasRows() ? " " : "  ", node.stats.output_rows);
  out->append(buf);
  if (node.stats.invocations > 1) {
    std::snprintf(buf, sizeof(buf), " calls=%" PRIu64, node.stats.invocations);
    out->append(buf);
  }
  if (node.estimate.HasRows() && node.stats.invocations > 0) {
    std::snprintf(buf, sizeof(buf), " err=%.2fx", node.QError());
    out->append(buf);
  }
  AppendCounter(out, "nodes", node.stats.nodes_visited);
  AppendCounter(out, "pushes", node.stats.stack_pushes);
  AppendCounter(out, "pops", node.stats.stack_pops);
  AppendCounter(out, "probes", node.stats.index_probes);
  AppendCounter(out, "bytes", node.stats.bytes_touched);
  if (include_time && node.stats.invocations > 0) {
    std::snprintf(buf, sizeof(buf), " time=%.3fms",
                  static_cast<double>(node.stats.wall_nanos) / 1e6);
    out->append(buf);
  }
  out->push_back('\n');
  for (const ProfileNode& child : node.children) {
    Render(child, depth + 1, include_time, out);
  }
}

}  // namespace

std::unique_ptr<PlanProfile> PlanProfile::Create(const LogicalExpr& plan) {
  std::unique_ptr<PlanProfile> profile(new PlanProfile());
  BuildSkeleton(plan, &profile->root_);
  IndexNodes(plan, &profile->root_, &profile->by_expr_);
  return profile;
}

ProfileNode* PlanProfile::NodeFor(const LogicalExpr* expr) {
  const auto it = by_expr_.find(expr);
  return it == by_expr_.end() ? nullptr : it->second;
}

void PlanProfile::Finalize() {
  FinalizeNode(&root_);
  by_expr_.clear();  // the plan may die before the profile does
}

std::string PlanProfile::ToString(bool include_time) const {
  std::string out;
  Render(root_, 0, include_time, &out);
  return out;
}

}  // namespace xmlq::exec
