#ifndef XMLQ_EXEC_OP_STATS_H_
#define XMLQ_EXEC_OP_STATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xmlq/algebra/logical_plan.h"

namespace xmlq::exec {

/// Per-operator execution counters, accumulated across every invocation of
/// the operator within one query (an operator under a FLWOR loop runs once
/// per binding; its counters are cumulative, with `invocations` recording
/// how often it ran).
///
/// Every field except `wall_nanos` is *deterministic*: for a fixed document,
/// query and strategy, repeated runs produce identical values, so tests can
/// assert algorithmic behavior (e.g. "TwigStack consumes each stream element
/// exactly once") instead of timing. `wall_nanos` is measured with
/// std::chrono::steady_clock and excluded from DeterministicEquals().
///
/// Counter semantics (an engine only touches the counters that exist in its
/// cost model — the rest stay 0):
///  - `input_rows` / `output_rows`: items consumed from child operators /
///    items produced. Filled by the executor's profiling wrapper
///    (input_rows is derived as the sum of child outputs at Finalize()).
///  - `nodes_visited`: document nodes the engine examined — NoK scan opens,
///    stream-element cursor advances (TwigStack/PathStack/structural join),
///    DOM nodes touched by navigation.
///  - `stack_pushes` / `stack_pops`: entries pushed/popped on the engines'
///    chained or merge stacks.
///  - `index_probes`: entries fetched from the region/value indexes (per-tag
///    stream elements materialized, RegionOf lookups, candidate seeds).
///  - `bytes_touched`: content bytes materialized for value-predicate and
///    string-value evaluation.
struct OpStats {
  uint64_t invocations = 0;
  uint64_t input_rows = 0;
  uint64_t output_rows = 0;
  uint64_t nodes_visited = 0;
  uint64_t stack_pushes = 0;
  uint64_t stack_pops = 0;
  uint64_t index_probes = 0;
  uint64_t bytes_touched = 0;
  uint64_t wall_nanos = 0;  // steady_clock; excluded from determinism

  void MergeFrom(const OpStats& other);

  /// Field-wise equality ignoring `wall_nanos` — the comparison tests use to
  /// assert counter determinism across runs.
  bool DeterministicEquals(const OpStats& other) const;
};

/// The optimizer's annotation for one plan operator: what the synopsis-based
/// estimator predicted before execution. `rows < 0` means "no estimate" (the
/// operator is outside the synopsis' reach, e.g. a value join).
struct PlanEstimate {
  double rows = -1;
  double cost = -1;           // cost-model units; τ operators only
  std::string strategy;       // chosen physical strategy; τ operators only
  bool HasRows() const { return rows >= 0; }
};

/// One node of the collected profile tree; mirrors the logical plan shape.
struct ProfileNode {
  std::string label;        // operator rendering, e.g. "Navigate(child::name)"
  OpStats stats;
  PlanEstimate estimate;
  std::vector<ProfileNode> children;

  /// Total rows produced across all invocations — the same units as
  /// PlanEstimate::rows, so QError() compares total to total even for
  /// operators invoked once per binding.
  double ActualRows() const;
  /// q-error of the estimate vs. the actual output cardinality:
  /// max(est/actual, actual/est) with both sides clamped to ≥1 so empty
  /// results do not divide by zero. Returns 0 when no estimate is present.
  double QError() const;
};

/// The profile of one query execution: a tree of ProfileNodes built from the
/// optimized logical plan before execution, filled in by the executor while
/// the query runs, and finalized (derived fields computed, lookup table
/// dropped) before it is handed to the caller.
///
/// The executor resolves the node for an operator via NodeFor() — an O(1)
/// pointer lookup — so collection adds one map probe, two steady_clock reads
/// and a handful of integer adds per operator invocation, and *nothing at
/// all* when no profile is attached to the EvalContext.
class PlanProfile {
 public:
  /// Builds the profile skeleton (labels + lookup table) for `plan`. The
  /// plan must outlive the execution phase, not the profile itself.
  static std::unique_ptr<PlanProfile> Create(const algebra::LogicalExpr& plan);

  /// The profile node collecting stats for `expr` (nullptr for foreign
  /// exprs or after Finalize()).
  ProfileNode* NodeFor(const algebra::LogicalExpr* expr);

  /// Computes derived fields (input_rows = Σ child output_rows) and drops
  /// the expr lookup table, making the profile self-contained.
  void Finalize();

  ProfileNode& root() { return root_; }
  const ProfileNode& root() const { return root_; }

  /// Renders the annotated plan tree, one operator per line:
  ///
  ///   TreePattern [nok]  est=120 rows=118 err=1.02x nodes=3456 time=0.31ms
  ///
  /// `include_time` off yields a fully deterministic rendering (tests
  /// compare these strings across runs).
  std::string ToString(bool include_time = true) const;

 private:
  PlanProfile() = default;

  ProfileNode root_;
  std::map<const algebra::LogicalExpr*, ProfileNode*> by_expr_;
};

/// Human-readable operator label used by the profile tree ("DocScan(x.xml)",
/// "Navigate(descendant::item)", ...). Mirrors LogicalExpr::ToString()'s
/// one-line head rendering.
std::string OperatorLabel(const algebra::LogicalExpr& expr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_OP_STATS_H_
