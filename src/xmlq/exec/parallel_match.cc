#include "xmlq/exec/parallel_match.h"

#include <algorithm>

#include "xmlq/base/fault_injector.h"
#include "xmlq/exec/path_stack.h"
#include "xmlq/exec/twig_stack.h"

namespace xmlq::exec {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::VertexId;
using storage::Region;

/// Shared eligibility gate: the pattern root must have exactly one child
/// vertex and must not be the output. FilterEdgePairs then decides the
/// root's validity from the single root edge, whose pairs are morsel-local
/// (the preseeded document region anchors them), so phase 2 runs per morsel
/// without cross-morsel information. Multi-child roots would need child
/// support from *every* edge, which different morsels each see only part of.
bool RootShapeEligible(const PatternGraph& pattern, VertexId output) {
  const VertexId root = pattern.root();
  return output != root && pattern.vertex(root).children.size() == 1;
}

Result<NodeList> BuildStreams(const IndexedDocument& doc,
                              const PatternGraph& pattern,
                              std::vector<std::vector<Region>>* streams,
                              OpStats* stats) {
  const size_t k = pattern.VertexCount();
  streams->resize(k);
  for (VertexId v = 0; v < k; ++v) {
    XMLQ_ASSIGN_OR_RETURN((*streams)[v],
                          BuildVertexStream(doc, pattern.vertex(v), stats));
  }
  return NodeList{};
}

/// Concatenates per-morsel output bindings. Morsels partition the document
/// in order and every binding is a real node of its morsel, so plain
/// concatenation of the per-morsel normalized lists *is* the serial
/// document-order result.
NodeList ConcatOutputs(std::vector<NodeList>& outs) {
  NodeList result;
  size_t total = 0;
  for (const NodeList& o : outs) total += o.size();
  result.reserve(total);
  for (NodeList& o : outs) {
    result.insert(result.end(), o.begin(), o.end());
  }
  return result;
}

}  // namespace

std::optional<Result<NodeList>> ParallelTwigStackMatch(
    const IndexedDocument& doc, const PatternGraph& pattern,
    const ParallelSpec& par, const ResourceGuard* guard, OpStats* stats) {
  if (!par.enabled()) return std::nullopt;
  const auto validated = ValidateTwigPattern(pattern);
  if (!validated.ok()) return std::nullopt;  // serial reproduces the error
  const VertexId output = *validated;
  if (!RootShapeEligible(pattern, output)) return std::nullopt;
  // From here on this driver owns the run (same fault site as the serial
  // engine, checked exactly once).
  if (XMLQ_FAULT("exec.twigstack.match")) {
    return Result<NodeList>(
        Status::Internal("injected fault: exec.twigstack.match"));
  }
  const size_t k = pattern.VertexCount();
  const VertexId root = pattern.root();
  std::vector<std::vector<Region>> streams;
  if (auto built = BuildStreams(doc, pattern, &streams, stats); !built.ok()) {
    return Result<NodeList>(built.status());
  }
  const MorselPlan plan =
      SplitStreams(streams, root, par.morsel_elements, par.parallelism);
  if (plan.count() <= 1) {
    // No usable cut (or an empty document): the serial core over the
    // already-built streams — identical work, identical counters.
    std::vector<std::span<const Region>> spans(streams.begin(), streams.end());
    return TwigStackMatchMorsel(doc, pattern, output, spans,
                                /*preseed_root=*/false,
                                /*consumed_root_child=*/nullptr, guard, stats);
  }

  const size_t m = plan.count();
  LaneGuards lanes(guard, par.parallelism, m);
  std::vector<NodeList> outs(m);
  std::vector<Status> errors(m);
  std::vector<OpStats> sinks(stats != nullptr ? m : 0);
  std::vector<uint8_t> consumed_root_child(m, 0);
  par.pool->Run(m, par.parallelism, [&](size_t t, uint32_t lane) {
    std::vector<std::span<const Region>> spans(k);
    for (VertexId v = 0; v < k; ++v) {
      if (v != root) spans[v] = plan.Sub(streams, t, v);
    }
    bool consumed = false;
    auto r = TwigStackMatchMorsel(doc, pattern, output, spans,
                                  /*preseed_root=*/true, &consumed,
                                  lanes.lane(lane),
                                  stats != nullptr ? &sinks[t] : nullptr);
    consumed_root_child[t] = consumed ? 1 : 0;
    if (r.ok()) {
      outs[t] = std::move(*r);
    } else {
      errors[t] = r.status();
    }
  });
  lanes.Absorb();
  if (guard != nullptr && guard->Tick(0)) {
    return Result<NodeList>(guard->status());
  }
  for (const Status& st : errors) {
    if (!st.ok()) return Result<NodeList>(st);
  }
  if (stats != nullptr) {
    for (const OpStats& sink : sinks) stats->MergeFrom(sink);
    // The document region, owned by no morsel: the serial run visits it
    // exactly once, and pushes (then drains) it iff some direct child of
    // the pattern root is main-loop consumed.
    stats->nodes_visited += 1;
    if (std::find(consumed_root_child.begin(), consumed_root_child.end(),
                  uint8_t{1}) != consumed_root_child.end()) {
      stats->stack_pushes += 1;
      stats->stack_pops += 1;
    }
  }
  return Result<NodeList>(ConcatOutputs(outs));
}

std::optional<Result<NodeList>> ParallelPathStackMatch(
    const IndexedDocument& doc, const PatternGraph& pattern,
    const ParallelSpec& par, const ResourceGuard* guard, OpStats* stats) {
  if (!par.enabled()) return std::nullopt;
  const auto validated = ValidatePathPattern(pattern);
  if (!validated.ok()) return std::nullopt;
  const VertexId output = *validated;
  if (!RootShapeEligible(pattern, output)) return std::nullopt;
  if (XMLQ_FAULT("exec.pathstack.match")) {
    return Result<NodeList>(
        Status::Internal("injected fault: exec.pathstack.match"));
  }
  const size_t k = pattern.VertexCount();
  const VertexId root = pattern.root();
  std::vector<std::vector<Region>> streams;
  if (auto built = BuildStreams(doc, pattern, &streams, stats); !built.ok()) {
    return Result<NodeList>(built.status());
  }
  const MorselPlan plan =
      SplitStreams(streams, root, par.morsel_elements, par.parallelism);
  if (plan.count() <= 1) {
    std::vector<std::span<const Region>> spans(streams.begin(), streams.end());
    return PathStackMatchMorsel(doc, pattern, output, spans,
                                /*preseed_root=*/false, guard, stats);
  }

  const size_t m = plan.count();
  LaneGuards lanes(guard, par.parallelism, m);
  std::vector<NodeList> outs(m);
  std::vector<Status> errors(m);
  std::vector<OpStats> sinks(stats != nullptr ? m : 0);
  par.pool->Run(m, par.parallelism, [&](size_t t, uint32_t lane) {
    std::vector<std::span<const Region>> spans(k);
    for (VertexId v = 0; v < k; ++v) {
      if (v != root) spans[v] = plan.Sub(streams, t, v);
    }
    auto r = PathStackMatchMorsel(doc, pattern, output, spans,
                                  /*preseed_root=*/true, lanes.lane(lane),
                                  stats != nullptr ? &sinks[t] : nullptr);
    if (r.ok()) {
      outs[t] = std::move(*r);
    } else {
      errors[t] = r.status();
    }
  });
  lanes.Absorb();
  if (guard != nullptr && guard->Tick(0)) {
    return Result<NodeList>(guard->status());
  }
  for (const Status& st : errors) {
    if (!st.ok()) return Result<NodeList>(st);
  }
  if (stats != nullptr) {
    for (const OpStats& sink : sinks) stats->MergeFrom(sink);
    // PathStack consumes the document region first (global minimum) and
    // always pushes it (the root has a child); the drain pops it.
    stats->nodes_visited += 1;
    stats->stack_pushes += 1;
    stats->stack_pops += 1;
  }
  return Result<NodeList>(ConcatOutputs(outs));
}

std::optional<Result<NodeList>> ParallelBinaryJoinPlanMatch(
    const IndexedDocument& doc, const PatternGraph& pattern,
    const ParallelSpec& par, const ResourceGuard* guard, OpStats* stats) {
  if (!par.enabled()) return std::nullopt;
  if (!pattern.Validate().ok()) return std::nullopt;
  const VertexId output = pattern.SoleOutput();
  if (output == algebra::kNoVertex) return std::nullopt;
  if (!RootShapeEligible(pattern, output)) return std::nullopt;
  const size_t k = pattern.VertexCount();
  for (VertexId v = 1; v < k; ++v) {
    if (pattern.vertex(v).incoming_axis == Axis::kFollowingSibling ||
        pattern.vertex(v).incoming_axis == Axis::kSelf) {
      return std::nullopt;
    }
  }
  if (XMLQ_FAULT("exec.binaryjoin.match")) {
    return Result<NodeList>(
        Status::Internal("injected fault: exec.binaryjoin.match"));
  }
  const VertexId root = pattern.root();
  const Region doc_region = doc.regions->DocumentRegion();
  std::vector<std::vector<Region>> candidates;
  if (auto built = BuildStreams(doc, pattern, &candidates, stats);
      !built.ok()) {
    return Result<NodeList>(built.status());
  }
  const MorselPlan plan =
      SplitStreams(candidates, root, par.morsel_elements, par.parallelism);

  auto parent_child_of = [&](VertexId v) {
    return pattern.vertex(v).incoming_axis == Axis::kChild ||
           pattern.vertex(v).incoming_axis == Axis::kAttribute;
  };

  if (plan.count() <= 1) {
    // Serial plan over the already-built streams (identical to
    // BinaryJoinPlanMatch after its stream build, ascending edge order).
    std::vector<std::vector<JoinPair>> pairs(k);
    for (VertexId v = 1; v < k; ++v) {
      const VertexId parent = pattern.vertex(v).parent;
      pairs[v] = StructuralJoinPairs(candidates[parent], candidates[v],
                                     parent_child_of(v), guard, stats);
      if (guard != nullptr && guard->Tick(0)) {
        return Result<NodeList>(guard->status());
      }
      NodeList anc_ids, desc_ids;
      for (const JoinPair& p : pairs[v]) {
        anc_ids.push_back(p.ancestor);
        desc_ids.push_back(p.descendant);
      }
      Normalize(&anc_ids);
      Normalize(&desc_ids);
      candidates[parent] = ToRegions(*doc.regions, anc_ids, stats);
      candidates[v] = ToRegions(*doc.regions, desc_ids, stats);
    }
    return Result<NodeList>(
        FilterEdgePairs(pattern, output, pairs, doc_region.start));
  }

  const size_t m = plan.count();
  // Per-morsel state: candidate lists (reduced step by step) + edge pairs.
  std::vector<std::vector<std::vector<Region>>> cand(m);
  std::vector<std::vector<std::vector<JoinPair>>> pairs(m);
  for (size_t t = 0; t < m; ++t) {
    cand[t].resize(k);
    pairs[t].resize(k);
    for (VertexId v = 0; v < k; ++v) {
      if (v == root) continue;
      const auto sub = plan.Sub(candidates, t, v);
      cand[t][v].assign(sub.begin(), sub.end());
    }
  }

  // One synchronized step per edge, ascending order (the root edge first,
  // while its descendant stream is still unreduced).
  for (VertexId v = 1; v < k; ++v) {
    const VertexId parent = pattern.vertex(v).parent;
    const bool parent_child = parent_child_of(v);
    const bool root_edge = parent == root;
    // Does any later morsel still hold descendants for this edge? (Decides
    // ancestor-tail consumption; for the root edge, whether the serial
    // merge would consume + push the document region at all.)
    std::vector<uint8_t> later_has_desc(m, 0);
    bool any = false;
    for (size_t t = m; t-- > 0;) {
      later_has_desc[t] = any ? 1 : 0;
      if (!cand[t][v].empty()) any = true;
    }
    bool doc_consumed = false;  // root edge: ∃ descendant past doc.start
    if (root_edge) {
      for (size_t t = 0; t < m && !doc_consumed; ++t) {
        if (!cand[t][v].empty() &&
            cand[t][v].back().start > doc_region.start) {
          doc_consumed = true;
        }
      }
    }
    LaneGuards lanes(guard, par.parallelism, m);
    std::vector<OpStats> sinks(stats != nullptr ? m : 0);
    par.pool->Run(m, par.parallelism, [&](size_t t, uint32_t lane) {
      OpStats* sink = stats != nullptr ? &sinks[t] : nullptr;
      const ResourceGuard* lane_guard = lanes.lane(lane);
      const std::span<const Region> seeds =
          root_edge ? std::span<const Region>(&doc_region, 1)
                    : std::span<const Region>();
      const std::span<const Region> ancestors =
          root_edge ? std::span<const Region>()
                    : std::span<const Region>(cand[t][parent]);
      pairs[t][v] = StructuralJoinPairsMorsel(
          seeds, ancestors, cand[t][v], parent_child,
          /*consume_ancestor_tail=*/!root_edge && later_has_desc[t] != 0,
          lane_guard, sink);
      NodeList anc_ids, desc_ids;
      for (const JoinPair& p : pairs[t][v]) {
        anc_ids.push_back(p.ancestor);
        desc_ids.push_back(p.descendant);
      }
      Normalize(&anc_ids);
      Normalize(&desc_ids);
      if (!root_edge) {
        cand[t][parent] = ToRegions(*doc.regions, anc_ids, sink);
      }
      cand[t][v] = ToRegions(*doc.regions, desc_ids, sink);
    });
    lanes.Absorb();
    if (guard != nullptr && guard->Tick(0)) {
      return Result<NodeList>(guard->status());
    }
    if (stats != nullptr) {
      for (const OpStats& sink : sinks) stats->MergeFrom(sink);
      if (root_edge) {
        // The document region's consumption, owned by no morsel: visited +
        // pushed + drained iff any descendant lies past its start, and the
        // serial reduction's ToRegions({doc}) probe iff any pairs emerged.
        if (doc_consumed) {
          stats->nodes_visited += 1;
          stats->stack_pushes += 1;
          stats->stack_pops += 1;
        }
        bool any_pairs = false;
        for (size_t t = 0; t < m && !any_pairs; ++t) {
          any_pairs = !pairs[t][v].empty();
        }
        if (any_pairs) stats->index_probes += 1;
      }
    }
  }

  std::vector<NodeList> outs(m);
  par.pool->Run(m, par.parallelism, [&](size_t t, uint32_t) {
    outs[t] = FilterEdgePairs(pattern, output, pairs[t], doc_region.start);
  });
  return Result<NodeList>(ConcatOutputs(outs));
}

}  // namespace xmlq::exec
