#ifndef XMLQ_EXEC_PARALLEL_MATCH_H_
#define XMLQ_EXEC_PARALLEL_MATCH_H_

#include <optional>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/morsel.h"
#include "xmlq/exec/node_stream.h"
#include "xmlq/exec/structural_join.h"

namespace xmlq::exec {

/// Morsel-driven parallel drivers for the stream engines (DESIGN.md §12).
///
/// Each driver returns std::nullopt when the attempt is not eligible —
/// parallelism disabled, the pattern fails the engine's own validation (the
/// serial entry point then reproduces the canonical error), or the pattern
/// root has more than one child vertex / is the output (per-morsel
/// merge-filtering needs the root's validity to be decidable morsel-locally,
/// which a single root edge guarantees). On nullopt the caller must run the
/// serial engine; otherwise the returned result, its ordering, and the
/// OpStats totals are byte-identical to the serial engine's — the invariant
/// the parallel-vs-serial differential harness enforces.
///
/// Streams whose regions nest across the whole document (a root-element or
/// deep-chain stream) simply yield a single morsel and degrade to the serial
/// core over the already-built streams, charging identical counters.
///
/// Each driver checks the same XMLQ_FAULT site as its serial engine exactly
/// once, so breaker and chaos semantics are unchanged.
std::optional<Result<NodeList>> ParallelTwigStackMatch(
    const IndexedDocument& doc, const algebra::PatternGraph& pattern,
    const ParallelSpec& par, const ResourceGuard* guard = nullptr,
    OpStats* stats = nullptr);

std::optional<Result<NodeList>> ParallelPathStackMatch(
    const IndexedDocument& doc, const algebra::PatternGraph& pattern,
    const ParallelSpec& par, const ResourceGuard* guard = nullptr,
    OpStats* stats = nullptr);

/// Step-synchronized parallel binary join plan: one barrier per query edge.
/// At each step every morsel merges its own slice (the root edge runs
/// seeded with the document region; later morsels' ancestor tails are
/// consumed exactly when a later morsel still holds descendants, mirroring
/// the serial merge's attribution), then semi-join-reduces its local
/// candidate lists. Only the default ascending edge order is parallelized
/// (the root edge must come first while its stream is still unreduced).
std::optional<Result<NodeList>> ParallelBinaryJoinPlanMatch(
    const IndexedDocument& doc, const algebra::PatternGraph& pattern,
    const ParallelSpec& par, const ResourceGuard* guard = nullptr,
    OpStats* stats = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_PARALLEL_MATCH_H_
