#include "xmlq/exec/path_stack.h"

#include <limits>

#include "xmlq/base/fault_injector.h"
#include "xmlq/exec/structural_join.h"

namespace xmlq::exec {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::PatternVertex;
using algebra::VertexId;
using storage::Region;

constexpr uint32_t kInfinity = std::numeric_limits<uint32_t>::max();

}  // namespace

Result<NodeList> PathStackMatch(const IndexedDocument& doc,
                                const PatternGraph& pattern,
                                const ResourceGuard* guard, OpStats* stats) {
  if (XMLQ_FAULT("exec.pathstack.match")) {
    return Status::Internal("injected fault: exec.pathstack.match");
  }
  XMLQ_RETURN_IF_ERROR(pattern.Validate());
  const VertexId output = pattern.SoleOutput();
  if (output == algebra::kNoVertex) {
    return Status::InvalidArgument("PathStack requires a sole output vertex");
  }
  const size_t k = pattern.VertexCount();
  for (VertexId v = 0; v < k; ++v) {
    if (pattern.vertex(v).children.size() > 1) {
      return Status::InvalidArgument(
          "PathStack requires a linear (chain) pattern");
    }
    if (v != pattern.root() &&
        (pattern.vertex(v).incoming_axis == Axis::kFollowingSibling ||
         pattern.vertex(v).incoming_axis == Axis::kSelf)) {
      return Status::Unsupported(
          "PathStack supports child/descendant/attribute arcs only");
    }
  }

  std::vector<std::vector<Region>> streams(k);
  std::vector<size_t> cursors(k, 0);
  std::vector<std::vector<Region>> stacks(k);
  std::vector<std::vector<JoinPair>> pairs(k);
  for (VertexId v = 0; v < k; ++v) {
    XMLQ_ASSIGN_OR_RETURN(streams[v],
                          BuildVertexStream(doc, pattern.vertex(v), stats));
  }

  auto cur_start = [&](VertexId v) {
    return cursors[v] < streams[v].size() ? streams[v][cursors[v]].start
                                          : kInfinity;
  };

  uint64_t visited = 0;
  uint64_t pushes = 0;
  uint64_t pops = 0;
  while (true) {
    // One step per merge iteration (k is a small constant per iteration).
    XMLQ_GUARD_TICK(guard, 1);
    // Pick the globally smallest start across all step streams.
    VertexId q = 0;
    uint32_t best = kInfinity;
    for (VertexId v = 0; v < k; ++v) {
      const uint32_t s = cur_start(v);
      if (s < best) {
        best = s;
        q = v;
      }
    }
    if (best == kInfinity) break;
    const Region cur = streams[q][cursors[q]];
    // Clean every stack: entries closed before `cur` can never pair again
    // because all remaining stream elements start at or after `cur.start`.
    for (VertexId v = 0; v < k; ++v) {
      while (!stacks[v].empty() && stacks[v].back().end < cur.start) {
        stacks[v].pop_back();
        ++pops;
      }
    }
    const bool anchored =
        q == pattern.root() || !stacks[pattern.vertex(q).parent].empty();
    if (anchored) {
      if (q != pattern.root()) {
        const VertexId parent = pattern.vertex(q).parent;
        const bool parent_child =
            pattern.vertex(q).incoming_axis == Axis::kChild ||
            pattern.vertex(q).incoming_axis == Axis::kAttribute;
        XMLQ_GUARD_TICK(guard, stacks[parent].size());
        for (const Region& anc : stacks[parent]) {
          if (anc.start >= cur.start) continue;  // proper ancestors only
          if (parent_child && anc.level + 1 != cur.level) continue;
          pairs[q].push_back(JoinPair{anc.start, cur.start});
        }
      }
      if (!pattern.vertex(q).children.empty()) {
        stacks[q].push_back(cur);
        ++pushes;
      }
    }
    ++cursors[q];
    ++visited;
  }

  if (stats != nullptr) {
    stats->nodes_visited += visited;
    stats->stack_pushes += pushes;
    stats->stack_pops += pops;
  }
  return FilterEdgePairs(pattern, output, pairs,
                         doc.regions->DocumentRegion().start);
}

}  // namespace xmlq::exec
