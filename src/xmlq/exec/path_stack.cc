#include "xmlq/exec/path_stack.h"

#include <limits>

#include "xmlq/base/fault_injector.h"
#include "xmlq/exec/structural_join.h"

namespace xmlq::exec {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::PatternVertex;
using algebra::VertexId;
using storage::Region;

constexpr uint32_t kInfinity = std::numeric_limits<uint32_t>::max();

/// Merge core over externally built streams; shared by the serial entry
/// point (full streams) and the morsel driver (one document-order slice per
/// run, with `preseed_root` standing in for the document region whose visit
/// and push the serial run charges once, centrally — DESIGN.md §12).
Result<NodeList> PathStackRun(const IndexedDocument& doc,
                              const PatternGraph& pattern, VertexId output,
                              std::span<const std::span<const Region>> streams,
                              bool preseed_root, const ResourceGuard* guard,
                              OpStats* stats) {
  const size_t k = pattern.VertexCount();
  std::vector<size_t> cursors(k, 0);
  std::vector<std::vector<Region>> stacks(k);
  std::vector<std::vector<JoinPair>> pairs(k);
  if (preseed_root) {
    stacks[pattern.root()].push_back(doc.regions->DocumentRegion());
  }

  auto cur_start = [&](VertexId v) {
    return cursors[v] < streams[v].size() ? streams[v][cursors[v]].start
                                          : kInfinity;
  };

  uint64_t visited = 0;
  uint64_t pushes = 0;
  uint64_t pops = 0;
  while (true) {
    // One step per merge iteration (k is a small constant per iteration).
    XMLQ_GUARD_TICK(guard, 1);
    // Pick the globally smallest start across all step streams.
    VertexId q = 0;
    uint32_t best = kInfinity;
    for (VertexId v = 0; v < k; ++v) {
      const uint32_t s = cur_start(v);
      if (s < best) {
        best = s;
        q = v;
      }
    }
    if (best == kInfinity) break;
    const Region cur = streams[q][cursors[q]];
    // Clean every stack: entries closed before `cur` can never pair again
    // because all remaining stream elements start at or after `cur.start`.
    for (VertexId v = 0; v < k; ++v) {
      while (!stacks[v].empty() && stacks[v].back().end < cur.start) {
        stacks[v].pop_back();
        ++pops;
      }
    }
    const bool anchored =
        q == pattern.root() || !stacks[pattern.vertex(q).parent].empty();
    if (anchored) {
      if (q != pattern.root()) {
        const VertexId parent = pattern.vertex(q).parent;
        const bool parent_child =
            pattern.vertex(q).incoming_axis == Axis::kChild ||
            pattern.vertex(q).incoming_axis == Axis::kAttribute;
        XMLQ_GUARD_TICK(guard, stacks[parent].size());
        for (const Region& anc : stacks[parent]) {
          if (anc.start >= cur.start) continue;  // proper ancestors only
          if (parent_child && anc.level + 1 != cur.level) continue;
          pairs[q].push_back(JoinPair{anc.start, cur.start});
        }
      }
      if (!pattern.vertex(q).children.empty()) {
        stacks[q].push_back(cur);
        ++pushes;
      }
    }
    ++cursors[q];
    ++visited;
  }

  // Counted drain (minus the uncounted preseed): pops == pushes per run, so
  // morsel counters sum to the serial totals. The document region's end is
  // past every stream start, so a preseed always survives to the drain.
  for (VertexId v = 0; v < k; ++v) pops += stacks[v].size();
  if (preseed_root) --pops;

  if (stats != nullptr) {
    stats->nodes_visited += visited;
    stats->stack_pushes += pushes;
    stats->stack_pops += pops;
  }
  return FilterEdgePairs(pattern, output, pairs,
                         doc.regions->DocumentRegion().start);
}

}  // namespace

Result<algebra::VertexId> ValidatePathPattern(const PatternGraph& pattern) {
  XMLQ_RETURN_IF_ERROR(pattern.Validate());
  const VertexId output = pattern.SoleOutput();
  if (output == algebra::kNoVertex) {
    return Status::InvalidArgument("PathStack requires a sole output vertex");
  }
  for (VertexId v = 0; v < pattern.VertexCount(); ++v) {
    if (pattern.vertex(v).children.size() > 1) {
      return Status::InvalidArgument(
          "PathStack requires a linear (chain) pattern");
    }
    if (v != pattern.root() &&
        (pattern.vertex(v).incoming_axis == Axis::kFollowingSibling ||
         pattern.vertex(v).incoming_axis == Axis::kSelf)) {
      return Status::Unsupported(
          "PathStack supports child/descendant/attribute arcs only");
    }
  }
  return output;
}

Result<NodeList> PathStackMatch(const IndexedDocument& doc,
                                const PatternGraph& pattern,
                                const ResourceGuard* guard, OpStats* stats) {
  if (XMLQ_FAULT("exec.pathstack.match")) {
    return Status::Internal("injected fault: exec.pathstack.match");
  }
  XMLQ_ASSIGN_OR_RETURN(const VertexId output, ValidatePathPattern(pattern));
  const size_t k = pattern.VertexCount();
  std::vector<std::vector<Region>> streams(k);
  for (VertexId v = 0; v < k; ++v) {
    XMLQ_ASSIGN_OR_RETURN(streams[v],
                          BuildVertexStream(doc, pattern.vertex(v), stats));
  }
  std::vector<std::span<const Region>> spans(streams.begin(), streams.end());
  return PathStackRun(doc, pattern, output, spans, /*preseed_root=*/false,
                      guard, stats);
}

Result<NodeList> PathStackMatchMorsel(
    const IndexedDocument& doc, const PatternGraph& pattern,
    algebra::VertexId output,
    std::span<const std::span<const Region>> streams, bool preseed_root,
    const ResourceGuard* guard, OpStats* stats) {
  return PathStackRun(doc, pattern, output, streams, preseed_root, guard,
                      stats);
}

}  // namespace xmlq::exec
