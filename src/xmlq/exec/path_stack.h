#ifndef XMLQ_EXEC_PATH_STACK_H_
#define XMLQ_EXEC_PATH_STACK_H_

#include <span>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/node_stream.h"

namespace xmlq::exec {

/// PathStack (Bruno et al. [13]) for *linear* patterns: a chained-stack
/// merge over the per-step region streams, processing all streams in global
/// document order. Unlike TwigStack there is no getNext skipping — every
/// stream element whose parent stack is non-empty is pushed — which makes
/// PathStack the natural structural-join-order-free baseline for pure path
/// queries. Returns the sole output vertex bindings in document order.
///
/// The pattern must be a chain (every vertex has at most one child);
/// patterns with branches yield kInvalidArgument.
///
/// `stats` (optional) receives observability counters: every stream element
/// is consumed exactly once (`nodes_visited` = Σ stream sizes on a full
/// run), `stack_pushes`/`stack_pops` track the chained stacks, and
/// `index_probes` the stream elements fetched from the region index.
Result<NodeList> PathStackMatch(const IndexedDocument& doc,
                                const algebra::PatternGraph& pattern,
                                const ResourceGuard* guard = nullptr,
                                OpStats* stats = nullptr);

/// Shared eligibility check: validates the pattern, requires a sole output,
/// a chain shape, and join-able axes; returns the output vertex. Used by
/// the serial entry point and the morsel driver.
Result<algebra::VertexId> ValidatePathPattern(
    const algebra::PatternGraph& pattern);

/// Morsel-run variant (DESIGN.md §12): the merge over externally built
/// per-vertex stream slices (no stream building, so no index probes).
/// `preseed_root` pushes the document region onto the root stack uncounted;
/// the driver charges the document's visit/push/drain-pop once, centrally.
/// Counters include the end-of-run stack drain, so per-morsel OpStats sum
/// exactly to the serial totals. The caller must have run
/// ValidatePathPattern.
Result<NodeList> PathStackMatchMorsel(
    const IndexedDocument& doc, const algebra::PatternGraph& pattern,
    algebra::VertexId output,
    std::span<const std::span<const storage::Region>> streams,
    bool preseed_root, const ResourceGuard* guard = nullptr,
    OpStats* stats = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_PATH_STACK_H_
