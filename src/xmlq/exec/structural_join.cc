#include "xmlq/exec/structural_join.h"

#include <algorithm>
#include <unordered_set>

#include "xmlq/base/fault_injector.h"

namespace xmlq::exec {

using storage::Region;

namespace {

/// Shared Stack-Tree merge skeleton. Calls `emit(ancestor, descendant)` for
/// every qualifying pair (or, for semi-joins, the callers early-out). When
/// `guard` trips, the merge stops early (partial output); callers are
/// responsible for surfacing the guard's sticky status.
///
/// Morsel extensions (DESIGN.md §12): `seeds` are ancestors opened before
/// this morsel's slice of the streams (the document region for a root edge);
/// they are pushed and drained *uncounted* because the morsel that owns them
/// carries their counters, and they must enclose every descendant passed in.
/// `consume_tail` makes the merge consume + push the ancestors left after
/// the last descendant — exactly what the serial merge does when a later
/// morsel's descendant arrives — so per-morsel counters sum to the serial
/// totals. The serial entry points pass no seeds and no tail.
///
/// Every run ends with a counted stack drain, so stack_pops == stack_pushes
/// per run and the counters decompose across morsels.
///
/// Observability counters accumulate in registers and commit to `stats`
/// once at the end, so a null `stats` costs only the increments themselves.
template <typename Emit>
void StackTreeMerge(std::span<const Region> seeds,
                    std::span<const Region> ancestors,
                    std::span<const Region> descendants, bool parent_child,
                    bool consume_tail, const ResourceGuard* guard,
                    OpStats* stats, Emit&& emit) {
  std::vector<Region> stack(seeds.begin(), seeds.end());
  size_t a = 0;
  uint64_t pushes = 0;
  uint64_t pops = 0;
  bool tripped = false;
  for (const Region& d : descendants) {
    // One step per descendant plus one per stack entry examined below (the
    // output-sensitive part of the merge).
    if (guard != nullptr && guard->Tick(1 + stack.size())) {
      tripped = true;
      break;
    }
    // Push every ancestor starting before d (it may enclose d); keep the
    // stack a nesting chain by first popping closed regions.
    while (a < ancestors.size() && ancestors[a].start < d.start) {
      while (!stack.empty() && stack.back().end < ancestors[a].start) {
        stack.pop_back();
        ++pops;
      }
      stack.push_back(ancestors[a]);
      ++pushes;
      ++a;
    }
    while (!stack.empty() && stack.back().end < d.start) {
      stack.pop_back();
      ++pops;
    }
    // Every remaining stack entry has start < d.start <= end: an ancestor.
    for (const Region& anc : stack) {
      if (!parent_child || anc.level + 1 == d.level) {
        emit(anc, d);
      }
    }
  }
  if (consume_tail && !tripped) {
    while (a < ancestors.size()) {
      if (guard != nullptr && guard->Tick(1)) break;
      while (!stack.empty() && stack.back().end < ancestors[a].start) {
        stack.pop_back();
        ++pops;
      }
      stack.push_back(ancestors[a]);
      ++pushes;
      ++a;
    }
  }
  // Counted drain of everything this run pushed (seeds stay uncounted).
  pops += stack.size() - std::min(stack.size(), seeds.size());
  if (stats != nullptr) {
    // Each side's elements are consumed at most once across the merge.
    stats->nodes_visited += descendants.size() + a;
    stats->stack_pushes += pushes;
    stats->stack_pops += pops;
  }
}

}  // namespace

std::vector<JoinPair> StructuralJoinPairs(std::span<const Region> ancestors,
                                          std::span<const Region> descendants,
                                          bool parent_child,
                                          const ResourceGuard* guard,
                                          OpStats* stats) {
  std::vector<JoinPair> out;
  StackTreeMerge({}, ancestors, descendants, parent_child,
                 /*consume_tail=*/false, guard, stats,
                 [&out](const Region& a, const Region& d) {
                   out.push_back(JoinPair{a.start, d.start});
                 });
  return out;
}

std::vector<JoinPair> StructuralJoinPairsMorsel(
    std::span<const Region> seeds, std::span<const Region> ancestors,
    std::span<const Region> descendants, bool parent_child,
    bool consume_ancestor_tail, const ResourceGuard* guard, OpStats* stats) {
  std::vector<JoinPair> out;
  StackTreeMerge(seeds, ancestors, descendants, parent_child,
                 consume_ancestor_tail, guard, stats,
                 [&out](const Region& a, const Region& d) {
                   out.push_back(JoinPair{a.start, d.start});
                 });
  return out;
}

NodeList StructuralSemiJoinDesc(std::span<const Region> ancestors,
                                std::span<const Region> descendants,
                                bool parent_child,
                                const ResourceGuard* guard, OpStats* stats) {
  NodeList out;
  xml::NodeId last = xml::kNullNode;
  StackTreeMerge({}, ancestors, descendants, parent_child,
                 /*consume_tail=*/false, guard, stats,
                 [&out, &last](const Region&, const Region& d) {
                   if (d.start != last) {
                     out.push_back(d.start);
                     last = d.start;
                   }
                 });
  // Descendants arrive in document order, so `out` is already sorted.
  return out;
}

NodeList StructuralSemiJoinAnc(std::span<const Region> ancestors,
                               std::span<const Region> descendants,
                               bool parent_child,
                               const ResourceGuard* guard, OpStats* stats) {
  NodeList out;
  StackTreeMerge({}, ancestors, descendants, parent_child,
                 /*consume_tail=*/false, guard, stats,
                 [&out](const Region& a, const Region&) {
                   out.push_back(a.start);
                 });
  Normalize(&out);
  return out;
}

Result<std::vector<Region>> BuildVertexStream(
    const IndexedDocument& doc, const algebra::PatternVertex& vertex,
    OpStats* stats) {
  std::vector<Region> stream;
  const storage::RegionIndex& idx = *doc.regions;
  if (vertex.is_root) {
    stream.push_back(idx.DocumentRegion());
    if (stats != nullptr) ++stats->index_probes;
    return stream;
  }
  std::span<const Region> source;
  if (vertex.is_attribute) {
    source = vertex.label == "*"
                 ? std::span<const Region>(idx.attributes())
                 : idx.AttributeStream(doc.dom->pool().Find(vertex.label));
  } else {
    source = vertex.label == "*"
                 ? std::span<const Region>(idx.elements())
                 : idx.ElementStream(doc.dom->pool().Find(vertex.label));
  }
  if (stats != nullptr) stats->index_probes += source.size();
  if (vertex.predicates.empty()) {
    stream.assign(source.begin(), source.end());
    return stream;
  }
  for (const Region& r : source) {
    if (EvalVertexPredicates(vertex, *doc.dom, r.start, stats)) {
      stream.push_back(r);
    }
  }
  return stream;
}

Result<NodeList> BinaryJoinPlanMatch(
    const IndexedDocument& doc, const algebra::PatternGraph& pattern,
    std::span<const algebra::VertexId> edge_order, JoinPlanStats* stats,
    const ResourceGuard* guard, OpStats* op_stats) {
  using algebra::Axis;
  using algebra::VertexId;
  if (XMLQ_FAULT("exec.binaryjoin.match")) {
    return Status::Internal("injected fault: exec.binaryjoin.match");
  }
  XMLQ_RETURN_IF_ERROR(pattern.Validate());
  const VertexId output = pattern.SoleOutput();
  if (output == algebra::kNoVertex) {
    return Status::InvalidArgument(
        "binary join plan requires a sole output vertex");
  }
  const size_t k = pattern.VertexCount();
  std::vector<VertexId> order(edge_order.begin(), edge_order.end());
  if (order.empty()) {
    for (VertexId v = 1; v < k; ++v) order.push_back(v);
  }
  if (order.size() != k - 1) {
    return Status::InvalidArgument("edge order must cover every edge once");
  }
  for (VertexId v : order) {
    if (v == pattern.root() || v >= k) {
      return Status::InvalidArgument("invalid edge target in join order");
    }
    if (pattern.vertex(v).incoming_axis == Axis::kFollowingSibling ||
        pattern.vertex(v).incoming_axis == Axis::kSelf) {
      return Status::Unsupported(
          "binary join plans support child/descendant/attribute arcs only");
    }
  }

  std::vector<std::vector<Region>> candidates(k);
  for (VertexId v = 0; v < k; ++v) {
    XMLQ_ASSIGN_OR_RETURN(candidates[v],
                          BuildVertexStream(doc, pattern.vertex(v), op_stats));
  }
  std::vector<std::vector<JoinPair>> pairs(k);
  for (VertexId v : order) {
    const VertexId parent = pattern.vertex(v).parent;
    const bool parent_child =
        pattern.vertex(v).incoming_axis == Axis::kChild ||
        pattern.vertex(v).incoming_axis == Axis::kAttribute;
    pairs[v] = StructuralJoinPairs(candidates[parent], candidates[v],
                                   parent_child, guard, op_stats);
    XMLQ_GUARD_TICK(guard, 0);  // the merge stops early on a trip
    if (stats != nullptr) stats->pairs_produced += pairs[v].size();
    // Semi-join reduction of both sides for the joins still to come.
    NodeList anc_ids, desc_ids;
    for (const JoinPair& p : pairs[v]) {
      anc_ids.push_back(p.ancestor);
      desc_ids.push_back(p.descendant);
    }
    Normalize(&anc_ids);
    Normalize(&desc_ids);
    candidates[parent] = ToRegions(*doc.regions, anc_ids, op_stats);
    candidates[v] = ToRegions(*doc.regions, desc_ids, op_stats);
  }
  return FilterEdgePairs(pattern, output, pairs,
                         doc.regions->DocumentRegion().start);
}

NodeList FilterEdgePairs(const algebra::PatternGraph& pattern,
                         algebra::VertexId output,
                         const std::vector<std::vector<JoinPair>>& edge_pairs,
                         uint32_t root_binding) {
  using algebra::VertexId;
  const size_t k = pattern.VertexCount();
  // Bottom-up validity (vertex ids are topologically ordered).
  std::vector<std::unordered_set<uint32_t>> valid(k);
  for (size_t vi = k; vi-- > 0;) {
    const VertexId v = static_cast<VertexId>(vi);
    std::unordered_set<uint32_t> candidates;
    if (v == pattern.root()) {
      candidates.insert(root_binding);
    } else {
      for (const JoinPair& p : edge_pairs[v]) candidates.insert(p.descendant);
    }
    for (const VertexId c : pattern.vertex(v).children) {
      std::unordered_set<uint32_t> supported;
      for (const JoinPair& p : edge_pairs[c]) {
        if (valid[c].count(p.descendant) > 0) supported.insert(p.ancestor);
      }
      for (auto it = candidates.begin(); it != candidates.end();) {
        if (supported.count(*it) == 0) {
          it = candidates.erase(it);
        } else {
          ++it;
        }
      }
      if (candidates.empty()) break;
    }
    valid[v] = std::move(candidates);
  }
  // Top-down reachability.
  std::vector<std::unordered_set<uint32_t>> reach(k);
  reach[pattern.root()] = valid[pattern.root()];
  for (VertexId v = 1; v < k; ++v) {
    const VertexId parent = pattern.vertex(v).parent;
    for (const JoinPair& p : edge_pairs[v]) {
      if (reach[parent].count(p.ancestor) > 0 &&
          valid[v].count(p.descendant) > 0) {
        reach[v].insert(p.descendant);
      }
    }
  }
  NodeList result(reach[output].begin(), reach[output].end());
  Normalize(&result);
  return result;
}

std::vector<Region> ToRegions(const storage::RegionIndex& index,
                              const NodeList& nodes, OpStats* stats) {
  std::vector<Region> out;
  out.reserve(nodes.size());
  for (xml::NodeId id : nodes) {
    out.push_back(index.RegionOf(id));
  }
  if (stats != nullptr) stats->index_probes += nodes.size();
  return out;
}

}  // namespace xmlq::exec
