#ifndef XMLQ_EXEC_STRUCTURAL_JOIN_H_
#define XMLQ_EXEC_STRUCTURAL_JOIN_H_

#include <span>
#include <vector>

#include "xmlq/base/limits.h"
#include "xmlq/exec/node_stream.h"
#include "xmlq/exec/op_stats.h"
#include "xmlq/storage/region_index.h"

namespace xmlq::exec {

/// One (ancestor, descendant) witness produced by a structural join.
struct JoinPair {
  xml::NodeId ancestor = xml::kNullNode;
  xml::NodeId descendant = xml::kNullNode;
};

/// Stack-Tree structural join (Al-Khalifa et al. [12]): merges two
/// region-sorted streams in O(|A| + |D| + |output|), maintaining the chain
/// of currently-open ancestors on a stack. `parent_child` restricts to
/// level-adjacent pairs. Inputs must be sorted by `start`.
///
/// These merges return plain containers, so on a guard trip they *stop
/// early* (possibly with partial output) and leave the error in the guard's
/// sticky status; callers holding the guard must check it after the call
/// (the executor's XMLQ_GUARD_TICK(guard, 0) idiom).
///
/// `stats` (optional, here and on every matcher below) receives the
/// operator-level observability counters: one `nodes_visited` per stream
/// element consumed, `stack_pushes`/`stack_pops` for the merge stack,
/// `index_probes` per region fetched from the index. Collection costs a few
/// local integer adds committed once per call; a null `stats` costs nothing.
std::vector<JoinPair> StructuralJoinPairs(
    std::span<const storage::Region> ancestors,
    std::span<const storage::Region> descendants, bool parent_child,
    const ResourceGuard* guard = nullptr, OpStats* stats = nullptr);

/// Morsel variant of StructuralJoinPairs (DESIGN.md §12). `seeds` are
/// ancestors opened before this morsel's slice (the document region for a
/// root edge): pushed and drained uncounted, and they must enclose every
/// descendant. `consume_ancestor_tail` consumes + pushes the ancestors left
/// after the last descendant — what the serial merge would do when a later
/// morsel's descendant arrived — so that per-morsel OpStats sum exactly to
/// the serial run's totals.
std::vector<JoinPair> StructuralJoinPairsMorsel(
    std::span<const storage::Region> seeds,
    std::span<const storage::Region> ancestors,
    std::span<const storage::Region> descendants, bool parent_child,
    bool consume_ancestor_tail, const ResourceGuard* guard = nullptr,
    OpStats* stats = nullptr);

/// Semi-join: distinct descendants having at least one ancestor in
/// `ancestors`, in document order.
NodeList StructuralSemiJoinDesc(std::span<const storage::Region> ancestors,
                                std::span<const storage::Region> descendants,
                                bool parent_child,
                                const ResourceGuard* guard = nullptr,
                                OpStats* stats = nullptr);

/// Semi-join: distinct ancestors having at least one descendant in
/// `descendants`, in document order.
NodeList StructuralSemiJoinAnc(std::span<const storage::Region> ancestors,
                               std::span<const storage::Region> descendants,
                               bool parent_child,
                               const ResourceGuard* guard = nullptr,
                               OpStats* stats = nullptr);

/// Builds a region stream (document-ordered) from a normalized node list.
/// Charges one `index_probes` per RegionOf lookup when `stats` is given.
std::vector<storage::Region> ToRegions(const storage::RegionIndex& index,
                                       const NodeList& nodes,
                                       OpStats* stats = nullptr);

/// Builds the region stream for one pattern vertex: the per-tag stream from
/// the region index (the whole element/attribute population for `*`), with
/// the vertex's value predicates applied. The root vertex yields the
/// document region. Shared by all join-based matchers. Charges one
/// `index_probes` per stream entry fetched from the region index and the
/// predicate-evaluation bytes to `bytes_touched`.
Result<std::vector<storage::Region>> BuildVertexStream(
    const IndexedDocument& doc, const algebra::PatternVertex& vertex,
    OpStats* stats = nullptr);

/// The classic binary structural-join plan (baseline [11]/[12]): one
/// stack-tree join per query edge, in `edge_order` (each entry is the edge's
/// *target* vertex; empty = ascending vertex order), with semi-join
/// reduction of both sides after each join, followed by the shared
/// merge/filter phase. `stats` (optional) receives the total number of
/// intermediate pairs produced — the quantity structural-join-order
/// selection [5] minimizes (experiment E4).
struct JoinPlanStats {
  size_t pairs_produced = 0;
};
Result<NodeList> BinaryJoinPlanMatch(
    const IndexedDocument& doc, const algebra::PatternGraph& pattern,
    std::span<const algebra::VertexId> edge_order = {},
    JoinPlanStats* stats = nullptr, const ResourceGuard* guard = nullptr,
    OpStats* op_stats = nullptr);

/// Merge phase shared by the holistic matchers: given, per non-root pattern
/// vertex, the set of structurally-verified (parent binding, vertex binding)
/// pairs for its incoming edge, computes the bindings of `output` that
/// participate in at least one full embedding. Runs a bottom-up validity
/// pass (a binding is valid if every child edge has a pair to a valid child
/// binding) followed by a top-down reachability pass from `root_binding`.
/// Returns the surviving output bindings in document order.
NodeList FilterEdgePairs(const algebra::PatternGraph& pattern,
                         algebra::VertexId output,
                         const std::vector<std::vector<JoinPair>>& edge_pairs,
                         uint32_t root_binding);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_STRUCTURAL_JOIN_H_
