#include "xmlq/exec/twig_stack.h"

#include <algorithm>
#include <limits>

#include "xmlq/base/fault_injector.h"
#include "xmlq/exec/structural_join.h"

namespace xmlq::exec {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::PatternVertex;
using algebra::VertexId;
using storage::Region;

constexpr uint32_t kInfinity = std::numeric_limits<uint32_t>::max();

struct StackEntry {
  Region region;
  // Number of entries on the parent vertex's stack at push time: the first
  // `parent_count` parent entries are this entry's stacked ancestors.
  size_t parent_count = 0;
};

/// Phase-1/2 core over externally built per-vertex streams. The serial entry
/// point runs it over the full streams; the morsel driver (parallel_match)
/// runs one instance per document-order slice with `preseed_root` standing
/// in for the document region the owning run consumed (DESIGN.md §12).
class TwigStackRunner {
 public:
  TwigStackRunner(const IndexedDocument& doc, const PatternGraph& pattern,
                  std::span<const std::span<const Region>> streams,
                  bool preseed_root, bool* consumed_root_child,
                  const ResourceGuard* guard, OpStats* stats)
      : doc_(doc),
        pattern_(pattern),
        streams_(streams),
        preseed_root_(preseed_root),
        consumed_root_child_(consumed_root_child),
        guard_(guard),
        stats_(stats) {}

  Result<NodeList> Run(VertexId output) {
    const size_t k = pattern_.VertexCount();
    cursors_.assign(k, 0);
    stacks_.resize(k);
    pairs_.resize(k);
    if (preseed_root_) {
      // The document region is open across every morsel; push it uncounted
      // (the serial run charges its visit/push once, centrally).
      stacks_[pattern_.root()].push_back(
          StackEntry{doc_.regions->DocumentRegion(), 0});
    }

    // Phase 1: chained-stack merge.
    while (true) {
      const VertexId q = GetNext(pattern_.root());
      if (CurStart(q) == kInfinity) break;
      const Region cur = streams_[q][cursors_[q]];
      // Clean stacks that have moved past `cur`.
      CleanStack(q, cur.start);
      if (q != pattern_.root()) CleanStack(pattern_.vertex(q).parent, cur.start);
      const VertexId parent = pattern_.vertex(q).parent;
      size_t recorded = 0;
      if (q == pattern_.root() || !stacks_[parent].empty()) {
        recorded = Push(q, cur);
      }
      if (consumed_root_child_ != nullptr && q != pattern_.root() &&
          parent == pattern_.root()) {
        *consumed_root_child_ = true;
      }
      // One step per merge iteration plus one per edge pair recorded (the
      // output-sensitive part of the join's cost).
      XMLQ_GUARD_TICK(guard_, 1 + recorded);
      ++cursors_[q];
      ++visited_;
    }

    // Counted drain of the chained stacks (minus the uncounted preseed), so
    // pops == pushes for every run and morsel counters sum to the serial
    // totals.
    for (size_t v = 0; v < k; ++v) pops_ += stacks_[v].size();
    if (preseed_root_) --pops_;

    if (stats_ != nullptr) {
      stats_->nodes_visited += visited_;
      stats_->stack_pushes += pushes_;
      stats_->stack_pops += pops_;
    }
    // Phase 2: merge-equivalent filtering over the edge pair sets.
    return Filter(output);
  }

 private:
  uint32_t CurStart(VertexId v) const {
    return cursors_[v] < streams_[v].size()
               ? streams_[v][cursors_[v]].start
               : kInfinity;
  }
  uint32_t CurEnd(VertexId v) const {
    return cursors_[v] < streams_[v].size() ? streams_[v][cursors_[v]].end
                                            : kInfinity;
  }

  /// Classic TwigStack getNext: returns a vertex whose current stream head
  /// is guaranteed to have a full descendant extension (treating all edges
  /// as ancestor-descendant). Exhausted streams act as +infinity.
  VertexId GetNext(VertexId q) {
    const PatternVertex& vertex = pattern_.vertex(q);
    if (vertex.children.empty()) return q;
    uint32_t min_start = kInfinity;
    uint32_t max_start = 0;
    VertexId min_child = algebra::kNoVertex;
    for (VertexId c : vertex.children) {
      const VertexId n = GetNext(c);
      const bool branch_done = CurStart(n) == kInfinity;
      if (n != c && !branch_done) return n;
      if (branch_done) {
        // A required leaf under `c` is exhausted: no *new* q match can
        // complete, so q may drain (max := +inf); stacked entries keep
        // pairing with the still-live sibling branches below.
        max_start = kInfinity;
        continue;
      }
      const uint32_t s = CurStart(c);
      if (s < min_start) {
        min_start = s;
        min_child = c;
      }
      if (s > max_start) max_start = s;
    }
    while (CurEnd(q) < max_start) {
      ++cursors_[q];
      ++visited_;
    }
    if (min_child == algebra::kNoVertex) {
      // Every branch below q is done; q's remaining elements are useless.
      visited_ += streams_[q].size() - cursors_[q];
      cursors_[q] = streams_[q].size();
      return q;
    }
    if (CurStart(q) < min_start) return q;
    return min_child;
  }

  void CleanStack(VertexId v, uint32_t start) {
    while (!stacks_[v].empty() && stacks_[v].back().region.end < start) {
      stacks_[v].pop_back();
      ++pops_;
    }
  }

  size_t Push(VertexId q, const Region& cur) {
    size_t recorded = 0;
    size_t parent_count = 0;
    if (q != pattern_.root()) {
      const VertexId parent = pattern_.vertex(q).parent;
      parent_count = stacks_[parent].size();
      // Record the structurally-verified pairs for the incoming edge.
      const bool parent_child =
          pattern_.vertex(q).incoming_axis == Axis::kChild ||
          pattern_.vertex(q).incoming_axis == Axis::kAttribute;
      for (size_t i = 0; i < parent_count; ++i) {
        const Region& anc = stacks_[parent][i].region;
        if (anc.start >= cur.start) continue;  // proper ancestors only
        if (parent_child && anc.level + 1 != cur.level) continue;
        pairs_[q].push_back(JoinPair{anc.start, cur.start});
        ++recorded;
      }
    }
    // Leaves never need to stay on the stack (nothing hangs below them).
    if (!pattern_.vertex(q).children.empty()) {
      stacks_[q].push_back(StackEntry{cur, parent_count});
      ++pushes_;
    }
    return recorded;
  }

  Result<NodeList> Filter(VertexId output) {
    return FilterEdgePairs(pattern_, output, pairs_,
                           doc_.regions->DocumentRegion().start);
  }

  const IndexedDocument& doc_;
  const PatternGraph& pattern_;
  std::span<const std::span<const Region>> streams_;
  bool preseed_root_ = false;
  bool* consumed_root_child_ = nullptr;
  const ResourceGuard* guard_ = nullptr;
  OpStats* stats_ = nullptr;
  uint64_t visited_ = 0;
  uint64_t pushes_ = 0;
  uint64_t pops_ = 0;
  std::vector<size_t> cursors_;
  std::vector<std::vector<StackEntry>> stacks_;
  std::vector<std::vector<JoinPair>> pairs_;  // indexed by target vertex
};

}  // namespace

Result<algebra::VertexId> ValidateTwigPattern(const PatternGraph& pattern) {
  XMLQ_RETURN_IF_ERROR(pattern.Validate());
  const VertexId output = pattern.SoleOutput();
  if (output == algebra::kNoVertex) {
    return Status::InvalidArgument("TwigStack requires a sole output vertex");
  }
  for (VertexId v = 0; v < pattern.VertexCount(); ++v) {
    if (v != pattern.root() &&
        (pattern.vertex(v).incoming_axis == Axis::kFollowingSibling ||
         pattern.vertex(v).incoming_axis == Axis::kSelf)) {
      return Status::Unsupported(
          "TwigStack supports child/descendant/attribute arcs only");
    }
  }
  return output;
}

Result<NodeList> TwigStackMatch(const IndexedDocument& doc,
                                const PatternGraph& pattern,
                                const ResourceGuard* guard, OpStats* stats) {
  if (XMLQ_FAULT("exec.twigstack.match")) {
    return Status::Internal("injected fault: exec.twigstack.match");
  }
  XMLQ_ASSIGN_OR_RETURN(const VertexId output, ValidateTwigPattern(pattern));
  const size_t k = pattern.VertexCount();
  std::vector<std::vector<Region>> streams(k);
  for (VertexId v = 0; v < k; ++v) {
    XMLQ_ASSIGN_OR_RETURN(streams[v],
                          BuildVertexStream(doc, pattern.vertex(v), stats));
  }
  std::vector<std::span<const Region>> spans(streams.begin(), streams.end());
  TwigStackRunner runner(doc, pattern, spans, /*preseed_root=*/false,
                         /*consumed_root_child=*/nullptr, guard, stats);
  return runner.Run(output);
}

Result<NodeList> TwigStackMatchMorsel(
    const IndexedDocument& doc, const PatternGraph& pattern,
    algebra::VertexId output,
    std::span<const std::span<const Region>> streams, bool preseed_root,
    bool* consumed_root_child, const ResourceGuard* guard, OpStats* stats) {
  TwigStackRunner runner(doc, pattern, streams, preseed_root,
                         consumed_root_child, guard, stats);
  return runner.Run(output);
}

}  // namespace xmlq::exec
