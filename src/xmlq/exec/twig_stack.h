#ifndef XMLQ_EXEC_TWIG_STACK_H_
#define XMLQ_EXEC_TWIG_STACK_H_

#include <span>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/node_stream.h"

namespace xmlq::exec {

/// Holistic twig join (TwigStack, Bruno et al. [13]) over the region-encoded
/// tag streams. Phase 1 runs the classic getNext-driven chained-stack merge,
/// recording the structurally-verified (parent binding, child binding) pair
/// set per query edge; phase 2 performs the merge equivalent — a bottom-up
/// validity pass and a top-down reachability pass over the edge pair sets —
/// and returns the sole output vertex's bindings in document order.
///
/// Value predicates on vertices are applied while building the streams (the
/// standard "predicate pushdown into the scan" for join-based plans).
///
/// `stats` (optional) receives observability counters: `nodes_visited` is
/// the total cursor movement over the tag streams (each streamed element is
/// consumed exactly once, so for a successful run it equals the sum of the
/// stream sizes), `stack_pushes`/`stack_pops` track the chained stacks, and
/// `index_probes` the stream elements fetched from the region index.
Result<NodeList> TwigStackMatch(const IndexedDocument& doc,
                                const algebra::PatternGraph& pattern,
                                const ResourceGuard* guard = nullptr,
                                OpStats* stats = nullptr);

/// Shared eligibility check for TwigStack-shaped runs: validates the
/// pattern, requires a sole output vertex and join-able axes, and returns
/// the output vertex. Used by the serial entry point and the morsel driver.
Result<algebra::VertexId> ValidateTwigPattern(
    const algebra::PatternGraph& pattern);

/// Morsel-run variant (DESIGN.md §12): phase 1+2 over externally built
/// per-vertex streams (one document-order slice each; no stream building,
/// so no index probes are charged here). `preseed_root` pushes the document
/// region onto the root stack *uncounted* — every morsel but the one that
/// owns the document's visit needs it for anchoring. `consumed_root_child`
/// (optional out) is set when a direct child of the pattern root is
/// main-loop consumed: the driver uses it to attribute the document's
/// stack push exactly once across morsels. Both phase-1 counters and the
/// end-of-run stack drain are counted, so per-morsel OpStats sum exactly to
/// the serial totals. The caller must have run ValidateTwigPattern.
Result<NodeList> TwigStackMatchMorsel(
    const IndexedDocument& doc, const algebra::PatternGraph& pattern,
    algebra::VertexId output,
    std::span<const std::span<const storage::Region>> streams,
    bool preseed_root, bool* consumed_root_child,
    const ResourceGuard* guard = nullptr, OpStats* stats = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_TWIG_STACK_H_
