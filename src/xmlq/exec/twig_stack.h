#ifndef XMLQ_EXEC_TWIG_STACK_H_
#define XMLQ_EXEC_TWIG_STACK_H_

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/node_stream.h"

namespace xmlq::exec {

/// Holistic twig join (TwigStack, Bruno et al. [13]) over the region-encoded
/// tag streams. Phase 1 runs the classic getNext-driven chained-stack merge,
/// recording the structurally-verified (parent binding, child binding) pair
/// set per query edge; phase 2 performs the merge equivalent — a bottom-up
/// validity pass and a top-down reachability pass over the edge pair sets —
/// and returns the sole output vertex's bindings in document order.
///
/// Value predicates on vertices are applied while building the streams (the
/// standard "predicate pushdown into the scan" for join-based plans).
///
/// `stats` (optional) receives observability counters: `nodes_visited` is
/// the total cursor movement over the tag streams (each streamed element is
/// consumed exactly once, so for a successful run it equals the sum of the
/// stream sizes), `stack_pushes`/`stack_pops` track the chained stacks, and
/// `index_probes` the stream elements fetched from the region index.
Result<NodeList> TwigStackMatch(const IndexedDocument& doc,
                                const algebra::PatternGraph& pattern,
                                const ResourceGuard* guard = nullptr,
                                OpStats* stats = nullptr);

}  // namespace xmlq::exec

#endif  // XMLQ_EXEC_TWIG_STACK_H_
