#include "xmlq/net/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace xmlq::net {

uint64_t ScaledBackoffMicros(uint64_t hint_micros, uint32_t attempt,
                             const RetryPolicy& policy) {
  const uint32_t shift = std::min<uint32_t>(attempt, 16);
  // hint * 2^attempt, saturating at the cap: compare against the cap
  // pre-shifted down instead of shifting the hint up, so nothing can wrap.
  if (hint_micros > (policy.max_backoff_micros >> shift)) {
    return policy.max_backoff_micros;
  }
  return hint_micros << shift;
}

std::string_view CallOutcomeName(CallOutcome outcome) {
  switch (outcome) {
    case CallOutcome::kResponse: return "response";
    case CallOutcome::kOverload: return "overload";
    case CallOutcome::kConnectionError: return "connection-error";
  }
  return "?";
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ClientConfig& config) {
  XMLQ_ASSIGN_OR_RETURN(
      UniqueFd fd,
      ConnectTcp(host, port, config.connect_timeout_micros,
                 config.io_timeout_micros));
  return Client(std::move(fd), config);
}

Status Client::SendFrame(FrameType type, uint64_t request_id,
                         std::string_view payload) {
  const std::string frame = EncodeFrame(type, request_id, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = send(fd_.get(), frame.data() + sent,
                           frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") +
                            (n < 0 ? std::strerror(errno) : "short write"));
  }
  return Status::Ok();
}

Result<Frame> Client::ReadFrame() {
  while (true) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeStatus status = DecodeFrame(
        inbuf_, &frame, &consumed, &error, config_.max_frame_bytes);
    if (status == DecodeStatus::kBad) {
      return Status::ParseError("response stream corrupt: " + error);
    }
    if (status == DecodeStatus::kFrame) {
      inbuf_.erase(0, consumed);
      return frame;
    }
    char buf[64 * 1024];
    const ssize_t n = recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("response timeout");
    }
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
}

Result<std::pair<uint64_t, ResponsePayload>> Client::ReadResponse() {
  while (true) {
    Frame frame;
    if (!pending_responses_.empty()) {
      frame = std::move(pending_responses_.front());
      pending_responses_.pop_front();
    } else {
      XMLQ_ASSIGN_OR_RETURN(frame, ReadFrame());
    }
    if (frame.type != FrameType::kResponse) {
      // A replication stream frame interleaved with pipelined responses:
      // stash it for ReadReplFrame instead of failing the response read
      // (bounded; see kMaxPendingRepl).
      if (frame.type == FrameType::kReplRecord ||
          frame.type == FrameType::kReplChunk ||
          frame.type == FrameType::kReplHeartbeat) {
        if (pending_repl_.size() >= kMaxPendingRepl) {
          pending_repl_.pop_front();
        }
        pending_repl_.push_back(std::move(frame));
        continue;
      }
      return Status::ParseError(
          "unexpected frame type from server: " +
          std::string(FrameTypeName(frame.type)));
    }
    ResponsePayload response;
    if (!DecodeResponse(frame.payload, &response)) {
      return Status::ParseError("malformed response payload");
    }
    return std::make_pair(frame.request_id, std::move(response));
  }
}

Result<Frame> Client::ReadReplFrame() {
  while (true) {
    Frame frame;
    if (!pending_repl_.empty()) {
      frame = std::move(pending_repl_.front());
      pending_repl_.pop_front();
    } else {
      XMLQ_ASSIGN_OR_RETURN(frame, ReadFrame());
    }
    switch (frame.type) {
      case FrameType::kReplRecord:
      case FrameType::kReplChunk:
      case FrameType::kReplHeartbeat:
        return frame;
      case FrameType::kResponse:
        // The mirror of ReadResponse's stash: a pipelined response arriving
        // mid-stream waits for its ReadResponse call.
        pending_responses_.push_back(std::move(frame));
        continue;
      default:
        return Status::ParseError(
            "unexpected frame type from server: " +
            std::string(FrameTypeName(frame.type)));
    }
  }
}

Result<ResponsePayload> Client::Subscribe(uint64_t from_generation,
                                          uint64_t epoch,
                                          uint64_t refetch_generation) {
  ReplSubscribePayload subscribe;
  subscribe.from_generation = from_generation;
  subscribe.epoch = epoch;
  subscribe.refetch_generation = refetch_generation;
  return RoundTrip(FrameType::kReplSubscribe, EncodeReplSubscribe(subscribe));
}

Result<ResponsePayload> Client::Promote() {
  return RoundTrip(FrameType::kPromote, {});
}

Result<uint64_t> Client::SendQuery(std::string_view text,
                                   uint32_t parallelism) {
  const uint64_t request_id = next_request_id_++;
  if (parallelism == 1) {
    XMLQ_RETURN_IF_ERROR(SendFrame(FrameType::kQuery, request_id, text));
  } else {
    XMLQ_RETURN_IF_ERROR(SendFrame(FrameType::kQueryOpts, request_id,
                                   EncodeQueryOpts(parallelism, text)));
  }
  return request_id;
}

Result<uint64_t> Client::SendCancel(uint64_t target_request_id) {
  const uint64_t request_id = next_request_id_++;
  XMLQ_RETURN_IF_ERROR(SendFrame(FrameType::kCancel, request_id,
                                 EncodeCancelTarget(target_request_id)));
  return request_id;
}

Result<ResponsePayload> Client::RoundTrip(FrameType type,
                                          std::string_view payload) {
  const uint64_t request_id = next_request_id_++;
  XMLQ_RETURN_IF_ERROR(SendFrame(type, request_id, payload));
  while (true) {
    XMLQ_ASSIGN_OR_RETURN(auto response, ReadResponse());
    // Stale responses (e.g. from an earlier pipelined request) are skipped,
    // not errors.
    if (response.first == request_id) return std::move(response.second);
  }
}

Result<ResponsePayload> Client::Query(std::string_view text,
                                      uint32_t parallelism) {
  if (parallelism == 1) return RoundTrip(FrameType::kQuery, text);
  return RoundTrip(FrameType::kQueryOpts, EncodeQueryOpts(parallelism, text));
}

Result<ResponsePayload> Client::Ping() {
  return RoundTrip(FrameType::kPing, {});
}

Result<ResponsePayload> Client::Stats() {
  return RoundTrip(FrameType::kStats, {});
}

CallResult Client::QueryWithRetry(std::string_view text,
                                  const RetryPolicy& policy,
                                  std::mt19937_64* rng,
                                  uint32_t parallelism) {
  CallResult result;
  for (uint32_t attempt = 0; attempt < std::max(policy.max_attempts, 1u);
       ++attempt) {
    result.attempts = attempt + 1;
    auto response = Query(text, parallelism);
    if (!response.ok()) {
      result.outcome = CallOutcome::kConnectionError;
      result.transport_error = response.status();
      return result;
    }
    result.response = std::move(*response);
    const bool overloaded =
        result.response.code == StatusCode::kResourceExhausted &&
        result.response.retry_after_micros != 0;
    if (!overloaded) {
      result.outcome = CallOutcome::kResponse;
      return result;
    }
    result.outcome = CallOutcome::kOverload;
    if (attempt + 1 >= policy.max_attempts) return result;
    // Honor the hint: exponential growth over attempts, ±50% jitter so a
    // thundering herd of shed clients decorrelates, capped by the policy.
    const uint64_t hint = result.response.retry_after_micros != 0
                              ? result.response.retry_after_micros
                              : policy.base_backoff_micros;
    const uint64_t scaled = ScaledBackoffMicros(hint, attempt, policy);
    std::uniform_real_distribution<double> jitter(0.5, 1.5);
    uint64_t wait = static_cast<uint64_t>(
        static_cast<double>(scaled) * jitter(*rng));
    wait = std::min(wait, policy.max_backoff_micros);
    result.backoff_micros += wait;
    std::this_thread::sleep_for(std::chrono::microseconds(wait));
  }
  return result;
}

}  // namespace xmlq::net
