#ifndef XMLQ_NET_CLIENT_H_
#define XMLQ_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <string_view>
#include <utility>

#include "xmlq/base/socket.h"
#include "xmlq/base/status.h"
#include "xmlq/net/protocol.h"

namespace xmlq::net {

struct ClientConfig {
  uint64_t connect_timeout_micros = 2'000'000;
  /// Per-recv/send socket timeout; also the cap on waiting for one
  /// response.
  uint64_t io_timeout_micros = 30'000'000;
  /// Client-side frame cap — responses can be larger than requests.
  uint32_t max_frame_bytes = 64u << 20;
};

/// Knobs for QueryWithRetry's backoff loop.
struct RetryPolicy {
  uint32_t max_attempts = 6;
  /// Fallback wait when an overload response carries no hint.
  uint64_t base_backoff_micros = 1'000;
  uint64_t max_backoff_micros = 500'000;
};

/// The pre-jitter backoff schedule QueryWithRetry follows: the server's
/// retry-after hint scaled by 2^attempt, saturating at
/// policy.max_backoff_micros — a huge hint cannot overflow and wrap to a
/// near-zero wait.
uint64_t ScaledBackoffMicros(uint64_t hint_micros, uint32_t attempt,
                             const RetryPolicy& policy);

/// What one retried request ultimately came to. Every request ends in
/// exactly one of these — the trichotomy the chaos suite asserts.
enum class CallOutcome : uint8_t {
  kResponse,         // a response frame arrived (any status but overload)
  kOverload,         // still shed after every retry (retryable; gave up)
  kConnectionError,  // transport failed (clean close, reset, timeout)
};
std::string_view CallOutcomeName(CallOutcome outcome);

struct CallResult {
  CallOutcome outcome = CallOutcome::kConnectionError;
  ResponsePayload response;  // meaningful for kResponse / kOverload
  Status transport_error;    // meaningful for kConnectionError
  uint32_t attempts = 1;
  uint64_t backoff_micros = 0;  // total time slept honoring retry-after
};

/// Blocking client for the xmlq wire protocol. One connection, one thread:
/// the pipelined Send*/ReadResponse surface exists so a caller can overlap
/// requests (and cancel one mid-flight), but the object itself is not
/// thread-safe.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ClientConfig& config = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// One request, one response (request ids are assigned internally).
  /// `parallelism` != 1 rides a kQueryOpts frame (per-request intra-query
  /// worker lanes); 1 sends the plain kQuery frame.
  Result<ResponsePayload> Query(std::string_view text,
                                uint32_t parallelism = 1);
  Result<ResponsePayload> Ping();
  Result<ResponsePayload> Stats();

  /// Query with overload handling: while responses come back
  /// kResourceExhausted with a retry-after hint, sleeps the hinted time
  /// scaled by 2^attempt with ±50% jitter (capped by the policy) and
  /// resubmits. Never retries transport errors — reconnect-and-retry is a
  /// topology decision that belongs to the caller (see xmlq_loadgen).
  CallResult QueryWithRetry(std::string_view text, const RetryPolicy& policy,
                            std::mt19937_64* rng, uint32_t parallelism = 1);

  // -- Pipelined surface ----------------------------------------------------

  /// Sends a Query frame without waiting; returns the request id to match
  /// against ReadResponse / pass to SendCancel.
  Result<uint64_t> SendQuery(std::string_view text, uint32_t parallelism = 1);
  /// Asks the server to cancel in-flight request `target_request_id`. The
  /// cancel gets its own ack response.
  Result<uint64_t> SendCancel(uint64_t target_request_id);
  /// Blocks for the next response frame: (request_id, payload). Frames of
  /// other server->client types (the replication stream) arriving
  /// interleaved are stashed for ReadReplFrame, never mis-delivered here.
  Result<std::pair<uint64_t, ResponsePayload>> ReadResponse();

  // -- Replication surface --------------------------------------------------

  /// Subscribes this connection to the primary's replication stream,
  /// resuming from `from_generation` (ships every live registration with a
  /// higher generation, then heartbeats). `epoch` is the follower's highest
  /// persisted fencing term — a primary that is *behind* it refuses (it is
  /// the stale side of a split brain). `refetch_generation` != 0 asks for
  /// that exact live generation to be re-shipped first (self-heal after a
  /// local quarantine). Returns the server's ack, whose body carries the
  /// primary's epoch ("... epoch=N").
  Result<ResponsePayload> Subscribe(uint64_t from_generation,
                                    uint64_t epoch = 0,
                                    uint64_t refetch_generation = 0);
  /// Promotes the server (kPromote admin frame): it stops its replication
  /// client, bumps+persists its epoch and lifts follower mode. The ack body
  /// carries the new epoch ("promoted; epoch=N").
  Result<ResponsePayload> Promote();
  /// Blocks for the next replication stream frame (kReplRecord, kReplChunk
  /// or kReplHeartbeat); kResponse frames arriving interleaved are stashed
  /// for ReadResponse. The symmetric half of the type demux.
  Result<Frame> ReadReplFrame();

  int fd() const { return fd_.get(); }

 private:
  Client(UniqueFd fd, ClientConfig config)
      : fd_(std::move(fd)), config_(config) {}

  Status SendFrame(FrameType type, uint64_t request_id,
                   std::string_view payload);
  Result<ResponsePayload> RoundTrip(FrameType type, std::string_view payload);
  /// Reads one frame off the socket (decoding from inbuf_ first).
  Result<Frame> ReadFrame();

  /// Stashed repl frames are bounded: a client that only ever calls
  /// ReadResponse on a subscribed connection must not buffer the stream
  /// without limit, so the oldest stream frames are dropped (the follower's
  /// resume-from-cursor makes re-shipping safe).
  static constexpr size_t kMaxPendingRepl = 1024;

  UniqueFd fd_;
  ClientConfig config_;
  uint64_t next_request_id_ = 1;
  std::string inbuf_;
  std::deque<Frame> pending_responses_;
  std::deque<Frame> pending_repl_;
};

}  // namespace xmlq::net

#endif  // XMLQ_NET_CLIENT_H_
