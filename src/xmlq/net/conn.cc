#include "xmlq/net/conn.h"

namespace xmlq::net {

std::string_view EvictReasonName(Conn::Evict reason) {
  switch (reason) {
    case Conn::Evict::kNone: return "none";
    case Conn::Evict::kIdle: return "idle";
    case Conn::Evict::kReadDeadline: return "read-deadline";
    case Conn::Evict::kWriteDeadline: return "write-deadline";
    case Conn::Evict::kSlowClient: return "slow-client";
  }
  return "?";
}

}  // namespace xmlq::net
