#ifndef XMLQ_NET_CONN_H_
#define XMLQ_NET_CONN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "xmlq/base/file_io.h"
#include "xmlq/base/limits.h"
#include "xmlq/base/socket.h"
#include "xmlq/net/protocol.h"
#include "xmlq/storage/manifest.h"

namespace xmlq::net {

/// Per-connection robustness knobs. Zero never means "unlimited" here — a
/// serving tier with unbounded buffers or immortal idle connections is how
/// one slow client takes down the fleet — so the defaults are real bounds.
struct ConnLimits {
  /// Cap on one frame (header + payload), enforced from the length field
  /// alone, before any payload is buffered.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Queries allowed in flight per connection; one more is answered with a
  /// retryable overload response (the frame is cheap, the query never
  /// starts).
  uint32_t max_inflight = 16;
  /// Write-buffer backpressure bound: a client that reads slower than its
  /// responses accumulate is evicted once the buffered bytes exceed this.
  size_t max_write_buffer_bytes = 8u << 20;
  /// A connection with no traffic and nothing in flight for this long is
  /// closed.
  uint64_t idle_timeout_micros = 60'000'000;
  /// A partial frame must complete within this after its first byte
  /// (defeats slow-loris trickle).
  uint64_t read_deadline_micros = 10'000'000;
  /// Buffered response bytes must drain within this of being queued.
  uint64_t write_deadline_micros = 10'000'000;
};

/// One query in flight on a connection. The cancel token is created with
/// the request — *before* the worker picks it up — so a wire Cancel frame
/// always has something to cancel, with no window where the query exists
/// but is not yet cancellable (Database::Query registers the same token
/// before admission, and its guard polls it while queued and while
/// running).
struct InflightQuery {
  std::shared_ptr<CancelToken> token = std::make_shared<CancelToken>();
  /// Serving query id, published by Database::Query before admission; 0
  /// until then. Diagnostic only — cancellation goes through the token.
  std::atomic<uint64_t> query_id{0};
};

/// Replication-subscriber state a kReplSubscribe frame attaches to its
/// connection (DESIGN.md §13). Owned by the event loop like the rest of the
/// Conn; the pump advances it between epoll waits. `cursor` is the highest
/// generation fully shipped — the resume point the follower echoes back
/// after a reconnect, so none of this state needs to survive the socket.
struct ReplSub {
  bool active = false;
  uint64_t cursor = 0;
  /// Self-heal request (DESIGN.md §14): when non-zero, ship this exact live
  /// generation first even though it is at or below the cursor — the
  /// follower quarantined its local copy and asked for a fresh one.
  /// One-shot: cleared once the shipment starts (or the generation turns
  /// out to be gone, which the census reconciles instead).
  uint64_t refetch_generation = 0;
  /// In-progress shipment: the announced record, the snapshot mapping the
  /// chunks are sliced from (the mapping stays valid even if a concurrent
  /// Persist unlinks the file — generations never share a file name), and
  /// the next chunk offset.
  bool shipping = false;
  storage::ManifestRecord record;
  FileBytes file;
  uint64_t offset = 0;
  /// Heartbeat pacing: send when caught up and the interval elapsed, or
  /// immediately when the manifest clock moved (removals propagate through
  /// the heartbeat census, so a remove must not wait out the interval).
  std::chrono::steady_clock::time_point last_heartbeat{};
  uint64_t last_heartbeat_generation = UINT64_MAX;
};

/// State of one accepted connection. Owned and mutated by the event-loop
/// thread only; workers reach it exclusively through the server's
/// completion queue (keyed by the connection's id, so a completion for a
/// connection that died in the meantime is dropped, never dereferenced).
class Conn {
 public:
  using Clock = std::chrono::steady_clock;

  Conn(uint64_t id, UniqueFd fd, const ConnLimits& limits, Clock::time_point now)
      : id_(id), fd_(std::move(fd)), limits_(limits), last_activity_(now) {}

  uint64_t id() const { return id_; }
  int fd() const { return fd_.get(); }

  std::string& inbuf() { return inbuf_; }
  std::string& outbuf() { return outbuf_; }
  const ConnLimits& limits() const { return limits_; }

  std::map<uint64_t, std::shared_ptr<InflightQuery>>& inflight() {
    return inflight_;
  }

  ReplSub& repl() { return repl_; }

  /// Records read-side progress: fresh bytes arrived (`got_bytes`), and
  /// afterwards the buffer either holds a partial frame or is empty.
  void NoteRead(Clock::time_point now, bool partial_frame) {
    last_activity_ = now;
    if (partial_frame) {
      if (!read_deadline_armed_) {
        read_deadline_armed_ = true;
        partial_since_ = now;
      }
    } else {
      read_deadline_armed_ = false;
    }
  }

  /// Records that response bytes were queued; arms the write deadline when
  /// the buffer transitions empty -> non-empty.
  void NoteQueuedWrite(Clock::time_point now) {
    if (!write_deadline_armed_ && !outbuf_.empty()) {
      write_deadline_armed_ = true;
      write_pending_since_ = now;
    }
  }

  /// Records write-side progress; re-arms from `now` while bytes remain
  /// (progress resets the deadline — only a *stalled* client is evicted).
  void NoteWrote(Clock::time_point now) {
    last_activity_ = now;
    if (outbuf_.empty()) {
      write_deadline_armed_ = false;
    } else {
      write_pending_since_ = now;
    }
  }

  /// Why a deadline sweep decided to evict this connection; kNone = keep.
  enum class Evict : uint8_t { kNone, kIdle, kReadDeadline, kWriteDeadline,
                               kSlowClient };

  /// The deadline/backpressure policy, pure over this connection's state.
  Evict CheckDeadlines(Clock::time_point now) const {
    using std::chrono::microseconds;
    if (outbuf_.size() > limits_.max_write_buffer_bytes) {
      return Evict::kSlowClient;
    }
    if (write_deadline_armed_ &&
        now - write_pending_since_ >
            microseconds(limits_.write_deadline_micros)) {
      return Evict::kWriteDeadline;
    }
    if (read_deadline_armed_ &&
        now - partial_since_ > microseconds(limits_.read_deadline_micros)) {
      return Evict::kReadDeadline;
    }
    if (inflight_.empty() && outbuf_.empty() && !read_deadline_armed_ &&
        now - last_activity_ > microseconds(limits_.idle_timeout_micros)) {
      return Evict::kIdle;
    }
    return Evict::kNone;
  }

 private:
  const uint64_t id_;
  UniqueFd fd_;
  const ConnLimits limits_;

  std::string inbuf_;
  std::string outbuf_;
  std::map<uint64_t, std::shared_ptr<InflightQuery>> inflight_;
  ReplSub repl_;

  Clock::time_point last_activity_;
  Clock::time_point partial_since_{};
  Clock::time_point write_pending_since_{};
  bool read_deadline_armed_ = false;
  bool write_deadline_armed_ = false;
};

std::string_view EvictReasonName(Conn::Evict reason);

}  // namespace xmlq::net

#endif  // XMLQ_NET_CONN_H_
