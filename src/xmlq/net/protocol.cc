#include "xmlq/net/protocol.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "xmlq/base/crc32.h"

namespace xmlq::net {

namespace {

uint32_t FrameCrc(const FrameHeader& header, std::string_view payload) {
  FrameHeader crc_input = header;
  crc_input.crc = 0;
  const uint32_t crc = Crc32(&crc_input, sizeof(crc_input));
  return Crc32(payload.data(), payload.size(), crc);
}

bool KnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kPing:
    case FrameType::kStats:
    case FrameType::kQueryOpts:
    case FrameType::kReplSubscribe:
    case FrameType::kPromote:
    case FrameType::kResponse:
    case FrameType::kReplRecord:
    case FrameType::kReplChunk:
    case FrameType::kReplHeartbeat:
      return true;
  }
  return false;
}

/// Little-endian scalar append/read helpers for the multi-field repl
/// payloads (the simpler payloads above memcpy fixed layouts directly).
template <typename T>
void PutScalar(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool GetScalar(std::string_view* in, T* out) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(out, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

bool GetBytes(std::string_view* in, size_t len, std::string* out) {
  if (in->size() < len) return false;
  out->assign(in->substr(0, len));
  in->remove_prefix(len);
  return true;
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery: return "query";
    case FrameType::kCancel: return "cancel";
    case FrameType::kPing: return "ping";
    case FrameType::kStats: return "stats";
    case FrameType::kQueryOpts: return "query_opts";
    case FrameType::kReplSubscribe: return "repl_subscribe";
    case FrameType::kPromote: return "promote";
    case FrameType::kResponse: return "response";
    case FrameType::kReplRecord: return "repl_record";
    case FrameType::kReplChunk: return "repl_chunk";
    case FrameType::kReplHeartbeat: return "repl_heartbeat";
  }
  return "?";
}

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        std::string_view payload) {
  // payload_len is a u32 on the wire. A payload that does not fit would
  // silently truncate the length field and corrupt the stream for the
  // peer, which is strictly worse than dying here: callers must cap or
  // split (the server substitutes a status response — see
  // Server::EncodeResponseFrame).
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    assert(false && "EncodeFrame payload exceeds u32 length field");
    std::abort();
  }
  FrameHeader header;
  std::memcpy(header.magic, kFrameMagic, sizeof(header.magic));
  header.version = kProtocolVersion;
  header.type = static_cast<uint8_t>(type);
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.crc = FrameCrc(header, payload);
  std::string bytes(sizeof(header) + payload.size(), '\0');
  std::memcpy(bytes.data(), &header, sizeof(header));
  std::memcpy(bytes.data() + sizeof(header), payload.data(), payload.size());
  return bytes;
}

std::string EncodeResponse(const ResponsePayload& response) {
  const uint32_t code = static_cast<uint32_t>(response.code);
  std::string bytes(sizeof(uint32_t) + sizeof(uint64_t) +
                        response.body.size(),
                    '\0');
  std::memcpy(bytes.data(), &code, sizeof(code));
  std::memcpy(bytes.data() + sizeof(code), &response.retry_after_micros,
              sizeof(response.retry_after_micros));
  std::memcpy(bytes.data() + sizeof(code) +
                  sizeof(response.retry_after_micros),
              response.body.data(), response.body.size());
  return bytes;
}

bool DecodeResponse(std::string_view payload, ResponsePayload* out) {
  constexpr size_t kFixed = sizeof(uint32_t) + sizeof(uint64_t);
  if (payload.size() < kFixed) return false;
  uint32_t code = 0;
  std::memcpy(&code, payload.data(), sizeof(code));
  bool known = false;
  for (const StatusCode c : kAllStatusCodes) {
    if (code == static_cast<uint32_t>(c)) known = true;
  }
  if (!known) return false;
  out->code = static_cast<StatusCode>(code);
  std::memcpy(&out->retry_after_micros, payload.data() + sizeof(code),
              sizeof(out->retry_after_micros));
  out->body.assign(payload.substr(kFixed));
  return true;
}

std::string EncodeCancelTarget(uint64_t target_request_id) {
  std::string bytes(sizeof(target_request_id), '\0');
  std::memcpy(bytes.data(), &target_request_id, sizeof(target_request_id));
  return bytes;
}

bool DecodeCancelTarget(std::string_view payload, uint64_t* out) {
  if (payload.size() != sizeof(*out)) return false;
  std::memcpy(out, payload.data(), sizeof(*out));
  return true;
}

std::string EncodeQueryOpts(uint32_t parallelism, std::string_view query) {
  std::string bytes(sizeof(parallelism) + query.size(), '\0');
  std::memcpy(bytes.data(), &parallelism, sizeof(parallelism));
  std::memcpy(bytes.data() + sizeof(parallelism), query.data(), query.size());
  return bytes;
}

bool DecodeQueryOpts(std::string_view payload, uint32_t* parallelism,
                     std::string* query) {
  if (payload.size() < sizeof(*parallelism)) return false;
  std::memcpy(parallelism, payload.data(), sizeof(*parallelism));
  query->assign(payload.substr(sizeof(*parallelism)));
  return true;
}

std::string EncodeReplSubscribe(const ReplSubscribePayload& subscribe) {
  std::string bytes;
  PutScalar(&bytes, subscribe.from_generation);
  PutScalar(&bytes, subscribe.epoch);
  PutScalar(&bytes, subscribe.refetch_generation);
  return bytes;
}

bool DecodeReplSubscribe(std::string_view payload,
                         ReplSubscribePayload* out) {
  return GetScalar(&payload, &out->from_generation) &&
         GetScalar(&payload, &out->epoch) &&
         GetScalar(&payload, &out->refetch_generation) && payload.empty();
}

std::string EncodeReplRecord(const ReplRecordPayload& record) {
  std::string bytes;
  PutScalar(&bytes, record.op);
  PutScalar(&bytes, static_cast<uint32_t>(record.name.size()));
  PutScalar(&bytes, record.generation);
  PutScalar(&bytes, record.snapshot_size);
  PutScalar(&bytes, record.snapshot_crc);
  PutScalar(&bytes, record.epoch);
  bytes += record.name;
  bytes += record.file;
  return bytes;
}

bool DecodeReplRecord(std::string_view payload, ReplRecordPayload* out) {
  uint32_t name_len = 0;
  if (!GetScalar(&payload, &out->op) || !GetScalar(&payload, &name_len) ||
      !GetScalar(&payload, &out->generation) ||
      !GetScalar(&payload, &out->snapshot_size) ||
      !GetScalar(&payload, &out->snapshot_crc) ||
      !GetScalar(&payload, &out->epoch)) {
    return false;
  }
  if (!GetBytes(&payload, name_len, &out->name)) return false;
  out->file.assign(payload);
  return true;
}

std::string EncodeReplChunk(const ReplChunkPayload& chunk) {
  std::string bytes;
  PutScalar(&bytes, chunk.generation);
  PutScalar(&bytes, chunk.offset);
  PutScalar(&bytes, chunk.total_size);
  PutScalar(&bytes, chunk.epoch);
  bytes += chunk.bytes;
  return bytes;
}

bool DecodeReplChunk(std::string_view payload, ReplChunkPayload* out) {
  if (!GetScalar(&payload, &out->generation) ||
      !GetScalar(&payload, &out->offset) ||
      !GetScalar(&payload, &out->total_size) ||
      !GetScalar(&payload, &out->epoch)) {
    return false;
  }
  // A chunk claiming bytes past total_size is hostile or corrupt.
  if (out->offset > out->total_size ||
      payload.size() > out->total_size - out->offset) {
    return false;
  }
  out->bytes.assign(payload);
  return true;
}

std::string EncodeReplHeartbeat(const ReplHeartbeatPayload& heartbeat) {
  std::string bytes;
  PutScalar(&bytes, heartbeat.epoch);
  PutScalar(&bytes, heartbeat.max_generation);
  PutScalar(&bytes, static_cast<uint32_t>(heartbeat.live.size()));
  for (const ReplLiveEntry& entry : heartbeat.live) {
    PutScalar(&bytes, static_cast<uint32_t>(entry.name.size()));
    bytes += entry.name;
    PutScalar(&bytes, entry.generation);
  }
  return bytes;
}

bool DecodeReplHeartbeat(std::string_view payload,
                         ReplHeartbeatPayload* out) {
  uint32_t count = 0;
  if (!GetScalar(&payload, &out->epoch) ||
      !GetScalar(&payload, &out->max_generation) ||
      !GetScalar(&payload, &count)) {
    return false;
  }
  // Each entry is at least 12 bytes, so the remaining payload bounds the
  // claimed count before anything is allocated for it.
  if (count > payload.size() / (sizeof(uint32_t) + sizeof(uint64_t))) {
    return false;
  }
  out->live.clear();
  out->live.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    ReplLiveEntry entry;
    if (!GetScalar(&payload, &name_len) ||
        !GetBytes(&payload, name_len, &entry.name) ||
        !GetScalar(&payload, &entry.generation)) {
      return false;
    }
    out->live.push_back(std::move(entry));
  }
  return payload.empty();
}

DecodeStatus DecodeFrame(std::string_view buffer, Frame* frame,
                         size_t* consumed, std::string* error,
                         uint32_t max_frame_bytes) {
  if (buffer.size() < sizeof(FrameHeader)) return DecodeStatus::kNeedMore;
  FrameHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  if (std::memcmp(header.magic, kFrameMagic, sizeof(header.magic)) != 0) {
    *error = "bad frame magic";
    return DecodeStatus::kBad;
  }
  if (header.version != kProtocolVersion) {
    *error = "unsupported protocol version " + std::to_string(header.version);
    return DecodeStatus::kBad;
  }
  if (!KnownFrameType(header.type)) {
    *error = "unknown frame type " + std::to_string(header.type);
    return DecodeStatus::kBad;
  }
  if (header.reserved != 0) {
    *error = "reserved header bits set";
    return DecodeStatus::kBad;
  }
  if (sizeof(FrameHeader) + static_cast<uint64_t>(header.payload_len) >
      max_frame_bytes) {
    *error = "frame too large (" + std::to_string(header.payload_len) +
             " payload bytes, cap " + std::to_string(max_frame_bytes) + ")";
    return DecodeStatus::kBad;
  }
  if (buffer.size() - sizeof(FrameHeader) < header.payload_len) {
    return DecodeStatus::kNeedMore;
  }
  const std::string_view payload(buffer.data() + sizeof(FrameHeader),
                                 header.payload_len);
  const uint32_t crc = FrameCrc(header, payload);
  if (crc != header.crc) {
    *error = "frame checksum mismatch (stored " + std::to_string(header.crc) +
             ", computed " + std::to_string(crc) + ")";
    return DecodeStatus::kBad;
  }
  frame->type = static_cast<FrameType>(header.type);
  frame->request_id = header.request_id;
  frame->payload.assign(payload);
  *consumed = sizeof(FrameHeader) + header.payload_len;
  return DecodeStatus::kFrame;
}

}  // namespace xmlq::net
