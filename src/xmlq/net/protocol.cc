#include "xmlq/net/protocol.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "xmlq/base/crc32.h"

namespace xmlq::net {

namespace {

uint32_t FrameCrc(const FrameHeader& header, std::string_view payload) {
  FrameHeader crc_input = header;
  crc_input.crc = 0;
  const uint32_t crc = Crc32(&crc_input, sizeof(crc_input));
  return Crc32(payload.data(), payload.size(), crc);
}

bool KnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kPing:
    case FrameType::kStats:
    case FrameType::kQueryOpts:
    case FrameType::kResponse:
      return true;
  }
  return false;
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery: return "query";
    case FrameType::kCancel: return "cancel";
    case FrameType::kPing: return "ping";
    case FrameType::kStats: return "stats";
    case FrameType::kQueryOpts: return "query_opts";
    case FrameType::kResponse: return "response";
  }
  return "?";
}

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        std::string_view payload) {
  // payload_len is a u32 on the wire. A payload that does not fit would
  // silently truncate the length field and corrupt the stream for the
  // peer, which is strictly worse than dying here: callers must cap or
  // split (the server substitutes a status response — see
  // Server::EncodeResponseFrame).
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    assert(false && "EncodeFrame payload exceeds u32 length field");
    std::abort();
  }
  FrameHeader header;
  std::memcpy(header.magic, kFrameMagic, sizeof(header.magic));
  header.version = kProtocolVersion;
  header.type = static_cast<uint8_t>(type);
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.crc = FrameCrc(header, payload);
  std::string bytes(sizeof(header) + payload.size(), '\0');
  std::memcpy(bytes.data(), &header, sizeof(header));
  std::memcpy(bytes.data() + sizeof(header), payload.data(), payload.size());
  return bytes;
}

std::string EncodeResponse(const ResponsePayload& response) {
  const uint32_t code = static_cast<uint32_t>(response.code);
  std::string bytes(sizeof(uint32_t) + sizeof(uint64_t) +
                        response.body.size(),
                    '\0');
  std::memcpy(bytes.data(), &code, sizeof(code));
  std::memcpy(bytes.data() + sizeof(code), &response.retry_after_micros,
              sizeof(response.retry_after_micros));
  std::memcpy(bytes.data() + sizeof(code) +
                  sizeof(response.retry_after_micros),
              response.body.data(), response.body.size());
  return bytes;
}

bool DecodeResponse(std::string_view payload, ResponsePayload* out) {
  constexpr size_t kFixed = sizeof(uint32_t) + sizeof(uint64_t);
  if (payload.size() < kFixed) return false;
  uint32_t code = 0;
  std::memcpy(&code, payload.data(), sizeof(code));
  bool known = false;
  for (const StatusCode c : kAllStatusCodes) {
    if (code == static_cast<uint32_t>(c)) known = true;
  }
  if (!known) return false;
  out->code = static_cast<StatusCode>(code);
  std::memcpy(&out->retry_after_micros, payload.data() + sizeof(code),
              sizeof(out->retry_after_micros));
  out->body.assign(payload.substr(kFixed));
  return true;
}

std::string EncodeCancelTarget(uint64_t target_request_id) {
  std::string bytes(sizeof(target_request_id), '\0');
  std::memcpy(bytes.data(), &target_request_id, sizeof(target_request_id));
  return bytes;
}

bool DecodeCancelTarget(std::string_view payload, uint64_t* out) {
  if (payload.size() != sizeof(*out)) return false;
  std::memcpy(out, payload.data(), sizeof(*out));
  return true;
}

std::string EncodeQueryOpts(uint32_t parallelism, std::string_view query) {
  std::string bytes(sizeof(parallelism) + query.size(), '\0');
  std::memcpy(bytes.data(), &parallelism, sizeof(parallelism));
  std::memcpy(bytes.data() + sizeof(parallelism), query.data(), query.size());
  return bytes;
}

bool DecodeQueryOpts(std::string_view payload, uint32_t* parallelism,
                     std::string* query) {
  if (payload.size() < sizeof(*parallelism)) return false;
  std::memcpy(parallelism, payload.data(), sizeof(*parallelism));
  query->assign(payload.substr(sizeof(*parallelism)));
  return true;
}

DecodeStatus DecodeFrame(std::string_view buffer, Frame* frame,
                         size_t* consumed, std::string* error,
                         uint32_t max_frame_bytes) {
  if (buffer.size() < sizeof(FrameHeader)) return DecodeStatus::kNeedMore;
  FrameHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  if (std::memcmp(header.magic, kFrameMagic, sizeof(header.magic)) != 0) {
    *error = "bad frame magic";
    return DecodeStatus::kBad;
  }
  if (header.version != kProtocolVersion) {
    *error = "unsupported protocol version " + std::to_string(header.version);
    return DecodeStatus::kBad;
  }
  if (!KnownFrameType(header.type)) {
    *error = "unknown frame type " + std::to_string(header.type);
    return DecodeStatus::kBad;
  }
  if (header.reserved != 0) {
    *error = "reserved header bits set";
    return DecodeStatus::kBad;
  }
  if (sizeof(FrameHeader) + static_cast<uint64_t>(header.payload_len) >
      max_frame_bytes) {
    *error = "frame too large (" + std::to_string(header.payload_len) +
             " payload bytes, cap " + std::to_string(max_frame_bytes) + ")";
    return DecodeStatus::kBad;
  }
  if (buffer.size() - sizeof(FrameHeader) < header.payload_len) {
    return DecodeStatus::kNeedMore;
  }
  const std::string_view payload(buffer.data() + sizeof(FrameHeader),
                                 header.payload_len);
  const uint32_t crc = FrameCrc(header, payload);
  if (crc != header.crc) {
    *error = "frame checksum mismatch (stored " + std::to_string(header.crc) +
             ", computed " + std::to_string(crc) + ")";
    return DecodeStatus::kBad;
  }
  frame->type = static_cast<FrameType>(header.type);
  frame->request_id = header.request_id;
  frame->payload.assign(payload);
  *consumed = sizeof(FrameHeader) + header.payload_len;
  return DecodeStatus::kFrame;
}

}  // namespace xmlq::net
