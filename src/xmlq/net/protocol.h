#ifndef XMLQ_NET_PROTOCOL_H_
#define XMLQ_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/base/status.h"

namespace xmlq::net {

/// The xmlq wire protocol (DESIGN.md §10): length-prefixed binary frames,
/// each protected end-to-end by CRC-32C. Integers are little-endian host
/// format, like the storage formats — the server refuses the connection on
/// a magic mismatch, which also catches byte-order confusion.
///
/// Frame layout:
///   [FrameHeader : 24 B][payload : payload_len B]
///
/// The header's crc covers the header (with crc zeroed) plus the payload,
/// so a flipped bit anywhere in a frame invalidates it. A decode failure is
/// not recoverable mid-stream (framing is lost), so the peer closes the
/// connection — the client's retry layer treats that as a clean
/// connection error and reconnects.

inline constexpr char kFrameMagic[4] = {'X', 'Q', 'N', 'F'};
inline constexpr uint8_t kProtocolVersion = 1;
/// Server-side default cap on one frame (header + payload); a header whose
/// payload_len exceeds the cap is a protocol error, not an allocation.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : uint8_t {
  // Client -> server.
  kQuery = 1,   // payload: XQuery/XPath text (UTF-8)
  kCancel = 2,  // payload: u64 request_id of the in-flight query to cancel
  kPing = 3,    // payload: empty
  kStats = 4,   // payload: empty
  kQueryOpts = 5,  // payload: [u32 parallelism][XQuery/XPath text]
  kReplSubscribe = 6,  // payload: ReplSubscribePayload (below)
  kPromote = 7,    // payload: empty — promote this server to primary
  // Server -> client, echoing the request's request_id.
  kResponse = 16,  // payload: ResponsePayload (below)
  // Server -> subscriber (replication stream, DESIGN.md §13). These ride
  // the subscriber's connection interleaved with responses to its own
  // pipelined requests, so clients must demux by type (Client keeps two
  // queues). request_id is 0 — stream frames answer no request.
  kReplRecord = 17,     // payload: ReplRecordPayload (below)
  kReplChunk = 18,      // payload: ReplChunkPayload (below)
  kReplHeartbeat = 19,  // payload: ReplHeartbeatPayload (below)
};

/// Stable lowercase name for a frame type; "?" for unknown.
std::string_view FrameTypeName(FrameType type);

struct FrameHeader {
  char magic[4];
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint16_t reserved = 0;    // must be 0
  uint64_t request_id = 0;  // client-chosen; the response echoes it
  uint32_t payload_len = 0;
  uint32_t crc = 0;  // CRC-32C of header (crc = 0) + payload
};
static_assert(sizeof(FrameHeader) == 24, "on-wire layout");

/// One decoded frame, payload copied out of the stream buffer.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serializes one frame (header + payload + CRC). The payload must fit the
/// u32 length field (< 4 GiB) — anything larger aborts rather than
/// truncating the length and corrupting the stream; size-capping payloads
/// is the caller's job (the server substitutes an error status response).
std::string EncodeFrame(FrameType type, uint64_t request_id,
                        std::string_view payload);

/// Every response frame carries a status code, the scheduler's retry-after
/// backpressure hint (micros; 0 = no hint) and a body: the serialized
/// result for kOk, the error message otherwise; the stats text for kStats;
/// empty for kPing/kCancel acks.
///
/// Wire layout: [u32 status_code][u64 retry_after_micros][body bytes].
struct ResponsePayload {
  StatusCode code = StatusCode::kOk;
  uint64_t retry_after_micros = 0;
  std::string body;
};

std::string EncodeResponse(const ResponsePayload& response);
/// False when the payload is shorter than the fixed fields or the status
/// code is not a known StatusCode.
bool DecodeResponse(std::string_view payload, ResponsePayload* out);

/// Cancel-frame payload helpers (a single u64 target request id).
std::string EncodeCancelTarget(uint64_t target_request_id);
bool DecodeCancelTarget(std::string_view payload, uint64_t* out);

/// kQueryOpts payload helpers: [u32 parallelism][query text]. The
/// parallelism field selects this request's intra-query worker lanes
/// (api::QueryOptions::parallelism — 1 = serial, 0 = all hardware threads),
/// overriding the server's configured default. A plain kQuery frame keeps
/// the default, so existing clients are unaffected.
std::string EncodeQueryOpts(uint32_t parallelism, std::string_view query);
bool DecodeQueryOpts(std::string_view payload, uint32_t* parallelism,
                     std::string* query);

// -- Replication payloads (DESIGN.md §13) -----------------------------------
//
// These codecs live in the protocol layer (not src/xmlq/repl/) because both
// ends need them: the server ships, the follower's ReplicationClient
// receives, and neither may depend on the other's module.

/// kReplSubscribe payload: the follower's resume cursor, the highest epoch
/// it has persisted (DESIGN.md §14 — a primary refuses a subscriber from a
/// *newer* epoch: shipping to it could only be split-brain), and an optional
/// self-heal request: when `refetch_generation` != 0, ship that exact live
/// generation first even though it is at or below the cursor (the follower
/// quarantined its local copy and wants a fresh one).
///
/// Wire: [u64 from_generation][u64 epoch][u64 refetch_generation].
struct ReplSubscribePayload {
  uint64_t from_generation = 0;
  uint64_t epoch = 0;
  uint64_t refetch_generation = 0;
};

std::string EncodeReplSubscribe(const ReplSubscribePayload& subscribe);
bool DecodeReplSubscribe(std::string_view payload, ReplSubscribePayload* out);

/// kReplRecord: announces one manifest registration about to be shipped.
/// Mirrors storage::ManifestRecord for op kRegister; `snapshot_size` bytes
/// of the named snapshot file follow as kReplChunk frames. The whole-file
/// `snapshot_crc` is the follower's commit-time verification authority,
/// independent of the per-frame CRCs.
///
/// Wire: [u32 op][u32 name_len][u64 generation][u64 snapshot_size]
///       [u32 snapshot_crc][u64 epoch][name bytes][file bytes].
struct ReplRecordPayload {
  uint32_t op = 0;  // storage::ManifestOp numeric value
  uint64_t generation = 0;
  uint64_t snapshot_size = 0;
  uint32_t snapshot_crc = 0;
  uint64_t epoch = 0;  // shipper's replication epoch (fencing term)
  std::string name;
  std::string file;
};

std::string EncodeReplRecord(const ReplRecordPayload& record);
bool DecodeReplRecord(std::string_view payload, ReplRecordPayload* out);

/// kReplChunk: one bounded slice of the announced snapshot's bytes.
/// `total_size` repeats the announced size on every chunk so a follower can
/// sanity-check contiguity without trusting its own reassembly state.
///
/// Wire: [u64 generation][u64 offset][u64 total_size][u64 epoch][bytes].
struct ReplChunkPayload {
  uint64_t generation = 0;
  uint64_t offset = 0;
  uint64_t total_size = 0;
  uint64_t epoch = 0;  // shipper's replication epoch (fencing term)
  std::string bytes;
};

std::string EncodeReplChunk(const ReplChunkPayload& chunk);
bool DecodeReplChunk(std::string_view payload, ReplChunkPayload* out);

/// kReplHeartbeat: sent whenever the subscriber is caught up (and at least
/// every heartbeat interval). Carries the primary's manifest clock plus the
/// *full* live census (name, generation per live document), so removals and
/// quarantines — whose journal records compaction may have erased — always
/// propagate: the follower drops local store-backed documents absent from
/// the census. Self-healing every heartbeat, no journal-horizon bookkeeping.
///
/// Wire: [u64 epoch][u64 max_generation][u32 live_count]
///       ([u32 name_len][name bytes][u64 generation])*.
struct ReplLiveEntry {
  std::string name;
  uint64_t generation = 0;
};

struct ReplHeartbeatPayload {
  uint64_t epoch = 0;  // shipper's replication epoch (fencing term)
  uint64_t max_generation = 0;
  std::vector<ReplLiveEntry> live;
};

std::string EncodeReplHeartbeat(const ReplHeartbeatPayload& heartbeat);
bool DecodeReplHeartbeat(std::string_view payload, ReplHeartbeatPayload* out);

/// One step of the incremental frame decoder.
enum class DecodeStatus : uint8_t {
  kFrame,     // *frame filled; *consumed bytes eaten from the buffer
  kNeedMore,  // buffer holds a valid prefix of a frame; read more
  kBad,       // stream is corrupt at its current position (*error says why)
};

/// Decodes the frame at the front of `buffer` without consuming it; the
/// caller erases `*consumed` bytes after a kFrame. Rejects, with kBad: bad
/// magic, unsupported version, unknown frame type, non-zero reserved bits,
/// payload_len > max_frame_bytes (checked *before* waiting for the payload,
/// so a length-field lie cannot stall or balloon the connection), and CRC
/// mismatch. Never reads past buffer.size().
DecodeStatus DecodeFrame(std::string_view buffer, Frame* frame,
                         size_t* consumed, std::string* error,
                         uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace xmlq::net

#endif  // XMLQ_NET_PROTOCOL_H_
