#include "xmlq/net/server.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "xmlq/base/fault_injector.h"
#include "xmlq/exec/admission.h"

namespace xmlq::net {

namespace {

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;

/// The loop ticks at least this often so deadline sweeps and drain progress
/// never wait on socket activity.
constexpr int kTickMillis = 20;

std::string CounterLine(std::string_view name, uint64_t value) {
  std::string out(name);
  out += "=";
  out += std::to_string(value);
  out += "\n";
  return out;
}

}  // namespace

std::string ServerStats::ToString() const {
  std::string out;
  out += CounterLine("connections", connections);
  out += CounterLine("accepted", accepted);
  out += CounterLine("frames", frames);
  out += CounterLine("queries", queries);
  out += CounterLine("responses", responses);
  out += CounterLine("overload_responses", overload_responses);
  out += CounterLine("inflight_limit_rejects", inflight_limit_rejects);
  out += CounterLine("drain_rejects", drain_rejects);
  out += CounterLine("cancels", cancels);
  out += CounterLine("pings", pings);
  out += CounterLine("stats_requests", stats_requests);
  out += CounterLine("protocol_errors", protocol_errors);
  out += CounterLine("accept_faults", accept_faults);
  out += CounterLine("accept_rejected_full", accept_rejected_full);
  out += CounterLine("read_faults", read_faults);
  out += CounterLine("write_faults", write_faults);
  out += CounterLine("evicted_idle", evicted_idle);
  out += CounterLine("evicted_read_deadline", evicted_read_deadline);
  out += CounterLine("evicted_write_deadline", evicted_write_deadline);
  out += CounterLine("evicted_slow", evicted_slow);
  out += CounterLine("drain_cancelled", drain_cancelled);
  out += CounterLine("repl_subscribers", repl_subscribers);
  out += CounterLine("repl_records_shipped", repl_records_shipped);
  out += CounterLine("repl_chunks_shipped", repl_chunks_shipped);
  out += CounterLine("repl_heartbeats", repl_heartbeats);
  out += CounterLine("repl_ship_faults", repl_ship_faults);
  out += CounterLine("repl_fenced_subscribes", repl_fenced_subscribes);
  out += CounterLine("promotes", promotes);
  return out;
}

Server::Server(api::Database* db, ServerConfig config)
    : db_(db), config_(std::move(config)) {}

Server::~Server() {
  // No effect if the loop already entered drain with the configured
  // deadline — then this just joins the in-progress graceful drain.
  drain_deadline_override_micros_.store(0, std::memory_order_release);
  RequestDrain();
  (void)Wait();
}

Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::InvalidArgument("server already started");
  XMLQ_ASSIGN_OR_RETURN(
      listener_, ListenTcp(config_.host, config_.port, config_.backlog));
  XMLQ_ASSIGN_OR_RETURN(uint16_t port, LocalPort(listener_.get()));
  port_ = port;
  epoll_.Reset(epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  wake_.Reset(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_.valid()) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  if (epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &ev) < 0) {
    return Status::Internal(std::string("epoll_ctl(listener): ") +
                            std::strerror(errno));
  }
  ev.data.u64 = kWakeId;
  if (epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) < 0) {
    return Status::Internal(std::string("epoll_ctl(eventfd): ") +
                            std::strerror(errno));
  }
  const uint32_t worker_count = config_.workers == 0 ? 1 : config_.workers;
  workers_.reserve(worker_count);
  for (uint32_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return Status::Ok();
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  WakeLoop();
}

void Server::WakeLoop() {
  if (!wake_.valid()) return;
  const uint64_t one = 1;
  // write() is async-signal-safe; a full eventfd counter (EAGAIN) already
  // means the loop has a pending wake-up.
  [[maybe_unused]] const ssize_t rc =
      write(wake_.get(), &one, sizeof(one));
}

Status Server::Wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  if (!started_) return loop_status_;
  if (join_started_) {
    // Another caller is (or was) doing the join work; block until it
    // finishes so every Wait() return really means "all threads joined".
    join_cv_.wait(lock, [this] { return join_done_; });
    return loop_status_;
  }
  join_started_ = true;
  lock.unlock();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> jobs_lock(jobs_mu_);
    jobs_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  lock.lock();
  join_done_ = true;
  join_cv_.notify_all();
  return loop_status_;
}

Status Server::Shutdown() {
  RequestDrain();
  return Wait();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Event loop

void Server::Loop() {
  epoll_event events[64];
  while (true) {
    const int n = epoll_wait(epoll_.get(), events, 64, kTickMillis);
    if (n < 0 && errno != EINTR) {
      std::lock_guard<std::mutex> lock(lifecycle_mu_);
      loop_status_ = Status::Internal(std::string("epoll_wait: ") +
                                      std::strerror(errno));
      break;
    }
    for (int i = 0; i < (n < 0 ? 0 : n); ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t rc =
            read(wake_.get(), &drained, sizeof(drained));
        continue;
      }
      if (id == kListenerId) {
        Accept();
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      Conn* conn = it->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(id, Conn::Evict::kNone);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      // The connection may have died in HandleReadable.
      if (conns_.find(id) == conns_.end()) continue;
      if ((events[i].events & EPOLLOUT) != 0) HandleWritable(conn);
    }

    DrainCompletions();

    PumpReplication();

    if (!draining_ && drain_requested_.load(std::memory_order_acquire)) {
      // Enter drain: stop accepting (close the listener so the port frees
      // up immediately) and start the clock on in-flight work.
      draining_ = true;
      if (listener_.valid()) {
        (void)epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(),
                        nullptr);
        listener_.Reset();
      }
      drain_deadline_micros_ = std::min(
          config_.drain_deadline_micros,
          drain_deadline_override_micros_.load(std::memory_order_acquire));
      drain_deadline_ = Conn::Clock::now() +
                        std::chrono::microseconds(drain_deadline_micros_);
    }

    SweepDeadlines();

    if (draining_ && DrainFinished()) break;
  }

  // Loop exit: every remaining connection closes now; their in-flight
  // queries were already cancelled by the drain state machine.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const uint64_t id : ids) CloseConn(id, Conn::Evict::kNone);
}

void Server::Accept() {
  while (true) {
    UniqueFd fd(accept4(listener_.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient accept errors (EMFILE and friends): count and carry on —
      // the listener stays armed, so recovery is automatic once fds free.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accept_faults;
      return;
    }
    if (XMLQ_FAULT("net.accept")) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accept_faults;
      continue;  // fd closes on scope exit: the injected "accept failed"
    }
    if (conns_.size() >= config_.max_connections) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accept_rejected_full;
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(id, std::move(fd), config_.limits,
                                       Conn::Clock::now());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, conn->fd(), &ev) < 0) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accept_faults;
      continue;
    }
    conns_.emplace(id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    stats_.connections = static_cast<uint32_t>(conns_.size());
  }
}

void Server::HandleReadable(Conn* conn) {
  const uint64_t id = conn->id();
  char buf[64 * 1024];
  while (true) {
    if (XMLQ_FAULT("net.read")) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.read_faults;
      }
      CloseConn(id, Conn::Evict::kNone);
      return;
    }
    const ssize_t n = read(conn->fd(), buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf().append(buf, static_cast<size_t>(n));
      if (!DrainInbuf(conn)) {
        CloseConn(id, Conn::Evict::kNone);
        return;
      }
      conn->NoteRead(Conn::Clock::now(), /*partial_frame=*/
                     !conn->inbuf().empty());
      if (static_cast<size_t>(n) < sizeof(buf)) return;
      continue;  // possibly more data queued
    }
    if (n == 0) {  // orderly peer close
      CloseConn(id, Conn::Evict::kNone);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(id, Conn::Evict::kNone);
    return;
  }
}

bool Server::DrainInbuf(Conn* conn) {
  while (true) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeStatus status =
        DecodeFrame(conn->inbuf(), &frame, &consumed, &error,
                    conn->limits().max_frame_bytes);
    if (status == DecodeStatus::kNeedMore) return true;
    if (status == DecodeStatus::kBad || XMLQ_FAULT("net.frame.decode")) {
      // Framing is gone; nothing sent after this point could be attributed
      // to a request, so the only safe move is to close.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
      return false;
    }
    conn->inbuf().erase(0, consumed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames;
    }
    if (!Dispatch(conn, std::move(frame))) return false;
  }
}

bool Server::Dispatch(Conn* conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kPing: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.pings;
      }
      return QueueResponse(conn, frame.request_id, ResponsePayload{});
    }
    case FrameType::kStats: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.stats_requests;
      }
      ResponsePayload response;
      const exec::AdmissionStats admission = db_->admission_stats();
      response.retry_after_micros = admission.retry_after_micros;
      response.body = "admission: submitted=" +
                      std::to_string(admission.submitted) +
                      " admitted=" + std::to_string(admission.admitted) +
                      " rejected=" + std::to_string(admission.rejected) +
                      " shed=" + std::to_string(admission.shed) +
                      " running=" + std::to_string(admission.running) +
                      " queued=" + std::to_string(admission.queued) + "\n" +
                      db_->BreakerReport() +
                      db_->plan_cache_stats().ToString() + "\n" +
                      "epoch=" + std::to_string(db_->epoch()) + "\n" +
                      stats().ToString();
      if (config_.extra_stats) response.body += config_.extra_stats();
      return QueueResponse(conn, frame.request_id, response);
    }
    case FrameType::kReplSubscribe: {
      ReplSubscribePayload subscribe;
      ResponsePayload response;
      if (!DecodeReplSubscribe(frame.payload, &subscribe)) {
        response.code = StatusCode::kInvalidArgument;
        response.body = "malformed subscribe payload";
      } else if (draining_) {
        response.code = StatusCode::kResourceExhausted;
        response.retry_after_micros = config_.drain_deadline_micros;
        response.body = "server draining; retry elsewhere";
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.overload_responses;
      } else if (db_->store_dir().empty()) {
        response.code = StatusCode::kInvalidArgument;
        response.body = "no store attached; nothing to replicate";
      } else if (subscribe.epoch > db_->epoch()) {
        // Split-brain fence, primary side (DESIGN.md §14): this subscriber
        // has seen a newer epoch than ours, so *we* are the stale primary.
        // Shipping to it could only rewind a promoted store — refuse.
        response.code = StatusCode::kInvalidArgument;
        response.body = "subscriber epoch " + std::to_string(subscribe.epoch) +
                        " is ahead of this primary's epoch " +
                        std::to_string(db_->epoch()) +
                        ": fenced (a promotion happened elsewhere)";
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.repl_fenced_subscribes;
      } else {
        ReplSub& repl = conn->repl();
        if (!repl.active) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.repl_subscribers;
        }
        repl = ReplSub{};
        repl.active = true;
        repl.cursor = subscribe.from_generation;
        repl.refetch_generation = subscribe.refetch_generation;
        // UINT64_MAX forces a census heartbeat right after initial catch-up
        // so the follower learns removals it slept through.
        repl.last_heartbeat_generation = UINT64_MAX;
        // The ack carries our epoch: a follower at a higher epoch fences us
        // from the very first exchange, and one at a lower epoch adopts.
        response.body =
            "subscribed from g" + std::to_string(subscribe.from_generation) +
            " epoch=" + std::to_string(db_->epoch());
      }
      return QueueResponse(conn, frame.request_id, response);
    }
    case FrameType::kPromote: {
      if (!config_.on_promote) {
        ResponsePayload response;
        response.code = StatusCode::kInvalidArgument;
        response.body = "promotion is not enabled on this server";
        return QueueResponse(conn, frame.request_id, response);
      }
      // Promotion fsyncs the manifest — run it on a worker so the loop
      // keeps pumping frames and heartbeats for everyone else.
      Job job;
      job.conn_id = conn->id();
      job.request_id = frame.request_id;
      job.promote = true;
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        jobs_.push_back(std::move(job));
      }
      jobs_cv_.notify_one();
      return true;
    }
    case FrameType::kCancel: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.cancels;
      }
      uint64_t target = 0;
      ResponsePayload response;
      if (!DecodeCancelTarget(frame.payload, &target)) {
        response.code = StatusCode::kInvalidArgument;
        response.body = "malformed cancel payload";
      } else if (const auto it = conn->inflight().find(target);
                 it != conn->inflight().end()) {
        // Cancel the token first (covers the not-yet-started window), then
        // go through Database::Cancel so a query parked in the admission
        // queue is woken promptly.
        it->second->token->Cancel();
        const uint64_t query_id =
            it->second->query_id.load(std::memory_order_acquire);
        if (query_id != 0) (void)db_->Cancel(query_id);
        response.body = "cancel signalled";
      } else {
        response.code = StatusCode::kNotFound;
        response.body = "no in-flight request " + std::to_string(target);
      }
      return QueueResponse(conn, frame.request_id, response);
    }
    case FrameType::kQuery:
    case FrameType::kQueryOpts: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.queries;
      }
      uint32_t parallelism = config_.parallelism;
      std::string query = std::move(frame.payload);
      if (frame.type == FrameType::kQueryOpts) {
        std::string text;
        uint32_t requested = 0;
        if (!DecodeQueryOpts(query, &requested, &text)) {
          ResponsePayload response;
          response.code = StatusCode::kInvalidArgument;
          response.body = "malformed query-opts payload";
          return QueueResponse(conn, frame.request_id, response);
        }
        // Wire-supplied: clamp to the machine so a hostile client cannot
        // force per-query lane allocations sized by an arbitrary u32
        // (0 keeps its "all hardware threads" meaning and needs no clamp).
        parallelism =
            std::min(requested, std::max(1u, std::thread::hardware_concurrency()));
        query = std::move(text);
      }
      if (draining_) {
        ResponsePayload response;
        response.code = StatusCode::kResourceExhausted;
        response.retry_after_micros = config_.drain_deadline_micros;
        response.body = "server draining; retry elsewhere";
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.drain_rejects;
          ++stats_.overload_responses;
        }
        return QueueResponse(conn, frame.request_id, response);
      }
      if (conn->inflight().size() >= conn->limits().max_inflight) {
        ResponsePayload response;
        response.code = StatusCode::kResourceExhausted;
        response.retry_after_micros =
            db_->admission_stats().retry_after_micros;
        response.body = "connection in-flight limit (" +
                        std::to_string(conn->limits().max_inflight) +
                        ") reached";
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.inflight_limit_rejects;
          ++stats_.overload_responses;
        }
        return QueueResponse(conn, frame.request_id, response);
      }
      auto [it, inserted] = conn->inflight().emplace(
          frame.request_id, std::make_shared<InflightQuery>());
      if (!inserted) {
        ResponsePayload response;
        response.code = StatusCode::kInvalidArgument;
        response.body = "request id " + std::to_string(frame.request_id) +
                        " already in flight on this connection";
        return QueueResponse(conn, frame.request_id, response);
      }
      Job job;
      job.conn_id = conn->id();
      job.request_id = frame.request_id;
      job.query = std::move(query);
      job.parallelism = parallelism;
      job.inflight = it->second;
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        jobs_.push_back(std::move(job));
      }
      jobs_cv_.notify_one();
      return true;
    }
    case FrameType::kResponse:
    case FrameType::kReplRecord:
    case FrameType::kReplChunk:
    case FrameType::kReplHeartbeat:
      break;  // server->client types only; fall through to protocol error
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.protocol_errors;
  return true;
}

std::string Server::EncodeResponseFrame(
    uint64_t request_id, const ResponsePayload& response) const {
  if (response.body.size() > config_.max_response_bytes) {
    ResponsePayload too_big;
    too_big.code = StatusCode::kResourceExhausted;
    // No retry-after hint: resubmitting the same query yields the same
    // oversized result, so this must not read as a retryable overload.
    too_big.body = "response body too large (" +
                   std::to_string(response.body.size()) + " bytes, cap " +
                   std::to_string(config_.max_response_bytes) + ")";
    return EncodeFrame(FrameType::kResponse, request_id,
                       EncodeResponse(too_big));
  }
  return EncodeFrame(FrameType::kResponse, request_id,
                     EncodeResponse(response));
}

bool Server::QueueResponse(Conn* conn, uint64_t request_id,
                           const ResponsePayload& response) {
  conn->outbuf() += EncodeResponseFrame(request_id, response);
  conn->NoteQueuedWrite(Conn::Clock::now());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses;
  }
  if (!FlushWrites(conn)) return false;  // caller closes; conn still valid
  UpdateEpoll(conn);
  return true;
}

void Server::HandleWritable(Conn* conn) {
  const uint64_t id = conn->id();
  if (!FlushWrites(conn)) {
    CloseConn(id, Conn::Evict::kNone);
    return;
  }
  // Freed outbuf space lets a backpressured subscriber ship its next slice
  // now instead of waiting out the tick.
  if (conn->repl().active && !draining_ && !PumpSubscriber(conn)) {
    CloseConn(id, Conn::Evict::kNone);
    return;
  }
  UpdateEpoll(conn);
}

bool Server::FlushWrites(Conn* conn) {
  while (!conn->outbuf().empty()) {
    if (XMLQ_FAULT("net.write")) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.write_faults;
      return false;
    }
    const ssize_t n = send(conn->fd(), conn->outbuf().data(),
                           conn->outbuf().size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf().erase(0, static_cast<size_t>(n));
      conn->NoteWrote(Conn::Clock::now());
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone / hard error
  }
  return true;
}

void Server::UpdateEpoll(Conn* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->outbuf().empty() ? 0u : EPOLLOUT);
  ev.data.u64 = conn->id();
  (void)epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd(), &ev);
}

void Server::CloseConn(uint64_t conn_id, Conn::Evict reason) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  // Cancel whatever this connection still has running: nobody is left to
  // read the answers, and the slots should go to live clients.
  for (auto& [request_id, inflight] : conn->inflight()) {
    inflight->token->Cancel();
    const uint64_t query_id =
        inflight->query_id.load(std::memory_order_acquire);
    if (query_id != 0) (void)db_->Cancel(query_id);
  }
  const bool was_subscriber = conn->repl().active;
  (void)epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, conn->fd(), nullptr);
  conns_.erase(it);  // UniqueFd closes the socket
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.connections = static_cast<uint32_t>(conns_.size());
  if (was_subscriber && stats_.repl_subscribers > 0) {
    --stats_.repl_subscribers;
  }
  switch (reason) {
    case Conn::Evict::kNone: break;
    case Conn::Evict::kIdle: ++stats_.evicted_idle; break;
    case Conn::Evict::kReadDeadline: ++stats_.evicted_read_deadline; break;
    case Conn::Evict::kWriteDeadline: ++stats_.evicted_write_deadline; break;
    case Conn::Evict::kSlowClient: ++stats_.evicted_slow; break;
  }
}

void Server::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    const auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // connection died while running
    Conn* conn = it->second.get();
    conn->inflight().erase(done.request_id);
    conn->outbuf() += done.frame;
    conn->NoteQueuedWrite(Conn::Clock::now());
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses;
      if (done.overload) ++stats_.overload_responses;
    }
    if (!FlushWrites(conn)) {
      CloseConn(done.conn_id, Conn::Evict::kNone);
      continue;
    }
    UpdateEpoll(conn);
  }
}

// ---------------------------------------------------------------------------
// Replication shipping (DESIGN.md §13)

void Server::PumpReplication() {
  if (draining_) return;  // subscribers re-subscribe against a live primary
  std::vector<uint64_t> doomed;
  for (const auto& [id, conn] : conns_) {
    if (!conn->repl().active) continue;
    if (!PumpSubscriber(conn.get())) doomed.push_back(id);
  }
  for (const uint64_t id : doomed) CloseConn(id, Conn::Evict::kNone);
}

bool Server::PumpSubscriber(Conn* conn) {
  // Ship until the outbuf crosses this low-water mark, then let the socket
  // drain: a slow follower backpressures here, far below the kSlowClient
  // eviction bound, instead of ballooning the write buffer.
  constexpr size_t kOutbufLowWater = 1u << 20;
  ReplSub& repl = conn->repl();
  // Every stream frame carries the current epoch: the follower fences any
  // frame from a lower epoch, so a promotion elsewhere cuts this stream off
  // at the first frame after it (see DESIGN.md §14 on stream ordering).
  const uint64_t epoch = db_->epoch();
  bool queued = false;
  while (conn->outbuf().size() < kOutbufLowWater) {
    if (!repl.shipping && repl.refetch_generation != 0) {
      // Self-heal re-fetch: ship exactly this live generation, below the
      // cursor or not. A generation that is no longer live (replaced or
      // removed since the follower quarantined it) ships nothing — the
      // normal cursor/census machinery delivers its successor instead.
      const uint64_t target = repl.refetch_generation;
      repl.refetch_generation = 0;
      auto delta = db_->ReplDeltaFrom(target - 1);
      if (!delta.ok()) return false;
      for (storage::ManifestRecord& record : delta->pending) {
        if (record.generation != target) continue;
        auto mapped = FileBytes::Map(db_->store_dir() + "/" + record.file);
        if (!mapped.ok() || mapped->size() != record.snapshot_size) break;
        repl.shipping = true;
        repl.record = std::move(record);
        repl.file = std::move(*mapped);
        repl.offset = 0;
        ReplRecordPayload announce;
        announce.op = static_cast<uint32_t>(repl.record.op);
        announce.generation = repl.record.generation;
        announce.snapshot_size = repl.record.snapshot_size;
        announce.snapshot_crc = repl.record.snapshot_crc;
        announce.epoch = epoch;
        announce.name = repl.record.name;
        announce.file = repl.record.file;
        conn->outbuf() += EncodeFrame(FrameType::kReplRecord, 0,
                                      EncodeReplRecord(announce));
        conn->NoteQueuedWrite(Conn::Clock::now());
        queued = true;
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.repl_records_shipped;
        break;
      }
      continue;
    }
    if (!repl.shipping) {
      auto delta = db_->ReplDeltaFrom(repl.cursor);
      if (!delta.ok()) return false;
      if (delta->pending.empty()) {
        // Caught up. Heartbeat when the interval elapsed — or immediately
        // when the manifest clock moved with nothing to ship (a Remove on
        // the primary must not wait out the interval: the census is its
        // only carrier).
        const auto now = Conn::Clock::now();
        if (repl.last_heartbeat_generation != delta->max_generation ||
            now - repl.last_heartbeat >=
                std::chrono::microseconds(config_.repl_heartbeat_micros)) {
          ReplHeartbeatPayload heartbeat;
          heartbeat.epoch = epoch;
          heartbeat.max_generation = delta->max_generation;
          heartbeat.live.reserve(delta->live.size());
          for (auto& [name, generation] : delta->live) {
            heartbeat.live.push_back(
                ReplLiveEntry{std::move(name), generation});
          }
          conn->outbuf() += EncodeFrame(FrameType::kReplHeartbeat, 0,
                                        EncodeReplHeartbeat(heartbeat));
          conn->NoteQueuedWrite(now);
          queued = true;
          repl.last_heartbeat = now;
          repl.last_heartbeat_generation = delta->max_generation;
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.repl_heartbeats;
        }
        break;
      }
      if (XMLQ_FAULT("repl.ship.read")) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.repl_ship_faults;
        return false;  // link-error model: close; the follower resumes
      }
      storage::ManifestRecord record = std::move(delta->pending.front());
      auto mapped = FileBytes::Map(db_->store_dir() + "/" + record.file);
      if (!mapped.ok() || mapped->size() != record.snapshot_size) {
        // The snapshot vanished (or was replaced) between the manifest read
        // and the map — a concurrent Remove or replace. Skip past it: a
        // replacement ships under a higher generation, and the census
        // heartbeat reconciles removals.
        repl.cursor = record.generation;
        continue;
      }
      repl.shipping = true;
      repl.record = std::move(record);
      repl.file = std::move(*mapped);
      repl.offset = 0;
      ReplRecordPayload announce;
      announce.op = static_cast<uint32_t>(repl.record.op);
      announce.generation = repl.record.generation;
      announce.snapshot_size = repl.record.snapshot_size;
      announce.snapshot_crc = repl.record.snapshot_crc;
      announce.epoch = epoch;
      announce.name = repl.record.name;
      announce.file = repl.record.file;
      conn->outbuf() +=
          EncodeFrame(FrameType::kReplRecord, 0, EncodeReplRecord(announce));
      conn->NoteQueuedWrite(Conn::Clock::now());
      queued = true;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.repl_records_shipped;
      }
      continue;
    }
    // Mid-shipment: slice the next chunk. The mapping stays valid even if
    // a concurrent replace unlinked the file (generations never share a
    // file name, so the inode cannot be overwritten under the map).
    if (XMLQ_FAULT("repl.ship.send")) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.repl_ship_faults;
      return false;
    }
    if (repl.offset < repl.file.size()) {
      const uint64_t remaining = repl.file.size() - repl.offset;
      const uint64_t take = std::min<uint64_t>(config_.repl_chunk_bytes,
                                               remaining);
      ReplChunkPayload chunk;
      chunk.generation = repl.record.generation;
      chunk.offset = repl.offset;
      chunk.total_size = repl.file.size();
      chunk.epoch = epoch;
      chunk.bytes.assign(repl.file.data() + repl.offset,
                         static_cast<size_t>(take));
      conn->outbuf() +=
          EncodeFrame(FrameType::kReplChunk, 0, EncodeReplChunk(chunk));
      conn->NoteQueuedWrite(Conn::Clock::now());
      queued = true;
      repl.offset += take;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.repl_chunks_shipped;
      }
    }
    if (repl.offset >= repl.file.size()) {
      // Shipment complete (a zero-byte snapshot completes with no chunks).
      // max(): a self-heal re-fetch ships a generation at or below the
      // cursor and must not rewind it.
      repl.shipping = false;
      repl.cursor = std::max(repl.cursor, repl.record.generation);
      repl.file = FileBytes();  // unmap promptly
    }
  }
  if (queued) {
    if (!FlushWrites(conn)) return false;
    UpdateEpoll(conn);
  }
  return true;
}

void Server::SweepDeadlines() {
  const auto now = Conn::Clock::now();
  std::vector<std::pair<uint64_t, Conn::Evict>> doomed;
  for (const auto& [id, conn] : conns_) {
    const Conn::Evict reason = conn->CheckDeadlines(now);
    if (reason != Conn::Evict::kNone) doomed.emplace_back(id, reason);
  }
  for (const auto& [id, reason] : doomed) CloseConn(id, reason);
}

bool Server::DrainFinished() {
  const auto now = Conn::Clock::now();
  if (!drain_cancelled_inflight_ && now >= drain_deadline_) {
    // Deadline passed: in-flight queries lose their grace period.
    drain_cancelled_inflight_ = true;
    uint64_t cancelled = 0;
    for (const auto& [id, conn] : conns_) {
      for (auto& [request_id, inflight] : conn->inflight()) {
        inflight->token->Cancel();
        const uint64_t query_id =
            inflight->query_id.load(std::memory_order_acquire);
        if (query_id != 0) (void)db_->Cancel(query_id);
        ++cancelled;
      }
    }
    if (cancelled != 0) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.drain_cancelled += cancelled;
    }
  }
  // A connection is done once it has nothing in flight and nothing left to
  // flush. Cancelled queries still post their kCancelled responses first,
  // so "zero lost responses" holds for everything that was admitted.
  std::vector<uint64_t> quiet;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight().empty() && conn->outbuf().empty()) {
      quiet.push_back(id);
    }
  }
  for (const uint64_t id : quiet) CloseConn(id, Conn::Evict::kNone);
  if (!conns_.empty()) {
    // Past the deadline plus one more full deadline of flush grace, give
    // up: force-close whoever is left (slow readers of their last bytes).
    if (drain_cancelled_inflight_ &&
        now >= drain_deadline_ +
                   std::chrono::microseconds(drain_deadline_micros_)) {
      return true;
    }
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Worker pool

void Server::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] { return jobs_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (jobs_stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    ResponsePayload response;
    if (job.promote) {
      const Result<uint64_t> promoted = config_.on_promote();
      if (promoted.ok()) {
        response.body = "promoted; epoch=" + std::to_string(*promoted);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.promotes;
      } else {
        response.code = promoted.status().code();
        response.body = promoted.status().message();
      }
      Completion done;
      done.conn_id = job.conn_id;
      done.request_id = job.request_id;
      done.frame = EncodeResponseFrame(job.request_id, response);
      {
        std::lock_guard<std::mutex> lock(completions_mu_);
        completions_.push_back(std::move(done));
      }
      WakeLoop();
      continue;
    }
    if (job.inflight->token->cancelled()) {
      // Cancelled (or its connection died) before the query started.
      response.code = StatusCode::kCancelled;
      response.body = "query cancelled before execution";
    } else {
      api::QueryOptions options;
      options.limits.cancel_token = job.inflight->token;
      options.query_id_out = &job.inflight->query_id;
      options.parallelism = job.parallelism;
      auto result = db_->Query(job.query, options);
      if (result.ok()) {
        response.body = api::Database::ToXml(*result);
      } else {
        response.code = result.status().code();
        response.retry_after_micros =
            exec::RetryAfterMicrosFromStatus(result.status());
        response.body = result.status().message();
      }
    }
    Completion done;
    done.conn_id = job.conn_id;
    done.request_id = job.request_id;
    done.overload = response.code == StatusCode::kResourceExhausted &&
                    response.retry_after_micros != 0;
    done.frame = EncodeResponseFrame(job.request_id, response);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    WakeLoop();
  }
}

}  // namespace xmlq::net
