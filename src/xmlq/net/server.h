#ifndef XMLQ_NET_SERVER_H_
#define XMLQ_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "xmlq/api/database.h"
#include "xmlq/base/socket.h"
#include "xmlq/base/status.h"
#include "xmlq/net/conn.h"
#include "xmlq/net/protocol.h"

namespace xmlq::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = bind an ephemeral port; read back with port()
  int backlog = 128;
  /// Query worker threads. The event loop never runs a query itself: every
  /// Query frame is dispatched here so one slow query cannot stall accepts,
  /// reads, pings or cancels.
  uint32_t workers = 4;
  uint32_t max_connections = 1024;
  ConnLimits limits;
  /// Cap on one response frame's payload body. A body larger than this is
  /// replaced with a kResourceExhausted status response (no retry hint —
  /// retrying cannot help) so the client sees a decodable error instead of
  /// a frame its own decode cap rejects as stream corruption.
  uint64_t max_response_bytes = 48u << 20;
  /// Drain budget: after RequestDrain(), in-flight queries get this long to
  /// finish before they are cancelled (Database::Cancel via their tokens);
  /// responses still flush, then connections close.
  uint64_t drain_deadline_micros = 5'000'000;
  /// Default intra-query parallelism for plain kQuery frames (see
  /// api::QueryOptions::parallelism; 1 = serial, 0 = all hardware threads).
  /// A kQueryOpts frame carries its own value per request.
  uint32_t parallelism = 1;
  /// Replication shipping (DESIGN.md §13): snapshot bytes per kReplChunk
  /// frame. Bounded well below the write-buffer backpressure cap so a slow
  /// follower backpressures cleanly instead of tripping kSlowClient.
  uint32_t repl_chunk_bytes = 256u * 1024;
  /// Heartbeat interval for caught-up subscribers (the census carrier; also
  /// what keeps an otherwise-silent subscriber connection from idling out).
  uint64_t repl_heartbeat_micros = 1'000'000;
  /// Extra text appended to every kStats response body; xmlq_serve wires a
  /// follower's replication stats through this. Called on the loop thread —
  /// keep it cheap and thread-safe.
  std::function<std::string()> extra_stats;
  /// Promotion hook for the kPromote admin frame (DESIGN.md §14): stop the
  /// replication client, bump+persist the epoch, lift follower mode; return
  /// the new epoch. Unset = kPromote answered with kInvalidArgument. Called
  /// on a worker thread (promotion fsyncs — it must not stall the loop).
  std::function<Result<uint64_t>()> on_promote;
};

/// Event-loop counters, readable from any thread via Server::stats().
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t accept_faults = 0;       // injected or real accept failures
  uint64_t accept_rejected_full = 0;  // over max_connections
  uint64_t frames = 0;
  uint64_t queries = 0;
  uint64_t cancels = 0;
  uint64_t pings = 0;
  uint64_t stats_requests = 0;
  uint64_t responses = 0;
  uint64_t overload_responses = 0;  // admission shed/reject relayed + local
  uint64_t inflight_limit_rejects = 0;
  uint64_t drain_rejects = 0;       // Query frames refused while draining
  uint64_t protocol_errors = 0;
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t evicted_idle = 0;
  uint64_t evicted_read_deadline = 0;
  uint64_t evicted_write_deadline = 0;
  uint64_t evicted_slow = 0;
  uint64_t drain_cancelled = 0;     // in-flight queries cancelled at drain
  uint64_t repl_records_shipped = 0;   // kReplRecord announcements sent
  uint64_t repl_chunks_shipped = 0;    // kReplChunk frames sent
  uint64_t repl_heartbeats = 0;        // kReplHeartbeat frames sent
  uint64_t repl_ship_faults = 0;       // injected/real ship failures
  uint64_t repl_fenced_subscribes = 0;  // subscribers refused: newer epoch
  uint64_t promotes = 0;               // successful kPromote frames
  uint32_t repl_subscribers = 0;       // currently subscribed connections
  uint32_t connections = 0;         // currently open
  std::string ToString() const;
};

/// The fault-tolerant serving front-end (DESIGN.md §10): one epoll event
/// loop owning every socket, a worker pool running queries through the
/// embedded api::Database (whose admission control, cancellation and
/// circuit breakers do the heavy lifting), and a drain state machine
///
///   kServing --RequestDrain()--> kDraining --deadline/idle--> kClosed
///
/// kServing: accept + serve. kDraining: listener closed, new Query frames
/// answered with a retryable overload response, in-flight queries finish
/// (or are cancelled once the drain deadline passes), write buffers flush,
/// each connection closes as it goes quiet. kClosed: Run() returns; Wait()
/// unblocks.
///
/// Fault sites, armed by the chaos suite: "net.accept" (accepted socket
/// dropped), "net.read" (read treated as a connection error),
/// "net.write" (write treated as a connection error), "net.frame.decode"
/// (frame treated as corrupt). Every one of them must result in a clean
/// connection close — no crash, no fd leak, no stuck connection — which is
/// exactly what tests/net_test.cc's chaos matrix asserts.
class Server {
 public:
  Server(api::Database* db, ServerConfig config);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  /// Force-drains and joins if still running: requests a zero-deadline
  /// drain (in-flight queries are cancelled immediately, flushes are
  /// best-effort). If a graceful drain is already underway it joins that
  /// drain instead.
  ~Server();

  /// Binds, spawns the worker pool and the event-loop thread. On return the
  /// server is accepting connections on port().
  Status Start();

  /// The bound port (valid after Start; resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Begins graceful drain. Async-signal-safe (one atomic store + one
  /// write() to an eventfd), so a SIGTERM handler may call it directly.
  void RequestDrain();

  /// Blocks until the drain completes and every thread is joined. Idempotent.
  Status Wait();

  /// RequestDrain() + Wait().
  Status Shutdown();

  ServerStats stats() const;

 private:
  struct Job {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    std::string query;
    uint32_t parallelism = 1;
    std::shared_ptr<InflightQuery> inflight;
    /// kPromote admin frame: run config_.on_promote instead of a query.
    bool promote = false;
  };
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    std::string frame;  // encoded response
    bool overload = false;
  };

  void Loop();
  void WorkerLoop();
  void Accept();
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  /// Decodes and dispatches every complete frame in conn's inbuf; returns
  /// false when the connection must close (protocol error / injected
  /// decode fault / write failure while responding).
  ///
  /// None of DrainInbuf/Dispatch/QueueResponse ever destroys the Conn
  /// itself: a false return travels up to the caller that owns the event
  /// (HandleReadable), which is the only place that closes — so no frame
  /// loop is ever left holding a dangling Conn*.
  bool DrainInbuf(Conn* conn);
  /// Returns false when the connection must close.
  bool Dispatch(Conn* conn, Frame frame);
  /// Encodes and queues a response, flushing what the socket accepts;
  /// returns false when the connection must close (the caller closes it —
  /// conn is still valid on return).
  bool QueueResponse(Conn* conn, uint64_t request_id,
                     const ResponsePayload& response);
  /// Encodes one response frame, substituting a kResourceExhausted status
  /// response when the body exceeds config_.max_response_bytes (keeps
  /// every emitted frame decodable by the client).
  std::string EncodeResponseFrame(uint64_t request_id,
                                  const ResponsePayload& response) const;
  /// Flushes as much of conn's outbuf as the socket accepts; returns false
  /// when the connection died (write error / injected fault / peer gone).
  bool FlushWrites(Conn* conn);
  void UpdateEpoll(Conn* conn);
  void CloseConn(uint64_t conn_id, Conn::Evict reason);
  void DrainCompletions();
  /// Advances every subscribed connection's replication stream: refreshes
  /// its pending set from the manifest, announces records, slices chunks,
  /// heartbeats when caught up. Runs on the loop thread each tick (and the
  /// per-conn half after writable flushes), bounded by a per-conn outbuf
  /// low-water mark so a slow follower backpressures instead of ballooning.
  void PumpReplication();
  /// One subscriber's pump step; returns false when the connection must
  /// close (ship fault / manifest error / write failure).
  bool PumpSubscriber(Conn* conn);
  void SweepDeadlines();
  /// Advances the drain state machine; true when the loop should exit.
  bool DrainFinished();
  void WakeLoop();

  api::Database* const db_;
  const ServerConfig config_;

  UniqueFd listener_;
  UniqueFd epoll_;
  UniqueFd wake_;
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> drain_requested_{false};
  /// Tightens the drain deadline below config_.drain_deadline_micros; set
  /// (to 0) by the destructor before it requests its force-drain. Read
  /// once, at drain entry.
  std::atomic<uint64_t> drain_deadline_override_micros_{UINT64_MAX};
  bool draining_ = false;  // loop-thread view
  uint64_t drain_deadline_micros_ = 0;  // effective budget, set at drain entry
  Conn::Clock::time_point drain_deadline_{};
  bool drain_cancelled_inflight_ = false;

  // Connections: loop-thread only.
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 16;  // ids 0..15 reserved for loop-internal fds

  // Worker queue.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool jobs_stop_ = false;

  // Completions, posted by workers, drained by the loop.
  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  std::mutex lifecycle_mu_;
  std::condition_variable join_cv_;
  bool started_ = false;
  bool join_started_ = false;  // some caller is inside Wait()'s join work
  bool join_done_ = false;     // every thread is joined; Wait() may return
  Status loop_status_;
};

}  // namespace xmlq::net

#endif  // XMLQ_NET_SERVER_H_
