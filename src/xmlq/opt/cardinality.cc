#include "xmlq/opt/cardinality.h"

#include <algorithm>
#include <cmath>

namespace xmlq::opt {

namespace {

using algebra::Axis;
using algebra::PatternGraph;
using algebra::PatternVertex;
using algebra::VertexId;

bool SynNodeMatches(const Synopsis::Node& node, const PatternVertex& vertex,
                    xml::NameId want) {
  if (node.is_attribute != vertex.is_attribute) return false;
  if (vertex.label == "*") return true;
  return want != xml::kInvalidName && node.name == want;
}

void CollectDescendants(const Synopsis& synopsis, uint32_t from,
                        const PatternVertex& vertex, xml::NameId want,
                        std::vector<uint32_t>* out) {
  // Iterative: the synopsis is as deep as the document, which can be a
  // degenerate 100k-level chain.
  std::vector<uint32_t> stack{from};
  while (!stack.empty()) {
    const uint32_t node = stack.back();
    stack.pop_back();
    for (uint32_t c : synopsis.nodes()[node].children) {
      if (SynNodeMatches(synopsis.nodes()[c], vertex, want)) {
        out->push_back(c);
      }
      stack.push_back(c);
    }
  }
}

}  // namespace

CardinalityEstimate EstimatePattern(const Synopsis& synopsis,
                                    const xml::NamePool& pool,
                                    const PatternGraph& pattern) {
  const size_t k = pattern.VertexCount();
  CardinalityEstimate out;
  out.vertex_cardinality.assign(k, 0);
  out.stream_size.assign(k, 0);
  // Per vertex: the set of synopsis nodes its root path can map to.
  std::vector<std::vector<uint32_t>> syn_sets(k);
  syn_sets[pattern.root()] = {0};
  out.vertex_cardinality[pattern.root()] = 1;
  out.stream_size[pattern.root()] = 1;

  for (VertexId v = 1; v < k; ++v) {
    const PatternVertex& vertex = pattern.vertex(v);
    const xml::NameId want =
        vertex.label == "*" ? xml::kInvalidName : pool.Find(vertex.label);
    // Stream size: the whole per-tag population.
    if (vertex.is_attribute) {
      out.stream_size[v] = vertex.label == "*"
                               ? static_cast<double>(synopsis.TotalNodes())
                               : static_cast<double>(
                                     synopsis.CountAttributesByName(want));
    } else {
      out.stream_size[v] =
          vertex.label == "*"
              ? static_cast<double>(synopsis.TotalElements())
              : static_cast<double>(synopsis.CountByName(want));
    }
    // Path-restricted synopsis embedding.
    std::vector<uint32_t> matched;
    for (uint32_t parent_syn : syn_sets[vertex.parent]) {
      switch (vertex.incoming_axis) {
        case Axis::kChild:
        case Axis::kAttribute:
          for (uint32_t c : synopsis.nodes()[parent_syn].children) {
            if (SynNodeMatches(synopsis.nodes()[c], vertex, want)) {
              matched.push_back(c);
            }
          }
          break;
        case Axis::kDescendant:
          CollectDescendants(synopsis, parent_syn, vertex, want, &matched);
          break;
        case Axis::kFollowingSibling:
          // Siblings share the synopsis parent; approximate with children.
          if (synopsis.nodes()[parent_syn].parent != UINT32_MAX) {
            for (uint32_t c :
                 synopsis.nodes()[synopsis.nodes()[parent_syn].parent]
                     .children) {
              if (SynNodeMatches(synopsis.nodes()[c], vertex, want)) {
                matched.push_back(c);
              }
            }
          }
          break;
        case Axis::kSelf:
          if (SynNodeMatches(synopsis.nodes()[parent_syn], vertex, want)) {
            matched.push_back(parent_syn);
          }
          break;
      }
    }
    std::sort(matched.begin(), matched.end());
    matched.erase(std::unique(matched.begin(), matched.end()), matched.end());
    double count = 0;
    for (uint32_t s : matched) count += synopsis.nodes()[s].count;
    count *= std::pow(kPredicateSelectivity,
                      static_cast<double>(vertex.predicates.size()));
    out.vertex_cardinality[v] = count;
    syn_sets[v] = std::move(matched);
  }

  const VertexId output = pattern.SoleOutput();
  out.output_cardinality =
      output == algebra::kNoVertex ? 0 : out.vertex_cardinality[output];
  return out;
}

}  // namespace xmlq::opt
