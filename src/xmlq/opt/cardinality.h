#ifndef XMLQ_OPT_CARDINALITY_H_
#define XMLQ_OPT_CARDINALITY_H_

#include <vector>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/opt/synopsis.h"
#include "xmlq/xml/name_pool.h"

namespace xmlq::opt {

/// Default selectivity charged per value predicate on a vertex.
inline constexpr double kPredicateSelectivity = 0.1;

/// Estimated cardinalities for one pattern over one document.
struct CardinalityEstimate {
  /// Estimated number of nodes matching each vertex's *path* (root-to-vertex
  /// label chain + predicates), ignoring sibling-branch constraints.
  std::vector<double> vertex_cardinality;
  /// Size of the per-tag stream a join-based matcher scans for each vertex.
  std::vector<double> stream_size;
  /// Estimate for the output vertex (==vertex_cardinality[output]).
  double output_cardinality = 0;
};

/// Estimates cardinalities by embedding the pattern into the path synopsis:
/// exact for predicate-free structural counts (the synopsis is a lossless
/// structural summary), multiplied by kPredicateSelectivity per predicate.
CardinalityEstimate EstimatePattern(const Synopsis& synopsis,
                                    const xml::NamePool& pool,
                                    const algebra::PatternGraph& pattern);

}  // namespace xmlq::opt

#endif  // XMLQ_OPT_CARDINALITY_H_
