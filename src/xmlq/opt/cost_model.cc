#include "xmlq/opt/cost_model.h"

#include <algorithm>

namespace xmlq::opt {

using algebra::PatternGraph;
using algebra::VertexId;

double CostNok(const Synopsis& synopsis, const PatternGraph& pattern,
               const xpath::NokPartition& partition,
               const CardinalityEstimate& est, const CostParams& params) {
  (void)pattern;
  // One streaming pass over the whole node population per part. (The
  // matcher processes parts independently; a production system would fuse
  // them into one pass — costed pessimistically here.)
  double cost = params.scan_node *
                static_cast<double>(synopsis.TotalNodes()) *
                static_cast<double>(partition.parts.size());
  // Seam structural joins: heads and attach bindings are path-restricted.
  for (size_t q = 1; q < partition.parts.size(); ++q) {
    const xpath::NokPart& part = partition.parts[q];
    cost += params.pair * (est.vertex_cardinality[part.head] +
                           est.vertex_cardinality[part.attach_vertex]);
  }
  return cost;
}

double CostTwigStack(const CardinalityEstimate& est,
                     const CostParams& params) {
  double cost = 0;
  for (size_t v = 1; v < est.stream_size.size(); ++v) {
    cost += params.stream_item * est.stream_size[v];
    // Each path solution produces roughly one pair per edge.
    cost += params.pair * est.vertex_cardinality[v];
  }
  return cost;
}

double CostBinaryJoin(const PatternGraph& pattern,
                      const CardinalityEstimate& est,
                      std::span<const VertexId> order,
                      const CostParams& params) {
  const size_t k = pattern.VertexCount();
  std::vector<VertexId> edges(order.begin(), order.end());
  if (edges.empty()) {
    for (VertexId v = 1; v < k; ++v) edges.push_back(v);
  }
  // current[v]: the estimated size of v's candidate list as joins proceed.
  std::vector<double> current = est.stream_size;
  double cost = 0;
  for (VertexId v : edges) {
    const VertexId parent = pattern.vertex(v).parent;
    cost += params.stream_item * (current[parent] + current[v]);
    // Each surviving descendant contributes about one pair (ancestors of
    // the same tag rarely nest), so the pair count tracks the smaller of
    // the descendant candidates and its path cardinality.
    const double pairs = std::min(current[v], est.vertex_cardinality[v]);
    cost += params.pair * pairs;
    // Semi-join reduction: both sides shrink to (at most) the survivors.
    current[v] = std::min({current[v], est.vertex_cardinality[v], pairs});
    current[parent] =
        std::min({current[parent], est.vertex_cardinality[parent], pairs});
  }
  return cost;
}

double CostNaive(const Synopsis& synopsis, const PatternGraph& pattern,
                 const CardinalityEstimate& est, const CostParams& params) {
  // Per step, the navigator touches every child (or the whole subtree for
  // '//') of every context node. Approximate the explored set per vertex by
  // the parent's cardinality times the average fanout (or subtree size for
  // descendant steps).
  const double avg_fanout =
      synopsis.TotalElements() > 0
          ? static_cast<double>(synopsis.TotalNodes()) /
                static_cast<double>(synopsis.TotalElements())
          : 1.0;
  double cost = 0;
  for (VertexId v = 1; v < pattern.VertexCount(); ++v) {
    const VertexId parent = pattern.vertex(v).parent;
    const double contexts = std::max(1.0, est.vertex_cardinality[parent]);
    double explored;
    if (pattern.vertex(v).incoming_axis == algebra::Axis::kDescendant) {
      // Each context rescans its subtree; approximate by total/contexts at
      // the top and by full subtrees deeper down.
      explored = static_cast<double>(synopsis.TotalNodes());
    } else {
      explored = contexts * avg_fanout;
    }
    cost += params.navigate * explored;
  }
  return cost;
}

}  // namespace xmlq::opt
