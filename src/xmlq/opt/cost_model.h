#ifndef XMLQ_OPT_COST_MODEL_H_
#define XMLQ_OPT_COST_MODEL_H_

#include <string>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/exec/executor.h"
#include "xmlq/opt/cardinality.h"
#include "xmlq/opt/synopsis.h"
#include "xmlq/xpath/nok_partition.h"

namespace xmlq::opt {

/// Abstract per-operation charges. Calibrated roughly to the relative
/// measured throughputs of the physical operators; the *ordering* of plan
/// costs is what matters for strategy selection (the paper defers an exact
/// cost model to future work — this is that extension, experiment E4/E6).
struct CostParams {
  double scan_node = 1.0;     // NoK: visiting one node during the scan
  double stream_item = 2.5;   // join-based: moving one stream cursor
  double pair = 4.0;          // producing one intermediate join pair
  double navigate = 6.0;      // naive: one DOM pointer dereference + test
};

/// Cost of the hybrid NoK plan: one scan per NoK part plus seam joins.
double CostNok(const Synopsis& synopsis, const algebra::PatternGraph& pattern,
               const xpath::NokPartition& partition,
               const CardinalityEstimate& est, const CostParams& params = {});

/// Cost of the holistic twig join: all streams + estimated solution pairs.
double CostTwigStack(const CardinalityEstimate& est,
                     const CostParams& params = {});

/// Cost of a binary structural-join plan for a given edge order (entries are
/// edge target vertices; empty = ascending order). Models semi-join
/// reduction: after an edge joins, both sides shrink to their path
/// cardinalities.
double CostBinaryJoin(const algebra::PatternGraph& pattern,
                      const CardinalityEstimate& est,
                      std::span<const algebra::VertexId> order = {},
                      const CostParams& params = {});

/// Cost of naive recursive navigation: contexts × explored fanout per step.
double CostNaive(const Synopsis& synopsis,
                 const algebra::PatternGraph& pattern,
                 const CardinalityEstimate& est,
                 const CostParams& params = {});

}  // namespace xmlq::opt

#endif  // XMLQ_OPT_COST_MODEL_H_
