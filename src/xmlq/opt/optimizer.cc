#include "xmlq/opt/optimizer.h"

#include <algorithm>

#include "xmlq/xpath/nok_partition.h"

namespace xmlq::opt {

using algebra::PatternGraph;
using algebra::VertexId;
using exec::PatternStrategy;

StrategyChoice ChooseStrategy(const Synopsis& synopsis,
                              const xml::NamePool& pool,
                              const PatternGraph& pattern) {
  const CardinalityEstimate est = EstimatePattern(synopsis, pool, pattern);
  const xpath::NokPartition partition = xpath::PartitionNok(pattern);

  StrategyChoice choice;
  choice.alternatives = {
      {PatternStrategy::kNok, CostNok(synopsis, pattern, partition, est)},
      {PatternStrategy::kTwigStack, CostTwigStack(est)},
      {PatternStrategy::kBinaryJoin, CostBinaryJoin(pattern, est)},
      {PatternStrategy::kNaive, CostNaive(synopsis, pattern, est)},
  };
  bool linear = true;
  for (VertexId v = 0; v < pattern.VertexCount(); ++v) {
    if (pattern.vertex(v).children.size() > 1) linear = false;
  }
  if (linear) {
    // PathStack behaves like TwigStack without getNext bookkeeping.
    choice.alternatives.push_back(
        {PatternStrategy::kPathStack, CostTwigStack(est) * 0.9});
  }
  const auto best = std::min_element(
      choice.alternatives.begin(), choice.alternatives.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  choice.strategy = best->first;
  choice.cost = best->second;
  choice.explanation = "selected ";
  choice.explanation += exec::PatternStrategyName(choice.strategy);
  choice.explanation += " (cost " + std::to_string(choice.cost) + ") among:";
  for (const auto& [strategy, cost] : choice.alternatives) {
    choice.explanation += " ";
    choice.explanation += exec::PatternStrategyName(strategy);
    choice.explanation += "=" + std::to_string(cost);
  }
  return choice;
}

std::vector<VertexId> ChooseJoinOrder(const Synopsis& synopsis,
                                      const xml::NamePool& pool,
                                      const PatternGraph& pattern) {
  const CardinalityEstimate est = EstimatePattern(synopsis, pool, pattern);
  std::vector<VertexId> order;
  for (VertexId v = 1; v < pattern.VertexCount(); ++v) order.push_back(v);
  // Smaller joins first: rank an edge by the smaller of its two stream
  // sizes weighted by the path-restricted cardinality of its target.
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const auto rank = [&](VertexId v) {
      const VertexId p = pattern.vertex(v).parent;
      return std::min(est.stream_size[p], est.stream_size[v]) +
             est.vertex_cardinality[v];
    };
    return rank(a) < rank(b);
  });
  return order;
}

}  // namespace xmlq::opt
