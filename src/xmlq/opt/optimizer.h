#ifndef XMLQ_OPT_OPTIMIZER_H_
#define XMLQ_OPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "xmlq/algebra/pattern_graph.h"
#include "xmlq/exec/executor.h"
#include "xmlq/opt/cost_model.h"
#include "xmlq/opt/synopsis.h"

namespace xmlq::opt {

/// The optimizer's decision for one τ operator.
struct StrategyChoice {
  exec::PatternStrategy strategy = exec::PatternStrategy::kNok;
  double cost = 0;
  /// Per-strategy costs, for explain output and the ablation bench.
  std::vector<std::pair<exec::PatternStrategy, double>> alternatives;
  std::string explanation;
};

/// Picks the cheapest physical strategy for `pattern` on a document
/// summarized by `synopsis`, using the cost model over synopsis-based
/// cardinality estimates.
StrategyChoice ChooseStrategy(const Synopsis& synopsis,
                              const xml::NamePool& pool,
                              const algebra::PatternGraph& pattern);

/// Greedy structural-join order (cf. [5]): joins edges in ascending order
/// of estimated intermediate size so later joins see reduced inputs.
/// Entries are edge target vertices, a valid input to BinaryJoinPlanMatch.
std::vector<algebra::VertexId> ChooseJoinOrder(
    const Synopsis& synopsis, const xml::NamePool& pool,
    const algebra::PatternGraph& pattern);

}  // namespace xmlq::opt

#endif  // XMLQ_OPT_OPTIMIZER_H_
