#include "xmlq/opt/plan_annotator.h"

#include <algorithm>

#include "xmlq/opt/cardinality.h"
#include "xmlq/opt/optimizer.h"

namespace xmlq::opt {

namespace {

using algebra::LogicalExpr;
using algebra::LogicalOp;
using exec::PlanEstimate;

/// Recursively annotates `expr` and returns its row estimate (-1 = none).
double Annotate(const Synopsis& synopsis, const xml::NamePool& pool,
                const LogicalExpr& expr, exec::PlanProfile* profile) {
  std::vector<double> child_rows;
  child_rows.reserve(expr.children.size());
  for (const auto& child : expr.children) {
    child_rows.push_back(Annotate(synopsis, pool, *child, profile));
  }

  PlanEstimate estimate;
  switch (expr.op) {
    case LogicalOp::kDocScan:
      estimate.rows = 1;
      break;
    case LogicalOp::kLiteral:
      estimate.rows = 1;
      break;
    case LogicalOp::kTreePattern:
      if (expr.pattern != nullptr) {
        const CardinalityEstimate card =
            EstimatePattern(synopsis, pool, *expr.pattern);
        estimate.rows = card.output_cardinality;
        const StrategyChoice choice =
            ChooseStrategy(synopsis, pool, *expr.pattern);
        estimate.strategy = exec::PatternStrategyName(choice.strategy);
        estimate.cost = choice.cost;
      }
      break;
    case LogicalOp::kNavigate:
      if (!expr.str.empty() && expr.str != "*") {
        const xml::NameId name = pool.Find(expr.str);
        estimate.rows = static_cast<double>(
            expr.is_attribute ? synopsis.CountAttributesByName(name)
                              : synopsis.CountByName(name));
      } else if (!expr.is_attribute) {
        estimate.rows = static_cast<double>(synopsis.TotalElements());
      }
      break;
    case LogicalOp::kSelectTag: {
      const xml::NameId name = pool.Find(expr.str);
      double rows = static_cast<double>(synopsis.CountByName(name));
      if (!child_rows.empty() && child_rows[0] >= 0) {
        rows = std::min(rows, child_rows[0]);
      }
      estimate.rows = rows;
      break;
    }
    case LogicalOp::kSelectValue:
      if (!child_rows.empty() && child_rows[0] >= 0) {
        estimate.rows = child_rows[0] * kPredicateSelectivity;
      }
      break;
    case LogicalOp::kStructuralJoin: {
      // Semi-join: the output is a subset of the returned side.
      const size_t side = expr.return_ancestor ? 0 : 1;
      if (side < child_rows.size() && child_rows[side] >= 0) {
        estimate.rows = child_rows[side];
      }
      break;
    }
    case LogicalOp::kDocOrderDedup:
      if (!child_rows.empty() && child_rows[0] >= 0) {
        estimate.rows = child_rows[0];
      }
      break;
    case LogicalOp::kSequence: {
      double total = 0;
      bool known = !child_rows.empty();
      for (const double rows : child_rows) {
        if (rows < 0) {
          known = false;
          break;
        }
        total += rows;
      }
      if (known) estimate.rows = total;
      break;
    }
    default:
      break;  // no synopsis-backed estimate
  }

  if (exec::ProfileNode* node = profile->NodeFor(&expr); node != nullptr) {
    node->estimate = estimate;
  }
  return estimate.rows;
}

}  // namespace

void AnnotateProfile(const Synopsis& synopsis, const xml::NamePool& pool,
                     const LogicalExpr& plan, exec::PlanProfile* profile) {
  if (profile == nullptr) return;
  Annotate(synopsis, pool, plan, profile);
}

void ReannotateFallback(const LogicalExpr& plan,
                        const exec::FallbackInfo& fallback,
                        exec::PlanProfile* profile) {
  if (profile == nullptr || !fallback.Degraded()) return;
  if (plan.op == algebra::LogicalOp::kTreePattern) {
    if (exec::ProfileNode* node = profile->NodeFor(&plan); node != nullptr) {
      node->estimate.strategy =
          fallback.from_strategy +
          (fallback.quarantined ? "->naive (quarantined)"
                                : "->naive (fault)");
    }
  }
  for (const auto& child : plan.children) {
    ReannotateFallback(*child, fallback, profile);
  }
}

}  // namespace xmlq::opt
