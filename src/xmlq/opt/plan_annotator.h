#ifndef XMLQ_OPT_PLAN_ANNOTATOR_H_
#define XMLQ_OPT_PLAN_ANNOTATOR_H_

#include "xmlq/algebra/logical_plan.h"
#include "xmlq/exec/executor.h"
#include "xmlq/exec/op_stats.h"
#include "xmlq/opt/synopsis.h"
#include "xmlq/xml/name_pool.h"

namespace xmlq::opt {

/// Fills the optimizer's pre-execution estimates into `profile` (one
/// PlanEstimate per operator the synopsis can say something about), so
/// EXPLAIN ANALYZE can report estimated-vs-actual cardinality error.
///
/// Annotated operators and their estimates:
///  - DocScan: exactly 1 row (the document node).
///  - TreePattern: EstimatePattern() output cardinality — exact for
///    predicate-free patterns (the synopsis is a lossless structural
///    summary) — plus the chosen strategy and its cost-model score.
///  - Navigate(label): CountByName(label), the synopsis upper bound for the
///    step's result before context restriction.
///  - SelectTag / StructuralJoin / DocOrderDedup / SelectValue / Sequence:
///    derived from child estimates (min with the tag count, semi-join upper
///    bound, pass-through, kPredicateSelectivity, sum respectively).
///
/// Operators outside the synopsis' reach (value joins, FLWOR, construction,
/// functions) are left without a row estimate; their profile lines omit the
/// est/err columns. Must run after PlanProfile::Create and before
/// PlanProfile::Finalize (it resolves nodes via NodeFor).
void AnnotateProfile(const Synopsis& synopsis, const xml::NamePool& pool,
                     const algebra::LogicalExpr& plan,
                     exec::PlanProfile* profile);

/// Rewrites the strategy annotation on every τ profile node after the
/// executor degraded the query (engine fault or circuit-breaker
/// quarantine), so EXPLAIN ANALYZE shows what actually ran:
///
///   TreePattern [twigstack->naive (fault)] est=120 rows=118 ...
///   TreePattern [nok->naive (quarantined)] ...
///
/// Must run after execution and before PlanProfile::Finalize.
void ReannotateFallback(const algebra::LogicalExpr& plan,
                        const exec::FallbackInfo& fallback,
                        exec::PlanProfile* profile);

}  // namespace xmlq::opt

#endif  // XMLQ_OPT_PLAN_ANNOTATOR_H_
