#include "xmlq/opt/synopsis.h"

#include <algorithm>
#include <map>

namespace xmlq::opt {

Synopsis::Synopsis(const xml::Document& doc) {
  nodes_.push_back(Node{});  // document node summary
  nodes_[0].count = 1;
  // (synopsis parent, name, is_attribute) -> synopsis node
  std::map<std::tuple<uint32_t, xml::NameId, bool>, uint32_t> index;
  // Per document node: its synopsis node (document order pass).
  std::vector<uint32_t> syn_of(doc.NodeCount(), 0);
  const size_t n = doc.NodeCount();
  total_nodes_ = n;
  for (xml::NodeId id = 1; id < n; ++id) {
    const xml::NodeKind kind = doc.Kind(id);
    if (kind != xml::NodeKind::kElement &&
        kind != xml::NodeKind::kAttribute) {
      continue;
    }
    const bool attr = kind == xml::NodeKind::kAttribute;
    const uint32_t parent_syn = syn_of[doc.Parent(id)];
    const auto key = std::make_tuple(parent_syn, doc.Name(id), attr);
    auto it = index.find(key);
    uint32_t syn;
    if (it == index.end()) {
      syn = static_cast<uint32_t>(nodes_.size());
      Node node;
      node.name = doc.Name(id);
      node.is_attribute = attr;
      node.parent = parent_syn;
      nodes_.push_back(std::move(node));
      nodes_[parent_syn].children.push_back(syn);
      index.emplace(key, syn);
    } else {
      syn = it->second;
    }
    ++nodes_[syn].count;
    syn_of[id] = syn;
    auto& by = attr ? attr_by_name_ : by_name_;
    if (doc.Name(id) >= by.size()) by.resize(doc.Name(id) + 1, 0);
    ++by[doc.Name(id)];
    if (!attr) {
      ++total_elements_;
      max_depth_ = std::max(max_depth_, doc.Depth(id));
    }
  }
}

namespace {

void Render(const Synopsis& syn, const xml::NamePool& pool, uint32_t node,
            int depth, std::string* out) {
  const Synopsis::Node& n = syn.nodes()[node];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (node == 0) {
    out->append("(document)");
  } else {
    if (n.is_attribute) out->push_back('@');
    out->append(pool.NameOf(n.name));
  }
  out->append(" x" + std::to_string(n.count) + "\n");
  for (uint32_t c : n.children) Render(syn, pool, c, depth + 1, out);
}

}  // namespace

std::string Synopsis::ToString(const xml::NamePool& pool) const {
  std::string out;
  Render(*this, pool, 0, 0, &out);
  return out;
}

}  // namespace xmlq::opt
