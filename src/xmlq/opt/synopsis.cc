#include "xmlq/opt/synopsis.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace xmlq::opt {

Synopsis::Synopsis(const xml::Document& doc) {
  nodes_.push_back(Node{});  // document node summary
  nodes_[0].count = 1;
  // (synopsis parent, name, is_attribute) -> synopsis node
  std::map<std::tuple<uint32_t, xml::NameId, bool>, uint32_t> index;
  // Per document node: its synopsis node (document order pass).
  std::vector<uint32_t> syn_of(doc.NodeCount(), 0);
  const size_t n = doc.NodeCount();
  total_nodes_ = n;
  // Incremental depth (parents precede children in pre-order); calling
  // Document::Depth per node would be O(n * depth) on degenerate chains.
  std::vector<uint32_t> depth(n, 0);
  for (xml::NodeId id = 1; id < n; ++id) {
    depth[id] = depth[doc.Parent(id)] + 1;
    const xml::NodeKind kind = doc.Kind(id);
    if (kind != xml::NodeKind::kElement &&
        kind != xml::NodeKind::kAttribute) {
      continue;
    }
    const bool attr = kind == xml::NodeKind::kAttribute;
    const uint32_t parent_syn = syn_of[doc.Parent(id)];
    const auto key = std::make_tuple(parent_syn, doc.Name(id), attr);
    auto it = index.find(key);
    uint32_t syn;
    if (it == index.end()) {
      syn = static_cast<uint32_t>(nodes_.size());
      Node node;
      node.name = doc.Name(id);
      node.is_attribute = attr;
      node.parent = parent_syn;
      nodes_.push_back(std::move(node));
      nodes_[parent_syn].children.push_back(syn);
      index.emplace(key, syn);
    } else {
      syn = it->second;
    }
    ++nodes_[syn].count;
    syn_of[id] = syn;
    auto& by = attr ? attr_by_name_ : by_name_;
    if (doc.Name(id) >= by.size()) by.resize(doc.Name(id) + 1, 0);
    ++by[doc.Name(id)];
    if (!attr) {
      ++total_elements_;
      max_depth_ = std::max(max_depth_, depth[id]);
    }
  }
}

namespace {

void Render(const Synopsis& syn, const xml::NamePool& pool, uint32_t root,
            int root_depth, std::string* out) {
  // Iterative preorder: the synopsis mirrors document depth, which can be
  // arbitrarily large for degenerate (linear-chain) documents.
  std::vector<std::pair<uint32_t, int>> stack{{root, root_depth}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    const Synopsis::Node& n = syn.nodes()[node];
    out->append(static_cast<size_t>(depth) * 2, ' ');
    if (node == 0) {
      out->append("(document)");
    } else {
      if (n.is_attribute) out->push_back('@');
      out->append(pool.NameOf(n.name));
    }
    out->append(" x" + std::to_string(n.count) + "\n");
    for (size_t i = n.children.size(); i-- > 0;) {
      stack.emplace_back(n.children[i], depth + 1);
    }
  }
}

}  // namespace

std::string Synopsis::ToString(const xml::NamePool& pool) const {
  std::string out;
  Render(*this, pool, 0, 0, &out);
  return out;
}

}  // namespace xmlq::opt
