#ifndef XMLQ_OPT_SYNOPSIS_H_
#define XMLQ_OPT_SYNOPSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xmlq/xml/document.h"

namespace xmlq::opt {

/// Path synopsis (structural summary): the quotient of the document tree by
/// root-to-node label paths — every distinct element path is one synopsis
/// node carrying occurrence counts. Exact for structural (predicate-free)
/// path counts; the cardinality estimator layers selectivity guesses for
/// value predicates on top.
class Synopsis {
 public:
  Synopsis() = default;

  /// Builds the summary in one pre-order pass over `doc`.
  explicit Synopsis(const xml::Document& doc);

  struct Node {
    xml::NameId name = xml::kInvalidName;
    bool is_attribute = false;
    uint32_t parent = UINT32_MAX;  // synopsis parent
    uint32_t count = 0;            // occurrences of this path
    std::vector<uint32_t> children;
  };

  /// Synopsis node 0 summarizes the document node.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Total elements with NameId `name` (any path).
  size_t CountByName(xml::NameId name) const {
    return name < by_name_.size() ? by_name_[name] : 0;
  }
  size_t CountAttributesByName(xml::NameId name) const {
    return name < attr_by_name_.size() ? attr_by_name_[name] : 0;
  }

  size_t TotalElements() const { return total_elements_; }
  size_t TotalNodes() const { return total_nodes_; }
  uint32_t MaxDepth() const { return max_depth_; }

  /// Indented rendering with counts.
  std::string ToString(const xml::NamePool& pool) const;

 private:
  std::vector<Node> nodes_;
  std::vector<size_t> by_name_;       // per NameId element counts
  std::vector<size_t> attr_by_name_;  // per NameId attribute counts
  size_t total_elements_ = 0;
  size_t total_nodes_ = 0;
  uint32_t max_depth_ = 0;
};

}  // namespace xmlq::opt

#endif  // XMLQ_OPT_SYNOPSIS_H_
