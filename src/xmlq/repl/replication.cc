#include "xmlq/repl/replication.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <utility>

#include "xmlq/base/fault_injector.h"
#include "xmlq/net/protocol.h"
#include "xmlq/storage/manifest.h"

namespace xmlq::repl {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string CounterLine(std::string_view key, uint64_t value) {
  std::string out = "repl_";
  out += key;
  out += "=";
  out += std::to_string(value);
  out += "\n";
  return out;
}

/// Pulls the "epoch=<n>" announcement out of a subscribe ack body.
bool ParseEpoch(std::string_view body, uint64_t* epoch) {
  const size_t pos = body.find("epoch=");
  if (pos == std::string_view::npos) return false;
  size_t i = pos + 6;
  if (i >= body.size() || body[i] < '0' || body[i] > '9') return false;
  uint64_t value = 0;
  for (; i < body.size() && body[i] >= '0' && body[i] <= '9'; ++i) {
    value = value * 10 + static_cast<uint64_t>(body[i] - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

std::string ReplicationStats::ToString() const {
  std::string out;
  out += CounterLine("connected", connected ? 1 : 0);
  out += CounterLine("cursor", cursor);
  out += CounterLine("primary_generation", primary_generation);
  out += CounterLine("generation_lag", generation_lag);
  out += CounterLine("heartbeat_age_micros", heartbeat_age_micros);
  out += CounterLine("records_applied", records_applied);
  out += CounterLine("removes_applied", removes_applied);
  out += CounterLine("chunks_received", chunks_received);
  out += CounterLine("bytes_received", bytes_received);
  out += CounterLine("reconnects", reconnects);
  out += CounterLine("apply_retries", apply_retries);
  out += CounterLine("divergence_quarantines", divergence_quarantines);
  out += CounterLine("resyncs", resyncs);
  out += CounterLine("epoch", epoch);
  out += CounterLine("fenced_rejections", fenced_rejections);
  out += CounterLine("refetch_attempts", refetch_attempts);
  out += CounterLine("refetch_successes", refetch_successes);
  out += CounterLine("quarantined", quarantined);
  out += CounterLine("backoff_attempt", backoff_attempt);
  out += "repl_last_error=" + last_error + "\n";
  return out;
}

ReplicationClient::ReplicationClient(api::Database* db,
                                     ReplicationConfig config)
    : db_(db), config_(std::move(config)),
      heal_rng_(std::random_device{}()) {}

ReplicationClient::~ReplicationClient() { Stop(); }

Status ReplicationClient::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("replication already started");
  }
  if (db_->store_dir().empty()) {
    XMLQ_ASSIGN_OR_RETURN(auto report,
                          db_->Attach(config_.store_dir, config_.mode));
    (void)report;  // recovery details surface through Database logs/stats
  }
  // Resume point: the local manifest's clock. Everything at or below it is
  // already durably applied; everything above re-ships.
  XMLQ_ASSIGN_OR_RETURN(api::Database::ReplDelta delta, db_->ReplDeltaFrom(0));
  gate_ = std::make_shared<exec::StalenessGate>();
  gate_->Configure(config_.gate);
  db_->SetReadGate(gate_);
  db_->SetFollower(true);
  // Structured write refusals name where writes actually go (DESIGN.md §14).
  db_->SetPrimaryHint(config_.host + ":" + std::to_string(config_.port));
  // Self-heal feed: a scrubber quarantine on a replica is transient — the
  // primary still has a verified copy, so schedule a re-fetch of it.
  db_->SetQuarantineHook([this](const std::string& /*name*/,
                                uint64_t generation) {
    ScheduleHeal(generation);
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.cursor = delta.max_generation;
    started_ = true;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void ReplicationClient::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Unblock a read parked in the stream so the join is prompt.
    if (active_fd_ != -1) (void)shutdown(active_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  bool was_started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_started = started_;
    started_ = false;
    stats_.connected = false;
  }
  // The hook must not outlive this client (promotion destroys the client
  // while the Database serves on). Guarded by was_started so a redundant
  // Stop() — e.g. the destructor after an explicit Stop() — never touches a
  // Database the caller may have destroyed in between.
  if (was_started) db_->SetQuarantineHook({});
}

ReplicationStats ReplicationClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicationStats snapshot = stats_;
  snapshot.epoch = db_->epoch();
  snapshot.quarantined = quarantined_.size();
  if (gate_ != nullptr) {
    snapshot.heartbeat_age_micros = gate_->HeartbeatAgeMicros();
    snapshot.generation_lag = gate_->generation_lag();
  }
  return snapshot;
}

void ReplicationClient::NoteError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.last_error = status.message();
}

void ReplicationClient::PublishStaleness() {
  uint64_t cursor = 0;
  uint64_t primary = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cursor = stats_.cursor;
    primary = stats_.primary_generation;
  }
  const uint64_t lag = primary > cursor ? primary - cursor : 0;
  if (gate_ != nullptr) {
    // Keep the heartbeat timestamp the gate already has; only lag moves
    // here (heartbeat arrival is published by the heartbeat handler).
    const uint64_t age = gate_->HeartbeatAgeMicros();
    const uint64_t last =
        age == UINT64_MAX ? 0 : NowMicros() - std::min(age, NowMicros());
    gate_->Publish(lag, last);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.generation_lag = lag;
}

void ReplicationClient::SleepBackoff(uint32_t attempt, std::mt19937_64* rng) {
  net::RetryPolicy policy;
  policy.base_backoff_micros = config_.base_backoff_micros;
  policy.max_backoff_micros = config_.max_backoff_micros;
  const uint64_t scaled =
      net::ScaledBackoffMicros(config_.base_backoff_micros, attempt, policy);
  // ±50% jitter so a fleet of followers does not reconnect in lockstep.
  std::uniform_int_distribution<uint64_t> jitter(scaled / 2,
                                                 scaled + scaled / 2);
  uint64_t remaining = jitter(*rng);
  while (remaining > 0 && !stop_.load(std::memory_order_acquire)) {
    const uint64_t slice = std::min<uint64_t>(remaining, 20'000);
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    remaining -= slice;
  }
}

void ReplicationClient::Run() {
  std::mt19937_64 rng{std::random_device{}()};
  uint32_t attempt = 0;
  bool first_cycle = true;
  while (!stop_.load(std::memory_order_acquire)) {
    if (!first_cycle) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.reconnects;
      }
      SleepBackoff(attempt, &rng);
      if (attempt < 32) ++attempt;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.backoff_attempt = attempt;
      }
      if (stop_.load(std::memory_order_acquire)) break;
    }
    first_cycle = false;
    auto client =
        net::Client::Connect(config_.host, config_.port, config_.client);
    if (!client.ok()) {
      NoteError(client.status());
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_fd_ = client->fd();
      stats_.connected = true;
    }
    const Status status = StreamOnce(&*client);
    bool applied = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_fd_ = -1;
      stats_.connected = false;
      applied = applied_this_stream_;
      applied_this_stream_ = false;
    }
    if (!stop_.load(std::memory_order_acquire)) {
      NoteError(status);
      if (applied) {
        // Only a stream that durably *applied* a shipment earns a fresh
        // backoff schedule. A primary that accepts the subscribe and then
        // fences or drops us before any apply must keep escalating the
        // wait — otherwise a flapping link reconnects in a tight loop.
        attempt = 1;
        std::lock_guard<std::mutex> lock(mu_);
        stats_.backoff_attempt = attempt;
      }
    }
  }
}

Status ReplicationClient::StreamOnce(net::Client* client) {
  uint64_t cursor = 0;
  uint64_t refetch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cursor = stats_.cursor;
    refetch = TakeDueRefetchLocked(NowMicros());
  }
  auto ack = client->Subscribe(cursor, db_->epoch(), refetch);
  if (!ack.ok()) return ack.status();
  if (ack->code != StatusCode::kOk) {
    if (ack->body.find("fenced") != std::string::npos) {
      // The primary is behind our epoch and refused us — it is the stale
      // side of the split brain; keep reconnecting until it catches up.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fenced_rejections;
    }
    return Status(ack->code, "subscribe refused: " + ack->body);
  }
  // The ack announces the primary's fencing term ("... epoch=N"). A term
  // behind ours never reaches here (the server refuses such subscribers),
  // but a *newer* one means a promotion happened while we were away: adopt
  // it durably before applying anything under it — this is how a restarted
  // old primary, re-pointed at the new one, auto-demotes.
  uint64_t ack_epoch = 0;
  if (ParseEpoch(ack->body, &ack_epoch)) {
    XMLQ_RETURN_IF_ERROR(CheckFrameEpoch(ack_epoch));
  }

  // Reassembly state for the in-flight shipment.
  bool assembling = false;
  net::ReplRecordPayload record;
  std::string buffer;

  while (!stop_.load(std::memory_order_acquire)) {
    auto frame = client->ReadReplFrame();
    if (!frame.ok()) return frame.status();  // timeout/link error: reconnect
    switch (frame->type) {
      case net::FrameType::kReplRecord: {
        if (!net::DecodeReplRecord(frame->payload, &record)) {
          return Status::ParseError("malformed repl record frame");
        }
        XMLQ_RETURN_IF_ERROR(CheckFrameEpoch(record.epoch));
        assembling = true;
        buffer.clear();
        if (record.snapshot_size == 0) {
          assembling = false;
          XMLQ_RETURN_IF_ERROR(ApplyShipment(record, buffer));
        } else {
          buffer.reserve(record.snapshot_size);
        }
        break;
      }
      case net::FrameType::kReplChunk: {
        net::ReplChunkPayload chunk;
        if (!net::DecodeReplChunk(frame->payload, &chunk)) {
          return Status::ParseError("malformed repl chunk frame");
        }
        XMLQ_RETURN_IF_ERROR(CheckFrameEpoch(chunk.epoch));
        if (!assembling || chunk.generation != record.generation ||
            chunk.offset != buffer.size() ||
            chunk.total_size != record.snapshot_size) {
          // Torn shipment (primary restarted mid-ship, frames lost): drop
          // the partial assembly and reconnect — resume-from-cursor
          // re-ships the whole record.
          return Status::ParseError("repl chunk out of sequence");
        }
        if (XMLQ_FAULT("repl.apply.chunk") && !chunk.bytes.empty()) {
          // Corrupt-shipment model: one flipped bit. The whole-file CRC
          // check at apply time must catch it.
          chunk.bytes[0] = static_cast<char>(chunk.bytes[0] ^ 0x01);
        }
        buffer += chunk.bytes;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.chunks_received;
          stats_.bytes_received += chunk.bytes.size();
        }
        if (buffer.size() == record.snapshot_size) {
          assembling = false;
          XMLQ_RETURN_IF_ERROR(ApplyShipment(record, buffer));
          buffer.clear();
          buffer.shrink_to_fit();
        }
        break;
      }
      case net::FrameType::kReplHeartbeat: {
        net::ReplHeartbeatPayload heartbeat;
        if (!net::DecodeReplHeartbeat(frame->payload, &heartbeat)) {
          return Status::ParseError("malformed repl heartbeat frame");
        }
        XMLQ_RETURN_IF_ERROR(CheckFrameEpoch(heartbeat.epoch));
        XMLQ_RETURN_IF_ERROR(ReconcileCensus(heartbeat, assembling));
        if (!assembling) {
          // Re-fetch requests ride the subscribe frame, so a heal that came
          // due while this stream was healthy needs a reconnect to dispatch.
          // Bounded by the heal backoff — never a tight loop.
          std::lock_guard<std::mutex> lock(mu_);
          if (HealDueLocked(NowMicros())) {
            return Status::Internal(
                "self-heal re-fetch due; reconnecting to request it");
          }
        }
        break;
      }
      default:
        return Status::ParseError("unexpected frame type on repl stream");
    }
  }
  return Status::Cancelled("replication stopped");
}

Status ReplicationClient::ApplyShipment(const net::ReplRecordPayload& record,
                                        std::string_view bytes) {
  // Apply-time fence: the record's term was checked when it was announced,
  // but a promotion can land between the announcement and the last chunk —
  // nothing commits under an outlived epoch.
  XMLQ_RETURN_IF_ERROR(CheckFrameEpoch(record.epoch));
  storage::ManifestRecord manifest_record;
  manifest_record.op = static_cast<storage::ManifestOp>(record.op);
  manifest_record.generation = record.generation;
  manifest_record.name = record.name;
  manifest_record.file = record.file;
  manifest_record.snapshot_size = record.snapshot_size;
  manifest_record.snapshot_crc = record.snapshot_crc;
  const Status status = db_->ApplyReplicated(manifest_record, bytes);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.cursor = std::max(stats_.cursor, record.generation);
    ++stats_.records_applied;
    applied_this_stream_ = true;
    apply_attempts_.erase(record.generation);
    // A verified apply of a quarantined generation is the self-heal payoff:
    // the quarantine lifts without operator action.
    if (heal_.erase(record.generation) != 0) ++stats_.refetch_successes;
    quarantined_.erase(record.generation);
    return Status::Ok();
  }
  NoteError(status);
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t attempts = ++apply_attempts_[record.generation];
  if (attempts < config_.max_apply_attempts) {
    ++stats_.apply_retries;
    return status;  // reconnect; resume-from-cursor re-ships this record
  }
  // Divergence: the shipment keeps failing verification. Quarantine the
  // generation — move the cursor past it so it is never re-requested, keep
  // serving the previous generation of the document (degrade, never drop) —
  // and schedule a self-heal re-fetch: transient corruption (a bad link, a
  // primary mid-rewrite) heals on a later attempt; a truly diverged source
  // exhausts the heal budget and the quarantine becomes terminal.
  apply_attempts_.erase(record.generation);
  quarantined_.insert(record.generation);
  stats_.cursor = std::max(stats_.cursor, record.generation);
  ++stats_.divergence_quarantines;
  ScheduleHealLocked(record.generation);
  return Status::Ok();
}

Status ReplicationClient::CheckFrameEpoch(uint64_t frame_epoch) {
  const uint64_t local = db_->epoch();
  if (frame_epoch < local) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fenced_rejections;
    }
    return Status::InvalidArgument(
        "fenced: frame epoch " + std::to_string(frame_epoch) +
        " is behind local epoch " + std::to_string(local) +
        " (stale primary after a promotion)");
  }
  if (frame_epoch > local) {
    // Adopt-and-persist the newer term *before* anything applies under it:
    // a crash right after still recovers knowing the promotion happened.
    XMLQ_RETURN_IF_ERROR(db_->AdoptEpoch(frame_epoch));
  }
  return Status::Ok();
}

void ReplicationClient::ScheduleHeal(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  // Mark it locally quarantined so the census sweep does not escalate the
  // gap to a full resync while the heal backoff runs.
  quarantined_.insert(generation);
  ScheduleHealLocked(generation);
}

void ReplicationClient::ScheduleHealLocked(uint64_t generation) {
  auto it = heal_.try_emplace(generation).first;
  HealEntry& entry = it->second;
  if (entry.attempts >= config_.max_heal_attempts) {
    // Terminal: every re-fetch of this generation failed verification too.
    // The quarantine stands; a newer generation of the document (or an
    // operator) resolves it.
    heal_.erase(it);
    return;
  }
  entry.next_due_micros = NowMicros() + HealBackoffLocked(entry.attempts);
}

uint64_t ReplicationClient::TakeDueRefetchLocked(uint64_t now_micros) {
  for (auto& [generation, entry] : heal_) {
    if (entry.next_due_micros > now_micros) continue;
    if (entry.attempts >= config_.max_heal_attempts) continue;
    ++entry.attempts;
    entry.next_due_micros = now_micros + HealBackoffLocked(entry.attempts);
    // The re-fetch gets a full verify budget of its own.
    apply_attempts_.erase(generation);
    ++stats_.refetch_attempts;
    return generation;
  }
  return 0;
}

bool ReplicationClient::HealDueLocked(uint64_t now_micros) const {
  for (const auto& [generation, entry] : heal_) {
    if (entry.attempts < config_.max_heal_attempts &&
        entry.next_due_micros <= now_micros) {
      return true;
    }
  }
  return false;
}

uint64_t ReplicationClient::HealBackoffLocked(uint32_t attempt) {
  const uint64_t base = std::max<uint64_t>(1, config_.heal_base_backoff_micros);
  const uint64_t cap = std::max(base, config_.heal_max_backoff_micros);
  uint64_t scaled = base;
  for (uint32_t i = 0; i < attempt && scaled < cap; ++i) scaled *= 2;
  scaled = std::min(scaled, cap);
  // ±50% jitter: a fleet of healing followers must not re-fetch in lockstep.
  std::uniform_int_distribution<uint64_t> jitter(scaled / 2,
                                                 scaled + scaled / 2);
  return jitter(heal_rng_);
}

Status ReplicationClient::ReconcileCensus(
    const net::ReplHeartbeatPayload& heartbeat, bool mid_shipment) {
  uint64_t cursor = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.primary_generation = heartbeat.max_generation;
    cursor = stats_.cursor;
  }
  if (gate_ != nullptr) {
    const uint64_t lag = heartbeat.max_generation > cursor
                             ? heartbeat.max_generation - cursor
                             : 0;
    gate_->Publish(lag, NowMicros());
    std::lock_guard<std::mutex> lock(mu_);
    stats_.generation_lag = lag;
  }
  if (mid_shipment) {
    // A correct primary finishes a shipment before heartbeating; a hostile
    // one must not be able to jump our clock past the in-flight record.
    // Staleness is published above either way.
    return Status::Ok();
  }
  if (heartbeat.max_generation < cursor) {
    // A clock behind ours (a restored-from-backup primary, a frame replay)
    // must never move the cursor backwards.
    return Status::Ok();
  }
  XMLQ_ASSIGN_OR_RETURN(api::Database::ReplDelta local, db_->ReplDeltaFrom(0));
  // Drop local store-backed documents the census no longer lists.
  for (const auto& [name, generation] : local.live) {
    bool listed = false;
    for (const auto& entry : heartbeat.live) {
      if (entry.name == name) {
        listed = true;
        break;
      }
    }
    if (listed) continue;
    const Status status = db_->ApplyReplicatedRemove(name, heartbeat.max_generation);
    if (!status.ok()) return status;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.removes_applied;
  }
  // Divergence sweep: stream ordering means every census generation was
  // either shipped before this heartbeat or predates our cursor, so any
  // entry we lack (and never quarantined) means our history forked from
  // the primary's. Resubscribing from zero heals it — per-name idempotence
  // skips everything already intact.
  for (const auto& entry : heartbeat.live) {
    bool intact = false;
    for (const auto& [name, generation] : local.live) {
      if (name == entry.name && generation >= entry.generation) {
        intact = true;
        break;
      }
    }
    if (intact) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (quarantined_.count(entry.generation) != 0) continue;
    stats_.cursor = 0;
    ++stats_.resyncs;
    return Status::Internal("census divergence on \"" + entry.name +
                            "\" g" + std::to_string(entry.generation) +
                            "; resyncing from generation 0");
  }
  // The heartbeat is the only way the follower's clock crosses generations
  // that never ship a record (removals, quarantines, replaced snapshots
  // that vanished before shipping): advance to the primary's clock now that
  // the census reconciled cleanly.
  std::lock_guard<std::mutex> lock(mu_);
  stats_.cursor = std::max(stats_.cursor, heartbeat.max_generation);
  return Status::Ok();
}

}  // namespace xmlq::repl
