#ifndef XMLQ_REPL_REPLICATION_H_
#define XMLQ_REPL_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>

#include "xmlq/api/database.h"
#include "xmlq/base/status.h"
#include "xmlq/exec/admission.h"
#include "xmlq/net/client.h"

namespace xmlq::repl {

/// How a follower attaches to a primary (DESIGN.md §13).
struct ReplicationConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// The follower's durable store directory. Attached (created when absent,
  /// recovered when present) by Start() unless the Database already has a
  /// store attached — then that store is used and this field is ignored.
  std::string store_dir;
  storage::SnapshotOpenMode mode = storage::SnapshotOpenMode::kMap;
  /// Wire client knobs. io_timeout_micros doubles as the stream's read/idle
  /// deadline: heartbeats arrive every second from a healthy primary, so a
  /// read that times out means the link is dead and it is time to reconnect.
  net::ClientConfig client = {
      /*connect_timeout_micros=*/2'000'000,
      /*io_timeout_micros=*/10'000'000,
      /*max_frame_bytes=*/64u << 20,
  };
  /// Jittered exponential reconnect backoff (reuses the wire client's
  /// schedule: base * 2^attempt saturating at max, then ±50% jitter).
  uint64_t base_backoff_micros = 50'000;
  uint64_t max_backoff_micros = 2'000'000;
  /// A shipment whose apply keeps failing (CRC mismatch — a diverged or
  /// corrupted source) is re-requested this many times, then its generation
  /// is quarantined: the cursor moves past it and the follower keeps
  /// serving the previous generation of that document. Degrade, never drop.
  uint32_t max_apply_attempts = 3;
  /// Self-healing quarantine recovery (DESIGN.md §14): a quarantined
  /// generation is re-fetched from the current primary on a jittered
  /// doubling backoff (base * 2^attempt saturating at max, ±50% jitter),
  /// verify-then-commit as always. After max_heal_attempts re-fetches the
  /// quarantine becomes terminal — the primary itself keeps shipping bytes
  /// that fail verification, so retrying cannot help.
  uint64_t heal_base_backoff_micros = 100'000;
  uint64_t heal_max_backoff_micros = 5'000'000;
  uint32_t max_heal_attempts = 5;
  /// Staleness policy for follower reads (0 = unbounded). Applied to the
  /// gate installed into the Database; reads past the bound shed with a
  /// retryable overload status.
  exec::StalenessGate::Policy gate;
};

/// Counters and health of one follower's replication stream; every field is
/// a snapshot taken under the client's mutex.
struct ReplicationStats {
  bool connected = false;
  uint64_t cursor = 0;              // highest generation fully applied
  uint64_t primary_generation = 0;  // primary's clock, per last heartbeat
  uint64_t generation_lag = 0;
  uint64_t heartbeat_age_micros = UINT64_MAX;  // UINT64_MAX = none yet
  uint64_t records_applied = 0;
  uint64_t removes_applied = 0;
  uint64_t chunks_received = 0;
  uint64_t bytes_received = 0;
  uint64_t reconnects = 0;
  uint64_t apply_retries = 0;
  uint64_t divergence_quarantines = 0;
  uint64_t resyncs = 0;
  uint64_t epoch = 0;              // the follower's persisted fencing term
  uint64_t fenced_rejections = 0;  // frames/acks refused: stale epoch
  uint64_t refetch_attempts = 0;   // self-heal re-fetches dispatched
  uint64_t refetch_successes = 0;  // quarantines healed by a re-fetch
  uint64_t quarantined = 0;        // gauge: generations currently given up on
  uint64_t backoff_attempt = 0;    // current reconnect backoff rung
  std::string last_error;  // most recent disconnect/apply error ("" = none)
  /// Rendered as "repl_<key>=<value>" lines — the Server::extra_stats hook
  /// appends this to a follower's kStats responses.
  std::string ToString() const;
};

/// The follower half of replication (DESIGN.md §13): maintains one
/// subscription to the primary, applies shipped snapshots through
/// Database::ApplyReplicated (verify-then-commit, crash-atomic), reconciles
/// removals from the heartbeat census, publishes staleness into the read
/// gate, and reconnects with jittered exponential backoff forever — a dead
/// primary degrades the follower to stale-but-serving, never to down.
///
/// Robustness model, exercised by tests/repl_test.cc's chaos matrix:
///  - torn shipment / link error / read timeout → reconnect, resume from
///    the cursor (the local manifest's max generation — survives crashes);
///  - corrupt shipment (fault "repl.apply.chunk" flips a byte) → the
///    whole-file CRC check in ApplyReplicated rejects it; after
///    max_apply_attempts the generation is quarantined and the previous
///    generation keeps serving;
///  - follower crash mid-apply (kill points repl.apply.*) → recovery
///    replays the manifest to exactly the old or the new generation and the
///    orphan sweep removes any uncommitted snapshot bytes;
///  - local store diverged from the census (missing/stale generation that
///    was never quarantined) → full resync: resubscribe from generation 0,
///    per-name idempotence skips everything that is already intact;
///  - split brain (DESIGN.md §14) → every repl frame carries the primary's
///    epoch: a frame from a term behind ours is fenced (rejected, counted,
///    connection dropped), a newer term is adopted durably before anything
///    applies under it — a restarted old primary pointed at the new one
///    auto-demotes, and the census sweep resyncs whatever forked;
///  - quarantined generation → self-heal: a re-fetch of exactly that
///    generation is scheduled from the current primary with jittered
///    bounded backoff; a verified apply clears the quarantine without
///    operator action.
class ReplicationClient {
 public:
  /// `db` must outlive this client.
  ReplicationClient(api::Database* db, ReplicationConfig config);
  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;
  ~ReplicationClient();  // Stop()

  /// Attaches the store (unless the Database already has one), switches the
  /// Database into follower mode (Persist/Remove refuse), installs the
  /// staleness gate, and spawns the streaming thread. The resume cursor is
  /// the attached manifest's max generation.
  Status Start();

  /// Stops the streaming thread (unblocking any in-progress socket read)
  /// and joins it. The Database *stays* in follower mode serving whatever
  /// it has — the store is still replication-owned, and local writes would
  /// fork the primary's generation clock. Idempotent.
  void Stop();

  ReplicationStats stats() const;

  /// The gate Start() installed; reconfigure it to change the read policy
  /// at runtime. Null before Start().
  std::shared_ptr<exec::StalenessGate> gate() const { return gate_; }

 private:
  void Run();
  /// One connection's lifetime: subscribe at the cursor, stream until an
  /// error (including read timeout and injected faults). Never returns Ok.
  Status StreamOnce(net::Client* client);
  /// Applies one fully reassembled shipment; advances the cursor on
  /// success, counts a retry or quarantines the generation on failure.
  /// Returns non-Ok only when the stream must reconnect (retryable apply
  /// failure — re-ship and try again).
  Status ApplyShipment(const net::ReplRecordPayload& record,
                       std::string_view bytes);
  /// Census reconciliation. Stream ordering makes the heartbeat itself the
  /// catch-up proof — every record the primary considered pending was
  /// shipped *before* it on the same connection — so this drops local
  /// documents absent from the census, detects divergence (may schedule a
  /// resync), and advances the cursor to the heartbeat's clock: removals
  /// and quarantines bump the primary's generation without ever shipping a
  /// record, and the heartbeat is how the follower's clock crosses those
  /// gaps. `mid_shipment` guards the hostile case of a heartbeat arriving
  /// between chunks (a correct primary never interleaves): staleness still
  /// publishes, but the clock must not jump past the in-flight record.
  /// Returns non-Ok when the stream must reconnect.
  Status ReconcileCensus(const net::ReplHeartbeatPayload& heartbeat,
                         bool mid_shipment);
  void PublishStaleness();
  void NoteError(const Status& status);
  /// Interruptible backoff sleep; returns early when Stop() was requested.
  void SleepBackoff(uint32_t attempt, std::mt19937_64* rng);
  /// Epoch fence (DESIGN.md §14): a frame term behind the local epoch is
  /// refused (counted, stream reconnects — we outlived that primary); a
  /// newer term is adopted and persisted before anything applies under it.
  Status CheckFrameEpoch(uint64_t frame_epoch);
  /// Schedules a self-heal re-fetch of `generation` and marks it
  /// quarantined locally (suppresses the census resync while the backoff
  /// runs). Fed by the divergence quarantine and by the Database's
  /// quarantine hook (the scrubber); safe from any thread.
  void ScheduleHeal(uint64_t generation);
  /// ScheduleHeal's body; caller holds mu_. Erases the entry instead when
  /// its attempt budget is spent — the quarantine becomes terminal.
  void ScheduleHealLocked(uint64_t generation);
  /// Picks the due heal target (0 = none) and marks its dispatch: bumps
  /// attempts/refetch_attempts, re-arms the backoff, clears the
  /// generation's apply attempts so the re-fetch gets a full verify budget.
  uint64_t TakeDueRefetchLocked(uint64_t now_micros);
  bool HealDueLocked(uint64_t now_micros) const;
  /// Jittered doubling heal backoff for dispatch number `attempt`.
  uint64_t HealBackoffLocked(uint32_t attempt);

  api::Database* const db_;
  const ReplicationConfig config_;
  std::shared_ptr<exec::StalenessGate> gate_;

  std::thread thread_;
  std::atomic<bool> stop_{true};
  /// fd of the live connection, for Stop() to shutdown() so a blocked read
  /// unblocks immediately; -1 when not connected. Guarded by mu_.
  int active_fd_ = -1;

  mutable std::mutex mu_;
  ReplicationStats stats_;
  bool started_ = false;
  /// Apply failures per generation (cleared on success/quarantine).
  std::map<uint64_t, uint32_t> apply_attempts_;
  /// Generations given up on. A census entry carrying one of these does not
  /// trigger a resync (the gap is deliberate); a newer generation of the
  /// same document ships and serves normally.
  std::set<uint64_t> quarantined_;
  /// Self-heal schedule (DESIGN.md §14), generation -> backoff state. An
  /// entry leaves the map on a verified apply (healed) or when its attempt
  /// budget is spent (terminal quarantine).
  struct HealEntry {
    uint32_t attempts = 0;         // re-fetches dispatched so far
    uint64_t next_due_micros = 0;  // steady-clock due time
  };
  std::map<uint64_t, HealEntry> heal_;
  std::mt19937_64 heal_rng_;  // guarded by mu_
  /// Satellite of the backoff contract: the reconnect schedule resets to
  /// base only after a stream that durably applied at least one shipment.
  bool applied_this_stream_ = false;  // guarded by mu_
};

}  // namespace xmlq::repl

#endif  // XMLQ_REPL_REPLICATION_H_
