#include "xmlq/storage/bitvector.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace xmlq::storage {

BitVector BitVector::FromExternal(std::span<const uint64_t> words,
                                  size_t bits,
                                  std::span<const uint64_t> super_ranks,
                                  size_t ones) {
  assert(words.size() == ExpectedWords(bits));
  assert(super_ranks.size() == ExpectedSuperRanks(bits));
  BitVector out;
  out.words_ = ArrayRef<uint64_t>::View(words);
  out.super_ranks_ = ArrayRef<uint64_t>::View(super_ranks);
  out.size_ = bits;
  out.ones_ = ones;
  out.frozen_ = true;
  return out;
}

void BitVector::Freeze() {
  if (frozen_) return;
  size_t num_supers = (words_.size() + kWordsPerSuper - 1) / kWordsPerSuper;
  std::vector<uint64_t> supers(num_supers + 1, 0);
  uint64_t running = 0;
  for (size_t s = 0; s < num_supers; ++s) {
    supers[s] = running;
    size_t begin = s * kWordsPerSuper;
    size_t end = std::min(begin + kWordsPerSuper, words_.size());
    for (size_t w = begin; w < end; ++w) {
      running += static_cast<uint64_t>(std::popcount(words_[w]));
    }
  }
  supers[num_supers] = running;
  super_ranks_.Assign(std::move(supers));
  ones_ = running;
  frozen_ = true;
}

size_t BitVector::Rank1(size_t i) const {
  assert(frozen_ && i <= size_);
  size_t word = i >> 6;
  size_t super = word / kWordsPerSuper;
  uint64_t rank = super_ranks_[super];
  for (size_t w = super * kWordsPerSuper; w < word; ++w) {
    rank += static_cast<uint64_t>(std::popcount(words_[w]));
  }
  size_t bit = i & 63;
  if (bit != 0) {
    rank += static_cast<uint64_t>(
        std::popcount(words_[word] & ((uint64_t{1} << bit) - 1)));
  }
  return static_cast<size_t>(rank);
}

namespace {

/// Position (0-63) of the (k+1)-th set bit in `word`; k < popcount(word).
int SelectInWord(uint64_t word, int k) {
  for (int i = 0; i < 64; ++i) {
    if ((word >> i) & 1) {
      if (k == 0) return i;
      --k;
    }
  }
  return -1;  // unreachable if precondition holds
}

}  // namespace

size_t BitVector::Select1(size_t k) const {
  assert(frozen_ && k < ones_);
  // Binary search the superblock directory.
  size_t lo = 0, hi = super_ranks_.size() - 1;
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (super_ranks_[mid] <= k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  uint64_t remaining = k - super_ranks_[lo];
  size_t word = lo * kWordsPerSuper;
  while (true) {
    uint64_t pc = static_cast<uint64_t>(std::popcount(words_[word]));
    if (remaining < pc) break;
    remaining -= pc;
    ++word;
  }
  return word * 64 +
         static_cast<size_t>(SelectInWord(words_[word],
                                          static_cast<int>(remaining)));
}

size_t BitVector::Select0(size_t k) const {
  assert(frozen_ && k < size_ - ones_);
  // Zero-select is only used on small/auxiliary vectors; binary search rank.
  size_t lo = 0, hi = size_;  // invariant: Rank0(lo) <= k < Rank0(hi)
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (Rank0(mid) <= k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace xmlq::storage
