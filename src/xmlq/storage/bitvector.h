#ifndef XMLQ_STORAGE_BITVECTOR_H_
#define XMLQ_STORAGE_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "xmlq/base/array_ref.h"

namespace xmlq::storage {

/// Append-only bit sequence with O(1) rank and O(log n) select after
/// `Freeze()`. This is the primitive underneath the balanced-parentheses
/// structure of the succinct storage scheme (paper §4.2).
///
/// Usage: push bits (or whole runs), call Freeze() once, then query.
///
/// Storage is an ArrayRef, so a frozen vector can alternatively be
/// constructed directly over externally owned words + directory (a section of
/// an mmap'd snapshot) via FromExternal — the zero-copy open path.
class BitVector {
 public:
  BitVector() = default;

  /// Adopts frozen external storage (e.g. mapped snapshot sections). `words`
  /// must hold ceil(bits/64) words, `super_ranks` the directory Freeze()
  /// would build (callers validate; see snapshot_reader). The memory must
  /// outlive the BitVector and every copy of it.
  static BitVector FromExternal(std::span<const uint64_t> words, size_t bits,
                                std::span<const uint64_t> super_ranks,
                                size_t ones);

  /// Appends one bit. Must not be called after Freeze().
  void PushBack(bool bit) {
    size_t word = size_ >> 6;
    if (word == words_.size()) words_.PushBack(0);
    if (bit) words_.MutableAt(word) |= uint64_t{1} << (size_ & 63);
    ++size_;
  }

  /// Number of bits.
  size_t size() const { return size_; }

  /// Bit at position `i` (0-based). `i < size()`.
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Builds the rank/select directories. Idempotent.
  void Freeze();

  /// Number of 1-bits in positions [0, i). `i <= size()`. Requires Freeze().
  size_t Rank1(size_t i) const;
  /// Number of 0-bits in positions [0, i).
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  /// Position of the (k+1)-th 1-bit (0-based k). k < Rank1(size()).
  size_t Select1(size_t k) const;
  /// Position of the (k+1)-th 0-bit.
  size_t Select0(size_t k) const;

  /// Total 1-bits.
  size_t OneCount() const { return ones_; }

  /// Bytes referenced by payload + directories (owned or borrowed); for the
  /// storage experiment.
  size_t MemoryUsage() const {
    return words_.size() * sizeof(uint64_t) +
           super_ranks_.size() * sizeof(uint64_t);
  }
  /// Heap bytes actually owned (0 when backed by a mapped snapshot).
  size_t HeapBytes() const {
    return words_.OwnedBytes() + super_ranks_.OwnedBytes();
  }

  /// True when backed by externally owned (snapshot) memory.
  bool external() const { return words_.external(); }

  // -- Snapshot serialization hooks ----------------------------------------

  /// Raw payload word `w` (for the BP directory build / excess search).
  uint64_t Word(size_t w) const { return words_[w]; }

  /// Raw 64-bit payload words, ceil(size()/64) of them.
  std::span<const uint64_t> WordSpan() const { return words_.span(); }
  /// Superblock rank directory (one entry per superblock, plus the total).
  /// Empty before Freeze().
  std::span<const uint64_t> SuperRankSpan() const {
    return super_ranks_.span();
  }
  static constexpr size_t kWordsPerSuper = 8;  // 512-bit superblocks

  /// Directory entries Freeze()/FromExternal expect for `bits` bits.
  static size_t ExpectedWords(size_t bits) { return (bits + 63) / 64; }
  static size_t ExpectedSuperRanks(size_t bits) {
    return (ExpectedWords(bits) + kWordsPerSuper - 1) / kWordsPerSuper + 1;
  }

 private:

  ArrayRef<uint64_t> words_;
  size_t size_ = 0;
  bool frozen_ = false;
  size_t ones_ = 0;
  // super_ranks_[s] = number of 1-bits before superblock s.
  ArrayRef<uint64_t> super_ranks_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_BITVECTOR_H_
