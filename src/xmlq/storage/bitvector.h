#ifndef XMLQ_STORAGE_BITVECTOR_H_
#define XMLQ_STORAGE_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xmlq::storage {

/// Append-only bit sequence with O(1) rank and O(log n) select after
/// `Freeze()`. This is the primitive underneath the balanced-parentheses
/// structure of the succinct storage scheme (paper §4.2).
///
/// Usage: push bits (or whole runs), call Freeze() once, then query.
class BitVector {
 public:
  BitVector() = default;

  /// Appends one bit. Must not be called after Freeze().
  void PushBack(bool bit) {
    size_t word = size_ >> 6;
    if (word == words_.size()) words_.push_back(0);
    if (bit) words_[word] |= uint64_t{1} << (size_ & 63);
    ++size_;
  }

  /// Number of bits.
  size_t size() const { return size_; }

  /// Bit at position `i` (0-based). `i < size()`.
  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Builds the rank/select directories. Idempotent.
  void Freeze();

  /// Number of 1-bits in positions [0, i). `i <= size()`. Requires Freeze().
  size_t Rank1(size_t i) const;
  /// Number of 0-bits in positions [0, i).
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  /// Position of the (k+1)-th 1-bit (0-based k). k < Rank1(size()).
  size_t Select1(size_t k) const;
  /// Position of the (k+1)-th 0-bit.
  size_t Select0(size_t k) const;

  /// Total 1-bits.
  size_t OneCount() const { return ones_; }

  /// Heap bytes used (payload + directories); for the storage experiment.
  size_t MemoryUsage() const {
    return words_.capacity() * sizeof(uint64_t) +
           super_ranks_.capacity() * sizeof(uint64_t);
  }

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  static constexpr size_t kWordsPerSuper = 8;  // 512-bit superblocks

  std::vector<uint64_t> words_;
  size_t size_ = 0;
  bool frozen_ = false;
  size_t ones_ = 0;
  // super_ranks_[s] = number of 1-bits before superblock s.
  std::vector<uint64_t> super_ranks_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_BITVECTOR_H_
