#include "xmlq/storage/bp.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xmlq::storage {

BalancedParens BalancedParens::FromExternal(
    BitVector bits, std::span<const ExcessBlock> word_dir,
    std::span<const ExcessBlock> super_dir) {
  assert(word_dir.size() == ExpectedWordDir(bits.size()));
  assert(super_dir.size() == ExpectedSuperDir(bits.size()));
  BalancedParens out;
  out.bits_ = std::move(bits);
  out.words_ = ArrayRef<ExcessBlock>::View(word_dir);
  out.supers_ = ArrayRef<ExcessBlock>::View(super_dir);
  return out;
}

void BalancedParens::Freeze() {
  bits_.Freeze();
  const size_t n = bits_.size();
  const size_t num_words = (n + 63) / 64;
  std::vector<ExcessBlock> words(num_words);
  for (size_t w = 0; w < num_words; ++w) {
    const size_t valid = std::min<size_t>(64, n - w * 64);
    const uint64_t word = bits_.Word(w);
    int32_t run = 0;
    int32_t mn = std::numeric_limits<int32_t>::max();
    int32_t mx = std::numeric_limits<int32_t>::min();
    for (size_t b = 0; b < valid; ++b) {
      run += ((word >> b) & 1) ? 1 : -1;
      mn = std::min(mn, run);
      mx = std::max(mx, run);
    }
    words[w] = ExcessBlock{run, mn, mx};
  }
  const size_t num_supers = (num_words + kWordsPerSuper - 1) / kWordsPerSuper;
  std::vector<ExcessBlock> supers(num_supers);
  for (size_t s = 0; s < num_supers; ++s) {
    const size_t begin = s * kWordsPerSuper;
    const size_t end = std::min(begin + kWordsPerSuper, num_words);
    int32_t run = 0;
    int32_t mn = std::numeric_limits<int32_t>::max();
    int32_t mx = std::numeric_limits<int32_t>::min();
    for (size_t w = begin; w < end; ++w) {
      mn = std::min(mn, run + words[w].min);
      mx = std::max(mx, run + words[w].max);
      run += words[w].total;
    }
    supers[s] = ExcessBlock{run, mn, mx};
  }
  words_.Assign(std::move(words));
  supers_.Assign(std::move(supers));
}

size_t BalancedParens::FwdSearch(size_t i, int64_t d) const {
  const int64_t target = Excess(i) + d;
  const size_t n = bits_.size();
  int64_t cur = Excess(i);
  size_t pos = i + 1;
  // Finish the word containing `pos` bit by bit.
  const size_t word_end = std::min(((pos >> 6) + 1) << 6, n);
  for (; pos < word_end && (pos & 63) != 0; ++pos) {
    cur += bits_.Get(pos) ? 1 : -1;
    if (cur == target) return pos;
  }
  if (pos >= n) return kNoPos;
  // Word-at-a-time with superblock skipping.
  size_t w = pos >> 6;
  while (w < words_.size()) {
    if ((w & (kWordsPerSuper - 1)) == 0) {
      size_t s = w / kWordsPerSuper;
      while (s < supers_.size() &&
             !(target >= cur + supers_[s].min &&
               target <= cur + supers_[s].max)) {
        cur += supers_[s].total;
        ++s;
      }
      w = s * kWordsPerSuper;
      if (w >= words_.size()) return kNoPos;
    }
    const ExcessBlock& blk = words_[w];
    if (target >= cur + blk.min && target <= cur + blk.max) {
      const size_t start = w << 6;
      const size_t end = std::min(start + 64, n);
      const uint64_t word = bits_.Word(w);
      for (size_t p = start; p < end; ++p) {
        cur += ((word >> (p & 63)) & 1) ? 1 : -1;
        if (cur == target) return p;
      }
      assert(false && "excess target must lie within flagged word");
      return kNoPos;
    }
    cur += blk.total;
    ++w;
  }
  return kNoPos;
}

int64_t BalancedParens::BwdSearch(size_t i, int64_t d) const {
  // Returns the largest j < i with excess(j) == Excess(i) + d, where j may
  // be the virtual position -1 (excess 0); returns -2 when no such j exists.
  const int64_t target = Excess(i) + d;
  if (i == 0) return target == 0 ? -1 : -2;
  int64_t cur = Excess(i) - (bits_.Get(i) ? 1 : -1);  // excess(i-1)
  size_t p = i - 1;
  while (true) {
    if (cur == target) return static_cast<int64_t>(p);
    if (p == 0) break;
    if ((p & 63) == 63) {
      // p sits on the last bit of word w; skip whole words/superblocks whose
      // excess range excludes the target.
      size_t w = p >> 6;
      while (true) {
        // After a skip, `p` (last bit of the current word) is an unchecked
        // candidate; on first entry this re-tests the outer loop's check.
        if (cur == target) return static_cast<int64_t>(p);
        if ((w & (kWordsPerSuper - 1)) == kWordsPerSuper - 1) {
          const size_t s = w / kWordsPerSuper;
          const ExcessBlock& sb = supers_[s];
          const int64_t sbase = cur - sb.total;
          if (!(target >= sbase + sb.min && target <= sbase + sb.max)) {
            cur = sbase;
            if (s == 0) return target == 0 ? -1 : -2;
            w = s * kWordsPerSuper - 1;
            p = (w << 6) + 63;
            continue;
          }
        }
        const ExcessBlock& blk = words_[w];
        const int64_t base = cur - blk.total;  // excess(w*64 - 1)
        if (target >= base + blk.min && target <= base + blk.max) {
          break;  // the target lies inside word w; scan it bit by bit
        }
        cur = base;
        if (w == 0) return target == 0 ? -1 : -2;
        --w;
        p = (w << 6) + 63;
      }
    }
    cur -= bits_.Get(p) ? 1 : -1;  // excess(p-1)
    --p;
  }
  return target == 0 ? -1 : -2;
}

size_t BalancedParens::FindClose(size_t i) const {
  assert(IsOpen(i));
  // Fast path: most subtrees the tree-pattern scans skip are small, so the
  // matching close paren usually sits within the next few words. A short
  // relative-depth scan avoids the excess (rank) computation entirely.
  const size_t limit = std::min(bits_.size(), i + 96);
  int depth = 0;
  for (size_t j = i; j < limit; ++j) {
    depth += bits_.Get(j) ? 1 : -1;
    if (depth == 0) return j;
  }
  return FwdSearch(i, -1);
}

size_t BalancedParens::FindOpen(size_t i) const {
  assert(!IsOpen(i));
  const int64_t p = BwdSearch(i, 0);
  assert(p >= -1);
  return static_cast<size_t>(p + 1);
}

size_t BalancedParens::Enclose(size_t i) const {
  assert(IsOpen(i));
  if (i == 0) return kNoPos;
  const int64_t p = BwdSearch(i, -2);
  if (p < -1) return kNoPos;
  return static_cast<size_t>(p + 1);
}

size_t BalancedParens::MemoryUsage() const {
  return bits_.MemoryUsage() + words_.size() * sizeof(ExcessBlock) +
         supers_.size() * sizeof(ExcessBlock);
}

}  // namespace xmlq::storage
