#ifndef XMLQ_STORAGE_BP_H_
#define XMLQ_STORAGE_BP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "xmlq/storage/bitvector.h"

namespace xmlq::storage {

/// Sentinel for "no position" returned by navigation queries.
inline constexpr size_t kNoPos = SIZE_MAX;

/// Balanced-parentheses sequence with excess search.
///
/// The succinct storage scheme (paper §4.2) linearizes the tree in pre-order,
/// "keeping balanced parentheses to denote the beginning and ending of a
/// subtree". A 1-bit is an open parenthesis, a 0-bit a close parenthesis.
/// Tree navigation reduces to excess arithmetic:
///
///   first_child(v)  = v+1 if open, else leaf
///   next_sibling(v) = FindClose(v)+1 if open, else none
///   parent(v)       = Enclose(v)
///
/// Excess search is accelerated by a two-level (word / superblock) directory
/// of {total, min, max} excess deltas, giving near-O(1) practical cost with
/// O(n / 64) worst case per query — the classic range-min-max layout without
/// the logarithmic tree on top, which is unnecessary at the document sizes
/// the experiments use.
class BalancedParens {
 public:
  BalancedParens() = default;

  /// Appends an open (true) / close (false) parenthesis.
  void PushBack(bool open) { bits_.PushBack(open); }

  /// Builds directories. The sequence must be balanced.
  void Freeze();

  size_t size() const { return bits_.size(); }
  bool IsOpen(size_t i) const { return bits_.Get(i); }

  /// Number of open parens in [0, i).
  size_t Rank1(size_t i) const { return bits_.Rank1(i); }
  /// Position of the (k+1)-th open paren.
  size_t Select1(size_t k) const { return bits_.Select1(k); }
  /// Number of tree nodes (= number of open parens).
  size_t NodeCount() const { return bits_.OneCount(); }

  /// excess(i) = opens - closes in positions [0, i].
  int64_t Excess(size_t i) const {
    return 2 * static_cast<int64_t>(bits_.Rank1(i + 1)) -
           static_cast<int64_t>(i + 1);
  }

  /// Matching close paren of the open paren at `i`.
  size_t FindClose(size_t i) const;
  /// Matching open paren of the close paren at `i`.
  size_t FindOpen(size_t i) const;
  /// Open paren of the tightest pair enclosing position `i` (the parent of
  /// the node whose open paren is at `i`); kNoPos for the root.
  size_t Enclose(size_t i) const;

  /// Number of nodes in the subtree rooted at open paren `i`.
  size_t SubtreeSize(size_t i) const {
    return (FindClose(i) - i + 1) / 2;
  }

  /// Depth of the node at open paren `i` (root = 0). O(1) via excess.
  size_t DepthAt(size_t i) const {
    return static_cast<size_t>(Excess(i)) - 1;
  }

  /// Heap bytes used by the sequence plus directories.
  size_t MemoryUsage() const;

 private:
  /// Smallest j > i with excess(j) == excess(i) + d (d < 0 in our uses).
  size_t FwdSearch(size_t i, int64_t d) const;
  /// Largest j < i with excess(j) == excess(i) + d. Returns -1 for the
  /// virtual position before the sequence (excess 0), -2 if no match.
  int64_t BwdSearch(size_t i, int64_t d) const;

  struct ExcessBlock {
    int32_t total = 0;  // excess delta across the block
    int32_t min = 0;    // min prefix excess within the block (relative)
    int32_t max = 0;    // max prefix excess within the block (relative)
  };

  BitVector bits_;
  std::vector<ExcessBlock> words_;   // one per 64-bit word
  std::vector<ExcessBlock> supers_;  // one per kWordsPerSuper words
  static constexpr size_t kWordsPerSuper = 64;  // 4096-bit superblocks
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_BP_H_
