#ifndef XMLQ_STORAGE_BP_H_
#define XMLQ_STORAGE_BP_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "xmlq/base/array_ref.h"
#include "xmlq/storage/bitvector.h"

namespace xmlq::storage {

/// Sentinel for "no position" returned by navigation queries.
inline constexpr size_t kNoPos = SIZE_MAX;

/// Balanced-parentheses sequence with excess search.
///
/// The succinct storage scheme (paper §4.2) linearizes the tree in pre-order,
/// "keeping balanced parentheses to denote the beginning and ending of a
/// subtree". A 1-bit is an open parenthesis, a 0-bit a close parenthesis.
/// Tree navigation reduces to excess arithmetic:
///
///   first_child(v)  = v+1 if open, else leaf
///   next_sibling(v) = FindClose(v)+1 if open, else none
///   parent(v)       = Enclose(v)
///
/// Excess search is accelerated by a two-level (word / superblock) directory
/// of {total, min, max} excess deltas, giving near-O(1) practical cost with
/// O(n / 64) worst case per query — the classic range-min-max layout without
/// the logarithmic tree on top, which is unnecessary at the document sizes
/// the experiments use.
class BalancedParens {
 public:
  /// One directory entry; the payload of the snapshot directory sections.
  struct ExcessBlock {
    int32_t total = 0;  // excess delta across the block
    int32_t min = 0;    // min prefix excess within the block (relative)
    int32_t max = 0;    // max prefix excess within the block (relative)
  };
  static_assert(sizeof(ExcessBlock) == 12, "serialized layout");

  static constexpr size_t kWordsPerSuper = 64;  // 4096-bit superblocks

  BalancedParens() = default;

  /// Adopts a frozen bit sequence plus externally owned directories (mapped
  /// snapshot sections) — the zero-copy open path. Directory sizes must
  /// match what Freeze() would build (callers validate).
  static BalancedParens FromExternal(BitVector bits,
                                     std::span<const ExcessBlock> word_dir,
                                     std::span<const ExcessBlock> super_dir);

  /// Appends an open (true) / close (false) parenthesis.
  void PushBack(bool open) { bits_.PushBack(open); }

  /// Builds directories. The sequence must be balanced.
  void Freeze();

  size_t size() const { return bits_.size(); }
  bool IsOpen(size_t i) const { return bits_.Get(i); }

  /// Number of open parens in [0, i).
  size_t Rank1(size_t i) const { return bits_.Rank1(i); }
  /// Position of the (k+1)-th open paren.
  size_t Select1(size_t k) const { return bits_.Select1(k); }
  /// Number of tree nodes (= number of open parens).
  size_t NodeCount() const { return bits_.OneCount(); }

  /// excess(i) = opens - closes in positions [0, i].
  int64_t Excess(size_t i) const {
    return 2 * static_cast<int64_t>(bits_.Rank1(i + 1)) -
           static_cast<int64_t>(i + 1);
  }

  /// Matching close paren of the open paren at `i`.
  size_t FindClose(size_t i) const;
  /// Matching open paren of the close paren at `i`.
  size_t FindOpen(size_t i) const;
  /// Open paren of the tightest pair enclosing position `i` (the parent of
  /// the node whose open paren is at `i`); kNoPos for the root.
  size_t Enclose(size_t i) const;

  /// Number of nodes in the subtree rooted at open paren `i`.
  size_t SubtreeSize(size_t i) const {
    return (FindClose(i) - i + 1) / 2;
  }

  /// Depth of the node at open paren `i` (root = 0). O(1) via excess.
  size_t DepthAt(size_t i) const {
    return static_cast<size_t>(Excess(i)) - 1;
  }

  /// Bytes referenced by the sequence plus directories (owned or borrowed).
  size_t MemoryUsage() const;
  /// Heap bytes actually owned (0 when backed by a mapped snapshot).
  size_t HeapBytes() const {
    return bits_.HeapBytes() + words_.OwnedBytes() + supers_.OwnedBytes();
  }

  // -- Snapshot serialization hooks ----------------------------------------

  const BitVector& bits() const { return bits_; }
  std::span<const ExcessBlock> WordDirSpan() const { return words_.span(); }
  std::span<const ExcessBlock> SuperDirSpan() const { return supers_.span(); }
  static size_t ExpectedWordDir(size_t bits) {
    return BitVector::ExpectedWords(bits);
  }
  static size_t ExpectedSuperDir(size_t bits) {
    return (ExpectedWordDir(bits) + kWordsPerSuper - 1) / kWordsPerSuper;
  }

 private:
  /// Smallest j > i with excess(j) == excess(i) + d (d < 0 in our uses).
  size_t FwdSearch(size_t i, int64_t d) const;
  /// Largest j < i with excess(j) == excess(i) + d. Returns -1 for the
  /// virtual position before the sequence (excess 0), -2 if no match.
  int64_t BwdSearch(size_t i, int64_t d) const;

  BitVector bits_;
  ArrayRef<ExcessBlock> words_;   // one per 64-bit word
  ArrayRef<ExcessBlock> supers_;  // one per kWordsPerSuper words
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_BP_H_
