#include "xmlq/storage/content_store.h"

// ContentStore is header-only; this translation unit anchors the target.
