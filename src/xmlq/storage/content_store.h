#ifndef XMLQ_STORAGE_CONTENT_STORE_H_
#define XMLQ_STORAGE_CONTENT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/base/fault_injector.h"

namespace xmlq::storage {

/// Identifier of a stored content string (dense, in insertion order).
using ContentId = uint32_t;

/// Append-only string store, holding element text and attribute values
/// *separately from the tree structure* — the paper's §4.2 rationale: the
/// structure without variable-length content is regular and can be managed
/// efficiently, and content indexes are built over this store alone.
class ContentStore {
 public:
  ContentStore() = default;

  /// Appends `text`, returning its id (ids are dense, starting at 0).
  ContentId Add(std::string_view text) {
    offsets_.push_back(static_cast<uint64_t>(buffer_.size()));
    buffer_.append(text);
    // Test-only fault hook: flip the low bit of the first stored byte, so
    // robustness tests can prove the engine tolerates (rather than crashes
    // on) silently corrupted content pages.
    if (XMLQ_FAULT("storage.content.corrupt") && !text.empty()) {
      buffer_[buffer_.size() - text.size()] ^= 0x01;
    }
    return static_cast<ContentId>(offsets_.size() - 1);
  }

  /// Content of entry `id`. The view is stable (buffer only grows).
  std::string_view Get(ContentId id) const {
    const uint64_t begin = offsets_[id];
    const uint64_t end =
        id + 1 < offsets_.size() ? offsets_[id + 1] : buffer_.size();
    return std::string_view(buffer_).substr(begin, end - begin);
  }

  size_t size() const { return offsets_.size(); }

  size_t MemoryUsage() const {
    return buffer_.capacity() + offsets_.capacity() * sizeof(uint64_t);
  }

 private:
  std::string buffer_;
  std::vector<uint64_t> offsets_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_CONTENT_STORE_H_
