#ifndef XMLQ_STORAGE_CONTENT_STORE_H_
#define XMLQ_STORAGE_CONTENT_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "xmlq/base/array_ref.h"
#include "xmlq/base/fault_injector.h"

namespace xmlq::storage {

/// Identifier of a stored content string (dense, in insertion order).
using ContentId = uint32_t;

/// Append-only string store, holding element text and attribute values
/// *separately from the tree structure* — the paper's §4.2 rationale: the
/// structure without variable-length content is regular and can be managed
/// efficiently, and content indexes are built over this store alone.
///
/// Both arrays live in ArrayRef storage, so a store can be opened zero-copy
/// over the content sections of an mmap'd snapshot (FromExternal).
class ContentStore {
 public:
  ContentStore() = default;

  /// Adopts externally owned buffer + offsets (mapped snapshot sections);
  /// the memory must outlive the store. Callers validate that offsets are
  /// monotone and within the buffer (see snapshot_reader).
  static ContentStore FromExternal(std::string_view buffer,
                                   std::span<const uint64_t> offsets) {
    ContentStore out;
    out.buffer_ = ArrayRef<char>::View({buffer.data(), buffer.size()});
    out.offsets_ = ArrayRef<uint64_t>::View(offsets);
    return out;
  }

  /// Appends `text`, returning its id (ids are dense, starting at 0).
  ContentId Add(std::string_view text) {
    offsets_.PushBack(static_cast<uint64_t>(buffer_.size()));
    buffer_.Append(text.begin(), text.end());
    // Test-only fault hook: flip the low bit of the first stored byte, so
    // robustness tests can prove the engine tolerates (rather than crashes
    // on) silently corrupted content pages.
    if (XMLQ_FAULT("storage.content.corrupt") && !text.empty()) {
      buffer_.MutableAt(buffer_.size() - text.size()) ^= 0x01;
    }
    return static_cast<ContentId>(offsets_.size() - 1);
  }

  /// Content of entry `id`. The view is stable (buffer only grows).
  std::string_view Get(ContentId id) const {
    const uint64_t begin = offsets_[id];
    const uint64_t end =
        id + 1 < offsets_.size() ? offsets_[id + 1] : buffer_.size();
    return std::string_view(buffer_.data() + begin, end - begin);
  }

  size_t size() const { return offsets_.size(); }

  /// Bytes referenced (owned or borrowed).
  size_t MemoryUsage() const {
    return buffer_.size() + offsets_.size() * sizeof(uint64_t);
  }
  /// Heap bytes actually owned (0 when backed by a mapped snapshot).
  size_t HeapBytes() const {
    return buffer_.OwnedBytes() + offsets_.OwnedBytes();
  }

  // -- Snapshot serialization hooks ----------------------------------------

  std::string_view BufferView() const {
    return std::string_view(buffer_.data(), buffer_.size());
  }
  std::span<const uint64_t> OffsetSpan() const { return offsets_.span(); }

 private:
  ArrayRef<char> buffer_;
  ArrayRef<uint64_t> offsets_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_CONTENT_STORE_H_
