#include "xmlq/storage/manifest.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "xmlq/base/crc32.h"
#include "xmlq/base/fault_injector.h"
#include "xmlq/base/file_io.h"

namespace xmlq::storage {

namespace {

/// An over-generous bound on name + file-name bytes; anything larger in a
/// record header is corruption, not a real record.
constexpr uint32_t kMaxPayload = 1 << 20;

Status JournalError(const std::string& path, uint64_t offset,
                    std::string detail) {
  return Status::ParseError("manifest \"" + path + "\" at offset " +
                            std::to_string(offset) + ": " + std::move(detail));
}

uint32_t RecordCrc(const ManifestRecordHeader& header,
                   std::string_view payload) {
  ManifestRecordHeader crc_input = header;
  crc_input.crc = 0;
  const uint32_t crc = Crc32(&crc_input, sizeof(crc_input));
  return Crc32(payload.data(), payload.size(), crc);
}

}  // namespace

std::string_view ManifestOpName(uint32_t op) {
  switch (static_cast<ManifestOp>(op)) {
    case ManifestOp::kRegister: return "register";
    case ManifestOp::kRemove: return "remove";
    case ManifestOp::kQuarantine: return "quarantine";
    case ManifestOp::kEpoch: return "epoch";
  }
  return "?";
}

std::string Manifest::SanitizeFileStem(std::string_view name) {
  std::string stem;
  stem.reserve(name.size());
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    stem.push_back(safe ? c : '_');
  }
  if (stem.empty()) stem = "doc";
  return stem;
}

std::string Manifest::EncodeRecord(const ManifestRecord& record) {
  ManifestRecordHeader header;
  header.op = static_cast<uint32_t>(record.op);
  header.name_len = static_cast<uint32_t>(record.name.size());
  header.payload_len =
      static_cast<uint32_t>(record.name.size() + record.file.size());
  header.generation = record.generation;
  header.snapshot_size = record.snapshot_size;
  header.snapshot_crc = record.snapshot_crc;
  const std::string payload = record.name + record.file;
  header.crc = RecordCrc(header, payload);
  std::string bytes(sizeof(header) + payload.size(), '\0');
  std::memcpy(bytes.data(), &header, sizeof(header));
  std::memcpy(bytes.data() + sizeof(header), payload.data(), payload.size());
  return bytes;
}

void Manifest::Apply(const ManifestRecord& record) {
  if (record.op == ManifestOp::kEpoch) {
    // The epoch is its own monotone counter, stored in the generation
    // field; it must not advance the snapshot-generation clock (the
    // replication cursor) or the two orderings would entangle.
    epoch_ = std::max(epoch_, record.generation);
    return;
  }
  max_generation_ = std::max(max_generation_, record.generation);
  switch (record.op) {
    case ManifestOp::kRegister:
      entries_[record.name] = record;
      break;
    case ManifestOp::kRemove:
    case ManifestOp::kQuarantine:
      entries_.erase(record.name);
      break;
    case ManifestOp::kEpoch:
      break;  // handled above
  }
}

Result<Manifest> Manifest::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create store directory \"" + dir +
                            "\": " + ec.message());
  }
  Manifest manifest;
  manifest.dir_ = dir;
  manifest.journal_path_ = dir + "/" + kManifestFileName;

  if (!std::filesystem::exists(manifest.journal_path_, ec)) {
    // Fresh store: write the journal header (its own fsync'd append, which
    // also syncs the directory for the new name).
    ManifestFileHeader header;
    std::memcpy(header.magic, kManifestMagic, sizeof(header.magic));
    header.version = kManifestVersion;
    header.crc = Crc32(&header, offsetof(ManifestFileHeader, crc));
    XMLQ_RETURN_IF_ERROR(AppendWithSync(
        manifest.journal_path_,
        std::string_view(reinterpret_cast<const char*>(&header),
                         sizeof(header))));
    manifest.replay_.valid_bytes = sizeof(header);
    return manifest;
  }

  XMLQ_ASSIGN_OR_RETURN(FileBytes bytes,
                        FileBytes::ReadWhole(manifest.journal_path_));
  if (XMLQ_FAULT("store.manifest.replay")) {
    return JournalError(manifest.journal_path_, 0,
                        "injected replay failure");
  }
  if (bytes.size() < sizeof(ManifestFileHeader)) {
    return JournalError(manifest.journal_path_, 0,
                        "file truncated: " + std::to_string(bytes.size()) +
                            " bytes, need at least " +
                            std::to_string(sizeof(ManifestFileHeader)));
  }
  ManifestFileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kManifestMagic, sizeof(header.magic)) != 0) {
    return JournalError(manifest.journal_path_, 0,
                        "bad magic (not an xqm manifest)");
  }
  const uint32_t header_crc = Crc32(&header, offsetof(ManifestFileHeader, crc));
  if (header_crc != header.crc) {
    return JournalError(manifest.journal_path_, 0,
                        "header checksum mismatch (stored " +
                            std::to_string(header.crc) + ", computed " +
                            std::to_string(header_crc) + ")");
  }
  if (header.version != kManifestVersion) {
    return JournalError(manifest.journal_path_, 0,
                        "unsupported version " +
                            std::to_string(header.version) + " (expected " +
                            std::to_string(kManifestVersion) + ")");
  }

  // Replay the longest valid record prefix. Any defect — a header that does
  // not fit, an impossible payload length, a CRC mismatch, an unknown op —
  // marks the torn tail: everything from that offset on is discarded. This
  // is deliberately indiscriminate: a record is either entirely committed
  // and intact, or it (and everything after it, which the fsync ordering
  // guarantees was written later) never happened.
  uint64_t pos = sizeof(ManifestFileHeader);
  std::string torn_detail;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < sizeof(ManifestRecordHeader)) {
      torn_detail = "truncated record header";
      break;
    }
    ManifestRecordHeader record_header;
    std::memcpy(&record_header, bytes.data() + pos, sizeof(record_header));
    if (record_header.payload_len > kMaxPayload ||
        record_header.name_len > record_header.payload_len) {
      torn_detail = "implausible payload length " +
                    std::to_string(record_header.payload_len);
      break;
    }
    if (bytes.size() - pos - sizeof(record_header) <
        record_header.payload_len) {
      torn_detail = "truncated record payload";
      break;
    }
    const std::string_view payload(bytes.data() + pos + sizeof(record_header),
                                   record_header.payload_len);
    const uint32_t crc = RecordCrc(record_header, payload);
    if (crc != record_header.crc) {
      torn_detail = "record checksum mismatch (stored " +
                    std::to_string(record_header.crc) + ", computed " +
                    std::to_string(crc) + ")";
      break;
    }
    if (ManifestOpName(record_header.op) == std::string_view("?") ||
        record_header.reserved != 0) {
      torn_detail = "unknown record op " + std::to_string(record_header.op);
      break;
    }
    ManifestRecord record;
    record.op = static_cast<ManifestOp>(record_header.op);
    record.generation = record_header.generation;
    record.name = std::string(payload.substr(0, record_header.name_len));
    record.file = std::string(payload.substr(record_header.name_len));
    record.snapshot_size = record_header.snapshot_size;
    record.snapshot_crc = record_header.snapshot_crc;
    manifest.Apply(record);
    ++manifest.replay_.records;
    pos += sizeof(record_header) + record_header.payload_len;
  }
  manifest.replay_.valid_bytes = pos;
  manifest.replay_.torn_bytes = bytes.size() - pos;
  manifest.replay_.torn_detail = std::move(torn_detail);
  manifest.record_count_ = manifest.replay_.records;

  if (manifest.replay_.torn_bytes > 0) {
    // Truncate the torn tail so the next append starts at a valid record
    // boundary. Rewriting atomically (rather than ftruncate) keeps this
    // portable and inherits the temp+rename+dir-sync durability discipline.
    XMLQ_RETURN_IF_ERROR(WriteFileAtomic(
        manifest.journal_path_,
        std::string_view(bytes.data(), manifest.replay_.valid_bytes)));
  }
  return manifest;
}

std::vector<ManifestRecord> Manifest::LiveRecordsAbove(uint64_t cursor) const {
  std::vector<ManifestRecord> out;
  for (const auto& [name, record] : entries_) {
    if (record.generation > cursor) out.push_back(record);
  }
  std::sort(out.begin(), out.end(),
            [](const ManifestRecord& a, const ManifestRecord& b) {
              return a.generation < b.generation;
            });
  return out;
}

Status Manifest::Append(const ManifestRecord& record) {
  if (XMLQ_FAULT("store.manifest.append")) {
    return Status::Internal("injected append failure on manifest \"" +
                            journal_path_ + "\"");
  }
  XMLQ_RETURN_IF_ERROR(AppendWithSync(journal_path_, EncodeRecord(record)));
  Apply(record);
  ++record_count_;
  return Status::Ok();
}

Status Manifest::Compact() {
  if (XMLQ_FAULT("store.manifest.compact")) {
    return Status::Internal("injected compact failure on manifest \"" +
                            journal_path_ + "\"");
  }
  ManifestFileHeader header;
  std::memcpy(header.magic, kManifestMagic, sizeof(header.magic));
  header.version = kManifestVersion;
  header.crc = Crc32(&header, offsetof(ManifestFileHeader, crc));
  std::string image(reinterpret_cast<const char*>(&header), sizeof(header));
  if (epoch_ > 0) {
    // The epoch record would otherwise be dead weight compaction drops —
    // and with it the fencing term. Re-emit it first.
    ManifestRecord epoch_record;
    epoch_record.op = ManifestOp::kEpoch;
    epoch_record.generation = epoch_;
    image += EncodeRecord(epoch_record);
  }
  for (const auto& [name, record] : entries_) {
    image += EncodeRecord(record);
  }
  XMLQ_RETURN_IF_ERROR(WriteFileAtomic(journal_path_, image));
  record_count_ = entries_.size() + (epoch_ > 0 ? 1 : 0);
  return Status::Ok();
}

}  // namespace xmlq::storage
