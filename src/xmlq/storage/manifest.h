#ifndef XMLQ_STORAGE_MANIFEST_H_
#define XMLQ_STORAGE_MANIFEST_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "xmlq/base/status.h"

namespace xmlq::storage {

/// "catalog.xqm" — the append-only journaled catalog manifest (DESIGN.md §9).
///
/// A durable store directory holds one snapshot file per live document
/// generation plus this journal, which is the *only* source of truth for
/// what the store contains. Every catalog mutation (register/save, replace,
/// remove, quarantine) appends exactly one CRC-32C-protected record; a
/// record is committed once AppendWithSync returns. Re-opening the store
/// replays the longest valid record prefix and truncates anything after the
/// first invalid byte (a torn tail from a crashed append), so the recovered
/// catalog is always the state as of some prefix of committed operations —
/// never a torn hybrid.
///
/// Journal layout:
///   [ManifestFileHeader : 16 B]
///   [ManifestRecordHeader : 40 B][name bytes][file bytes]   (repeated)
///
/// Integers are little-endian host format, matching the snapshot store.
/// Each record's CRC covers its header (with the crc field zeroed) plus its
/// payload, so a flipped bit anywhere in a record invalidates it — and,
/// because replay stops at the first bad record, everything after it.
/// Snapshot files referenced by kRegister records carry their whole-file
/// size and CRC-32C, which recovery re-verifies before serving a document.

/// First 8 bytes of the journal. CR-LF catches ASCII-mode mangling, the
/// same trick as the xqpack magic.
inline constexpr char kManifestMagic[8] = {'X', 'Q', 'M', 'A',
                                           'N', 'F', '\r', '\n'};
inline constexpr uint32_t kManifestVersion = 1;
inline constexpr char kManifestFileName[] = "catalog.xqm";

struct ManifestFileHeader {
  char magic[8];
  uint32_t version = kManifestVersion;
  uint32_t crc = 0;  // CRC-32C of magic + version
};
static_assert(sizeof(ManifestFileHeader) == 16, "on-disk layout");

enum class ManifestOp : uint32_t {
  kRegister = 1,    // (re)binds name -> snapshot file; replace = higher gen
  kRemove = 2,      // drops name from the catalog
  kQuarantine = 3,  // drops name; its snapshot was renamed *.quarantined
  kEpoch = 4,       // replication epoch (fencing term) in `generation`
};

/// Stable lowercase name for an op ("register", ...); "?" for unknown.
std::string_view ManifestOpName(uint32_t op);

/// One journal record, in memory. `file` is the snapshot file name relative
/// to the store directory (empty for kRemove).
struct ManifestRecord {
  ManifestOp op = ManifestOp::kRegister;
  uint64_t generation = 0;     // strictly increasing across the journal
  std::string name;            // document name
  std::string file;            // snapshot file (kRegister / kQuarantine)
  uint64_t snapshot_size = 0;  // whole-file bytes (kRegister only)
  uint32_t snapshot_crc = 0;   // whole-file CRC-32C (kRegister only)
};

/// On-disk record header. The payload (name bytes then file bytes) follows
/// immediately; crc covers [payload_len..end of payload] with crc = 0.
struct ManifestRecordHeader {
  uint32_t crc = 0;
  uint32_t payload_len = 0;  // name_len + file-name bytes
  uint32_t op = 0;
  uint32_t name_len = 0;
  uint64_t generation = 0;
  uint64_t snapshot_size = 0;
  uint32_t snapshot_crc = 0;
  uint32_t reserved = 0;  // must be 0
};
static_assert(sizeof(ManifestRecordHeader) == 40, "on-disk layout");

/// What journal replay found, for the recovery report and tests.
struct ManifestReplayInfo {
  uint64_t valid_bytes = 0;   // journal prefix the catalog was rebuilt from
  uint64_t torn_bytes = 0;    // trailing bytes truncated as a torn tail
  uint64_t records = 0;       // records applied
  std::string torn_detail;    // why replay stopped ("" when the tail is clean)
};

/// The journaled manifest of one store directory. Not internally
/// synchronized — api::Database serializes access under its store mutex.
class Manifest {
 public:
  /// Opens (creating if absent) `<dir>/catalog.xqm`, replays the longest
  /// valid record prefix and truncates any torn tail. The directory is
  /// created if missing. A journal whose *header* is unreadable is an
  /// error (kParseError with path + offset); a journal with a torn record
  /// tail is not — that is the crash case recovery exists for.
  static Result<Manifest> Open(const std::string& dir);

  const std::string& dir() const { return dir_; }
  const std::string& journal_path() const { return journal_path_; }

  /// Live catalog: name -> latest applied kRegister record.
  const std::map<std::string, ManifestRecord, std::less<>>& entries() const {
    return entries_;
  }

  const ManifestReplayInfo& replay() const { return replay_; }

  /// Next unused generation number (strictly increasing, never reused even
  /// across remove/replace cycles).
  uint64_t NextGeneration() { return ++max_generation_; }

  /// Highest generation any applied record carried — the manifest's logical
  /// clock, and the replication cursor a follower resumes from. kEpoch
  /// records do not advance it: the epoch is a separate counter (below).
  uint64_t max_generation() const { return max_generation_; }

  /// Replication epoch (fencing term, DESIGN.md §14): the highest value any
  /// applied kEpoch record carried. 0 until the first promotion anywhere in
  /// this store's replication group. A kEpoch record stores the epoch in its
  /// `generation` field (name/file empty, snapshot fields zero) and never
  /// ships — followers learn the epoch from the wire frames and persist
  /// their own record. Compact() re-emits it so it survives journal
  /// rewrites.
  uint64_t epoch() const { return epoch_; }

  /// Live registrations with generation > cursor, ascending by generation:
  /// exactly what a subscriber at `cursor` still needs shipped. Removals
  /// and quarantines do not appear (their records may be compacted away);
  /// they propagate via the heartbeat census instead.
  std::vector<ManifestRecord> LiveRecordsAbove(uint64_t cursor) const;

  /// Serializes `record`, appends it with fsync (AppendWithSync) and applies
  /// it to entries(). Fault site: "store.manifest.append".
  Status Append(const ManifestRecord& record);

  /// Journal records behind the current in-memory catalog (replayed at Open
  /// plus appended since). Compaction resets this to the live-entry count.
  uint64_t records() const { return record_count_; }

  /// True once the journal carries enough dead weight to be worth
  /// rewriting: replication ships the journal, so every superseded
  /// register/remove/quarantine record is a byte shipped forever. The
  /// threshold keeps small stores from compacting on every Persist while
  /// bounding the journal at a few times its live size.
  bool ShouldCompact() const {
    return record_count_ >= kCompactMinRecords &&
           record_count_ >= (entries_.size() + 1) * kCompactSlack;
  }

  /// Rewrites the journal as a snapshot of the live entries: the file
  /// header plus exactly one kRegister record per entry, written atomically
  /// (WriteFileAtomic's temp+rename+dir-sync), so a crash anywhere leaves
  /// either the old journal or the new — both replay to the same catalog.
  /// Appends after a compaction form the new tail. Generations are
  /// preserved, so NextGeneration() stays strictly increasing across a
  /// compact. Fault site: "store.manifest.compact".
  Status Compact();

  static constexpr uint64_t kCompactMinRecords = 64;
  static constexpr uint64_t kCompactSlack = 4;

  /// `name` flattened into a filesystem-safe snapshot file stem (every byte
  /// outside [A-Za-z0-9._-] becomes '_').
  static std::string SanitizeFileStem(std::string_view name);

  /// Serializes one record to journal bytes (exposed for tests that build
  /// hostile journals).
  static std::string EncodeRecord(const ManifestRecord& record);

 private:
  Manifest() = default;

  void Apply(const ManifestRecord& record);

  std::string dir_;
  std::string journal_path_;
  std::map<std::string, ManifestRecord, std::less<>> entries_;
  ManifestReplayInfo replay_;
  uint64_t max_generation_ = 0;
  uint64_t epoch_ = 0;
  uint64_t record_count_ = 0;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_MANIFEST_H_
