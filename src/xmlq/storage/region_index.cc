#include "xmlq/storage/region_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "xmlq/base/fault_injector.h"

namespace xmlq::storage {

Result<RegionIndex> RegionIndex::TryBuild(const xml::Document& doc) {
  if (XMLQ_FAULT("storage.region.build")) {
    return Status::ResourceExhausted(
        "injected allocation failure building region index");
  }
  return RegionIndex(doc);
}

RegionIndex RegionIndex::FromExternal(
    Region document, std::span<const uint32_t> end,
    std::span<const uint32_t> level, std::span<const Region> elements,
    std::span<const Region> attributes,
    std::span<const Region> element_streams,
    std::span<const uint32_t> element_offsets,
    std::span<const Region> attribute_streams,
    std::span<const uint32_t> attribute_offsets) {
  RegionIndex out;
  out.document_ = document;
  out.end_ = ArrayRef<uint32_t>::View(end);
  out.level_ = ArrayRef<uint32_t>::View(level);
  out.elements_ = ArrayRef<Region>::View(elements);
  out.attributes_ = ArrayRef<Region>::View(attributes);
  out.element_streams_ = ArrayRef<Region>::View(element_streams);
  out.element_offsets_ = ArrayRef<uint32_t>::View(element_offsets);
  out.attribute_streams_ = ArrayRef<Region>::View(attribute_streams);
  out.attribute_offsets_ = ArrayRef<uint32_t>::View(attribute_offsets);
  return out;
}

namespace {

/// Builds the grouped per-name streams: counting sort by NameId, preserving
/// document order inside each group.
void BuildStreams(std::span<const Region> regions, size_t name_count,
                  std::vector<Region>* grouped,
                  std::vector<uint32_t>* offsets) {
  offsets->assign(name_count + 1, 0);
  for (const Region& r : regions) {
    if (r.name != xml::kInvalidName) ++(*offsets)[r.name + 1];
  }
  for (size_t i = 1; i < offsets->size(); ++i) {
    (*offsets)[i] += (*offsets)[i - 1];
  }
  grouped->resize(regions.size());
  std::vector<uint32_t> cursor(offsets->begin(), offsets->end() - 1);
  for (const Region& r : regions) {
    if (r.name == xml::kInvalidName) continue;
    (*grouped)[cursor[r.name]++] = r;
  }
}

}  // namespace

RegionIndex::RegionIndex(const xml::Document& doc) {
  assert(doc.IsPreorder());
  const size_t n = doc.NodeCount();
  // end[] = largest NodeId in the subtree. With pre-order ids, a node's
  // subtree is the id range [id, end]; computed in one reverse pass using
  // parent pointers (a node's end propagates to all its ancestors).
  std::vector<uint32_t> end(n);
  for (size_t i = 0; i < n; ++i) end[i] = static_cast<uint32_t>(i);
  for (size_t i = n; i-- > 1;) {
    const xml::NodeId parent = doc.Parent(static_cast<xml::NodeId>(i));
    if (parent != xml::kNullNode && end[i] > end[parent]) {
      end[parent] = end[i];
    }
  }
  std::vector<uint32_t> level(n, 0);
  for (xml::NodeId i = 1; i < n; ++i) {
    level[i] = level[doc.Parent(i)] + 1;
  }
  document_ = Region{0, end[0], 0, xml::kInvalidName};
  std::vector<Region> elements;
  std::vector<Region> attributes;
  for (xml::NodeId i = 0; i < n; ++i) {
    if (doc.Kind(i) == xml::NodeKind::kElement) {
      elements.push_back(Region{i, end[i], level[i], doc.Name(i)});
    } else if (doc.Kind(i) == xml::NodeKind::kAttribute) {
      attributes.push_back(Region{i, i, level[i], doc.Name(i)});
    }
  }
  const size_t name_count = doc.pool().size();
  std::vector<Region> element_streams;
  std::vector<uint32_t> element_offsets;
  std::vector<Region> attribute_streams;
  std::vector<uint32_t> attribute_offsets;
  BuildStreams(elements, name_count, &element_streams, &element_offsets);
  BuildStreams(attributes, name_count, &attribute_streams, &attribute_offsets);
  end_.Assign(std::move(end));
  level_.Assign(std::move(level));
  elements_.Assign(std::move(elements));
  attributes_.Assign(std::move(attributes));
  element_streams_.Assign(std::move(element_streams));
  element_offsets_.Assign(std::move(element_offsets));
  attribute_streams_.Assign(std::move(attribute_streams));
  attribute_offsets_.Assign(std::move(attribute_offsets));
}

std::span<const Region> RegionIndex::ElementStream(xml::NameId name) const {
  if (name == xml::kInvalidName || name + 1 >= element_offsets_.size()) {
    return {};
  }
  return element_streams_.span().subspan(
      element_offsets_[name],
      element_offsets_[name + 1] - element_offsets_[name]);
}

std::span<const Region> RegionIndex::AttributeStream(xml::NameId name) const {
  if (name == xml::kInvalidName || name + 1 >= attribute_offsets_.size()) {
    return {};
  }
  return attribute_streams_.span().subspan(
      attribute_offsets_[name],
      attribute_offsets_[name + 1] - attribute_offsets_[name]);
}

size_t RegionIndex::MemoryUsage() const {
  return (elements_.size() + attributes_.size() + element_streams_.size() +
          attribute_streams_.size()) *
             sizeof(Region) +
         (element_offsets_.size() + attribute_offsets_.size() + end_.size() +
          level_.size()) *
             sizeof(uint32_t);
}

size_t RegionIndex::HeapBytes() const {
  return end_.OwnedBytes() + level_.OwnedBytes() + elements_.OwnedBytes() +
         attributes_.OwnedBytes() + element_streams_.OwnedBytes() +
         attribute_streams_.OwnedBytes() + element_offsets_.OwnedBytes() +
         attribute_offsets_.OwnedBytes();
}

}  // namespace xmlq::storage
