#include "xmlq/storage/region_index.h"

#include <algorithm>
#include <cassert>

#include "xmlq/base/fault_injector.h"

namespace xmlq::storage {

Result<RegionIndex> RegionIndex::TryBuild(const xml::Document& doc) {
  if (XMLQ_FAULT("storage.region.build")) {
    return Status::ResourceExhausted(
        "injected allocation failure building region index");
  }
  return RegionIndex(doc);
}

namespace {

/// Builds the grouped per-name streams: counting sort by NameId, preserving
/// document order inside each group.
void BuildStreams(const std::vector<Region>& regions, size_t name_count,
                  std::vector<Region>* grouped,
                  std::vector<uint32_t>* offsets) {
  offsets->assign(name_count + 1, 0);
  for (const Region& r : regions) {
    if (r.name != xml::kInvalidName) ++(*offsets)[r.name + 1];
  }
  for (size_t i = 1; i < offsets->size(); ++i) {
    (*offsets)[i] += (*offsets)[i - 1];
  }
  grouped->resize(regions.size());
  std::vector<uint32_t> cursor(offsets->begin(), offsets->end() - 1);
  for (const Region& r : regions) {
    if (r.name == xml::kInvalidName) continue;
    (*grouped)[cursor[r.name]++] = r;
  }
}

}  // namespace

RegionIndex::RegionIndex(const xml::Document& doc) {
  assert(doc.IsPreorder());
  const size_t n = doc.NodeCount();
  // end[] = largest NodeId in the subtree. With pre-order ids, a node's
  // subtree is the id range [id, end]; computed in one reverse pass using
  // parent pointers (a node's end propagates to all its ancestors).
  end_.resize(n);
  for (size_t i = 0; i < n; ++i) end_[i] = static_cast<uint32_t>(i);
  for (size_t i = n; i-- > 1;) {
    const xml::NodeId parent = doc.Parent(static_cast<xml::NodeId>(i));
    if (parent != xml::kNullNode && end_[i] > end_[parent]) {
      end_[parent] = end_[i];
    }
  }
  level_.assign(n, 0);
  for (xml::NodeId i = 1; i < n; ++i) {
    level_[i] = level_[doc.Parent(i)] + 1;
  }
  document_ = Region{0, end_[0], 0, xml::kInvalidName};
  for (xml::NodeId i = 0; i < n; ++i) {
    if (doc.Kind(i) == xml::NodeKind::kElement) {
      elements_.push_back(Region{i, end_[i], level_[i], doc.Name(i)});
    } else if (doc.Kind(i) == xml::NodeKind::kAttribute) {
      attributes_.push_back(Region{i, i, level_[i], doc.Name(i)});
    }
  }
  const size_t name_count = doc.pool().size();
  BuildStreams(elements_, name_count, &element_streams_, &element_offsets_);
  BuildStreams(attributes_, name_count, &attribute_streams_,
               &attribute_offsets_);
}

std::span<const Region> RegionIndex::ElementStream(xml::NameId name) const {
  if (name == xml::kInvalidName || name + 1 >= element_offsets_.size()) {
    return {};
  }
  return std::span<const Region>(element_streams_)
      .subspan(element_offsets_[name],
               element_offsets_[name + 1] - element_offsets_[name]);
}

std::span<const Region> RegionIndex::AttributeStream(xml::NameId name) const {
  if (name == xml::kInvalidName || name + 1 >= attribute_offsets_.size()) {
    return {};
  }
  return std::span<const Region>(attribute_streams_)
      .subspan(attribute_offsets_[name],
               attribute_offsets_[name + 1] - attribute_offsets_[name]);
}

size_t RegionIndex::MemoryUsage() const {
  return (elements_.capacity() + attributes_.capacity() +
          element_streams_.capacity() + attribute_streams_.capacity()) *
             sizeof(Region) +
         (element_offsets_.capacity() + attribute_offsets_.capacity() +
          end_.capacity() + level_.capacity()) *
             sizeof(uint32_t);
}

}  // namespace xmlq::storage
