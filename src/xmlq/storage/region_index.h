#ifndef XMLQ_STORAGE_REGION_INDEX_H_
#define XMLQ_STORAGE_REGION_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "xmlq/base/status.h"
#include "xmlq/xml/document.h"

namespace xmlq::storage {

/// One node under interval (region) encoding: `start` is the pre-order
/// number (== NodeId), `end` is the largest pre-order number in the subtree,
/// `level` the depth. Containment test:
///   u ancestor-of v   <=>  u.start < v.start && v.start <= u.end
///   u parent-of v     <=>  ancestor && u.level + 1 == v.level
struct Region {
  uint32_t start = 0;
  uint32_t end = 0;
  uint32_t level = 0;
  xml::NameId name = xml::kInvalidName;

  bool Contains(const Region& v) const {
    return start < v.start && v.start <= end;
  }
  bool IsParentOf(const Region& v) const {
    return Contains(v) && level + 1 == v.level;
  }
};

/// The extended-relational representation of an XML document (paper §1,
/// baseline [1]): elements and attributes shredded into interval-encoded
/// tuples, clustered into one sorted stream per tag name — exactly the
/// inputs that structural joins [12] and holistic twig joins [13] consume.
class RegionIndex {
 public:
  RegionIndex() = default;

  /// Builds from a pre-order DOM tree.
  explicit RegionIndex(const xml::Document& doc);

  /// Build with a fault-injection hook ("storage.region.build") so tests
  /// can force the build-failure path; identical to the constructor
  /// otherwise.
  static Result<RegionIndex> TryBuild(const xml::Document& doc);

  /// All element regions in document order.
  const std::vector<Region>& elements() const { return elements_; }
  /// All attribute regions in document order (level = owner level + 1;
  /// start == end == the attribute's NodeId).
  const std::vector<Region>& attributes() const { return attributes_; }

  /// Elements named `name` in document order (empty span for unknown tags).
  std::span<const Region> ElementStream(xml::NameId name) const;
  /// Attributes named `name` in document order.
  std::span<const Region> AttributeStream(xml::NameId name) const;

  /// The region of the document node (start 0, spanning everything).
  Region DocumentRegion() const { return document_; }

  /// Largest NodeId in the subtree of `id` (any node kind).
  uint32_t EndOf(xml::NodeId id) const { return end_[id]; }
  /// Depth of `id` (document node = 0).
  uint32_t LevelOf(xml::NodeId id) const { return level_[id]; }
  /// The full region of an arbitrary node.
  Region RegionOf(xml::NodeId id, xml::NameId name = xml::kInvalidName) const {
    return Region{id, end_[id], level_[id], name};
  }

  size_t MemoryUsage() const;

 private:
  Region document_;
  std::vector<uint32_t> end_;    // per NodeId
  std::vector<uint32_t> level_;  // per NodeId
  std::vector<Region> elements_;    // document order
  std::vector<Region> attributes_;  // document order
  // Per-name copies grouped contiguously; lookup via offsets.
  std::vector<Region> element_streams_;
  std::vector<uint32_t> element_offsets_;  // indexed by NameId, size+1 fence
  std::vector<Region> attribute_streams_;
  std::vector<uint32_t> attribute_offsets_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_REGION_INDEX_H_
