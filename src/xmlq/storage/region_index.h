#ifndef XMLQ_STORAGE_REGION_INDEX_H_
#define XMLQ_STORAGE_REGION_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "xmlq/base/array_ref.h"
#include "xmlq/base/status.h"
#include "xmlq/xml/document.h"

namespace xmlq::storage {

/// One node under interval (region) encoding: `start` is the pre-order
/// number (== NodeId), `end` is the largest pre-order number in the subtree,
/// `level` the depth. Containment test:
///   u ancestor-of v   <=>  u.start < v.start && v.start <= u.end
///   u parent-of v     <=>  ancestor && u.level + 1 == v.level
struct Region {
  uint32_t start = 0;
  uint32_t end = 0;
  uint32_t level = 0;
  xml::NameId name = xml::kInvalidName;

  bool Contains(const Region& v) const {
    return start < v.start && v.start <= end;
  }
  bool IsParentOf(const Region& v) const {
    return Contains(v) && level + 1 == v.level;
  }
};
static_assert(sizeof(Region) == 16, "serialized layout");

/// The extended-relational representation of an XML document (paper §1,
/// baseline [1]): elements and attributes shredded into interval-encoded
/// tuples, clustered into one sorted stream per tag name — exactly the
/// inputs that structural joins [12] and holistic twig joins [13] consume.
///
/// All eight arrays live in ArrayRef storage, so an index can be opened
/// zero-copy over the region sections of an mmap'd snapshot (FromExternal).
class RegionIndex {
 public:
  RegionIndex() = default;

  /// Builds from a pre-order DOM tree.
  explicit RegionIndex(const xml::Document& doc);

  /// Build with a fault-injection hook ("storage.region.build") so tests
  /// can force the build-failure path; identical to the constructor
  /// otherwise.
  static Result<RegionIndex> TryBuild(const xml::Document& doc);

  /// Adopts externally owned arrays (mapped snapshot sections); the memory
  /// must outlive the index. Callers validate sizes and offset fences (see
  /// snapshot_reader).
  static RegionIndex FromExternal(Region document,
                                  std::span<const uint32_t> end,
                                  std::span<const uint32_t> level,
                                  std::span<const Region> elements,
                                  std::span<const Region> attributes,
                                  std::span<const Region> element_streams,
                                  std::span<const uint32_t> element_offsets,
                                  std::span<const Region> attribute_streams,
                                  std::span<const uint32_t> attribute_offsets);

  /// All element regions in document order.
  std::span<const Region> elements() const { return elements_.span(); }
  /// All attribute regions in document order (level = owner level + 1;
  /// start == end == the attribute's NodeId).
  std::span<const Region> attributes() const { return attributes_.span(); }

  /// Elements named `name` in document order (empty span for unknown tags).
  std::span<const Region> ElementStream(xml::NameId name) const;
  /// Attributes named `name` in document order.
  std::span<const Region> AttributeStream(xml::NameId name) const;

  /// The region of the document node (start 0, spanning everything).
  Region DocumentRegion() const { return document_; }

  /// Largest NodeId in the subtree of `id` (any node kind).
  uint32_t EndOf(xml::NodeId id) const { return end_[id]; }
  /// Depth of `id` (document node = 0).
  uint32_t LevelOf(xml::NodeId id) const { return level_[id]; }
  /// The full region of an arbitrary node.
  Region RegionOf(xml::NodeId id, xml::NameId name = xml::kInvalidName) const {
    return Region{id, end_[id], level_[id], name};
  }

  /// Bytes referenced (owned or borrowed).
  size_t MemoryUsage() const;
  /// Heap bytes actually owned (0 when backed by a mapped snapshot).
  size_t HeapBytes() const;

  // -- Snapshot serialization hooks ----------------------------------------

  std::span<const uint32_t> EndSpan() const { return end_.span(); }
  std::span<const uint32_t> LevelSpan() const { return level_.span(); }
  std::span<const Region> ElementStreamsSpan() const {
    return element_streams_.span();
  }
  std::span<const uint32_t> ElementOffsetSpan() const {
    return element_offsets_.span();
  }
  std::span<const Region> AttributeStreamsSpan() const {
    return attribute_streams_.span();
  }
  std::span<const uint32_t> AttributeOffsetSpan() const {
    return attribute_offsets_.span();
  }

 private:
  Region document_;
  ArrayRef<uint32_t> end_;    // per NodeId
  ArrayRef<uint32_t> level_;  // per NodeId
  ArrayRef<Region> elements_;    // document order
  ArrayRef<Region> attributes_;  // document order
  // Per-name copies grouped contiguously; lookup via offsets.
  ArrayRef<Region> element_streams_;
  ArrayRef<uint32_t> element_offsets_;  // indexed by NameId, size+1 fence
  ArrayRef<Region> attribute_streams_;
  ArrayRef<uint32_t> attribute_offsets_;
};

}  // namespace xmlq::storage

#endif  // XMLQ_STORAGE_REGION_INDEX_H_
